//! Concrete generators: [`StdRng`] and [`SmallRng`].

use crate::{RngCore, SeedableRng};

/// xoshiro256++ generator, seeded via SplitMix64.
///
/// Replaces `rand::rngs::StdRng` (ChaCha12 upstream). The sequence differs
/// from upstream but is deterministic per seed, which is the only property
/// the workspace depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            // The all-zero state is the one fixed point; perturb it.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Small fast generator; same algorithm as [`StdRng`] here.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let v: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
        // Not constant either.
        assert!(v.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = StdRng::seed_from_u64(42);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
