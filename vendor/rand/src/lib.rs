//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access and no cached registry, so the
//! workspace vendors the small API subset it actually uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and the [`rngs::StdRng`] / [`rngs::SmallRng`] generator types.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! stream the real `StdRng` uses, so absolute random sequences differ from
//! upstream `rand`, but every property the workspace relies on holds:
//! determinism per seed, independence across seeds, and high-quality 64-bit
//! uniform output. Nothing in this repository encodes upstream `rand`
//! sequences in expected values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Floating-point rounding can land exactly on `end`; nudge inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        let v = self.start + (self.end - self.start) * (unit_f64(rng) as f32);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f32 range");
        lo + (hi - lo) * (unit_f64(rng) as f32)
    }
}

/// Uniform integer draw in `[0, span)` by widening multiply (Lemire); the
/// modulo bias for the spans used here (≪ 2³²) is below 2⁻³².
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v), "{v}");
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w), "{w}");
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0, "{f}");
        }
    }

    #[test]
    fn gen_range_covers_small_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
