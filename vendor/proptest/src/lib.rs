//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with [`Strategy::prop_map`], range and tuple
//! strategies, [`collection::vec`], [`ProptestConfig::with_cases`], and the
//! [`proptest!`] / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test RNG (derived from the module path and test name, so failures
//! reproduce exactly), there is no shrinking — a failing case reports the
//! case number and assertion message only — and `prop_assume!` skips the
//! case rather than resampling it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values to a *strategy* and draws from it — the
    /// dependent-generation combinator (e.g. draw dimensions, then draw a
    /// matrix of that shape).
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Builds the deterministic RNG for one test case.
#[doc(hidden)]
pub fn __case_rng(module: &str, test: &str, case: u32) -> StdRng {
    // FNV-1a over the identifying strings, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in module.bytes().chain(test.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __pt_rng =
                        $crate::__case_rng(module_path!(), stringify!($name), case);
                    $crate::__proptest_bind!{ __pt_rng, $($args)* }
                    let outcome = (move ||
                        -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)+) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng, $($rest)+ }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // Bind first: negating a raw comparison expression trips clippy's
        // neg_cmp_op_on_partial_ord at every call site.
        let __prop_ok: bool = $cond;
        if !__prop_ok {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_ok: bool = $cond;
        if !__prop_ok {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                lhs,
                rhs
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs != rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                lhs,
                rhs
            ));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = __case_rng("m", "t", 0);
        for _ in 0..1000 {
            let v = (0.5..2.0f64).generate(&mut rng);
            assert!((0.5..2.0).contains(&v));
            let (a, b) = (0usize..4, 1usize..=8).generate(&mut rng);
            assert!(a < 4 && (1..=8).contains(&b));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = __case_rng("m", "t2", 0);
        let s = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 1u64..100, (lo, hi) in (0.0..1.0f64, 2.0..3.0f64)) {
            prop_assume!(x != 55);
            prop_assert!(x >= 1);
            prop_assert!(lo < hi, "{lo} vs {hi}");
            prop_assert_eq!(x, x);
            prop_assert_ne!(lo, hi);
        }
    }
}
