//! Collection strategies (`proptest::collection::vec`).

use core::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.min + 1 >= self.max_exclusive {
            self.min
        } else {
            rng.gen_range(self.min..self.max_exclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Sizes acceptable to [`vec()`]: an exact length or a half-open range.
pub trait IntoSizeRange {
    /// Converts to `(min, max_exclusive)`.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end)
    }
}

/// Builds a [`VecStrategy`] with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::__case_rng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = __case_rng("m", "vec", 0);
        let exact = vec(0.0..1.0f64, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
        let ranged = vec(0usize..5, 1..20);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
