//! Offline stand-in for `serde_derive`, written against `proc_macro` alone
//! (no `syn`/`quote`, which are equally unavailable offline).
//!
//! `#[derive(Serialize)]` on a non-generic struct with named fields emits a
//! `serde::Serialize` impl that renders the fields as a JSON object in
//! declaration order. Enums and tuple structs get a `"null"`-rendering impl
//! so derives still compile; nothing in the workspace serializes those.
//! `#[derive(Deserialize)]` emits the marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (JSON object of named fields).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_type(input);
    let body = match &parsed.fields {
        Some(fields) if !fields.is_empty() => {
            let mut stmts = String::new();
            for (i, f) in fields.iter().enumerate() {
                let comma = if i + 1 < fields.len() { "," } else { "" };
                stmts.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\
                     out.push_str(&::serde::Serialize::to_json(&self.{f}));\
                     out.push_str(\"{comma}\");"
                ));
            }
            format!(
                "let mut out = ::std::string::String::from(\"{{\");\
                 {stmts}\
                 out.push('}}');\
                 out"
            )
        }
        Some(_) => "::std::string::String::from(\"{}\")".to_string(),
        // Enums / tuple structs: compile, render as null.
        None => "::std::string::String::from(\"null\")".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {} {{\
             fn to_json(&self) -> ::std::string::String {{ {body} }}\
         }}",
        parsed.name
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_type(input);
    format!("impl ::serde::Deserialize for {} {{}}", parsed.name)
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

struct ParsedType {
    name: String,
    /// `Some(field names)` for a struct with named fields, `None` otherwise.
    fields: Option<Vec<String>>,
}

fn parse_type(input: TokenStream) -> ParsedType {
    let mut tokens = input.into_iter().peekable();
    let mut kind = String::new();
    // Scan past attributes and visibility to `struct`/`enum`.
    for tok in tokens.by_ref() {
        if let TokenTree::Ident(id) = &tok {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = s;
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let fields = if kind == "struct" {
        tokens.find_map(|tok| match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Some(named_fields(g.stream()))
            }
            _ => None,
        })
    } else {
        None
    };
    ParsedType { name, fields }
}

/// Extracts field names from the token stream inside a struct's braces.
///
/// Fields are split on commas outside `<...>` nesting (parentheses and
/// brackets are opaque `Group`s, so only angle brackets need depth
/// tracking); within each field, the name is the identifier immediately
/// before the first top-level `:`.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0usize;
    let mut last_ident: Option<String> = None;
    let mut name_taken = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ':' if angle_depth == 0 && !name_taken => {
                    if let Some(name) = last_ident.take() {
                        fields.push(name);
                        name_taken = true;
                    }
                }
                ',' if angle_depth == 0 => {
                    last_ident = None;
                    name_taken = false;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !name_taken => {
                let s = id.to_string();
                // `pub` etc. are overwritten once the real name arrives.
                last_ident = Some(s);
            }
            _ => {}
        }
    }
    fields
}
