//! Minimal deserialization support for the offline serde stand-in.
//!
//! Upstream serde deserializes through a `Deserializer` visitor pipeline;
//! this stub takes the simpler self-describing route: a format front end
//! (e.g. the TOML reader in `mimo-exp`) parses its input into a generic
//! [`Value`] tree whose nodes carry source line numbers, and typed configs
//! implement [`FromValue`] to extract themselves from that tree. Every
//! failure produces a [`DeError`] carrying the *key path* and *source
//! line* of the offending node, which is what lets `mimo-exp run` report
//! `spec.toml:12: run.cores: expected integer, got string "x"` instead of
//! a bare debug print.
//!
//! The split mirrors upstream serde closely enough that swapping the real
//! crate back in means replacing `FromValue` impls with
//! `#[derive(Deserialize)]` and the `Value` tree with `toml::Value`.

use std::fmt;

/// A parsed value plus the 1-based source line it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The value itself.
    pub value: Value,
    /// 1-based line number of the value (or of the table header that
    /// introduced it). `0` means "no source position" (synthetic values).
    pub line: usize,
}

impl Spanned {
    /// Wraps a value with a source line.
    pub fn new(value: Value, line: usize) -> Self {
        Spanned { value, line }
    }
}

/// A self-describing deserialized value — the subset every configuration
/// format the workspace reads (TOML, JSON) can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Spanned>),
    /// A key-ordered table.
    Table(Table),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// Short rendering of the value for error messages (strings quoted,
    /// composites summarized).
    pub fn summary(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Str(s) => format!("{s:?}"),
            Value::Array(a) => format!("array of {} items", a.len()),
            Value::Table(t) => format!("table of {} keys", t.len()),
        }
    }
}

/// An insertion-ordered string-keyed table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    entries: Vec<(String, Spanned)>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key. Returns `false` (leaving the table unchanged) when
    /// the key already exists — callers report the duplicate with their
    /// own source position.
    pub fn insert(&mut self, key: &str, value: Spanned) -> bool {
        if self.get(key).is_some() {
            return false;
        }
        self.entries.push((key.to_string(), value));
        true
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Spanned> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup (used by parsers building nested tables in place).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Spanned> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Iterates `(key, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Spanned)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Extracts a required field. The error names the missing or
    /// ill-typed key as `path.key`.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the key is absent or `T` rejects the value.
    pub fn field<T: FromValue>(&self, key: &str, path: &str, table_line: usize) -> DeResult<T> {
        match self.get(key) {
            Some(v) => T::from_value(v, &join(path, key)),
            None => Err(DeError {
                path: join(path, key),
                line: table_line,
                msg: "missing required key".to_string(),
            }),
        }
    }

    /// Extracts an optional field (`Ok(None)` when absent).
    ///
    /// # Errors
    ///
    /// [`DeError`] when the key is present but `T` rejects the value.
    pub fn field_opt<T: FromValue>(&self, key: &str, path: &str) -> DeResult<Option<T>> {
        match self.get(key) {
            Some(v) => T::from_value(v, &join(path, key)).map(Some),
            None => Ok(None),
        }
    }

    /// Extracts a field, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the key is present but `T` rejects the value.
    pub fn field_or<T: FromValue>(&self, key: &str, path: &str, default: T) -> DeResult<T> {
        Ok(self.field_opt(key, path)?.unwrap_or(default))
    }

    /// Rejects keys outside `allowed`, naming the first offender and the
    /// accepted vocabulary — unknown keys are almost always typos.
    ///
    /// # Errors
    ///
    /// [`DeError`] naming the first unknown key.
    pub fn deny_unknown(&self, allowed: &[&str], path: &str) -> DeResult<()> {
        for (key, value) in self.iter() {
            if !allowed.contains(&key) {
                return Err(DeError {
                    path: join(path, key),
                    line: value.line,
                    msg: format!("unknown key (expected one of: {})", allowed.join(", ")),
                });
            }
        }
        Ok(())
    }
}

/// Joins a key onto a dotted path (empty root stays clean).
pub fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// A deserialization failure: where (dotted key path + source line) and
/// what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Dotted key path of the offending node (empty for document-level
    /// errors, e.g. syntax errors).
    pub path: String,
    /// 1-based source line (`0` = unknown).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl DeError {
    /// A document-level error pinned to a source line (syntax errors).
    pub fn at_line(line: usize, msg: impl Into<String>) -> Self {
        DeError {
            path: String::new(),
            line,
            msg: msg.into(),
        }
    }

    /// An error at a key path and line (semantic errors).
    pub fn at(path: impl Into<String>, line: usize, msg: impl Into<String>) -> Self {
        DeError {
            path: path.into(),
            line,
            msg: msg.into(),
        }
    }

    /// A type mismatch at `path`: wanted one type, held another.
    pub fn mismatch(path: &str, v: &Spanned, wanted: &str) -> Self {
        DeError {
            path: path.to_string(),
            line: v.line,
            msg: format!(
                "expected {wanted}, got {} {}",
                v.value.type_name(),
                v.value.summary()
            ),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.path.is_empty()) {
            (0, true) => write!(f, "{}", self.msg),
            (0, false) => write!(f, "{}: {}", self.path, self.msg),
            (_, true) => write!(f, "line {}: {}", self.line, self.msg),
            (_, false) => write!(f, "line {}: {}: {}", self.line, self.path, self.msg),
        }
    }
}

impl std::error::Error for DeError {}

/// Shorthand for deserialization results.
pub type DeResult<T> = Result<T, DeError>;

/// Types extractable from a [`Value`] tree — the stub's working
/// counterpart of upstream serde's `Deserialize`.
pub trait FromValue: Sized {
    /// Extracts `Self` from `v`; `path` names the node for errors.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the value has the wrong shape.
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self>;
}

impl FromValue for bool {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        match v.value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::mismatch(path, v, "boolean")),
        }
    }
}

impl FromValue for i64 {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        match v.value {
            Value::Int(i) => Ok(i),
            _ => Err(DeError::mismatch(path, v, "integer")),
        }
    }
}

macro_rules! int_from_value {
    ($($t:ty),*) => {$(
        impl FromValue for $t {
            fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
                let i = i64::from_value(v, path)?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::at(path, v.line, format!(
                        "integer {i} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

int_from_value!(usize, u64, u32, u16, u8);

impl FromValue for f64 {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        match v.value {
            Value::Float(f) => Ok(f),
            // Integers coerce losslessly enough for config floats.
            Value::Int(i) => Ok(i as f64),
            _ => Err(DeError::mismatch(path, v, "float")),
        }
    }
}

impl FromValue for String {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        match &v.value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::mismatch(path, v, "string")),
        }
    }
}

impl<T: FromValue> FromValue for Vec<T> {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        match &v.value {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_value(item, &format!("{path}[{i}]")))
                .collect(),
            _ => Err(DeError::mismatch(path, v, "array")),
        }
    }
}

impl FromValue for Table {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        match &v.value {
            Value::Table(t) => Ok(t.clone()),
            _ => Err(DeError::mismatch(path, v, "table")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: Value) -> Spanned {
        Spanned::new(v, 3)
    }

    #[test]
    fn primitives_extract_and_mismatch() {
        assert!(bool::from_value(&s(Value::Bool(true)), "k").unwrap());
        assert_eq!(i64::from_value(&s(Value::Int(-2)), "k").unwrap(), -2);
        assert_eq!(usize::from_value(&s(Value::Int(7)), "k").unwrap(), 7);
        assert_eq!(f64::from_value(&s(Value::Int(7)), "k").unwrap(), 7.0);
        assert_eq!(f64::from_value(&s(Value::Float(1.5)), "k").unwrap(), 1.5);
        let err = usize::from_value(&s(Value::Int(-1)), "a.b").unwrap_err();
        assert!(err.to_string().contains("a.b"), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
        let err = String::from_value(&s(Value::Int(1)), "name").unwrap_err();
        assert!(err.to_string().contains("expected string"), "{err}");
    }

    #[test]
    fn vec_paths_are_indexed() {
        let arr = s(Value::Array(vec![
            s(Value::Int(1)),
            s(Value::Str("x".into())),
        ]));
        let err = Vec::<i64>::from_value(&arr, "list").unwrap_err();
        assert_eq!(err.path, "list[1]");
    }

    #[test]
    fn table_fields_and_unknown_keys() {
        let mut t = Table::new();
        assert!(t.insert("a", s(Value::Int(1))));
        assert!(!t.insert("a", s(Value::Int(2))), "duplicate rejected");
        assert_eq!(t.field::<i64>("a", "", 1).unwrap(), 1);
        assert_eq!(t.field_or::<i64>("b", "", 9).unwrap(), 9);
        let err = t.field::<i64>("missing", "run", 5).unwrap_err();
        assert_eq!(err.path, "run.missing");
        assert_eq!(err.line, 5);
        assert!(t.deny_unknown(&["a"], "").is_ok());
        let err = t.deny_unknown(&["z"], "run").unwrap_err();
        assert_eq!(err.path, "run.a");
        assert!(err.msg.contains("unknown key"), "{}", err.msg);
    }
}
