//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build container has no network access, so the workspace vendors a
//! minimal-but-functional replacement. [`Serialize`] renders a value as a
//! JSON string directly (`to_json`), instead of going through upstream
//! serde's `Serializer` visitor machinery; the `derive` feature provides
//! `#[derive(Serialize, Deserialize)]` for structs with named fields (see
//! the sibling `serde_derive` stub). [`Deserialize`] itself stays a marker
//! trait; actual deserialization goes through the [`de`] module — a
//! line-spanned [`de::Value`] tree plus the [`de::FromValue`] extraction
//! trait — which format front ends (the TOML reader in `mimo-exp`)
//! populate and typed configs (`RunSpec`) extract themselves from, with
//! key-path + source-line errors ([`de::DeError`]).
//!
//! Record types that derive [`Serialize`] here (e.g. `WeightSet`,
//! `FleetStats`) keep the same derive attribute they would use with real
//! serde, so swapping the real crate back in is a one-line Cargo change
//! (plus call-site changes from `.to_json()` to `serde_json::to_string`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod de;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A value renderable as JSON.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> String;
}

/// Marker for types that would be deserializable with real serde.
pub trait Deserialize: Sized {}

macro_rules! via_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        }
        impl Deserialize for $t {}
    )*};
}

via_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    fn to_json(&self) -> String {
        if self.is_finite() {
            // Ryū-style shortest round-trip formatting is what `{}` gives.
            format!("{self}")
        } else {
            // JSON has no Inf/NaN; null is serde_json's lossy convention.
            "null".to_string()
        }
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_json(&self) -> String {
        f64::from(*self).to_json()
    }
}
impl Deserialize for f32 {}

impl Serialize for str {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.len() + 2);
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

impl Serialize for String {
    fn to_json(&self) -> String {
        self.as_str().to_json()
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(Serialize::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(3u64.to_json(), "3");
        assert_eq!((-4i32).to_json(), "-4");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!("a\"b\\c\n".to_json(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u64, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(2u64).to_json(), "2");
        assert_eq!(Option::<u64>::None.to_json(), "null");
        assert_eq!([1.5f64, 2.0].to_json(), "[1.5,2]");
    }
}
