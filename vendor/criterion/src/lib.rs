//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Supports the subset the workspace's benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated wall-clock loop (warm-up, then enough iterations to
//! fill a ~60 ms window) reporting the mean time per iteration — no
//! statistics, plots, or baseline comparisons.
//!
//! A positional CLI argument filters benchmarks by substring, and the
//! `--bench`/`--test` flags cargo passes are accepted and ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(10);
const MEASURE: Duration = Duration::from_millis(60);

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark named `id` (unless filtered out).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
            println!(
                "{id:<40} time: [{}]   ({} iterations)",
                fmt_ns(per_iter),
                b.iters
            );
        } else {
            println!("{id:<40} time: [no measurement]");
        }
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let n = ((MEASURE.as_secs_f64() / est.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = n;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        c.bench_function("smoke/sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        // Would loop forever if executed; filtering must skip it.
        c.bench_function("other/name", |_b| panic!("must not run"));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
    }
}
