//! # mimo-linalg
//!
//! Dense linear-algebra substrate for the `mimo-arch` workspace.
//!
//! The ISCA 2016 MIMO-control paper offloads all of its numerical work —
//! least-squares system identification, Riccati-based LQG synthesis, and
//! robust-stability analysis — to MATLAB. This crate provides the pieces of
//! that toolbox that the rest of the workspace needs, implemented from
//! scratch over `f64`:
//!
//! * [`Matrix`] / [`Vector`] — dense row-major storage with the usual
//!   arithmetic, block, and stacking operations.
//! * [`SMatrix`] / [`SVector`] — stack-allocated const-generic
//!   counterparts whose kernels are bit-identical to the dynamic ones, and
//!   the [`storage`] traits that let runtime code be generic over both.
//! * [`lu::LuDecomposition`] — partial-pivot LU: solve, inverse, determinant.
//! * [`qr::QrDecomposition`] — Householder QR and least squares.
//! * [`eigen`] — Hessenberg reduction + Francis double-shift QR giving the
//!   real Schur form, complex eigenvalues, and spectral radius.
//! * [`svd`] — one-sided Jacobi SVD: singular values, rank, pseudo-inverse.
//! * [`complex`] — complex matrices (as re/im pairs) and the discrete-time
//!   frequency response `G(e^{jw}) = C (zI - A)^{-1} B + D` used by the
//!   robust-stability analysis.
//!
//! # Example
//!
//! ```
//! use mimo_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let b = Matrix::col(&[1.0, 2.0]);
//! let x = a.solve(&b).unwrap();
//! let r = &a * &x - &b;
//! assert!(r.norm_fro() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
mod vector;

pub mod complex;
pub mod eigen;
pub mod lu;
pub mod qr;
pub mod stack;
pub mod storage;
pub mod svd;

pub use complex::CMatrix;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use stack::{SMatrix, SVector};
pub use storage::{MatVecKernel, VecKernel};
pub use vector::Vector;

/// Convenient result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
