//! Householder QR decomposition and least squares.
//!
//! System identification (the paper's "least square solver for a dynamic
//! environment") reduces to overdetermined least-squares problems
//! `min ‖Φθ − Y‖`; we solve them with the numerically stable QR route
//! rather than the normal equations.

use crate::{LinalgError, Matrix, Result};

/// A thin Householder QR factorization `A = Q * R` of an `m x n` matrix with
/// `m >= n`.
///
/// `Q` is `m x n` with orthonormal columns and `R` is `n x n` upper
/// triangular.
///
/// # Example
///
/// ```
/// use mimo_linalg::{qr::QrDecomposition, Matrix};
///
/// # fn main() -> Result<(), mimo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let b = Matrix::col(&[1.0, 2.0, 3.0]);
/// let theta = QrDecomposition::new(&a)?.solve_least_squares(&b)?;
/// // Fit of y = 1 + x is exact.
/// assert!((theta[(0, 0)] - 1.0).abs() < 1e-12);
/// assert!((theta[(1, 0)] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Householder vectors stored below the diagonal; R on and above it.
    qr: Matrix,
    /// Scaling factors `tau` of the Householder reflectors.
    tau: Vec<f64>,
}

impl QrDecomposition {
    /// Factorizes a matrix with at least as many rows as columns.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `rows < cols` and
    /// [`LinalgError::EmptyInput`] if the matrix is empty.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::EmptyInput);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr (needs rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha*e1, normalized so v[k] = 1.
            let v0 = qr[(k, k)] - alpha;
            tau[k] = -v0 / alpha;
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            qr[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }

        Ok(QrDecomposition { qr, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Extracts the `n x n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Reconstructs the thin orthonormal factor `Q` (`m x n`).
    pub fn q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        // Accumulate reflectors in reverse order: Q = H_0 H_1 ... H_{n-1} I.
        for k in (0..n).rev() {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut s = q[(k, j)];
                for i in (k + 1)..m {
                    s += self.qr[(i, k)] * q[(i, j)];
                }
                s *= self.tau[k];
                q[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = self.qr[(i, k)];
                    q[(i, j)] -= s * vik;
                }
            }
        }
        q
    }

    /// Applies `Qᵀ` to a matrix in place (used by the least-squares solve).
    fn apply_qt(&self, b: &mut Matrix) {
        let (m, n) = self.qr.shape();
        let p = b.cols();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..p {
                let mut s = b[(k, j)];
                for i in (k + 1)..m {
                    s += self.qr[(i, k)] * b[(i, j)];
                }
                s *= self.tau[k];
                b[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = self.qr[(i, k)];
                    b[(i, j)] -= s * vik;
                }
            }
        }
    }

    /// Solves the least-squares problem `min_X ‖A X − B‖_F`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows()` differs from the
    /// factored matrix, or [`LinalgError::Singular`] if `A` is rank deficient
    /// to working precision.
    pub fn solve_least_squares(&self, b: &Matrix) -> Result<Matrix> {
        let (m, n) = self.qr.shape();
        if b.rows() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: b.shape(),
            });
        }
        let mut qtb = b.clone();
        self.apply_qt(&mut qtb);
        // Back-substitute R x = (Qᵀ b)[0..n].
        let p = b.cols();
        let mut x = Matrix::zeros(n, p);
        let scale = self.qr.max_abs().max(f64::MIN_POSITIVE);
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii.abs() <= 1e-13 * scale {
                return Err(LinalgError::Singular);
            }
            for j in 0..p {
                let mut s = qtb[(i, j)];
                for k in (i + 1)..n {
                    s -= self.qr[(i, k)] * x[(k, j)];
                }
                x[(i, j)] = s / rii;
            }
        }
        Ok(x)
    }
}

/// Solves `min_X ‖A X − B‖_F` with an optional Tikhonov (ridge) term
/// `lambda ‖X‖²`, by augmenting the regressor with `sqrt(lambda) I`.
///
/// Regularization keeps system identification well posed when excitation is
/// poor (e.g. an input that barely moves during a training run).
///
/// # Errors
///
/// Propagates shape and rank errors from the underlying QR solve.
pub fn ridge_least_squares(a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix> {
    if lambda <= 0.0 {
        return QrDecomposition::new(a)?.solve_least_squares(b);
    }
    let n = a.cols();
    let reg = Matrix::identity(n).scale(lambda.sqrt());
    let a_aug = Matrix::vstack(a, &reg)?;
    let b_aug = Matrix::vstack(b, &Matrix::zeros(n, b.cols()))?;
    QrDecomposition::new(&a_aug)?.solve_least_squares(&b_aug)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[3.0, -1.0, 2.0],
            &[0.0, 4.0, 1.0],
            &[2.0, 2.0, -3.0],
        ]);
        let qr = QrDecomposition::new(&a).unwrap();
        let recon = &qr.q() * &qr.r();
        assert!((&recon - &a).max_abs() < 1e-12);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i * 5 + j * 3 + 1) % 11) as f64 - 5.0);
        let q = QrDecomposition::new(&a).unwrap().q();
        let qtq = &q.transpose() * &q;
        assert!((&qtq - &Matrix::identity(3)).max_abs() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 4, |i, j| (i as f64 - j as f64).sin() + 2.0);
        let r = QrDecomposition::new(&a).unwrap().r();
        for i in 1..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_matches_exact_solution_for_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::col(&[5.0, 10.0]);
        let x_qr = QrDecomposition::new(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        let x_lu = a.solve(&b).unwrap();
        assert!((&x_qr - &x_lu).max_abs() < 1e-12);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_range() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = Matrix::col(&[0.0, 1.0, 1.5, 3.2]);
        let x = QrDecomposition::new(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        let r = &(&a * &x) - &b;
        // Normal equations: Aᵀ r = 0.
        let at_r = &a.transpose() * &r;
        assert!(at_r.max_abs() < 1e-12);
    }

    #[test]
    fn rejects_wide_matrices() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            QrDecomposition::new(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rank_deficient_reports_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let b = Matrix::col(&[1.0, 2.0, 3.0]);
        let qr = QrDecomposition::new(&a).unwrap();
        assert_eq!(
            qr.solve_least_squares(&b).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn ridge_handles_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let b = Matrix::col(&[1.0, 2.0, 3.0]);
        let x = ridge_least_squares(&a, &b, 1e-6).unwrap();
        assert!(x.all_finite());
        // The regularized solution should still nearly fit (system is consistent).
        let r = &(&a * &x) - &b;
        assert!(r.max_abs() < 1e-3);
    }

    #[test]
    fn ridge_with_zero_lambda_is_plain_least_squares() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::col(&[1.0, 2.0, 3.0]);
        let x0 = ridge_least_squares(&a, &b, 0.0).unwrap();
        let x1 = QrDecomposition::new(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        assert!((&x0 - &x1).max_abs() < 1e-14);
    }

    #[test]
    fn shape_mismatch_on_rhs() {
        let a = Matrix::from_fn(4, 2, |i, j| (i + j) as f64 + 1.0);
        let qr = QrDecomposition::new(&a).unwrap();
        let b = Matrix::zeros(3, 1);
        assert!(matches!(
            qr.solve_least_squares(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
