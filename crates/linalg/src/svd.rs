//! Singular value decomposition via the one-sided Jacobi method.
//!
//! Robust Stability Analysis needs the largest singular value of
//! frequency-response matrices (the H∞ norm on a grid), and model
//! validation uses the pseudo-inverse and condition numbers. One-sided
//! Jacobi is compact, numerically excellent for the small matrices this
//! workspace produces, and needs no bidiagonalization machinery.

use crate::{LinalgError, Matrix, Result};

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// A thin singular value decomposition `A = U * diag(s) * Vᵀ`.
///
/// For an `m x n` input with `m >= n`: `U` is `m x n` with orthonormal
/// columns, `s` has `n` non-negative entries in descending order, and `V`
/// is `n x n` orthogonal. Wide matrices are handled by transposing.
///
/// # Example
///
/// ```
/// use mimo_linalg::{svd::Svd, Matrix};
///
/// # fn main() -> Result<(), mimo_linalg::LinalgError> {
/// let a = Matrix::diag(&[3.0, 2.0]);
/// let svd = Svd::new(&a)?;
/// assert!((svd.singular_values()[0] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    s: Vec<f64>,
    v: Matrix,
    /// Whether the factorization was computed on the transpose.
    transposed: bool,
}

impl Svd {
    /// Computes the SVD of an arbitrary rectangular matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::EmptyInput`] for an empty matrix and
    /// [`LinalgError::NoConvergence`] if the Jacobi sweeps fail to converge.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.is_empty() {
            return Err(LinalgError::EmptyInput);
        }
        if a.rows() >= a.cols() {
            let (u, s, v) = jacobi_svd(a)?;
            Ok(Svd {
                u,
                s,
                v,
                transposed: false,
            })
        } else {
            let (u, s, v) = jacobi_svd(&a.transpose())?;
            // A = (Aᵀ)ᵀ = (U S Vᵀ)ᵀ = V S Uᵀ.
            Ok(Svd {
                u: v,
                s,
                v: u,
                transposed: true,
            })
        }
    }

    /// The singular values, non-negative and descending.
    pub fn singular_values(&self) -> &[f64] {
        &self.s
    }

    /// Largest singular value (the spectral / operator-2 norm).
    pub fn norm2(&self) -> f64 {
        self.s.first().copied().unwrap_or(0.0)
    }

    /// The left factor `U`.
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The right factor `V` (not transposed).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Whether the decomposition was internally computed on `Aᵀ`.
    pub fn is_transposed(&self) -> bool {
        self.transposed
    }

    /// Numerical rank with relative tolerance `rtol` (e.g. `1e-12`).
    pub fn rank(&self, rtol: f64) -> usize {
        let smax = self.norm2();
        if smax == 0.0 {
            return 0;
        }
        self.s.iter().filter(|&&s| s > rtol * smax).count()
    }

    /// Condition number `s_max / s_min`; `f64::INFINITY` if rank deficient.
    pub fn condition_number(&self) -> f64 {
        let smin = self.s.last().copied().unwrap_or(0.0);
        if smin == 0.0 {
            f64::INFINITY
        } else {
            self.norm2() / smin
        }
    }

    /// Moore–Penrose pseudo-inverse, truncating singular values below
    /// `rtol * s_max`.
    pub fn pseudo_inverse(&self, rtol: f64) -> Matrix {
        let smax = self.norm2();
        let k = self.s.len();
        let sinv = Matrix::diag(
            &self
                .s
                .iter()
                .map(|&s| {
                    if smax > 0.0 && s > rtol * smax {
                        1.0 / s
                    } else {
                        0.0
                    }
                })
                .collect::<Vec<_>>(),
        );
        // A⁺ = V S⁺ Uᵀ (shapes: (n x k)(k x k)(k x m)).
        let vs = &self.v * &sinv;
        debug_assert_eq!(vs.cols(), k);
        &vs * &self.u.transpose()
    }

    /// Reconstructs `U * diag(s) * Vᵀ` (mainly for tests and validation).
    pub fn reconstruct(&self) -> Matrix {
        let s = Matrix::diag(&self.s);
        &(&self.u * &s) * &self.v.transpose()
    }
}

/// One-sided Jacobi SVD for `m x n` with `m >= n`.
fn jacobi_svd(a: &Matrix) -> Result<(Matrix, Vec<f64>, Matrix)> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    let mut u = a.clone(); // columns are rotated until mutually orthogonal
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON;
    let tol = 10.0 * m as f64 * eps;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Compute the 2x2 Gram submatrix for columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                if apq.abs() <= tol * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                // Jacobi rotation that zeroes the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < tol {
            converged = true;
            break;
        }
    }
    if !converged {
        // One more negligibility check: tiny matrices sometimes sit exactly
        // at the tolerance; verify orthogonality directly before failing.
        let gram = &u.transpose() * &u;
        let mut max_off = 0.0_f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d = (gram[(i, i)] * gram[(j, j)]).sqrt().max(f64::MIN_POSITIVE);
                    max_off = max_off.max(gram[(i, j)].abs() / d);
                }
            }
        }
        if max_off > 1e-8 {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi-svd",
                iterations: MAX_SWEEPS,
            });
        }
    }

    // Column norms are the singular values; normalize U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma = vec![0.0; n];
    for (j, s) in sigma.iter_mut().enumerate() {
        let mut norm2 = 0.0;
        for i in 0..m {
            norm2 += u[(i, j)] * u[(i, j)];
        }
        *s = norm2.sqrt();
    }
    // total_cmp: singular values are non-negative finite here, but a NaN
    // slipping through must not panic the sort.
    order.sort_by(|&i, &j| sigma[j].total_cmp(&sigma[i]));

    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut s_sorted = vec![0.0; n];
    for (new_j, &old_j) in order.iter().enumerate() {
        let s = sigma[old_j];
        s_sorted[new_j] = s;
        let inv = if s > 0.0 { 1.0 / s } else { 0.0 };
        for i in 0..m {
            u_sorted[(i, new_j)] = u[(i, old_j)] * inv;
        }
        for i in 0..n {
            v_sorted[(i, new_j)] = v[(i, old_j)];
        }
    }
    Ok((u_sorted, s_sorted, v_sorted))
}

/// Largest singular value of a matrix — the induced 2-norm.
///
/// # Errors
///
/// Propagates errors from [`Svd::new`].
pub fn max_singular_value(a: &Matrix) -> Result<f64> {
    Ok(Svd::new(a)?.norm2())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_singular_values() {
        let a = Matrix::diag(&[1.0, -5.0, 3.0]);
        let svd = Svd::new(&a).unwrap();
        let s = svd.singular_values();
        assert_close(s[0], 5.0, 1e-12);
        assert_close(s[1], 3.0, 1e-12);
        assert_close(s[2], 1.0, 1e-12);
    }

    #[test]
    fn reconstruction_tall() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!((&svd.reconstruct() - &a).max_abs() < 1e-12);
    }

    #[test]
    fn reconstruction_wide() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!(svd.is_transposed());
        assert!((&svd.reconstruct() - &a).max_abs() < 1e-12);
    }

    #[test]
    fn orthonormal_factors() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i * 7 + j * 5 + 3) % 13) as f64 - 6.0);
        let svd = Svd::new(&a).unwrap();
        let utu = &svd.u().transpose() * svd.u();
        let vtv = &svd.v().transpose() * svd.v();
        assert!((&utu - &Matrix::identity(3)).max_abs() < 1e-11);
        assert!((&vtv - &Matrix::identity(3)).max_abs() < 1e-11);
    }

    #[test]
    fn known_2x2() {
        // A = [[3,0],[4,5]]: singular values sqrt(45)=6.708…, sqrt(5)=2.236…
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]);
        let s = Svd::new(&a).unwrap();
        assert_close(s.singular_values()[0], 45.0_f64.sqrt(), 1e-10);
        assert_close(s.singular_values()[1], 5.0_f64.sqrt(), 1e-10);
    }

    #[test]
    fn rank_detection() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.condition_number().is_infinite() || svd.condition_number() > 1e12);
    }

    #[test]
    fn pseudo_inverse_of_full_rank_square_is_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let pinv = Svd::new(&a).unwrap().pseudo_inverse(1e-13);
        let inv = a.inverse().unwrap();
        assert!((&pinv - &inv).max_abs() < 1e-10);
    }

    #[test]
    fn pseudo_inverse_satisfies_moore_penrose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[0.0, 1.0]]);
        let p = Svd::new(&a).unwrap().pseudo_inverse(1e-12);
        // A A⁺ A = A and A⁺ A A⁺ = A⁺.
        let apa = &(&a * &p) * &a;
        assert!((&apa - &a).max_abs() < 1e-10);
        let pap = &(&p * &a) * &p;
        assert!((&pap - &p).max_abs() < 1e-10);
    }

    #[test]
    fn norm2_of_orthogonal_is_one() {
        let th: f64 = 0.35;
        let q = Matrix::from_rows(&[&[th.cos(), -th.sin()], &[th.sin(), th.cos()]]);
        assert_close(max_singular_value(&q).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn empty_is_error() {
        assert!(matches!(
            Svd::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::EmptyInput)
        ));
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.norm2(), 0.0);
        assert_eq!(svd.rank(1e-12), 0);
        // Pseudo-inverse of 0 is 0.
        assert_eq!(svd.pseudo_inverse(1e-12).max_abs(), 0.0);
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0], &[0.0, 1.0]]);
        let svd = Svd::new(&a).unwrap();
        let gram = &a.transpose() * &a;
        let eigs = crate::eigen::eigenvalues(&gram).unwrap();
        let mut lam: Vec<f64> = eigs.iter().map(|c| c.re).collect();
        lam.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (s, l) in svd.singular_values().iter().zip(&lam) {
            assert_close(s * s, *l, 1e-9);
        }
    }
}
