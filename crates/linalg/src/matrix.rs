use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::{LinalgError, Result, Vector};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse type of the workspace: state-space models,
/// controller gains, covariances, and identification regressors are all
/// stored as matrices. Indexing is `m[(row, col)]`, zero-based.
///
/// # Example
///
/// ```
/// use mimo_linalg::Matrix;
///
/// let a = Matrix::identity(2);
/// let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(&a * &b, b);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape with every entry set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        Matrix {
            rows,
            cols,
            data: vec![value; len],
        }
    }

    /// Creates an all-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics on ragged input, naming the first offending row and both
    /// lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "ragged input: row {i} has {} elements, but row 0 has {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a single-column matrix from a slice.
    pub fn col(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a square matrix with `diag` on the diagonal and zeros elsewhere.
    pub fn diag(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the entry at `(i, j)`, or `None` if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_slice(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col_vector(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index out of bounds");
        Vector::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &Vector) -> Result<Vector> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_vec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let row = self.row_slice(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.as_slice()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v` written into `out`, allocation-free.
    ///
    /// Bit-identical to [`Matrix::mul_vec`]: the same row-slice
    /// zip-accumulate in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`
    /// or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, v: &Vector, out: &mut Vector) -> Result<()> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_vec_into",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_vec_into",
                lhs: self.shape(),
                rhs: (out.len(), 1),
            });
        }
        for i in 0..self.rows {
            let row = self.row_slice(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.as_slice()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        Ok(())
    }

    /// Matrix product `self * rhs` written into `out`, allocation-free.
    ///
    /// Bit-identical to `&self * &rhs`: the same i-k-j accumulation order
    /// including the zero-entry skip.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions
    /// differ or `out` is not `self.rows() x rhs.cols()`.
    pub fn mul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_into",
                lhs: (self.rows, rhs.cols),
                rhs: out.shape(),
            });
        }
        out.data.fill(0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(())
    }

    /// Copies the `rows x cols` block whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "block out of bounds"
        );
        Matrix::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Overwrites the block with top-left corner `(r0, c0)` with `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` extends past the matrix bounds.
    pub fn set_block(&mut self, r0: usize, c0: usize, m: &Matrix) {
        assert!(
            r0 + m.rows <= self.rows && c0 + m.cols <= self.cols,
            "block out of bounds"
        );
        for i in 0..m.rows {
            for j in 0..m.cols {
                self[(r0 + i, c0 + j)] = m[(i, j)];
            }
        }
    }

    /// Stacks `top` above `bottom`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(top: &Matrix, bottom: &Matrix) -> Result<Matrix> {
        if top.cols != bottom.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: top.shape(),
                rhs: bottom.shape(),
            });
        }
        let mut m = Matrix::zeros(top.rows + bottom.rows, top.cols);
        m.set_block(0, 0, top);
        m.set_block(top.rows, 0, bottom);
        Ok(m)
    }

    /// Places `left` beside `right`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(left: &Matrix, right: &Matrix) -> Result<Matrix> {
        if left.rows != right.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: left.shape(),
                rhs: right.shape(),
            });
        }
        let mut m = Matrix::zeros(left.rows, left.cols + right.cols);
        m.set_block(0, 0, left);
        m.set_block(0, left.cols, right);
        Ok(m)
    }

    /// Builds a block matrix from a 2-D grid of blocks.
    ///
    /// Rows of blocks must agree in height, and columns of blocks in width.
    ///
    /// # Panics
    ///
    /// Panics if the grid is ragged or the block shapes are inconsistent.
    pub fn from_blocks(grid: &[&[&Matrix]]) -> Matrix {
        assert!(!grid.is_empty() && !grid[0].is_empty(), "empty block grid");
        let block_cols = grid[0].len();
        let col_widths: Vec<usize> = (0..block_cols).map(|j| grid[0][j].cols).collect();
        let mut total_rows = 0;
        for row in grid {
            assert_eq!(row.len(), block_cols, "ragged block grid");
            let h = row[0].rows;
            for (j, b) in row.iter().enumerate() {
                assert_eq!(b.rows, h, "inconsistent block heights in a row");
                assert_eq!(
                    b.cols, col_widths[j],
                    "inconsistent block widths in a column"
                );
            }
            total_rows += h;
        }
        let total_cols: usize = col_widths.iter().sum();
        let mut m = Matrix::zeros(total_rows, total_cols);
        let mut r0 = 0;
        for row in grid {
            let mut c0 = 0;
            for b in row.iter() {
                m.set_block(r0, c0, b);
                c0 += b.cols;
            }
            r0 += row[0].rows;
        }
        m
    }

    /// Frobenius norm, `sqrt(sum of squares)`.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Infinity norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row_slice(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Sum of the diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Returns `(self + self^T) / 2`, the symmetric part.
    ///
    /// Useful for keeping iteratively computed covariance and Riccati
    /// solutions numerically symmetric.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&self) -> Matrix {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            0.5 * (self[(i, j)] + self[(j, i)])
        })
    }

    /// Solves `self * x = rhs` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is rectangular,
    /// [`LinalgError::ShapeMismatch`] on incompatible `rhs`, or
    /// [`LinalgError::Singular`] if the matrix is singular.
    pub fn solve(&self, rhs: &Matrix) -> Result<Matrix> {
        crate::lu::LuDecomposition::new(self)?.solve(rhs)
    }

    /// Returns the inverse.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`]
    /// as in [`Matrix::solve`].
    pub fn inverse(&self) -> Result<Matrix> {
        crate::lu::LuDecomposition::new(self)?.inverse()
    }

    /// Returns `true` if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

fn binary_shape_check(op: &'static str, a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "{op}: shape mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        binary_shape_check("add", self, rhs);
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        binary_shape_check("sub", self, rhs);
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        binary_shape_check("add_assign", self, rhs);
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        binary_shape_check("sub_assign", self, rhs);
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "mul: inner dimensions differ ({:?} * {:?})",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

/// Forwards owned-operand operator impls to the by-reference ones so that
/// expressions like `&a * &x - &b` work without explicit re-borrowing.
macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Matrix> for Matrix {
            type Output = Matrix;
            fn $method(self, rhs: Matrix) -> Matrix {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Matrix> for Matrix {
            type Output = Matrix;
            fn $method(self, rhs: &Matrix) -> Matrix {
                (&self).$method(rhs)
            }
        }
        impl $trait<Matrix> for &Matrix {
            type Output = Matrix;
            fn $method(self, rhs: Matrix) -> Matrix {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);

impl From<Vector> for Matrix {
    fn from(v: Vector) -> Matrix {
        let n = v.len();
        Matrix::from_vec(n, 1, v.into_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        (a - b).max_abs()
    }

    #[test]
    #[should_panic(expected = "ragged input: row 1 has 1 elements, but row 0 has 2")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        let i2 = Matrix::identity(2);
        assert_eq!(&a * &i3, a);
        assert_eq!(&i2 * &a, a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert_eq!(&a * &b, expected);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Vector::from_slice(&[5.0, 6.0]);
        let got = a.mul_vec(&v).unwrap();
        assert_eq!(got.as_slice(), &[17.0, 39.0]);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let a = Matrix::from_fn(3, 4, |i, j| ((i * 5 + j) as f64).sin());
        let v = Vector::from_fn(4, |i| (i as f64 + 0.3).cos());
        let want = a.mul_vec(&v).unwrap();
        let mut got = Vector::zeros(3);
        a.mul_vec_into(&v, &mut got).unwrap();
        for i in 0..3 {
            assert_eq!(got[i].to_bits(), want[i].to_bits());
        }
    }

    #[test]
    fn mul_vec_into_shape_errors() {
        let a = Matrix::identity(2);
        let mut out = Vector::zeros(2);
        assert!(a.mul_vec_into(&Vector::zeros(3), &mut out).is_err());
        let mut short = Vector::zeros(1);
        assert!(a.mul_vec_into(&Vector::zeros(2), &mut short).is_err());
    }

    #[test]
    fn mul_into_matches_mul() {
        let a = Matrix::from_fn(3, 2, |i, j| ((i * 3 + j) as f64).sin());
        let b = Matrix::from_fn(2, 4, |i, j| ((i + j) as f64).cos());
        let want = &a * &b;
        let mut got = Matrix::filled(3, 4, f64::NAN);
        a.mul_into(&b, &mut got).unwrap();
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn mul_into_shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut bad = Matrix::zeros(3, 3);
        assert!(a.mul_into(&b, &mut bad).is_err());
        let mut out = Matrix::zeros(2, 2);
        assert!(a.mul_into(&Matrix::zeros(2, 2), &mut out).is_err());
    }

    #[test]
    fn mul_vec_shape_error() {
        let a = Matrix::identity(2);
        let v = Vector::zeros(3);
        assert!(matches!(
            a.mul_vec(&v),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn block_and_set_block_round_trip() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = a.block(1, 2, 2, 2);
        assert_eq!(b, Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]));
        let mut c = Matrix::zeros(4, 4);
        c.set_block(1, 2, &b);
        assert_eq!(c.block(1, 2, 2, 2), b);
        assert_eq!(c[(0, 0)], 0.0);
    }

    #[test]
    fn stacking() {
        let a = Matrix::row(&[1.0, 2.0]);
        let b = Matrix::row(&[3.0, 4.0]);
        let v = Matrix::vstack(&a, &b).unwrap();
        assert_eq!(v, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let h = Matrix::hstack(&a, &b).unwrap();
        assert_eq!(h, Matrix::row(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn stack_shape_errors() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(Matrix::vstack(&a, &b).is_err());
        let c = Matrix::zeros(2, 1);
        assert!(Matrix::hstack(&a, &c).is_err());
    }

    #[test]
    fn from_blocks_assembles_2x2_grid() {
        let a = Matrix::identity(2);
        let z = Matrix::zeros(2, 1);
        let b = Matrix::col(&[5.0, 6.0]);
        let c = Matrix::row(&[7.0, 8.0]);
        let d = Matrix::row(&[9.0]);
        let m = Matrix::from_blocks(&[&[&a, &z], &[&c, &d]]);
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m[(2, 2)], 9.0);
        assert_eq!(m[(0, 0)], 1.0);
        let m2 = Matrix::from_blocks(&[&[&a, &b], &[&c, &d]]);
        assert_eq!(m2[(1, 2)], 6.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 0.0]]);
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert!((a.norm_inf() - 7.0).abs() < 1e-15);
        assert!((a.max_abs() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn trace_and_symmetrize() {
        let a = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, 3.0]]);
        assert_eq!(a.trace(), 4.0);
        let s = a.symmetrize();
        assert_eq!(s[(0, 1)], 3.0);
        assert_eq!(s[(1, 0)], 3.0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let z = Matrix::zeros(2, 3);
        assert_eq!(&a + &z, a);
        assert_eq!(&a - &a, z);
        assert_eq!((-&a).scale(-1.0), a);
        let mut b = a.clone();
        b += &a;
        assert_eq!(b, a.scale(2.0));
        b -= &a;
        assert_eq!(b, a);
    }

    #[test]
    fn diag_constructor() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn solve_round_trips_through_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        assert!(abs_diff(&(&a * &inv), &Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::zeros(0, 0);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn from_vector_conversion() {
        let v = Vector::from_slice(&[1.0, 2.0]);
        let m = Matrix::from(v);
        assert_eq!(m.shape(), (2, 1));
        assert_eq!(m[(1, 0)], 2.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::identity(2);
        assert!(m.all_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn row_and_col_accessors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row_slice(1), &[3.0, 4.0]);
        assert_eq!(a.col_vector(0).as_slice(), &[1.0, 3.0]);
        assert_eq!(a.get(1, 1), Some(4.0));
        assert_eq!(a.get(2, 0), None);
    }
}
