//! Complex matrices for discrete-time frequency responses.
//!
//! Robust Stability Analysis evaluates transfer matrices on the unit circle:
//! `G(e^{jw}) = C (e^{jw} I − A)⁻¹ B + D`. We represent a complex matrix as
//! a `(re, im)` pair of real matrices and route inversions and singular
//! values through the standard real 2n-dimensional embedding
//! `[[Re, −Im], [Im, Re]]`, whose singular values are those of the complex
//! matrix with doubled multiplicity.

use crate::{LinalgError, Matrix, Result};

/// A dense complex matrix stored as separate real and imaginary parts.
///
/// # Example
///
/// ```
/// use mimo_linalg::{CMatrix, Matrix};
///
/// let i = CMatrix::identity(2);
/// let j = CMatrix::new(Matrix::zeros(2, 2), Matrix::identity(2)).unwrap();
/// // j * j = -I
/// let jj = j.mul(&j);
/// assert!((jj.re() - &Matrix::identity(2).scale(-1.0)).max_abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    re: Matrix,
    im: Matrix,
}

impl CMatrix {
    /// Creates a complex matrix from real and imaginary parts.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the parts differ in shape.
    pub fn new(re: Matrix, im: Matrix) -> Result<Self> {
        if re.shape() != im.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "cmatrix_new",
                lhs: re.shape(),
                rhs: im.shape(),
            });
        }
        Ok(CMatrix { re, im })
    }

    /// Creates a complex matrix with zero imaginary part.
    pub fn from_real(re: &Matrix) -> Self {
        let im = Matrix::zeros(re.rows(), re.cols());
        CMatrix { re: re.clone(), im }
    }

    /// The complex identity matrix.
    pub fn identity(n: usize) -> Self {
        CMatrix {
            re: Matrix::identity(n),
            im: Matrix::zeros(n, n),
        }
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.re.shape()
    }

    /// Borrows the real part.
    pub fn re(&self) -> &Matrix {
        &self.re
    }

    /// Borrows the imaginary part.
    pub fn im(&self) -> &Matrix {
        &self.im
    }

    /// Complex matrix sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (as matrix addition does).
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        CMatrix {
            re: &self.re + &rhs.re,
            im: &self.im + &rhs.im,
        }
    }

    /// Complex matrix difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &CMatrix) -> CMatrix {
        CMatrix {
            re: &self.re - &rhs.re,
            im: &self.im - &rhs.im,
        }
    }

    /// Complex matrix product `(Re₁Re₂ − Im₁Im₂) + j(Re₁Im₂ + Im₁Re₂)`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn mul(&self, rhs: &CMatrix) -> CMatrix {
        CMatrix {
            re: &(&self.re * &rhs.re) - &(&self.im * &rhs.im),
            im: &(&self.re * &rhs.im) + &(&self.im * &rhs.re),
        }
    }

    /// Multiplies by the complex scalar `a + jb`.
    pub fn scale(&self, a: f64, b: f64) -> CMatrix {
        CMatrix {
            re: &self.re.scale(a) - &self.im.scale(b),
            im: &self.re.scale(b) + &self.im.scale(a),
        }
    }

    /// The real `2m x 2n` embedding `[[Re, −Im], [Im, Re]]`.
    pub fn embed(&self) -> Matrix {
        let neg_im = self.im.scale(-1.0);
        Matrix::from_blocks(&[&[&self.re, &neg_im], &[&self.im, &self.re]])
    }

    /// Solves the complex linear system `self * X = B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is rectangular,
    /// [`LinalgError::ShapeMismatch`] on an incompatible right-hand side, or
    /// [`LinalgError::Singular`] if the system is singular.
    pub fn solve(&self, b: &CMatrix) -> Result<CMatrix> {
        let (n, m) = self.shape();
        if n != m {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        if b.shape().0 != n {
            return Err(LinalgError::ShapeMismatch {
                op: "csolve",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        // Embed: [[Re,-Im],[Im,Re]] [Xre; Xim] = [Bre; Bim].
        let a_emb = self.embed();
        let b_emb = Matrix::vstack(&b.re, &b.im)?;
        let x_emb = a_emb.solve(&b_emb)?;
        let cols = b.shape().1;
        Ok(CMatrix {
            re: x_emb.block(0, 0, n, cols),
            im: x_emb.block(n, 0, n, cols),
        })
    }

    /// Largest singular value of the complex matrix.
    ///
    /// Computed on the real embedding, whose singular spectrum duplicates
    /// the complex one; the maximum is unchanged.
    ///
    /// # Errors
    ///
    /// Propagates SVD errors.
    pub fn max_singular_value(&self) -> Result<f64> {
        crate::svd::max_singular_value(&self.embed())
    }

    /// Entrywise modulus matrix `|self|`.
    pub fn modulus(&self) -> Matrix {
        Matrix::from_fn(self.re.rows(), self.re.cols(), |i, j| {
            self.re[(i, j)].hypot(self.im[(i, j)])
        })
    }

    /// Frobenius norm of the complex matrix.
    pub fn norm_fro(&self) -> f64 {
        (self.re.norm_fro().powi(2) + self.im.norm_fro().powi(2)).sqrt()
    }
}

/// Evaluates the discrete-time transfer matrix
/// `G(z) = C (zI − A)⁻¹ B + D` at `z = e^{jw}`.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when `e^{jw}` is an eigenvalue of `A`
/// (a pole exactly on the unit circle), and shape errors if the state-space
/// dimensions are inconsistent.
///
/// # Example
///
/// ```
/// use mimo_linalg::{complex, Matrix};
///
/// // Scalar system y(t+1) = 0.5 y(t) + u(t): G(z) = 1/(z - 0.5).
/// let a = Matrix::from_rows(&[&[0.5]]);
/// let b = Matrix::from_rows(&[&[1.0]]);
/// let c = Matrix::from_rows(&[&[1.0]]);
/// let d = Matrix::zeros(1, 1);
/// let g = complex::frequency_response(&a, &b, &c, &d, 0.0).unwrap();
/// // At w=0, z=1: G = 1/(1-0.5) = 2.
/// assert!((g.re()[(0, 0)] - 2.0).abs() < 1e-12);
/// ```
pub fn frequency_response(
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
    d: &Matrix,
    omega: f64,
) -> Result<CMatrix> {
    let n = a.rows();
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if b.rows() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "freq_response(A,B)",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "freq_response(A,C)",
            lhs: a.shape(),
            rhs: c.shape(),
        });
    }
    let (zre, zim) = (omega.cos(), omega.sin());
    // zI - A
    let zi_a = CMatrix {
        re: &Matrix::identity(n).scale(zre) - a,
        im: Matrix::identity(n).scale(zim),
    };
    let b_c = CMatrix::from_real(b);
    let x = zi_a.solve(&b_c)?; // (zI-A)^{-1} B
    let c_c = CMatrix::from_real(c);
    let mut g = c_c.mul(&x);
    g.re += d;
    Ok(g)
}

/// Approximates the H∞ norm of `G(z)` — the peak of the largest singular
/// value over the unit circle — by sampling `n_grid` frequencies in `[0, π]`.
///
/// This is the grid-based surrogate for MATLAB's `hinfnorm` used by the
/// robust-stability analysis; accuracy improves with `n_grid`.
///
/// # Errors
///
/// Propagates errors from [`frequency_response`]; a pole directly on a grid
/// frequency surfaces as [`LinalgError::Singular`].
pub fn hinf_norm_grid(
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
    d: &Matrix,
    n_grid: usize,
) -> Result<f64> {
    let n = n_grid.max(2);
    let mut peak = 0.0_f64;
    for k in 0..n {
        let omega = std::f64::consts::PI * k as f64 / (n - 1) as f64;
        let g = frequency_response(a, b, c, d, omega)?;
        peak = peak.max(g.max_singular_value()?);
    }
    Ok(peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_multiply_matches_scalar_arithmetic() {
        // (1+2j)(3+4j) = 3+4j+6j+8j² = -5 + 10j
        let a = CMatrix::new(Matrix::from_rows(&[&[1.0]]), Matrix::from_rows(&[&[2.0]])).unwrap();
        let b = CMatrix::new(Matrix::from_rows(&[&[3.0]]), Matrix::from_rows(&[&[4.0]])).unwrap();
        let p = a.mul(&b);
        assert!((p.re()[(0, 0)] + 5.0).abs() < 1e-15);
        assert!((p.im()[(0, 0)] - 10.0).abs() < 1e-15);
    }

    #[test]
    fn solve_matches_scalar_division() {
        // (2 + 2j) x = 4 → x = 4(2-2j)/8 = 1 - 1j
        let a = CMatrix::new(Matrix::from_rows(&[&[2.0]]), Matrix::from_rows(&[&[2.0]])).unwrap();
        let b = CMatrix::from_real(&Matrix::from_rows(&[&[4.0]]));
        let x = a.solve(&b).unwrap();
        assert!((x.re()[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((x.im()[(0, 0)] + 1.0).abs() < 1e-14);
    }

    #[test]
    fn solve_then_multiply_round_trips() {
        let a = CMatrix::new(
            Matrix::from_rows(&[&[2.0, 1.0], &[0.5, 3.0]]),
            Matrix::from_rows(&[&[0.1, -0.3], &[0.2, 0.4]]),
        )
        .unwrap();
        let b = CMatrix::new(Matrix::col(&[1.0, 2.0]), Matrix::col(&[0.5, -1.0])).unwrap();
        let x = a.solve(&b).unwrap();
        let back = a.mul(&x);
        assert!(back.sub(&b).norm_fro() < 1e-12);
    }

    #[test]
    fn max_singular_value_of_unitary_is_one() {
        // The complex scalar e^{j0.3} has modulus 1.
        let th: f64 = 0.3;
        let u = CMatrix::new(
            Matrix::from_rows(&[&[th.cos()]]),
            Matrix::from_rows(&[&[th.sin()]]),
        )
        .unwrap();
        assert!((u.max_singular_value().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_response_scalar_lag() {
        // G(z) = 1/(z-0.5); |G(e^{jπ})| = 1/1.5.
        let a = Matrix::from_rows(&[&[0.5]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let c = Matrix::from_rows(&[&[1.0]]);
        let d = Matrix::zeros(1, 1);
        let g = frequency_response(&a, &b, &c, &d, std::f64::consts::PI).unwrap();
        let modulus = g.modulus()[(0, 0)];
        assert!((modulus - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn hinf_of_scalar_lag_peaks_at_dc() {
        // For G(z)=1/(z-0.5), the peak gain on the unit circle is at w=0: 2.
        let a = Matrix::from_rows(&[&[0.5]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let c = Matrix::from_rows(&[&[1.0]]);
        let d = Matrix::zeros(1, 1);
        let norm = hinf_norm_grid(&a, &b, &c, &d, 101).unwrap();
        assert!((norm - 2.0).abs() < 1e-9, "norm = {norm}");
    }

    #[test]
    fn feedthrough_only_system() {
        // A empty-ish (1x1 zero), C zero: G(z) = D.
        let a = Matrix::zeros(1, 1);
        let b = Matrix::zeros(1, 2);
        let c = Matrix::zeros(2, 1);
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g = frequency_response(&a, &b, &c, &d, 1.0).unwrap();
        assert!((g.re() - &d).max_abs() < 1e-15);
        assert_eq!(g.im().max_abs(), 0.0);
    }

    #[test]
    fn mismatched_parts_rejected() {
        let r = Matrix::zeros(2, 2);
        let i = Matrix::zeros(2, 3);
        assert!(matches!(
            CMatrix::new(r, i),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn pole_on_unit_circle_is_singular() {
        // A = 1 has a pole at z=1: response at w=0 must fail.
        let a = Matrix::from_rows(&[&[1.0]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let c = Matrix::from_rows(&[&[1.0]]);
        let d = Matrix::zeros(1, 1);
        assert!(matches!(
            frequency_response(&a, &b, &c, &d, 0.0),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn scale_by_complex_scalar() {
        let m = CMatrix::identity(2);
        let s = m.scale(0.0, 1.0); // multiply by j
        assert_eq!(s.re().max_abs(), 0.0);
        assert!((s.im() - &Matrix::identity(2)).max_abs() < 1e-15);
    }

    #[test]
    fn mimo_frequency_response_shape() {
        let a = Matrix::diag(&[0.5, 0.2, -0.3]);
        let b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64 * 0.1 + 0.1);
        let c = Matrix::from_fn(2, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let d = Matrix::zeros(2, 2);
        let g = frequency_response(&a, &b, &c, &d, 0.7).unwrap();
        assert_eq!(g.shape(), (2, 2));
        assert!(g.max_singular_value().unwrap() > 0.0);
    }
}
