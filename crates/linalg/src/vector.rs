use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::Matrix;

/// A dense column vector of `f64` values.
///
/// Signals in the workspace — plant inputs `u`, outputs `y`, state estimates
/// `x̂`, references `y₀` — are all `Vector`s. It is a thin newtype over
/// `Vec<f64>` with elementwise arithmetic, dot products, and norms.
///
/// # Example
///
/// ```
/// use mimo_linalg::Vector;
///
/// let u = Vector::from_slice(&[1.0, 2.0]);
/// let y = Vector::from_slice(&[0.5, 1.5]);
/// let error = &u - &y;
/// assert_eq!(error.norm_inf(), 0.5);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates an all-zeros vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector with every entry set to `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a vector by copying a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector by evaluating `f(i)` at every index.
    pub fn from_fn<F: FnMut(usize) -> f64>(n: usize, f: F) -> Self {
        Vector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean; `0.0` for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Applies `f` to every entry, returning a new vector.
    pub fn map<F: FnMut(f64) -> f64>(&self, f: F) -> Vector {
        Vector {
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Vector {
        self.map(|x| x * s)
    }

    /// Concatenates two vectors.
    pub fn concat(&self, other: &Vector) -> Vector {
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Vector { data }
    }

    /// Copies the sub-vector `[start, start+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn segment(&self, start: usize, len: usize) -> Vector {
        Vector::from_slice(&self.data[start..start + len])
    }

    /// Views the vector as an `n x 1` matrix.
    pub fn to_col_matrix(&self) -> Matrix {
        Matrix::col(&self.data)
    }

    /// Overwrites this vector with the entries of `src` without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, src: &Vector) {
        assert_eq!(self.len(), src.len(), "copy_from: length mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Sets every element to `value`, allocation-free.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// In-place scaled accumulation `self += alpha * x` (BLAS `axpy`),
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, x: &Vector) {
        assert_eq!(self.len(), x.len(), "axpy: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&x.data) {
            *a += alpha * b;
        }
    }

    /// Writes `self - rhs` into `out` without allocating.
    ///
    /// Bit-identical to `self - rhs` (the same elementwise subtraction in
    /// the same order).
    ///
    /// # Panics
    ///
    /// Panics if any of the three lengths differ.
    pub fn sub_into(&self, rhs: &Vector, out: &mut Vector) {
        assert_eq!(self.len(), rhs.len(), "sub_into: length mismatch");
        assert_eq!(self.len(), out.len(), "sub_into: output length mismatch");
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a - b;
        }
    }

    /// Returns `true` if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector{:?}", self.data)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "add_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "sub_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, s: f64) -> Vector {
        self.scale(s)
    }
}

/// Forwards owned-operand operator impls to the by-reference ones.
macro_rules! forward_vec_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Vector> for Vector {
            type Output = Vector;
            fn $method(self, rhs: Vector) -> Vector {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Vector> for Vector {
            type Output = Vector;
            fn $method(self, rhs: &Vector) -> Vector {
                (&self).$method(rhs)
            }
        }
        impl $trait<Vector> for &Vector {
            type Output = Vector;
            fn $method(self, rhs: Vector) -> Vector {
                self.$method(&rhs)
            }
        }
    };
}

forward_vec_binop!(Add, add);
forward_vec_binop!(Sub, sub);

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Vector {
        Vector { data }
    }
}

impl From<Matrix> for Vector {
    /// Flattens a single-column (or single-row) matrix into a vector.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than one row *and* more than one column.
    fn from(m: Matrix) -> Vector {
        assert!(
            m.rows() == 1 || m.cols() == 1,
            "only row or column matrices convert to Vector, got {:?}",
            m.shape()
        );
        Vector { data: m.into_vec() }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let v = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(v.dot(&v), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn stats() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.sum(), 6.0);
        assert_eq!(v.mean(), 2.0);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn segment_and_concat() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0]);
        let c = a.concat(&b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.segment(1, 2).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn matrix_conversions() {
        let v = Vector::from_slice(&[1.0, 2.0]);
        let m = v.to_col_matrix();
        assert_eq!(m.shape(), (2, 1));
        let back = Vector::from(m);
        assert_eq!(back, v);
        let row = Matrix::row(&[7.0, 8.0]);
        assert_eq!(Vector::from(row).as_slice(), &[7.0, 8.0]);
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn all_finite_detects_inf() {
        let mut v = Vector::zeros(2);
        assert!(v.all_finite());
        v[0] = f64::INFINITY;
        assert!(!v.all_finite());
    }

    #[test]
    fn map_applies_function() {
        let v = Vector::from_slice(&[1.0, -2.0]);
        assert_eq!(v.map(f64::abs).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn copy_from_overwrites() {
        let mut v = Vector::zeros(3);
        v.copy_from(&Vector::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "copy_from")]
    fn copy_from_length_mismatch_panics() {
        Vector::zeros(2).copy_from(&Vector::zeros(3));
    }

    #[test]
    fn axpy_accumulates() {
        let mut v = Vector::from_slice(&[1.0, 2.0]);
        v.axpy(0.5, &Vector::from_slice(&[4.0, 8.0]));
        assert_eq!(v.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn axpy_unit_alpha_matches_add_assign_bitwise() {
        let a = Vector::from_fn(5, |i| (i as f64 * 0.7).sin());
        let b = Vector::from_fn(5, |i| (i as f64 * 1.3).cos());
        let mut via_add = a.clone();
        via_add += &b;
        let mut via_axpy = a.clone();
        via_axpy.axpy(1.0, &b);
        for i in 0..5 {
            assert_eq!(via_axpy[i].to_bits(), via_add[i].to_bits());
        }
    }

    #[test]
    fn sub_into_matches_sub_bitwise() {
        let a = Vector::from_fn(4, |i| (i as f64 + 0.1).sqrt());
        let b = Vector::from_fn(4, |i| (i as f64 * 0.9).tan());
        let want = &a - &b;
        let mut got = Vector::filled(4, f64::NAN);
        a.sub_into(&b, &mut got);
        for i in 0..4 {
            assert_eq!(got[i].to_bits(), want[i].to_bits());
        }
    }
}
