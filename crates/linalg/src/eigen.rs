//! Eigenvalues of real square matrices.
//!
//! Stability of every feedback loop in this workspace reduces to an
//! eigenvalue question: a discrete-time system `x(t+1) = A x(t)` is stable
//! iff the spectral radius of `A` is below one. LQG synthesis validates the
//! closed loop this way, and Robust Stability Analysis needs eigenvalues of
//! perturbed closed-loop matrices.
//!
//! The implementation is the classical dense route: balance, reduce to upper
//! Hessenberg form with Householder reflectors, then run the shifted
//! (Francis double-shift) QR iteration with deflation until the matrix is
//! quasi-triangular, reading eigenvalues off the 1x1 and 2x2 diagonal
//! blocks.

use crate::{LinalgError, Matrix, Result};

/// A complex number represented as a `(re, im)` pair.
///
/// Only what the eigenvalue consumers need: magnitude and accessors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Modulus `sqrt(re² + im²)`, computed with `hypot` to avoid overflow.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns `true` if the imaginary part is exactly zero.
    pub fn is_real(&self) -> bool {
        self.im == 0.0
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

/// Balances a square matrix by diagonal similarity transforms (radix-2
/// scaling), improving the accuracy of the subsequent QR iteration.
///
/// Returns the balanced matrix; eigenvalues are unchanged by similarity.
fn balance(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut m = a.clone();
    let radix: f64 = 2.0;
    let sqrdx = radix * radix;
    let mut done = false;
    let mut sweeps = 0;
    while !done && sweeps < 100 {
        done = true;
        sweeps += 1;
        for i in 0..n {
            let mut r = 0.0;
            let mut c = 0.0;
            for j in 0..n {
                if j != i {
                    c += m[(j, i)].abs();
                    r += m[(i, j)].abs();
                }
            }
            if c != 0.0 && r != 0.0 {
                let mut g = r / radix;
                let mut f = 1.0;
                let s = c + r;
                let mut c_scaled = c;
                while c_scaled < g {
                    f *= radix;
                    c_scaled *= sqrdx;
                }
                g = r * radix;
                while c_scaled > g {
                    f /= radix;
                    c_scaled /= sqrdx;
                }
                if (c_scaled + r) / f < 0.95 * s {
                    done = false;
                    let ginv = 1.0 / f;
                    for j in 0..n {
                        m[(i, j)] *= ginv;
                    }
                    for j in 0..n {
                        m[(j, i)] *= f;
                    }
                }
            }
        }
    }
    m
}

/// Reduces a square matrix to upper Hessenberg form by Householder
/// similarity transforms. Eigenvalues are preserved.
fn hessenberg(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Householder vector annihilating h[k+2.., k].
        let mut norm2 = 0.0;
        for i in (k + 1)..n {
            norm2 += h[(i, k)] * h[(i, k)];
        }
        let norm = norm2.sqrt();
        if norm == 0.0 {
            continue;
        }
        let alpha = if h[(k + 1, k)] >= 0.0 { -norm } else { norm };
        let v0 = h[(k + 1, k)] - alpha;
        if v0 == 0.0 {
            continue;
        }
        let mut v = vec![0.0; n];
        v[k + 1] = 1.0;
        for i in (k + 2)..n {
            v[i] = h[(i, k)] / v0;
        }
        let tau = -v0 / alpha;
        // H <- (I - tau v vᵀ) H
        for j in 0..n {
            let mut s = 0.0;
            for i in (k + 1)..n {
                s += v[i] * h[(i, j)];
            }
            s *= tau;
            for i in (k + 1)..n {
                h[(i, j)] -= s * v[i];
            }
        }
        // H <- H (I - tau v vᵀ)
        for i in 0..n {
            let mut s = 0.0;
            for j in (k + 1)..n {
                s += h[(i, j)] * v[j];
            }
            s *= tau;
            for j in (k + 1)..n {
                h[(i, j)] -= s * v[j];
            }
        }
        // Enforce exact zeros below the subdiagonal in column k.
        for i in (k + 2)..n {
            h[(i, k)] = 0.0;
        }
    }
    h
}

/// Computes all eigenvalues of a square matrix.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input and
/// [`LinalgError::NoConvergence`] if the QR iteration stalls (essentially
/// never happens for finite input).
///
/// # Example
///
/// ```
/// use mimo_linalg::{eigen, Matrix};
///
/// // Rotation-by-90°-and-scale: eigenvalues are ±0.5i.
/// let a = Matrix::from_rows(&[&[0.0, -0.5], &[0.5, 0.0]]);
/// let eigs = eigen::eigenvalues(&a).unwrap();
/// assert!((eigs[0].abs() - 0.5).abs() < 1e-12);
/// ```
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![Complex::new(a[(0, 0)], 0.0)]);
    }
    let balanced = balance(a);
    let mut h = hessenberg(&balanced);
    hqr_eigenvalues(&mut h)
}

/// Shifted QR iteration on an upper Hessenberg matrix (EISPACK `hqr`).
fn hqr_eigenvalues(h: &mut Matrix) -> Result<Vec<Complex>> {
    let n = h.rows();
    let mut eigs: Vec<Complex> = Vec::with_capacity(n);
    // Overall norm used in negligibility tests.
    let mut anorm = 0.0;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += h[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        // The zero matrix: all eigenvalues are zero.
        return Ok(vec![Complex::default(); n]);
    }

    let mut nn = n as isize - 1; // index of the active trailing block
    let mut t = 0.0; // accumulated exceptional shifts
    let total_budget = 60 * n;
    let mut total_its = 0usize;

    while nn >= 0 {
        let mut its = 0;
        loop {
            // Find small subdiagonal element: l is start of active block.
            let mut l = nn;
            while l > 0 {
                let s = h[((l - 1) as usize, (l - 1) as usize)].abs()
                    + h[(l as usize, l as usize)].abs();
                let s = if s == 0.0 { anorm } else { s };
                if h[(l as usize, (l - 1) as usize)].abs() <= f64::EPSILON * s {
                    h[(l as usize, (l - 1) as usize)] = 0.0;
                    break;
                }
                l -= 1;
            }
            let x = h[(nn as usize, nn as usize)];
            if l == nn {
                // One root found.
                eigs.push(Complex::new(x + t, 0.0));
                nn -= 1;
                break;
            }
            let y = h[((nn - 1) as usize, (nn - 1) as usize)];
            let w = h[(nn as usize, (nn - 1) as usize)] * h[((nn - 1) as usize, nn as usize)];
            if l == nn - 1 {
                // Two roots found: solve the 2x2 block.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                let x_shifted = x + t;
                if q >= 0.0 {
                    // Real pair.
                    let z_signed = p + z.copysign(p);
                    let r1 = x_shifted + z_signed;
                    let r2 = if z_signed != 0.0 {
                        x_shifted - w / z_signed
                    } else {
                        r1
                    };
                    eigs.push(Complex::new(r1, 0.0));
                    eigs.push(Complex::new(r2, 0.0));
                } else {
                    // Complex conjugate pair.
                    eigs.push(Complex::new(x_shifted + p, z));
                    eigs.push(Complex::new(x_shifted + p, -z));
                }
                nn -= 2;
                break;
            }
            // No root yet: perform a double-shift QR sweep.
            total_its += 1;
            if total_its > total_budget {
                return Err(LinalgError::NoConvergence {
                    algorithm: "francis-qr",
                    iterations: total_budget,
                });
            }
            let (mut p, mut q, mut r);
            let mut x = x;
            let mut y;
            let mut z;
            let mut w = w;
            if its == 10 || its == 20 {
                // Exceptional shift.
                t += x;
                for i in 0..=(nn as usize) {
                    h[(i, i)] -= x;
                }
                let s = h[(nn as usize, (nn - 1) as usize)].abs()
                    + h[((nn - 1) as usize, (nn - 2) as usize)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            } else {
                y = h[((nn - 1) as usize, (nn - 1) as usize)];
            }
            its += 1;
            // Look for two consecutive small subdiagonal elements.
            let mut m = nn - 2;
            while m >= l {
                z = h[(m as usize, m as usize)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / h[((m + 1) as usize, m as usize)]
                    + h[(m as usize, (m + 1) as usize)];
                q = h[((m + 1) as usize, (m + 1) as usize)] - z - rr - ss;
                r = h[((m + 2) as usize, (m + 1) as usize)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = h[(m as usize, (m - 1) as usize)].abs() * (q.abs() + r.abs());
                let v = p.abs()
                    * (h[((m - 1) as usize, (m - 1) as usize)].abs()
                        + z.abs()
                        + h[((m + 1) as usize, (m + 1) as usize)].abs());
                if u <= f64::EPSILON * v {
                    break;
                }
                m -= 1;
            }
            for i in (m + 2)..=nn {
                h[(i as usize, (i - 2) as usize)] = 0.0;
                if i > m + 2 {
                    h[(i as usize, (i - 3) as usize)] = 0.0;
                }
            }
            // Double QR step on rows l..nn and columns m..nn.
            let mut k = m;
            while k < nn {
                if k != m {
                    p = h[(k as usize, (k - 1) as usize)];
                    q = h[((k + 1) as usize, (k - 1) as usize)];
                    r = if k != nn - 1 {
                        h[((k + 2) as usize, (k - 1) as usize)]
                    } else {
                        0.0
                    };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                } else {
                    // First column of (H - s1)(H - s2) computed above.
                    z = h[(m as usize, m as usize)];
                    let rr = h[(nn as usize, nn as usize)] - z;
                    let ss = h[((nn - 1) as usize, (nn - 1) as usize)] - z;
                    let ww =
                        h[(nn as usize, (nn - 1) as usize)] * h[((nn - 1) as usize, nn as usize)];
                    p = (rr * ss - ww) / h[((m + 1) as usize, m as usize)]
                        + h[(m as usize, (m + 1) as usize)];
                    q = h[((m + 1) as usize, (m + 1) as usize)] - z - rr - ss;
                    r = h[((m + 2) as usize, (m + 1) as usize)];
                    let s = p.abs() + q.abs() + r.abs();
                    p /= s;
                    q /= s;
                    r /= s;
                    x = 0.0;
                }
                let s = (p * p + q * q + r * r).sqrt().copysign(p);
                if s != 0.0 {
                    if k == m {
                        if l != m {
                            h[(k as usize, (k - 1) as usize)] = -h[(k as usize, (k - 1) as usize)];
                        }
                    } else {
                        h[(k as usize, (k - 1) as usize)] = -s * x;
                    }
                    p += s;
                    x = p / s;
                    y = q / s;
                    z = r / s;
                    q /= p;
                    r /= p;
                    // Row modification.
                    for j in (k as usize)..=(nn as usize) {
                        let mut pp = h[(k as usize, j)] + q * h[((k + 1) as usize, j)];
                        if k != nn - 1 {
                            pp += r * h[((k + 2) as usize, j)];
                            h[((k + 2) as usize, j)] -= pp * z;
                        }
                        h[((k + 1) as usize, j)] -= pp * y;
                        h[(k as usize, j)] -= pp * x;
                    }
                    // Column modification.
                    let mmin = if nn < k + 3 { nn } else { k + 3 };
                    for i in (l as usize)..=(mmin as usize) {
                        let mut pp = x * h[(i, k as usize)] + y * h[(i, (k + 1) as usize)];
                        if k != nn - 1 {
                            pp += z * h[(i, (k + 2) as usize)];
                            h[(i, (k + 2) as usize)] -= pp * r;
                        }
                        h[(i, (k + 1) as usize)] -= pp * q;
                        h[(i, k as usize)] -= pp;
                    }
                }
                k += 1;
            }
        }
    }

    Ok(eigs)
}

/// Spectral radius: the largest eigenvalue modulus.
///
/// # Errors
///
/// Propagates errors from [`eigenvalues`].
///
/// # Example
///
/// ```
/// use mimo_linalg::{eigen, Matrix};
///
/// let a = Matrix::diag(&[0.3, -0.9]);
/// assert!((eigen::spectral_radius(&a).unwrap() - 0.9).abs() < 1e-12);
/// ```
pub fn spectral_radius(a: &Matrix) -> Result<f64> {
    Ok(eigenvalues(a)?.iter().map(Complex::abs).fold(0.0, f64::max))
}

/// Returns `true` if the discrete-time system `x(t+1) = A x(t)` is
/// asymptotically stable, i.e. the spectral radius of `A` is strictly below
/// `1 - margin`.
///
/// # Errors
///
/// Propagates errors from [`eigenvalues`].
pub fn is_schur_stable(a: &Matrix, margin: f64) -> Result<bool> {
    Ok(spectral_radius(a)? < 1.0 - margin)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real(eigs: &[Complex]) -> Vec<f64> {
        let mut v: Vec<f64> = eigs.iter().map(|c| c.re).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::diag(&[3.0, -1.0, 0.5]);
        let eigs = eigenvalues(&a).unwrap();
        let got = sorted_real(&eigs);
        assert!((got[0] + 1.0).abs() < 1e-12);
        assert!((got[1] - 0.5).abs() < 1e-12);
        assert!((got[2] - 3.0).abs() < 1e-12);
        assert!(eigs.iter().all(|c| c.im == 0.0));
    }

    #[test]
    fn rotation_matrix_gives_complex_pair() {
        let th: f64 = 0.7;
        let r = 0.9_f64;
        let a = Matrix::from_rows(&[
            &[r * th.cos(), -r * th.sin()],
            &[r * th.sin(), r * th.cos()],
        ]);
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 2);
        for e in &eigs {
            assert!((e.abs() - r).abs() < 1e-10, "modulus {:?}", e);
            assert!((e.re - r * th.cos()).abs() < 1e-10);
        }
        assert!((eigs[0].im + eigs[1].im).abs() < 1e-12, "conjugate pair");
    }

    #[test]
    fn companion_matrix_of_known_polynomial() {
        // x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3)
        let a = Matrix::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let eigs = eigenvalues(&a).unwrap();
        let got = sorted_real(&eigs);
        assert!((got[0] - 1.0).abs() < 1e-8, "{got:?}");
        assert!((got[1] - 2.0).abs() < 1e-8);
        assert!((got[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn symmetric_matrix_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let got = sorted_real(&eigenvalues(&a).unwrap());
        assert!((got[0] - 1.0).abs() < 1e-10);
        assert!((got[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn trace_and_determinant_consistency() {
        // Sum of eigenvalues = trace; product = determinant.
        let a = Matrix::from_rows(&[
            &[0.5, 0.2, 0.0, 0.1],
            &[-0.1, 0.4, 0.3, 0.0],
            &[0.0, -0.2, 0.6, 0.2],
            &[0.1, 0.0, -0.1, 0.3],
        ]);
        let eigs = eigenvalues(&a).unwrap();
        let sum_re: f64 = eigs.iter().map(|c| c.re).sum();
        let sum_im: f64 = eigs.iter().map(|c| c.im).sum();
        assert!((sum_re - a.trace()).abs() < 1e-10);
        assert!(sum_im.abs() < 1e-10);
        // Product via complex multiply.
        let (mut pre, mut pim) = (1.0, 0.0);
        for e in &eigs {
            let nre = pre * e.re - pim * e.im;
            let nim = pre * e.im + pim * e.re;
            pre = nre;
            pim = nim;
        }
        let det = crate::lu::LuDecomposition::new(&a).unwrap().determinant();
        assert!((pre - det).abs() < 1e-10);
        assert!(pim.abs() < 1e-10);
    }

    #[test]
    fn spectral_radius_of_stable_system() {
        let a = Matrix::from_rows(&[&[0.9, 0.1], &[0.0, 0.5]]);
        let r = spectral_radius(&a).unwrap();
        assert!((r - 0.9).abs() < 1e-12);
        assert!(is_schur_stable(&a, 0.0).unwrap());
        assert!(!is_schur_stable(&a, 0.2).unwrap());
    }

    #[test]
    fn zero_and_identity() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(spectral_radius(&z).unwrap(), 0.0);
        let i = Matrix::identity(4);
        assert!((spectral_radius(&i).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[-2.5]]);
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 1);
        assert_eq!(eigs[0], Complex::new(-2.5, 0.0));
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 0);
        assert!(eigenvalues(&a).unwrap().is_empty());
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            eigenvalues(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn larger_matrix_with_known_spectrum() {
        // Block-diagonal: blocks with known eigenvalues {0.8, -0.3} and ±0.6i.
        let mut a = Matrix::zeros(4, 4);
        a.set_block(0, 0, &Matrix::diag(&[0.8, -0.3]));
        a.set_block(2, 2, &Matrix::from_rows(&[&[0.0, -0.6], &[0.6, 0.0]]));
        // Similarity transform with a fixed invertible matrix to make it dense.
        let p = Matrix::from_rows(&[
            &[1.0, 0.2, 0.0, 0.1],
            &[0.0, 1.0, 0.3, 0.0],
            &[0.2, 0.0, 1.0, 0.2],
            &[0.0, 0.1, 0.0, 1.0],
        ]);
        let pinv = p.inverse().unwrap();
        let dense = &(&p * &a) * &pinv;
        let r = spectral_radius(&dense).unwrap();
        assert!((r - 0.8).abs() < 1e-9, "spectral radius {r}");
        let eigs = eigenvalues(&dense).unwrap();
        let n_complex = eigs.iter().filter(|c| c.im.abs() > 1e-9).count();
        assert_eq!(n_complex, 2);
    }

    #[test]
    fn repeated_eigenvalues() {
        // Jordan-like block with eigenvalue 0.5 (twice).
        let a = Matrix::from_rows(&[&[0.5, 1.0], &[0.0, 0.5]]);
        let got = sorted_real(&eigenvalues(&a).unwrap());
        assert!((got[0] - 0.5).abs() < 1e-7);
        assert!((got[1] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn badly_scaled_matrix_is_balanced() {
        // Entries spanning 8 orders of magnitude; balancing keeps accuracy.
        let a = Matrix::from_rows(&[&[1.0, 1e8], &[1e-8, 2.0]]);
        let got = sorted_real(&eigenvalues(&a).unwrap());
        // Characteristic: x² - 3x + (2 - 1) = 0 → x = (3 ± sqrt(5))/2.
        let lo = (3.0 - 5.0_f64.sqrt()) / 2.0;
        let hi = (3.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((got[0] - lo).abs() < 1e-6, "{got:?}");
        assert!((got[1] - hi).abs() < 1e-6);
    }

    #[test]
    fn complex_display() {
        let c = Complex::new(1.0, -2.0);
        assert!(c.to_string().contains('-'));
        assert!(!Complex::default().to_string().is_empty());
    }
}
