//! Storage abstraction over dynamic and fixed-size linear algebra.
//!
//! The runtime control layer (Kalman predictor, LQG step) is written once,
//! generically, against these two small traits; instantiating it with
//! [`Matrix`]/[`Vector`] reproduces the historical dynamic path, while
//! instantiating it with [`SMatrix`]/[`SVector`] monomorphizes the same
//! arithmetic over compile-time dimensions. Synthesis-time code (DARE,
//! SVD, eigenvalues, robust-stability analysis) stays on the dynamic
//! types and never touches these traits.
//!
//! The traits deliberately expose *slices* for elementwise work: a
//! `[f64; N]` coerced to `&[f64]` keeps its compile-time length after
//! inlining, so generic elementwise kernels written over slices still
//! unroll on the static path — and, crucially, a single implementation
//! serves both paths, making bit-identity hold by construction.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::stack::{SMatrix, SVector};
use crate::vector::Vector;
use crate::Result;

/// A contiguous `f64` vector usable as controller runtime storage.
pub trait VecKernel: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// Builds an all-zeros vector of dimension `n`.
    ///
    /// # Errors
    ///
    /// Fixed-size implementations return [`LinalgError::ShapeMismatch`]
    /// when `n` disagrees with the compile-time dimension.
    fn new_dim(n: usize) -> Result<Self>;

    /// Borrows the entries as a slice.
    fn as_slice(&self) -> &[f64];

    /// Mutably borrows the entries as a slice.
    fn as_mut_slice(&mut self) -> &mut [f64];

    /// Number of entries.
    fn dim(&self) -> usize {
        self.as_slice().len()
    }

    /// Builds from a dynamic vector, checking the dimension.
    ///
    /// # Errors
    ///
    /// Propagates the [`VecKernel::new_dim`] shape check.
    fn from_vector(v: &Vector) -> Result<Self> {
        let mut out = Self::new_dim(v.len())?;
        out.as_mut_slice().copy_from_slice(v.as_slice());
        Ok(out)
    }

    /// Copies into a heap-allocated [`Vector`].
    fn to_vector(&self) -> Vector {
        Vector::from_slice(self.as_slice())
    }
}

impl VecKernel for Vector {
    fn new_dim(n: usize) -> Result<Self> {
        Ok(Vector::zeros(n))
    }

    fn as_slice(&self) -> &[f64] {
        Vector::as_slice(self)
    }

    fn as_mut_slice(&mut self) -> &mut [f64] {
        Vector::as_mut_slice(self)
    }
}

impl<const N: usize> VecKernel for SVector<N> {
    fn new_dim(n: usize) -> Result<Self> {
        if n != N {
            return Err(LinalgError::ShapeMismatch {
                op: "SVector::new_dim",
                lhs: (N, 1),
                rhs: (n, 1),
            });
        }
        Ok(SVector::zeros())
    }

    fn as_slice(&self) -> &[f64] {
        SVector::as_slice(self)
    }

    fn as_mut_slice(&mut self) -> &mut [f64] {
        SVector::as_mut_slice(self)
    }
}

/// A matrix that can multiply an input vector into an output vector —
/// the one operation the per-epoch hot loop needs from its gain and
/// model matrices.
pub trait MatVecKernel<VIn: VecKernel, VOut: VecKernel>:
    Clone + std::fmt::Debug + Send + Sync + 'static
{
    /// Builds from a dynamic matrix, checking the shape.
    ///
    /// # Errors
    ///
    /// Fixed-size implementations return [`LinalgError::ShapeMismatch`]
    /// when `m`'s shape disagrees with the compile-time dimensions.
    fn from_matrix(m: &Matrix) -> Result<Self>;

    /// Copies into a heap-allocated [`Matrix`].
    fn to_matrix(&self) -> Matrix;

    /// Matrix-vector product written into `out`. All implementations run
    /// one left-to-right accumulation per row (bit-identical across
    /// storage kinds).
    ///
    /// # Panics
    ///
    /// The dynamic implementation panics on dimension mismatches
    /// (programming errors — generic callers size their buffers at
    /// construction).
    fn mat_vec_into(&self, v: &VIn, out: &mut VOut);
}

impl MatVecKernel<Vector, Vector> for Matrix {
    fn from_matrix(m: &Matrix) -> Result<Self> {
        Ok(m.clone())
    }

    fn to_matrix(&self) -> Matrix {
        self.clone()
    }

    fn mat_vec_into(&self, v: &Vector, out: &mut Vector) {
        self.mul_vec_into(v, out)
            .expect("mat_vec dimension mismatch");
    }
}

impl<const R: usize, const C: usize> MatVecKernel<SVector<C>, SVector<R>> for SMatrix<R, C> {
    fn from_matrix(m: &Matrix) -> Result<Self> {
        SMatrix::from_matrix(m)
    }

    fn to_matrix(&self) -> Matrix {
        SMatrix::to_matrix(self)
    }

    fn mat_vec_into(&self, v: &SVector<C>, out: &mut SVector<R>) {
        self.mul_vec_into(v, out);
    }
}

/// Elementwise `a += b` over slices, in the same order as
/// `Vector::add_assign`.
///
/// Lengths must match (enforced by construction in generic callers;
/// checked in debug builds).
pub fn add_assign_slices(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len(), "add_assign_slices: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Elementwise `out = a - b` over slices, in the same order as
/// [`Vector::sub_into`].
pub fn sub_into_slices(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len(), "sub_into_slices: length mismatch");
    debug_assert_eq!(
        a.len(),
        out.len(),
        "sub_into_slices: output length mismatch"
    );
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_and_static_kernels_agree() {
        let m = Matrix::from_fn(2, 3, |i, j| 1.0 + (i * 3 + j) as f64 * 0.31);
        let v = Vector::from_slice(&[0.2, -0.7, 1.9]);

        let mut dyn_out = Vector::zeros(2);
        MatVecKernel::mat_vec_into(&m, &v, &mut dyn_out);

        let sm: SMatrix<2, 3> = MatVecKernel::<SVector<3>, SVector<2>>::from_matrix(&m).unwrap();
        let sv = SVector::<3>::from_vector(&v).unwrap();
        let mut st_out = SVector::<2>::new_dim(2).unwrap();
        sm.mat_vec_into(&sv, &mut st_out);

        assert_eq!(dyn_out.as_slice(), st_out.as_slice());
        assert_eq!(sm.to_matrix(), m);
        assert_eq!(VecKernel::to_vector(&sv), v);
    }

    #[test]
    fn slice_kernels_match_vector_ops() {
        let a = [1.0, 2.5, -3.0];
        let b = [0.5, -0.25, 8.0];
        let mut acc = a;
        add_assign_slices(&mut acc, &b);
        let mut va = Vector::from_slice(&a);
        va += &Vector::from_slice(&b);
        assert_eq!(&acc[..], va.as_slice());

        let mut diff = [0.0; 3];
        sub_into_slices(&a, &b, &mut diff);
        let mut vd = Vector::zeros(3);
        Vector::from_slice(&a).sub_into(&Vector::from_slice(&b), &mut vd);
        assert_eq!(&diff[..], vd.as_slice());
    }

    #[test]
    fn new_dim_shape_checks() {
        assert!(SVector::<3>::new_dim(2).is_err());
        assert!(SVector::<3>::new_dim(3).is_ok());
        assert!(Vector::new_dim(7).is_ok());
        assert_eq!(VecKernel::dim(&Vector::zeros(4)), 4);
    }
}
