//! Stack-allocated, const-generic counterparts of [`Matrix`] / [`Vector`].
//!
//! The paper's deployed controllers are tiny and fixed per architecture
//! (2–3 inputs/outputs, single-digit state order), yet the dynamic types
//! carry heap indirection and runtime dimension checks into every 50 µs
//! epoch. [`SMatrix`] and [`SVector`] hold the same `f64` data inline in
//! arrays whose sizes are const generics, so the per-epoch kernels
//! monomorphize: bounds checks vanish, loops unroll, and the working set
//! is contiguous on the stack.
//!
//! **Bit-identity contract.** Every kernel here evaluates the *same
//! floating-point operations in the same order* as its dynamic
//! counterpart (`mul_vec_into` accumulates left to right per row,
//! `mul_into` runs the i-k-j order with the zero-entry skip, elementwise
//! kernels run in storage order). IEEE-754 arithmetic is deterministic,
//! so results are bit-identical to the dynamic path — the property tests
//! in `tests/static_parity.rs` pin this for every shape the reference
//! architectures use.

use std::ops::{AddAssign, Index, IndexMut, SubAssign};

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// A fixed-size vector of `N` `f64` entries, stored inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SVector<const N: usize> {
    data: [f64; N],
}

impl<const N: usize> SVector<N> {
    /// The all-zeros vector.
    pub fn zeros() -> Self {
        SVector { data: [0.0; N] }
    }

    /// Creates a vector by copying a slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn from_slice(values: &[f64]) -> Self {
        assert_eq!(values.len(), N, "SVector::from_slice: length mismatch");
        let mut v = Self::zeros();
        v.data.copy_from_slice(values);
        v
    }

    /// Creates a vector by evaluating `f(i)` at every index.
    pub fn from_fn<F: FnMut(usize) -> f64>(mut f: F) -> Self {
        let mut v = Self::zeros();
        for (i, x) in v.data.iter_mut().enumerate() {
            *x = f(i);
        }
        v
    }

    /// Builds from a dynamic vector, checking the dimension.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != N`.
    pub fn from_vector(v: &Vector) -> Result<Self> {
        if v.len() != N {
            return Err(LinalgError::ShapeMismatch {
                op: "SVector::from_vector",
                lhs: (N, 1),
                rhs: (v.len(), 1),
            });
        }
        Ok(Self::from_slice(v.as_slice()))
    }

    /// Copies into a heap-allocated [`Vector`].
    pub fn to_vector(&self) -> Vector {
        Vector::from_slice(&self.data)
    }

    /// Number of entries (`N`).
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> usize {
        N
    }

    /// Borrows the entries as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the entries as a slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Copies every entry from `src`, allocation-free.
    pub fn copy_from(&mut self, src: &Self) {
        self.data = src.data;
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// In-place scaled accumulation `self += alpha * x` (BLAS `axpy`).
    /// Bit-identical to [`Vector::axpy`].
    pub fn axpy(&mut self, alpha: f64, x: &Self) {
        for (a, b) in self.data.iter_mut().zip(&x.data) {
            *a += alpha * b;
        }
    }

    /// Writes `self - rhs` into `out`. Bit-identical to
    /// [`Vector::sub_into`].
    pub fn sub_into(&self, rhs: &Self, out: &mut Self) {
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a - b;
        }
    }

    /// Returns `true` if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl<const N: usize> Index<usize> for SVector<N> {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl<const N: usize> IndexMut<usize> for SVector<N> {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl<const N: usize> AddAssign<&SVector<N>> for SVector<N> {
    fn add_assign(&mut self, rhs: &SVector<N>) {
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl<const N: usize> SubAssign<&SVector<N>> for SVector<N> {
    fn sub_assign(&mut self, rhs: &SVector<N>) {
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

/// A fixed-size `R x C` matrix of `f64`, stored inline row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SMatrix<const R: usize, const C: usize> {
    data: [[f64; C]; R],
}

impl<const R: usize, const C: usize> SMatrix<R, C> {
    /// The all-zeros matrix.
    pub fn zeros() -> Self {
        SMatrix {
            data: [[0.0; C]; R],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(mut f: F) -> Self {
        let mut m = Self::zeros();
        for (i, row) in m.data.iter_mut().enumerate() {
            for (j, x) in row.iter_mut().enumerate() {
                *x = f(i, j);
            }
        }
        m
    }

    /// Builds from a dynamic matrix, checking the shape.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `m` is not `R x C`.
    pub fn from_matrix(m: &Matrix) -> Result<Self> {
        if m.shape() != (R, C) {
            return Err(LinalgError::ShapeMismatch {
                op: "SMatrix::from_matrix",
                lhs: (R, C),
                rhs: m.shape(),
            });
        }
        Ok(Self::from_fn(|i, j| m[(i, j)]))
    }

    /// Copies into a heap-allocated [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(R, C, |i, j| self.data[i][j])
    }

    /// Number of rows (`R`).
    pub const fn rows(&self) -> usize {
        R
    }

    /// Number of columns (`C`).
    pub const fn cols(&self) -> usize {
        C
    }

    /// Borrows row `i` as a slice.
    pub fn row_slice(&self, i: usize) -> &[f64] {
        &self.data[i]
    }

    /// Copies every entry from `src`, allocation-free.
    pub fn copy_from(&mut self, src: &Self) {
        self.data = src.data;
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        for row in self.data.iter_mut() {
            row.fill(value);
        }
    }

    /// In-place scaled accumulation `self += alpha * x`, elementwise in
    /// row-major order.
    pub fn axpy(&mut self, alpha: f64, x: &Self) {
        for (arow, brow) in self.data.iter_mut().zip(&x.data) {
            for (a, b) in arow.iter_mut().zip(brow) {
                *a += alpha * b;
            }
        }
    }

    /// Writes `self - rhs` into `out`, elementwise in row-major order.
    pub fn sub_into(&self, rhs: &Self, out: &mut Self) {
        for ((orow, arow), brow) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            for ((o, a), b) in orow.iter_mut().zip(arow).zip(brow) {
                *o = a - b;
            }
        }
    }

    /// Matrix-vector product written into `out`.
    ///
    /// Bit-identical to [`Matrix::mul_vec_into`]: each output entry is one
    /// left-to-right accumulation over the row.
    pub fn mul_vec_into(&self, v: &SVector<C>, out: &mut SVector<R>) {
        for i in 0..R {
            let row = &self.data[i];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.as_slice()) {
                acc += a * b;
            }
            out[i] = acc;
        }
    }

    /// Matrix product `self * rhs` written into `out`.
    ///
    /// Bit-identical to [`Matrix::mul_into`]: the same i-k-j accumulation
    /// order including the zero-entry skip.
    pub fn mul_into<const K: usize>(&self, rhs: &SMatrix<C, K>, out: &mut SMatrix<R, K>) {
        out.fill(0.0);
        for i in 0..R {
            for k in 0..C {
                let a = self.data[i][k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k];
                let orow = &mut out.data[i];
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Batch (structure-of-arrays) kernels.
//
// A governor bank steps many cores that share one controller against
// per-core state laid out core-major (`&[SVector<N>]`). Each batch kernel
// below applies the corresponding scalar kernel to every (input, output)
// pair in slice order, so per-core results are bit-identical to stepping
// that core alone: the scalar op order inside each pair is untouched, and
// cores are independent. The win is locality — the shared matrix operand
// stays hot in cache across the whole bank.
// ---------------------------------------------------------------------------

impl<const R: usize, const C: usize> SMatrix<R, C> {
    /// Matrix-vector product against every vector of a bank:
    /// `outs[k] = self * vs[k]` for each `k` in slice order.
    ///
    /// Per element bit-identical to [`SMatrix::mul_vec_into`] (which it
    /// calls per pair).
    ///
    /// # Panics
    ///
    /// Panics if `vs.len() != outs.len()`.
    pub fn mul_vec_batch_into(&self, vs: &[SVector<C>], outs: &mut [SVector<R>]) {
        assert_eq!(
            vs.len(),
            outs.len(),
            "mul_vec_batch_into: bank length mismatch"
        );
        for (v, out) in vs.iter().zip(outs.iter_mut()) {
            self.mul_vec_into(v, out);
        }
    }
}

/// Bank-wide scaled accumulation: `ys[k] += alpha * xs[k]` for each `k`.
/// Per element bit-identical to [`SVector::axpy`].
///
/// # Panics
///
/// Panics if `ys.len() != xs.len()`.
pub fn axpy_batch<const N: usize>(ys: &mut [SVector<N>], alpha: f64, xs: &[SVector<N>]) {
    assert_eq!(ys.len(), xs.len(), "axpy_batch: bank length mismatch");
    for (y, x) in ys.iter_mut().zip(xs) {
        y.axpy(alpha, x);
    }
}

/// Bank-wide elementwise accumulation: `ys[k] += xs[k]` for each `k`.
/// Per element bit-identical to [`SVector`]'s `AddAssign`.
///
/// # Panics
///
/// Panics if `ys.len() != xs.len()`.
pub fn add_assign_batch<const N: usize>(ys: &mut [SVector<N>], xs: &[SVector<N>]) {
    assert_eq!(ys.len(), xs.len(), "add_assign_batch: bank length mismatch");
    for (y, x) in ys.iter_mut().zip(xs) {
        *y += x;
    }
}

/// Bank-wide elementwise difference: `outs[k] = lhs[k] - rhs[k]` for each
/// `k`. Per element bit-identical to [`SVector::sub_into`].
///
/// # Panics
///
/// Panics if the three banks differ in length.
pub fn sub_into_batch<const N: usize>(
    lhs: &[SVector<N>],
    rhs: &[SVector<N>],
    outs: &mut [SVector<N>],
) {
    assert_eq!(lhs.len(), rhs.len(), "sub_into_batch: bank length mismatch");
    assert_eq!(
        lhs.len(),
        outs.len(),
        "sub_into_batch: bank length mismatch"
    );
    for ((l, r), o) in lhs.iter().zip(rhs).zip(outs.iter_mut()) {
        l.sub_into(r, o);
    }
}

/// Bank-wide copy: `dsts[k] = srcs[k]` for each `k`. Per element
/// bit-identical to [`SVector::copy_from`].
///
/// # Panics
///
/// Panics if `dsts.len() != srcs.len()`.
pub fn copy_batch<const N: usize>(dsts: &mut [SVector<N>], srcs: &[SVector<N>]) {
    assert_eq!(dsts.len(), srcs.len(), "copy_batch: bank length mismatch");
    for (d, s) in dsts.iter_mut().zip(srcs) {
        d.copy_from(s);
    }
}

impl<const R: usize, const C: usize> Index<(usize, usize)> for SMatrix<R, C> {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i][j]
    }
}

impl<const R: usize, const C: usize> IndexMut<(usize, usize)> for SMatrix<R, C> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_dynamic_types() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = SMatrix::<2, 3>::from_matrix(&m).unwrap();
        assert_eq!(s.to_matrix(), m);
        assert!(SMatrix::<3, 2>::from_matrix(&m).is_err());

        let v = Vector::from_slice(&[1.0, -2.0, 0.5]);
        let sv = SVector::<3>::from_vector(&v).unwrap();
        assert_eq!(sv.to_vector(), v);
        assert!(SVector::<2>::from_vector(&v).is_err());
    }

    #[test]
    fn mul_vec_matches_dynamic_bits() {
        let m = Matrix::from_fn(3, 4, |i, j| 0.1 + 0.37 * (i * 4 + j) as f64);
        let v = Vector::from_fn(4, |i| (-1.0_f64).powi(i as i32) * (0.3 + i as f64));
        let mut dy = Vector::zeros(3);
        m.mul_vec_into(&v, &mut dy).unwrap();

        let sm = SMatrix::<3, 4>::from_matrix(&m).unwrap();
        let sv = SVector::<4>::from_vector(&v).unwrap();
        let mut sy = SVector::<3>::zeros();
        sm.mul_vec_into(&sv, &mut sy);
        for i in 0..3 {
            assert_eq!(sy[i].to_bits(), dy[i].to_bits());
        }
    }

    #[test]
    fn mul_matches_dynamic_bits_including_zero_skip() {
        let mut a = Matrix::from_fn(2, 3, |i, j| (1 + i + j) as f64 * 0.21);
        a[(0, 1)] = 0.0; // exercise the zero-entry skip
        let b = Matrix::from_fn(3, 2, |i, j| (i as f64 - j as f64) * 0.73);
        let mut dy = Matrix::zeros(2, 2);
        a.mul_into(&b, &mut dy).unwrap();

        let sa = SMatrix::<2, 3>::from_matrix(&a).unwrap();
        let sb = SMatrix::<3, 2>::from_matrix(&b).unwrap();
        let mut sy = SMatrix::<2, 2>::zeros();
        sa.mul_into(&sb, &mut sy);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(sy[(i, j)].to_bits(), dy[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn batch_kernels_match_per_core_bits() {
        // Each slot of the bank must come out bit-identical to running the
        // scalar kernel on that slot alone.
        let m = SMatrix::<3, 4>::from_fn(|i, j| 0.11 + 0.29 * (i * 4 + j) as f64);
        let vs: Vec<SVector<4>> = (0..5)
            .map(|k| SVector::from_fn(|i| (-1.0_f64).powi((k + i) as i32) * (0.17 + i as f64)))
            .collect();
        let mut outs = vec![SVector::<3>::zeros(); 5];
        m.mul_vec_batch_into(&vs, &mut outs);
        for (v, out) in vs.iter().zip(&outs) {
            let mut solo = SVector::<3>::zeros();
            m.mul_vec_into(v, &mut solo);
            for i in 0..3 {
                assert_eq!(out[i].to_bits(), solo[i].to_bits());
            }
        }

        let xs: Vec<SVector<3>> = (0..5)
            .map(|k| SVector::from_fn(|i| 0.41 * (k as f64 - i as f64)))
            .collect();
        let mut ys = outs.clone();
        let seed = outs.clone();
        axpy_batch(&mut ys, -0.73, &xs);
        for k in 0..5 {
            let mut solo = seed[k];
            solo.axpy(-0.73, &xs[k]);
            assert_eq!(ys[k], solo);
        }

        let mut sums = seed.clone();
        add_assign_batch(&mut sums, &xs);
        for k in 0..5 {
            let mut solo = seed[k];
            solo += &xs[k];
            assert_eq!(sums[k], solo);
        }

        let mut diffs = vec![SVector::<3>::zeros(); 5];
        sub_into_batch(&seed, &xs, &mut diffs);
        for k in 0..5 {
            let mut solo = SVector::<3>::zeros();
            seed[k].sub_into(&xs[k], &mut solo);
            assert_eq!(diffs[k], solo);
        }

        let mut copies = vec![SVector::<3>::zeros(); 5];
        copy_batch(&mut copies, &seed);
        assert_eq!(copies, seed);
    }

    #[test]
    #[should_panic(expected = "bank length mismatch")]
    fn batch_kernels_reject_ragged_banks() {
        let m = SMatrix::<2, 2>::zeros();
        let vs = vec![SVector::<2>::zeros(); 3];
        let mut outs = vec![SVector::<2>::zeros(); 2];
        m.mul_vec_batch_into(&vs, &mut outs);
    }

    #[test]
    fn elementwise_kernels() {
        let a = SVector::<3>::from_slice(&[1.0, 2.0, 3.0]);
        let b = SVector::<3>::from_slice(&[0.5, -1.0, 4.0]);
        let mut out = SVector::<3>::zeros();
        a.sub_into(&b, &mut out);
        assert_eq!(out.as_slice(), &[0.5, 3.0, -1.0]);

        let mut acc = a;
        acc.axpy(2.0, &b);
        assert_eq!(acc.as_slice(), &[2.0, 0.0, 11.0]);

        acc.copy_from(&b);
        assert_eq!(acc, b);
        acc.fill(0.0);
        assert_eq!(acc, SVector::<3>::zeros());
        assert!(acc.all_finite());

        let mut ms = SMatrix::<2, 2>::from_fn(|i, j| (i + j) as f64);
        let mt = ms;
        ms.axpy(-1.0, &mt);
        assert_eq!(ms, SMatrix::<2, 2>::zeros());
        let mut md = SMatrix::<2, 2>::zeros();
        mt.sub_into(&SMatrix::<2, 2>::zeros(), &mut md);
        assert_eq!(md, mt);
    }
}
