//! LU decomposition with partial pivoting.
//!
//! Used throughout the workspace to solve the dense linear systems that
//! appear in Riccati iterations (`(R + BᵀPB)⁻¹`), Kalman gain computation,
//! and ARX least-squares normal equations.

use crate::{LinalgError, Matrix, Result, Vector};

/// Threshold below which a pivot is considered numerically zero, relative to
/// the largest entry of the original matrix.
const PIVOT_RTOL: f64 = 1e-13;

/// A partial-pivoting LU factorization `P * A = L * U`.
///
/// # Example
///
/// ```
/// use mimo_linalg::{lu::LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), mimo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = LuDecomposition::new(&a)?;
/// assert!((lu.determinant() - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index now in row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used for the determinant.
    perm_sign: f64,
    /// Scale used for the singularity test.
    scale: f64,
}

impl LuDecomposition {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input,
    /// [`LinalgError::EmptyInput`] for a 0x0 matrix, and
    /// [`LinalgError::Singular`] if a pivot is numerically zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::EmptyInput);
        }
        let scale = a.max_abs().max(f64::MIN_POSITIVE);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax <= PIVOT_RTOL * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            // Eliminate below the pivot.
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let v = lu[(k, j)];
                        lu[(i, j)] -= m * v;
                    }
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
            scale,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Solves `A * X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let m = b.cols();
        let mut x = Matrix::zeros(n, m);
        // Apply permutation to b.
        for i in 0..n {
            for j in 0..m {
                x[(i, j)] = b[(self.perm[i], j)];
            }
        }
        // Forward substitution (L has implicit unit diagonal).
        for k in 0..n {
            for i in (k + 1)..n {
                let l = self.lu[(i, k)];
                if l != 0.0 {
                    for j in 0..m {
                        let v = x[(k, j)];
                        x[(i, j)] -= l * v;
                    }
                }
            }
        }
        // Backward substitution.
        for k in (0..n).rev() {
            let pivot = self.lu[(k, k)];
            for j in 0..m {
                x[(k, j)] /= pivot;
            }
            for i in 0..k {
                let u = self.lu[(i, k)];
                if u != 0.0 {
                    for j in 0..m {
                        let v = x[(k, j)];
                        x[(i, j)] -= u * v;
                    }
                }
            }
        }
        Ok(x)
    }

    /// Solves `A * x = b` for a vector right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_vec(&self, b: &Vector) -> Result<Vector> {
        let x = self.solve(&b.to_col_matrix())?;
        Ok(Vector::from(x))
    }

    /// Computes the inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve`].
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.dim()))
    }

    /// Reciprocal condition estimate `1 / (‖A‖∞ · ‖A⁻¹‖∞)`.
    ///
    /// A small value (≲ 1e-12) signals an ill-conditioned model — the design
    /// flow uses this to reject degenerate identification results.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::inverse`].
    pub fn rcond_estimate(&self, a: &Matrix) -> Result<f64> {
        let inv = self.inverse()?;
        let denom = a.norm_inf() * inv.norm_inf();
        if denom == 0.0 {
            return Ok(0.0);
        }
        Ok(1.0 / denom)
    }

    /// Largest-magnitude entry of the original matrix, retained for scaling.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &Matrix, b: &Matrix) -> f64 {
        (&(a * x) - b).max_abs()
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let b = Matrix::col(&[4.0, 5.0, 6.0]);
        let x = a.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
        // Known solution: x = [6, 15, -23]
        assert!((x[(0, 0)] - 6.0).abs() < 1e-10);
        assert!((x[(1, 0)] - 15.0).abs() < 1e-10);
        assert!((x[(2, 0)] + 23.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_permutation_has_correct_sign() {
        // Swapping two rows of I gives determinant -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(LuDecomposition::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(
            LuDecomposition::new(&a).unwrap_err(),
            LinalgError::EmptyInput
        );
    }

    #[test]
    fn inverse_of_diagonal() {
        let a = Matrix::diag(&[2.0, 4.0, 8.0]);
        let inv = a.inverse().unwrap();
        assert!((inv[(0, 0)] - 0.5).abs() < 1e-14);
        assert!((inv[(1, 1)] - 0.25).abs() < 1e-14);
        assert!((inv[(2, 2)] - 0.125).abs() < 1e-14);
    }

    #[test]
    fn solve_vec_round_trip() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let b = Vector::from_slice(&[9.0, 8.0]);
        let x = lu.solve_vec(&b).unwrap();
        let back = a.mul_vec(&x).unwrap();
        assert!((&back - &b).norm_inf() < 1e-12);
    }

    #[test]
    fn solve_shape_mismatch() {
        let a = Matrix::identity(2);
        let lu = LuDecomposition::new(&a).unwrap();
        let b = Matrix::zeros(3, 1);
        assert!(matches!(
            lu.solve(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rcond_small_for_near_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-10]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let rc = lu.rcond_estimate(&a).unwrap();
        assert!(rc < 1e-8, "rcond = {rc}");
        let well = Matrix::identity(2);
        let rc2 = LuDecomposition::new(&well)
            .unwrap()
            .rcond_estimate(&well)
            .unwrap();
        assert!(rc2 > 0.5);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Matrix::col(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn larger_random_like_system() {
        // Deterministic pseudo-random well-conditioned matrix.
        let n = 20;
        let a = Matrix::from_fn(n, n, |i, j| {
            let base = ((i * 31 + j * 17 + 7) % 97) as f64 / 97.0;
            if i == j {
                base + (n as f64)
            } else {
                base
            }
        });
        let xtrue = Matrix::from_fn(n, 2, |i, j| (i + j) as f64 / 3.0);
        let b = &a * &xtrue;
        let x = a.solve(&b).unwrap();
        assert!((&x - &xtrue).max_abs() < 1e-9);
    }
}
