use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix was singular (or numerically singular) where an invertible
    /// matrix was required.
    Singular,
    /// The operation requires a square matrix but a rectangular one was given.
    NotSquare {
        /// Shape of the offending matrix as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input was empty or otherwise degenerate.
    EmptyInput,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::EmptyInput => write!(f, "input matrix or vector is empty"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "mul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("mul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<LinalgError>();
    }

    #[test]
    fn singular_display() {
        assert_eq!(
            LinalgError::Singular.to_string(),
            "matrix is singular to working precision"
        );
    }

    #[test]
    fn no_convergence_display_names_algorithm() {
        let e = LinalgError::NoConvergence {
            algorithm: "francis-qr",
            iterations: 30,
        };
        assert!(e.to_string().contains("francis-qr"));
        assert!(e.to_string().contains("30"));
    }
}
