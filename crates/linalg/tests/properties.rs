//! Property-based tests for the linear-algebra substrate.
//!
//! These exercise the algebraic invariants that the control and
//! identification layers rely on: factorizations reconstruct their input,
//! solves invert multiplies, and spectral quantities respect similarity.

use mimo_linalg::{eigen, lu::LuDecomposition, qr::QrDecomposition, svd::Svd, Matrix, Vector};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix (diagonally dominant).
fn dominant_square(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0..1.0f64, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_vec(n, n, vals);
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

/// Strategy: an arbitrary tall matrix with entries in [-5, 5].
fn tall_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0..5.0f64, rows * cols)
        .prop_map(move |vals| Matrix::from_vec(rows, cols, vals))
}

/// Strategy: a square matrix with spectral radius scaled below `rho`.
fn contractive(n: usize, rho: f64) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0..1.0f64, n * n).prop_map(move |vals| {
        let m = Matrix::from_vec(n, n, vals);
        // Normalize by the infinity norm, an upper bound on spectral radius.
        let norm = m.norm_inf().max(1e-9);
        m.scale(rho / norm)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_inverts_multiply(a in dominant_square(4), xs in proptest::collection::vec(-3.0..3.0f64, 4)) {
        let x_true = Matrix::col(&xs);
        let b = &a * &x_true;
        let x = a.solve(&b).unwrap();
        prop_assert!((&x - &x_true).max_abs() < 1e-8);
    }

    #[test]
    fn lu_determinant_is_multiplicative(a in dominant_square(3), b in dominant_square(3)) {
        let da = LuDecomposition::new(&a).unwrap().determinant();
        let db = LuDecomposition::new(&b).unwrap().determinant();
        let dab = LuDecomposition::new(&(&a * &b)).unwrap().determinant();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }

    #[test]
    fn inverse_round_trip(a in dominant_square(5)) {
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        prop_assert!((&prod - &Matrix::identity(5)).max_abs() < 1e-9);
    }

    #[test]
    fn qr_reconstructs(a in tall_matrix(6, 3)) {
        // Skip near-rank-deficient random draws.
        let svd = Svd::new(&a).unwrap();
        prop_assume!(svd.condition_number() < 1e6);
        let qr = QrDecomposition::new(&a).unwrap();
        let recon = &qr.q() * &qr.r();
        prop_assert!((&recon - &a).max_abs() < 1e-10);
    }

    #[test]
    fn qr_q_orthonormal(a in tall_matrix(7, 4)) {
        let svd = Svd::new(&a).unwrap();
        prop_assume!(svd.condition_number() < 1e6);
        let q = QrDecomposition::new(&a).unwrap().q();
        let qtq = &q.transpose() * &q;
        prop_assert!((&qtq - &Matrix::identity(4)).max_abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_orthogonality(a in tall_matrix(8, 3), bs in proptest::collection::vec(-5.0..5.0f64, 8)) {
        let svd = Svd::new(&a).unwrap();
        prop_assume!(svd.condition_number() < 1e6);
        let b = Matrix::col(&bs);
        let x = QrDecomposition::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let r = &(&a * &x) - &b;
        let atr = &a.transpose() * &r;
        prop_assert!(atr.max_abs() < 1e-8);
    }

    #[test]
    fn svd_reconstructs(a in tall_matrix(5, 3)) {
        let svd = Svd::new(&a).unwrap();
        prop_assert!((&svd.reconstruct() - &a).max_abs() < 1e-9);
    }

    #[test]
    fn svd_norm2_bounds_fro(a in tall_matrix(4, 4)) {
        let svd = Svd::new(&a).unwrap();
        let n2 = svd.norm2();
        let nf = a.norm_fro();
        // ‖A‖₂ ≤ ‖A‖_F ≤ sqrt(rank) ‖A‖₂
        prop_assert!(n2 <= nf + 1e-9);
        prop_assert!(nf <= 2.0 * n2 + 1e-9);
    }

    #[test]
    fn svd_values_nonnegative_descending(a in tall_matrix(6, 4)) {
        let svd = Svd::new(&a).unwrap();
        let s = svd.singular_values();
        for w in s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn spectral_radius_bounded_by_norms(a in tall_matrix(4, 4)) {
        let rho = eigen::spectral_radius(&a).unwrap();
        prop_assert!(rho <= a.norm_inf() + 1e-8);
        let n2 = Svd::new(&a).unwrap().norm2();
        prop_assert!(rho <= n2 + 1e-8);
    }

    #[test]
    fn eigenvalue_sum_is_trace(a in tall_matrix(5, 5)) {
        let eigs = eigen::eigenvalues(&a).unwrap();
        let sum: f64 = eigs.iter().map(|c| c.re).sum();
        prop_assert!((sum - a.trace()).abs() < 1e-7 * a.max_abs().max(1.0));
    }

    #[test]
    fn contractive_matrices_are_schur_stable(a in contractive(4, 0.9)) {
        prop_assert!(eigen::is_schur_stable(&a, 0.0).unwrap());
    }

    #[test]
    fn similarity_preserves_spectral_radius(a in tall_matrix(3, 3)) {
        // Use a fixed well-conditioned similarity transform.
        let p = Matrix::from_rows(&[
            &[1.0, 0.3, 0.0],
            &[0.0, 1.0, -0.2],
            &[0.1, 0.0, 1.0],
        ]);
        let pinv = p.inverse().unwrap();
        let b = &(&p * &a) * &pinv;
        let ra = eigen::spectral_radius(&a).unwrap();
        let rb = eigen::spectral_radius(&b).unwrap();
        prop_assert!((ra - rb).abs() < 1e-6 * ra.max(1.0));
    }

    #[test]
    fn pseudo_inverse_consistency(a in tall_matrix(5, 2)) {
        let svd = Svd::new(&a).unwrap();
        prop_assume!(svd.condition_number() < 1e8);
        let p = svd.pseudo_inverse(1e-12);
        let apa = &(&a * &p) * &a;
        prop_assert!((&apa - &a).max_abs() < 1e-7);
    }

    #[test]
    fn vector_dot_cauchy_schwarz(xs in proptest::collection::vec(-10.0..10.0f64, 6), ys in proptest::collection::vec(-10.0..10.0f64, 6)) {
        let x = Vector::from_slice(&xs);
        let y = Vector::from_slice(&ys);
        prop_assert!(x.dot(&y).abs() <= x.norm() * y.norm() + 1e-9);
    }

    #[test]
    fn transpose_respects_multiplication(a in tall_matrix(3, 4), b in tall_matrix(4, 2)) {
        let left = (&a * &b).transpose();
        let right = &b.transpose() * &a.transpose();
        prop_assert!((&left - &right).max_abs() < 1e-10);
    }
}
