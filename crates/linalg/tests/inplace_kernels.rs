//! Property tests: every in-place kernel is bit-identical to its
//! allocating counterpart across random shapes and values.
//!
//! The epoch engine's zero-allocation guarantee only holds if the
//! `*_into` kernels are drop-in replacements — not "numerically close"
//! but producing the exact same f64 bit patterns, since the golden
//! digests pin entire runs to the bit.

use mimo_linalg::{Matrix, Vector};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with a mix of magnitudes,
/// including exact zeros (the `mul` kernels skip zero entries, so zeros
/// must be well represented to cover that branch).
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    (
        proptest::collection::vec(-1e3..1e3f64, rows * cols),
        proptest::collection::vec(0u8..4, rows * cols),
    )
        .prop_map(move |(vals, tags)| {
            let data = vals
                .iter()
                .zip(&tags)
                .map(|(&v, &t)| match t {
                    0 => 0.0,
                    1 => v * 1e-9,
                    _ => v,
                })
                .collect();
            Matrix::from_vec(rows, cols, data)
        })
}

fn vector(len: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-1e3..1e3f64, len).prop_map(|v| Vector::from_slice(&v))
}

/// Shapes are drawn per case so the kernels see degenerate (1) through
/// moderate (7) dimensions.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=7, 1usize..=7, 1usize..=7)
}

fn assert_bits_eq(a: &Vector, b: &Vector) {
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert_eq!(
            a[i].to_bits(),
            b[i].to_bits(),
            "bit mismatch at {i}: {} vs {}",
            a[i],
            b[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mul_into_matches_mul((a, b) in dims().prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))) {
        let (m, _) = a.shape();
        let (_, n) = b.shape();
        let expect = &a * &b;
        let mut got = Matrix::zeros(m, n);
        a.mul_into(&b, &mut got).unwrap();
        for r in 0..m {
            for c in 0..n {
                prop_assert_eq!(expect[(r, c)].to_bits(), got[(r, c)].to_bits());
            }
        }
    }

    #[test]
    fn mul_vec_into_matches_mul_vec(a in matrix(5, 3), v in vector(3)) {
        let expect = a.mul_vec(&v).unwrap();
        let mut got = Vector::zeros(5);
        a.mul_vec_into(&v, &mut got).unwrap();
        assert_bits_eq(&expect, &got);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec_wide(a in matrix(2, 7), v in vector(7)) {
        let expect = a.mul_vec(&v).unwrap();
        let mut got = Vector::zeros(2);
        a.mul_vec_into(&v, &mut got).unwrap();
        assert_bits_eq(&expect, &got);
    }

    #[test]
    fn sub_into_matches_sub(a in vector(6), b in vector(6)) {
        let expect = &a - &b;
        let mut got = Vector::zeros(6);
        a.sub_into(&b, &mut got);
        assert_bits_eq(&expect, &got);
    }

    #[test]
    fn axpy_matches_scale_then_add(x in vector(6), y in vector(6), alpha in -1e3..1e3f64) {
        let expect = &y + &x.scale(alpha);
        let mut got = y.clone();
        got.axpy(alpha, &x);
        assert_bits_eq(&expect, &got);
    }

    #[test]
    fn copy_from_is_exact(src in vector(9)) {
        let mut dst = Vector::zeros(9);
        dst.copy_from(&src);
        assert_bits_eq(&src, &dst);
    }

    #[test]
    fn mul_into_overwrites_stale_output((m, k, n) in dims()) {
        // The output buffer is reused across epochs: stale contents must
        // never leak into the product.
        let a = Matrix::zeros(m, k);
        let b = Matrix::zeros(k, n);
        let mut out = Matrix::from_vec(m, n, vec![42.0; m * n]);
        a.mul_into(&b, &mut out).unwrap();
        for r in 0..m {
            for c in 0..n {
                prop_assert_eq!(out[(r, c)], 0.0);
            }
        }
    }
}

#[test]
fn into_kernels_reject_shape_mismatches() {
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(4, 2);
    let mut out = Matrix::zeros(2, 2);
    assert!(a.mul_into(&b, &mut out).is_err());
    let b = Matrix::zeros(3, 2);
    let mut bad_out = Matrix::zeros(3, 2);
    assert!(a.mul_into(&b, &mut bad_out).is_err());
    let v = Vector::zeros(4);
    let mut vo = Vector::zeros(2);
    assert!(a.mul_vec_into(&v, &mut vo).is_err());
    let v = Vector::zeros(3);
    let mut vo = Vector::zeros(5);
    assert!(a.mul_vec_into(&v, &mut vo).is_err());
}
