//! Property tests: the stack-allocated kernels are bit-identical to the
//! dynamic ones for every matrix shape the four reference architectures
//! deploy.
//!
//! The runtime storage refactor only holds up if `SMatrix`/`SVector` are
//! exact drop-ins — same f64 bit patterns, not "numerically close" — for
//! each shape `StaticStore` instantiates:
//!
//! * two-input MIMO  (2-in/2-out/4-state):  A 4×4, B 4×2, C 2×4, D 2×2, L 4×2, F 2×8
//! * three-input MIMO (3-in/2-out/5-state): A 5×5, B 5×3, C 2×5, D 2×3, L 5×2, F 3×10
//! * decoupled SISO  (1-in/1-out/2-state):  A 2×2, B 2×1, C 1×2, D 1×1, L 2×1, F 1×4
//! * unit-test plant (2-in/2-out/2-state):  F 2×6 (the rest reuse shapes above)

use mimo_linalg::{Matrix, SMatrix, SVector, Vector};
use proptest::prelude::*;

/// Strategy: a dynamic matrix with mixed magnitudes including exact zeros
/// (the `mul` kernels skip zero entries, so that branch must be covered).
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    (
        proptest::collection::vec(-1e3..1e3f64, rows * cols),
        proptest::collection::vec(0u8..4, rows * cols),
    )
        .prop_map(move |(vals, tags)| {
            let data = vals
                .iter()
                .zip(&tags)
                .map(|(&v, &t)| match t {
                    0 => 0.0,
                    1 => v * 1e-9,
                    _ => v,
                })
                .collect();
            Matrix::from_vec(rows, cols, data)
        })
}

fn vector(len: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-1e3..1e3f64, len).prop_map(|v| Vector::from_slice(&v))
}

/// One parity case per architecture shape: `SMatrix<R, C> * SVector<C>`
/// must reproduce `Matrix::mul_vec_into` to the bit, and the conversion
/// round-trip must be exact.
macro_rules! mat_vec_parity {
    ($($name:ident: $r:literal x $c:literal),+ $(,)?) => {
        $(
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(48))]
                #[test]
                fn $name(m in matrix($r, $c), v in vector($c)) {
                    let sm = SMatrix::<$r, $c>::from_matrix(&m).unwrap();
                    let sv = SVector::<$c>::from_vector(&v).unwrap();
                    // Conversion round-trip is exact.
                    prop_assert_eq!(sm.to_matrix(), m.clone());
                    prop_assert_eq!(sv.to_vector(), v.clone());
                    // mat-vec is bit-identical.
                    let mut expect = Vector::zeros($r);
                    m.mul_vec_into(&v, &mut expect).unwrap();
                    let mut got = SVector::<$r>::zeros();
                    sm.mul_vec_into(&sv, &mut got);
                    for i in 0..$r {
                        prop_assert_eq!(expect[i].to_bits(), got[i].to_bits());
                    }
                }
            }
        )+
    };
}

mat_vec_parity! {
    // Two-input architecture (StaticStore<2, 2, 4, 8>).
    two_input_a_4x4: 4 x 4,
    two_input_b_4x2: 4 x 2,
    two_input_c_2x4: 2 x 4,
    two_input_d_2x2: 2 x 2,
    two_input_l_4x2: 4 x 2,
    two_input_f_2x8: 2 x 8,
    // Three-input architecture (StaticStore<3, 2, 5, 10>).
    three_input_a_5x5: 5 x 5,
    three_input_b_5x3: 5 x 3,
    three_input_c_2x5: 2 x 5,
    three_input_d_2x3: 2 x 3,
    three_input_l_5x2: 5 x 2,
    three_input_f_3x10: 3 x 10,
    // Decoupled SISO loops (StaticStore<1, 1, 2, 4>).
    siso_a_2x2: 2 x 2,
    siso_b_2x1: 2 x 1,
    siso_c_1x2: 1 x 2,
    siso_d_1x1: 1 x 1,
    siso_f_1x4: 1 x 4,
    // Unit-test plant (StaticStore<2, 2, 2, 6>).
    test_plant_f_2x6: 2 x 6,
}

/// Matrix-matrix parity for a representative set of (R, C, K) triples,
/// covering the i-k-j order and the zero-entry skip.
macro_rules! mat_mul_parity {
    ($($name:ident: $r:literal, $c:literal, $k:literal),+ $(,)?) => {
        $(
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(48))]
                #[test]
                fn $name(a in matrix($r, $c), b in matrix($c, $k)) {
                    let mut expect = Matrix::zeros($r, $k);
                    a.mul_into(&b, &mut expect).unwrap();
                    let sa = SMatrix::<$r, $c>::from_matrix(&a).unwrap();
                    let sb = SMatrix::<$c, $k>::from_matrix(&b).unwrap();
                    let mut got = SMatrix::<$r, $k>::zeros();
                    sa.mul_into(&sb, &mut got);
                    for i in 0..$r {
                        for j in 0..$k {
                            prop_assert_eq!(expect[(i, j)].to_bits(), got[(i, j)].to_bits());
                        }
                    }
                }
            }
        )+
    };
}

mat_mul_parity! {
    mul_4x4_times_4x2: 4, 4, 2,
    mul_2x8_times_8x8: 2, 8, 8,
    mul_5x5_times_5x3: 5, 5, 3,
    mul_1x4_times_4x4: 1, 4, 4,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn svector_elementwise_matches_dynamic(a in vector(8), b in vector(8), alpha in -1e3..1e3f64) {
        let sa = SVector::<8>::from_vector(&a).unwrap();
        let sb = SVector::<8>::from_vector(&b).unwrap();

        // sub_into
        let mut expect = Vector::zeros(8);
        a.sub_into(&b, &mut expect);
        let mut got = SVector::<8>::zeros();
        sa.sub_into(&sb, &mut got);
        for i in 0..8 {
            prop_assert_eq!(expect[i].to_bits(), got[i].to_bits());
        }

        // axpy
        let mut expect = b.clone();
        expect.axpy(alpha, &a);
        let mut got = sb;
        got.axpy(alpha, &sa);
        for i in 0..8 {
            prop_assert_eq!(expect[i].to_bits(), got[i].to_bits());
        }

        // copy_from
        let mut dst = SVector::<8>::zeros();
        dst.copy_from(&sa);
        for i in 0..8 {
            prop_assert_eq!(dst[i].to_bits(), a[i].to_bits());
        }
    }

    #[test]
    fn stale_static_output_is_overwritten(v in vector(4)) {
        // Scratch buffers are reused every epoch: stale contents must not
        // leak into a product, exactly as with the dynamic kernels.
        let m = Matrix::zeros(3, 4);
        let sm = SMatrix::<3, 4>::from_matrix(&m).unwrap();
        let sv = SVector::<4>::from_vector(&v).unwrap();
        let mut out = SVector::<3>::from_slice(&[42.0; 3]);
        sm.mul_vec_into(&sv, &mut out);
        for i in 0..3 {
            prop_assert_eq!(out[i], 0.0);
        }
        let mut mout = SMatrix::<3, 2>::from_fn(|_, _| 42.0);
        sm.mul_into(&SMatrix::<4, 2>::zeros(), &mut mout);
        for i in 0..3 {
            for j in 0..2 {
                prop_assert_eq!(mout[(i, j)], 0.0);
            }
        }
    }
}
