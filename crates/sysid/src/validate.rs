//! Model validation and order selection.
//!
//! §IV-B4: "we validate the model by running additional, highly compute-
//! and highly memory-intensive applications on both the model and on the
//! real system, and compare the results. Based on the difference, we
//! roughly estimate the uncertainty of the model." The maximum per-output
//! relative error measured here is what the paper multiplies by 3 to set
//! the uncertainty guardbands (§VI-A2), and the sweep over model dimension
//! is Figure 7.

use mimo_linalg::Vector;

use crate::arx::{ArxModel, ArxOrders};
use crate::realize::{to_state_space, Realization};
use crate::{Result, SysidError};

/// Per-output validation metrics from comparing a model's free-run
/// simulation against measured outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Maximum relative error per output channel, in percent.
    pub max_rel_error_pct: Vec<f64>,
    /// Mean relative error per output channel, in percent.
    pub mean_rel_error_pct: Vec<f64>,
    /// NRMSE fit per output channel, in percent (100 = perfect). This is
    /// MATLAB's `compare`-style goodness of fit
    /// `100 · (1 − ‖y − ŷ‖ / ‖y − mean(y)‖)`.
    pub fit_pct: Vec<f64>,
}

impl ValidationReport {
    /// The single worst `max_rel_error_pct` across outputs.
    pub fn worst_error_pct(&self) -> f64 {
        self.max_rel_error_pct.iter().copied().fold(0.0, f64::max)
    }
}

/// Compares measured outputs against model predictions.
///
/// Relative errors are normalized by the per-channel mean absolute measured
/// value (with a small floor), matching the paper's "on average X% off"
/// language. Errors are averaged/maximized over a moving window of
/// `window` samples to measure *sustained* mis-prediction rather than
/// single-sample noise; pass `window = 1` for raw per-sample errors.
///
/// # Errors
///
/// Returns [`SysidError::InconsistentData`] if the sequences differ in
/// length or dimension, or [`SysidError::NotEnoughData`] if they are empty.
pub fn compare(
    measured: &[Vector],
    predicted: &[Vector],
    window: usize,
) -> Result<ValidationReport> {
    if measured.len() != predicted.len() {
        return Err(SysidError::InconsistentData {
            what: format!(
                "measured has {} samples, predicted has {}",
                measured.len(),
                predicted.len()
            ),
        });
    }
    if measured.is_empty() {
        return Err(SysidError::NotEnoughData { have: 0, need: 1 });
    }
    let o = measured[0].len();
    if measured.iter().chain(predicted).any(|v| v.len() != o) {
        return Err(SysidError::InconsistentData {
            what: "ragged output dimensions".into(),
        });
    }
    let w = window.max(1);
    let n = measured.len();

    let mut max_rel = vec![0.0_f64; o];
    let mut sum_rel = vec![0.0_f64; o];
    let mut n_windows = 0usize;

    // Per-channel normalization: mean |y|.
    let mut norm = vec![0.0_f64; o];
    for m in measured {
        for c in 0..o {
            norm[c] += m[c].abs();
        }
    }
    for v in &mut norm {
        *v = (*v / n as f64).max(1e-9);
    }

    let mut start = 0;
    while start < n {
        let end = (start + w).min(n);
        for c in 0..o {
            let mut err = 0.0;
            for t in start..end {
                err += measured[t][c] - predicted[t][c];
            }
            let rel = (err / (end - start) as f64).abs() / norm[c] * 100.0;
            max_rel[c] = max_rel[c].max(rel);
            sum_rel[c] += rel;
        }
        n_windows += 1;
        start = end;
    }
    let mean_rel: Vec<f64> = sum_rel.iter().map(|s| s / n_windows as f64).collect();

    // NRMSE fit.
    let mut fit = vec![0.0_f64; o];
    for c in 0..o {
        let mean_y: f64 = measured.iter().map(|v| v[c]).sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for t in 0..n {
            num += (measured[t][c] - predicted[t][c]).powi(2);
            den += (measured[t][c] - mean_y).powi(2);
        }
        fit[c] = if den > 0.0 {
            100.0 * (1.0 - (num / den).sqrt())
        } else if num == 0.0 {
            100.0
        } else {
            0.0
        };
    }

    Ok(ValidationReport {
        max_rel_error_pct: max_rel,
        mean_rel_error_pct: mean_rel,
        fit_pct: fit,
    })
}

/// Fits an ARX model on training data, realizes it, free-runs it on
/// validation data, and reports the errors.
///
/// # Errors
///
/// Propagates fit and comparison errors.
pub fn fit_and_validate(
    train_u: &[Vector],
    train_y: &[Vector],
    valid_u: &[Vector],
    valid_y: &[Vector],
    orders: ArxOrders,
    window: usize,
) -> Result<(ArxModel, Realization, ValidationReport)> {
    let model = ArxModel::fit(train_u, train_y, orders)?;
    let ss = to_state_space(&model);
    let p = orders.history();
    if valid_u.len() <= p || valid_y.len() <= p {
        return Err(SysidError::NotEnoughData {
            have: valid_u.len().min(valid_y.len()),
            need: p + 1,
        });
    }
    let last_lag = orders.history();
    let x0 = ss.state_from_history(
        &valid_y[..p],
        &valid_u[..p.max(1)],
        orders.na,
        last_lag
            .saturating_sub(0)
            .min(valid_u.len())
            .min(ss_input_lags(&ss, orders)),
    );
    let predicted = ss.simulate(&x0, &valid_u[p..]);
    let report = compare(&valid_y[p..], &predicted, window)?;
    Ok((model, ss, report))
}

/// Number of past-input slots in the realization's state.
fn ss_input_lags(ss: &Realization, orders: ArxOrders) -> usize {
    let o = ss.num_outputs();
    let i = ss.num_inputs();
    (ss.state_dim() - orders.na * o) / i.max(1)
}

/// One point of a Figure-7-style model-order sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSweepPoint {
    /// State dimension of the realization.
    pub dimension: usize,
    /// Orders used for the fit.
    pub orders: ArxOrders,
    /// Validation report on the held-out data.
    pub report: ValidationReport,
}

/// Sweeps the output order `na` over `na_values`, fitting on the training
/// waveforms and validating on the held-out waveforms, reproducing the
/// dimension-vs-error tradeoff of Figure 7.
///
/// # Errors
///
/// Propagates the first fit/validation failure.
pub fn order_sweep(
    train_u: &[Vector],
    train_y: &[Vector],
    valid_u: &[Vector],
    valid_y: &[Vector],
    na_values: &[usize],
    direct_feedthrough: bool,
    window: usize,
) -> Result<Vec<OrderSweepPoint>> {
    let mut points = Vec::with_capacity(na_values.len());
    for &na in na_values {
        let orders = ArxOrders {
            na,
            nb: 1,
            direct_feedthrough,
        };
        let (_, ss, report) = fit_and_validate(train_u, train_y, valid_u, valid_y, orders, window)?;
        points.push(OrderSweepPoint {
            dimension: ss.state_dim(),
            orders,
            report,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_system(steps: usize, phase: u64) -> (Vec<Vector>, Vec<Vector>) {
        // Second-order SISO truth with mild noise.
        let mut u = Vec::new();
        let mut y = Vec::new();
        let (mut y1, mut y2, mut u1) = (0.0, 0.0, 0.0);
        for t in 0..steps {
            let ut = (((t as u64 * 2654435761 + phase * 97) % 9) as f64) / 4.0 - 1.0;
            let noise = (((t as u64 * 40503 + phase) % 1000) as f64 / 1000.0 - 0.5) * 0.01;
            let yt = 0.6 * y1 - 0.08 * y2 + 0.8 * u1 + noise;
            u.push(Vector::from_slice(&[ut]));
            y.push(Vector::from_slice(&[yt]));
            y2 = y1;
            y1 = yt;
            u1 = ut;
        }
        (u, y)
    }

    #[test]
    fn perfect_prediction_scores_100() {
        let (_, y) = gen_system(100, 1);
        let r = compare(&y, &y, 1).unwrap();
        assert!(r.worst_error_pct() < 1e-9);
        assert!(r.fit_pct.iter().all(|&f| (f - 100.0).abs() < 1e-9));
    }

    #[test]
    fn constant_offset_detected() {
        let (_, y) = gen_system(100, 2);
        let off: Vec<Vector> = y.iter().map(|v| v + &Vector::filled(1, 0.5)).collect();
        let r = compare(&y, &off, 1).unwrap();
        assert!(r.worst_error_pct() > 10.0);
        assert!(r.fit_pct[0] < 100.0);
    }

    #[test]
    fn windowed_errors_smooth_noise() {
        let (_, y) = gen_system(400, 3);
        // Alternating ±1 noise cancels in windows.
        let noisy: Vec<Vector> = y
            .iter()
            .enumerate()
            .map(|(t, v)| v + &Vector::filled(1, if t % 2 == 0 { 0.3 } else { -0.3 }))
            .collect();
        let raw = compare(&y, &noisy, 1).unwrap();
        let smooth = compare(&y, &noisy, 10).unwrap();
        assert!(smooth.worst_error_pct() < raw.worst_error_pct());
    }

    #[test]
    fn fit_and_validate_on_good_model() {
        let (tu, ty) = gen_system(800, 1);
        let (vu, vy) = gen_system(400, 7);
        let orders = ArxOrders {
            na: 2,
            nb: 2,
            direct_feedthrough: false,
        };
        let (_m, ss, report) = fit_and_validate(&tu, &ty, &vu, &vy, orders, 5).unwrap();
        assert_eq!(ss.state_dim(), 4);
        assert!(
            report.worst_error_pct() < 20.0,
            "validation error {:?}",
            report.max_rel_error_pct
        );
    }

    #[test]
    fn order_sweep_error_improves_then_plateaus() {
        let (tu, ty) = gen_system(1500, 1);
        let (vu, vy) = gen_system(600, 11);
        let points = order_sweep(&tu, &ty, &vu, &vy, &[1, 2, 3, 4], false, 5).unwrap();
        assert_eq!(points.len(), 4);
        // Dimensions grow with na (SISO, nb=1 strictly proper → dim = na + 1... )
        for w in points.windows(2) {
            assert!(w[1].dimension > w[0].dimension);
        }
        // True system has na=2; order-1 fit must be worse than order-2.
        let e1 = points[0].report.worst_error_pct();
        let e2 = points[1].report.worst_error_pct();
        assert!(e2 <= e1 + 1e-9, "e1={e1} e2={e2}");
    }

    #[test]
    fn compare_rejects_mismatch() {
        let a = vec![Vector::zeros(1); 5];
        let b = vec![Vector::zeros(1); 4];
        assert!(compare(&a, &b, 1).is_err());
        assert!(compare(&[], &[], 1).is_err());
    }
}
