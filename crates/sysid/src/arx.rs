//! Multivariable ARX identification by least squares.
//!
//! The paper assumes "the outputs at time t depend on the outputs at the
//! previous k time steps, the inputs at the current and previous l-1 time
//! steps, and a noise term" (§IV-B1). That is exactly the multivariable ARX
//! structure
//!
//! ```text
//! y(t) = A₁ y(t−1) + … + A_na y(t−na)
//!      + B₀ u(t) + B₁ u(t−1) + … + B_{nb−1} u(t−nb+1) + e(t)
//! ```
//!
//! fit with linear least squares over the recorded waveforms (a ridge term
//! keeps the regression solvable under weak excitation). The `B₀ u(t)` term
//! is optional — disable `direct_feedthrough` for a strictly proper model.

use mimo_linalg::{qr::ridge_least_squares, Matrix, Vector};

use crate::{Result, SysidError};

/// Model orders for an ARX fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArxOrders {
    /// Number of past *output* samples entering the regression (`k` in the
    /// paper). Must be at least 1.
    pub na: usize,
    /// Number of *input* samples entering the regression (`l` in the
    /// paper). Must be at least 1.
    pub nb: usize,
    /// Whether `u(t)` itself appears (feed-through `D ≠ 0`). When `false`,
    /// input terms start at `u(t−1)`.
    pub direct_feedthrough: bool,
}

impl ArxOrders {
    /// First input lag used: 0 with feed-through, else 1.
    fn first_input_lag(&self) -> usize {
        usize::from(!self.direct_feedthrough)
    }

    /// Last input lag used.
    fn last_input_lag(&self) -> usize {
        self.first_input_lag() + self.nb - 1
    }

    /// Number of initial samples consumed as history before the first
    /// regression row.
    pub fn history(&self) -> usize {
        self.na.max(self.last_input_lag())
    }
}

/// A fitted multivariable ARX model.
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Debug, Clone)]
pub struct ArxModel {
    orders: ArxOrders,
    /// Output-lag coefficient matrices `A₁ … A_na`, each `O x O`.
    a_coeffs: Vec<Matrix>,
    /// Input-lag coefficient matrices starting at the first used lag,
    /// each `O x I`.
    b_coeffs: Vec<Matrix>,
    n_outputs: usize,
    n_inputs: usize,
    /// One-step-ahead residuals on the training data.
    residuals: Vec<Vector>,
}

impl ArxModel {
    /// Fits an ARX model to recorded input/output waveforms.
    ///
    /// `u[t]` is the input applied at epoch `t` and `y[t]` the output
    /// observed at epoch `t`; the sequences must have equal length.
    ///
    /// # Errors
    ///
    /// * [`SysidError::InconsistentData`] — mismatched lengths or ragged
    ///   vector dimensions.
    /// * [`SysidError::NotEnoughData`] — fewer samples than regression
    ///   unknowns.
    /// * [`SysidError::PoorExcitation`] — the regression is singular even
    ///   after ridge regularization.
    pub fn fit(u: &[Vector], y: &[Vector], orders: ArxOrders) -> Result<ArxModel> {
        Self::fit_regularized(u, y, orders, 1e-8)
    }

    /// Like [`ArxModel::fit`] with an explicit ridge parameter `lambda`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ArxModel::fit`].
    pub fn fit_regularized(
        u: &[Vector],
        y: &[Vector],
        orders: ArxOrders,
        lambda: f64,
    ) -> Result<ArxModel> {
        if orders.na == 0 || orders.nb == 0 {
            return Err(SysidError::InconsistentData {
                what: "orders na and nb must be at least 1".into(),
            });
        }
        if u.len() != y.len() {
            return Err(SysidError::InconsistentData {
                what: format!("u has {} samples but y has {}", u.len(), y.len()),
            });
        }
        let t_total = u.len();
        let p = orders.history();
        let n_inputs = u.first().map_or(0, Vector::len);
        let n_outputs = y.first().map_or(0, Vector::len);
        if n_inputs == 0 || n_outputs == 0 {
            return Err(SysidError::InconsistentData {
                what: "empty input or output vectors".into(),
            });
        }
        if u.iter().any(|v| v.len() != n_inputs) || y.iter().any(|v| v.len() != n_outputs) {
            return Err(SysidError::InconsistentData {
                what: "ragged input or output dimensions".into(),
            });
        }
        let n_params = orders.na * n_outputs + orders.nb * n_inputs;
        let n_rows = t_total.saturating_sub(p);
        if n_rows < 2 * n_params {
            return Err(SysidError::NotEnoughData {
                have: n_rows,
                need: 2 * n_params,
            });
        }

        // Build the regression Phi * Theta = Y.
        let mut phi = Matrix::zeros(n_rows, n_params);
        let mut targets = Matrix::zeros(n_rows, n_outputs);
        let j0 = orders.first_input_lag();
        for (row, t) in (p..t_total).enumerate() {
            let mut col = 0;
            for i in 1..=orders.na {
                for &yo in &y[t - i].as_slice()[..n_outputs] {
                    phi[(row, col)] = yo;
                    col += 1;
                }
            }
            for j in 0..orders.nb {
                let lag = j0 + j;
                for &ui in &u[t - lag].as_slice()[..n_inputs] {
                    phi[(row, col)] = ui;
                    col += 1;
                }
            }
            for o in 0..n_outputs {
                targets[(row, o)] = y[t][o];
            }
        }

        let theta = ridge_least_squares(&phi, &targets, lambda)?;

        // Slice Theta^T into the coefficient matrices.
        let theta_t = theta.transpose(); // O x n_params
        let mut a_coeffs = Vec::with_capacity(orders.na);
        let mut col = 0;
        for _ in 0..orders.na {
            a_coeffs.push(theta_t.block(0, col, n_outputs, n_outputs));
            col += n_outputs;
        }
        let mut b_coeffs = Vec::with_capacity(orders.nb);
        for _ in 0..orders.nb {
            b_coeffs.push(theta_t.block(0, col, n_outputs, n_inputs));
            col += n_inputs;
        }

        // One-step-ahead residuals.
        let mut residuals = Vec::with_capacity(n_rows);
        let model = ArxModel {
            orders,
            a_coeffs,
            b_coeffs,
            n_outputs,
            n_inputs,
            residuals: Vec::new(),
        };
        for t in p..t_total {
            let pred = model.predict_one_step(u, y, t)?;
            residuals.push(&y[t] - &pred);
        }
        Ok(ArxModel { residuals, ..model })
    }

    /// The model orders.
    pub fn orders(&self) -> ArxOrders {
        self.orders
    }

    /// Output-lag coefficient matrices `A₁ … A_na`.
    pub fn a_coeffs(&self) -> &[Matrix] {
        &self.a_coeffs
    }

    /// Input-lag coefficient matrices (starting at lag 0 or 1 depending on
    /// feed-through).
    pub fn b_coeffs(&self) -> &[Matrix] {
        &self.b_coeffs
    }

    /// Number of plant outputs `O`.
    pub fn num_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of plant inputs `I`.
    pub fn num_inputs(&self) -> usize {
        self.n_inputs
    }

    /// One-step-ahead training residuals `y(t) − ŷ(t|t−1)`.
    pub fn residuals(&self) -> &[Vector] {
        &self.residuals
    }

    /// Predicts `y(t)` from the *recorded* history in `u`/`y`.
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::NotEnoughData`] if `t` precedes the required
    /// history window.
    pub fn predict_one_step(&self, u: &[Vector], y: &[Vector], t: usize) -> Result<Vector> {
        let p = self.orders.history();
        if t < p || t >= u.len() {
            return Err(SysidError::NotEnoughData { have: t, need: p });
        }
        let mut pred = Vector::zeros(self.n_outputs);
        for (i, a) in self.a_coeffs.iter().enumerate() {
            pred += &a.mul_vec(&y[t - 1 - i])?;
        }
        let j0 = self.orders.first_input_lag();
        for (j, b) in self.b_coeffs.iter().enumerate() {
            pred += &b.mul_vec(&u[t - j0 - j])?;
        }
        Ok(pred)
    }

    /// Free-run simulation: predicts the whole output sequence from the
    /// inputs alone, feeding predictions back as output history. The first
    /// `history()` outputs are taken from `y_init`.
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::NotEnoughData`] if `y_init` is shorter than the
    /// required history, or [`SysidError::InconsistentData`] on dimension
    /// mismatches.
    pub fn simulate(&self, u: &[Vector], y_init: &[Vector]) -> Result<Vec<Vector>> {
        let p = self.orders.history();
        if y_init.len() < p {
            return Err(SysidError::NotEnoughData {
                have: y_init.len(),
                need: p,
            });
        }
        if y_init.iter().any(|v| v.len() != self.n_outputs) {
            return Err(SysidError::InconsistentData {
                what: "y_init dimension mismatch".into(),
            });
        }
        let mut y_sim: Vec<Vector> = y_init[..p].to_vec();
        for t in p..u.len() {
            let pred = self.predict_one_step(u, &y_sim, t)?;
            y_sim.push(pred);
        }
        Ok(y_sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds data from a known SISO ARX system
    /// y(t) = 0.7 y(t-1) - 0.1 y(t-2) + 0.5 u(t-1).
    fn known_siso(steps: usize) -> (Vec<Vector>, Vec<Vector>) {
        let mut u = Vec::new();
        let mut y = Vec::new();
        let (mut y1, mut y2, mut u1) = (0.0, 0.0, 0.0);
        for t in 0..steps {
            let ut = ((t * 7919) % 13) as f64 / 6.0 - 1.0;
            let yt = 0.7 * y1 - 0.1 * y2 + 0.5 * u1;
            u.push(Vector::from_slice(&[ut]));
            y.push(Vector::from_slice(&[yt]));
            y2 = y1;
            y1 = yt;
            u1 = ut;
        }
        (u, y)
    }

    #[test]
    fn recovers_siso_coefficients() {
        // Regenerate data in a self-consistent indexing.
        let steps = 400;
        let mut u: Vec<Vector> = Vec::new();
        let mut y: Vec<Vector> = Vec::new();
        let mut y1 = 0.0;
        let mut y2 = 0.0;
        let mut u1 = 0.0;
        for t in 0..steps {
            let ut = ((t * 7919) % 13) as f64 / 6.0 - 1.0;
            let yt = 0.7 * y1 - 0.1 * y2 + 0.5 * u1;
            u.push(Vector::from_slice(&[ut]));
            y.push(Vector::from_slice(&[yt]));
            y2 = y1;
            y1 = yt;
            u1 = ut;
        }
        let orders = ArxOrders {
            na: 2,
            nb: 1,
            direct_feedthrough: false,
        };
        let m = ArxModel::fit(&u, &y, orders).unwrap();
        assert!((m.a_coeffs()[0][(0, 0)] - 0.7).abs() < 1e-6);
        assert!((m.a_coeffs()[1][(0, 0)] + 0.1).abs() < 1e-6);
        assert!((m.b_coeffs()[0][(0, 0)] - 0.5).abs() < 1e-6);
        // Residuals on noiseless data are ~0.
        let max_resid = m
            .residuals()
            .iter()
            .map(Vector::norm_inf)
            .fold(0.0, f64::max);
        assert!(max_resid < 1e-8);
    }

    #[test]
    fn recovers_mimo_system_with_feedthrough() {
        // 2x2 system with direct feed-through:
        // y(t) = A1 y(t-1) + B0 u(t)
        let a1 = Matrix::from_rows(&[&[0.6, 0.1], &[-0.2, 0.4]]);
        let b0 = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, -1.0]]);
        let steps = 500;
        let mut u = Vec::new();
        let mut y = Vec::new();
        let mut prev = Vector::zeros(2);
        for t in 0..steps {
            let ut = Vector::from_slice(&[
                ((t * 31) % 7) as f64 / 3.0 - 1.0,
                ((t * 17) % 5) as f64 / 2.0 - 1.0,
            ]);
            let yt = &a1.mul_vec(&prev).unwrap() + &b0.mul_vec(&ut).unwrap();
            u.push(ut);
            y.push(yt.clone());
            prev = yt;
        }
        let orders = ArxOrders {
            na: 1,
            nb: 1,
            direct_feedthrough: true,
        };
        let m = ArxModel::fit(&u, &y, orders).unwrap();
        assert!((&m.a_coeffs()[0] - &a1).max_abs() < 1e-6);
        assert!((&m.b_coeffs()[0] - &b0).max_abs() < 1e-6);
    }

    #[test]
    fn simulate_tracks_true_system() {
        let (u, y) = known_siso(300);
        let n = u.len().min(y.len());
        let u = &u[..n];
        let y = &y[..n];
        let orders = ArxOrders {
            na: 2,
            nb: 2,
            direct_feedthrough: false,
        };
        let m = ArxModel::fit(u, y, orders).unwrap();
        let y_sim = m.simulate(u, &y[..orders.history()]).unwrap();
        let err: f64 = y_sim
            .iter()
            .zip(y)
            .map(|(a, b)| (a - b).norm_inf())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "free-run error {err}");
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let u = vec![Vector::zeros(1); 10];
        let y = vec![Vector::zeros(1); 9];
        let orders = ArxOrders {
            na: 1,
            nb: 1,
            direct_feedthrough: false,
        };
        assert!(matches!(
            ArxModel::fit(&u, &y, orders),
            Err(SysidError::InconsistentData { .. })
        ));
    }

    #[test]
    fn rejects_too_few_samples() {
        let u = vec![Vector::zeros(2); 5];
        let y = vec![Vector::zeros(2); 5];
        let orders = ArxOrders {
            na: 2,
            nb: 2,
            direct_feedthrough: false,
        };
        assert!(matches!(
            ArxModel::fit(&u, &y, orders),
            Err(SysidError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn rejects_zero_orders() {
        let u = vec![Vector::zeros(1); 50];
        let y = vec![Vector::zeros(1); 50];
        let orders = ArxOrders {
            na: 0,
            nb: 1,
            direct_feedthrough: false,
        };
        assert!(ArxModel::fit(&u, &y, orders).is_err());
    }

    #[test]
    fn constant_input_is_poor_excitation_but_ridge_survives() {
        // With ridge regularization the fit is still produced (biased to 0).
        let u = vec![Vector::from_slice(&[1.0]); 100];
        let y = vec![Vector::from_slice(&[2.0]); 100];
        let orders = ArxOrders {
            na: 1,
            nb: 1,
            direct_feedthrough: false,
        };
        let m = ArxModel::fit(&u, &y, orders).unwrap();
        // The DC relation y = a*y + b*u with a+ (b/2)=... many solutions; just
        // require the one-step prediction to be close on the training data.
        let pred = m.predict_one_step(&u, &y, 50).unwrap();
        assert!((pred[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn history_accounts_for_feedthrough() {
        let with_d = ArxOrders {
            na: 1,
            nb: 2,
            direct_feedthrough: true,
        };
        assert_eq!(with_d.history(), 1);
        let without_d = ArxOrders {
            na: 1,
            nb: 2,
            direct_feedthrough: false,
        };
        assert_eq!(without_d.history(), 2);
    }
}
