//! Estimation of the "unpredictability matrices".
//!
//! §IV-B3: the least-squares identification also produces two matrices —
//! one encapsulating the non-determinism of the system (branches,
//! interrupts, page faults perturbing the *state*) and one encapsulating
//! sensor noise perturbing the *outputs*. In our ARX-innovations setting
//! both are derived from the one-step-ahead residuals `e(t)`:
//!
//! * the innovation covariance `Σe = cov(e)` is split by a designer-chosen
//!   ratio into a process part and a measurement part;
//! * the process part enters the state only through the `y(t)` rows of the
//!   stacked-history state (the rest of the state is a deterministic shift
//!   register), giving `W = E_y (α Σe) E_yᵀ`;
//! * the measurement part is `V = (1−α) Σe` plus a small floor that keeps
//!   the Kalman filter well posed.

use mimo_linalg::{Matrix, Vector};

use crate::{Result, SysidError};

/// Sample covariance of a sequence of vectors.
///
/// # Errors
///
/// Returns [`SysidError::NotEnoughData`] for fewer than 2 samples.
pub fn covariance(samples: &[Vector]) -> Result<Matrix> {
    if samples.len() < 2 {
        return Err(SysidError::NotEnoughData {
            have: samples.len(),
            need: 2,
        });
    }
    let dim = samples[0].len();
    let n = samples.len() as f64;
    let mut mean = Vector::zeros(dim);
    for s in samples {
        mean += s;
    }
    mean = mean.scale(1.0 / n);
    let mut cov = Matrix::zeros(dim, dim);
    for s in samples {
        let d = s - &mean;
        for i in 0..dim {
            for j in 0..dim {
                cov[(i, j)] += d[i] * d[j];
            }
        }
    }
    Ok(cov.scale(1.0 / (n - 1.0)))
}

/// The two unpredictability matrices of the paper, plus the raw innovation
/// covariance they were derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseEstimate {
    /// Process-noise covariance `W` (`N x N`), perturbing the state.
    pub process: Matrix,
    /// Measurement-noise covariance `V` (`O x O`), perturbing the outputs.
    pub measurement: Matrix,
    /// Innovation covariance `Σe` (`O x O`) of the one-step residuals.
    pub innovation: Matrix,
}

/// Derives the unpredictability matrices from ARX residuals.
///
/// * `residuals` — one-step-ahead residuals from the fit.
/// * `state_dim` — dimension `N` of the state-space realization.
/// * `process_fraction` — `α ∈ [0, 1]`, the share of the innovation
///   variance attributed to system non-determinism rather than sensor
///   noise. The paper leaves this split to the designer; 0.5 is a neutral
///   default.
///
/// # Errors
///
/// Returns [`SysidError::NotEnoughData`] with fewer than 2 residuals, and
/// [`SysidError::InconsistentData`] if `state_dim` is smaller than the
/// output count or `process_fraction` is outside `[0, 1]`.
pub fn estimate_noise(
    residuals: &[Vector],
    state_dim: usize,
    process_fraction: f64,
) -> Result<NoiseEstimate> {
    if !(0.0..=1.0).contains(&process_fraction) {
        return Err(SysidError::InconsistentData {
            what: format!("process_fraction {process_fraction} outside [0, 1]"),
        });
    }
    let innovation = covariance(residuals)?;
    let o = innovation.rows();
    if state_dim < o {
        return Err(SysidError::InconsistentData {
            what: format!("state_dim {state_dim} smaller than output count {o}"),
        });
    }
    // Floor keeps covariances positive definite even for perfect fits.
    let floor = 1e-9;
    let sigma_scaled = innovation.scale(process_fraction);
    let mut process = Matrix::zeros(state_dim, state_dim);
    process.set_block(0, 0, &sigma_scaled);
    for i in 0..state_dim {
        process[(i, i)] += floor;
    }
    let mut measurement = innovation.scale(1.0 - process_fraction);
    for i in 0..o {
        measurement[(i, i)] += floor;
    }
    Ok(NoiseEstimate {
        process,
        measurement,
        innovation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_residuals(n: usize, s0: f64, s1: f64) -> Vec<Vector> {
        // Deterministic pseudo-noise with per-channel std s0, s1.
        (0..n)
            .map(|t| {
                let a = (((t * 2654435761) % 1000) as f64 / 1000.0 - 0.5) * 3.464; // ~unit variance
                let b = (((t * 40503 + 17) % 1000) as f64 / 1000.0 - 0.5) * 3.464;
                Vector::from_slice(&[a * s0, b * s1])
            })
            .collect()
    }

    #[test]
    fn covariance_of_known_data() {
        let samples = vec![
            Vector::from_slice(&[1.0, 0.0]),
            Vector::from_slice(&[-1.0, 0.0]),
            Vector::from_slice(&[1.0, 0.0]),
            Vector::from_slice(&[-1.0, 0.0]),
        ];
        let c = covariance(&samples).unwrap();
        // Variance of ±1 = 4/3 with n-1 normalization; channel 1 is 0.
        assert!((c[(0, 0)] - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[(1, 1)], 0.0);
        assert_eq!(c[(0, 1)], 0.0);
    }

    #[test]
    fn covariance_requires_two_samples() {
        let one = vec![Vector::zeros(2)];
        assert!(matches!(
            covariance(&one),
            Err(SysidError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn covariance_scales_quadratically() {
        let r1 = noisy_residuals(2000, 1.0, 2.0);
        let c = covariance(&r1).unwrap();
        assert!(
            c[(1, 1)] > 2.0 * c[(0, 0)],
            "c00={} c11={}",
            c[(0, 0)],
            c[(1, 1)]
        );
    }

    #[test]
    fn split_respects_fraction() {
        let r = noisy_residuals(500, 1.0, 1.0);
        let est = estimate_noise(&r, 4, 0.25).unwrap();
        // W top-left block ≈ 0.25 Σe; V ≈ 0.75 Σe.
        let w00 = est.process[(0, 0)];
        let v00 = est.measurement[(0, 0)];
        let s00 = est.innovation[(0, 0)];
        assert!((w00 - 0.25 * s00).abs() < 1e-6 + 1e-8);
        assert!((v00 - 0.75 * s00).abs() < 1e-6 + 1e-8);
    }

    #[test]
    fn process_noise_only_in_output_rows() {
        let r = noisy_residuals(500, 1.0, 1.0);
        let est = estimate_noise(&r, 6, 0.5).unwrap();
        assert_eq!(est.process.shape(), (6, 6));
        // Rows/cols beyond the first O=2 hold only the tiny floor.
        for i in 2..6 {
            for j in 0..6 {
                if i == j {
                    assert!(est.process[(i, j)] <= 1e-8);
                } else {
                    assert_eq!(est.process[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn perfect_fit_still_positive_definite() {
        let r = vec![Vector::zeros(2); 100];
        let est = estimate_noise(&r, 4, 0.5).unwrap();
        // Diagonal floor present.
        for i in 0..4 {
            assert!(est.process[(i, i)] > 0.0);
        }
        for i in 0..2 {
            assert!(est.measurement[(i, i)] > 0.0);
        }
    }

    #[test]
    fn rejects_bad_fraction_and_dims() {
        let r = noisy_residuals(100, 1.0, 1.0);
        assert!(estimate_noise(&r, 4, 1.5).is_err());
        assert!(estimate_noise(&r, 1, 0.5).is_err());
    }
}
