//! Excitation signals for black-box identification.
//!
//! §IV-B1: "We apply waveforms with special patterns at the inputs of the
//! system, and monitor the waveforms at the outputs." Identification quality
//! hinges on *persistently exciting* inputs: every actuator must visit many
//! of its settings, at multiple rates, without synchronizing with the other
//! actuators. The three classic patterns provided here are:
//!
//! * [`prbs`] — pseudo-random binary sequences from a maximal-length LFSR,
//!   the workhorse of system identification.
//! * [`staircase`] — slow sweeps across the full actuator range, exposing
//!   DC gains and saturation.
//! * [`multilevel`] — pseudo-random multi-level sequences that visit
//!   intermediate settings, exposing nonlinearity.

use mimo_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated excitation: one value per time step per input channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Excitation {
    /// `samples[t]` is the input vector applied at epoch `t`.
    samples: Vec<Vector>,
}

impl Excitation {
    /// Wraps a raw sample sequence.
    pub fn new(samples: Vec<Vector>) -> Self {
        Excitation { samples }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the excitation has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of input channels (0 for an empty excitation).
    pub fn channels(&self) -> usize {
        self.samples.first().map_or(0, Vector::len)
    }

    /// Borrows the sample at step `t`.
    pub fn sample(&self, t: usize) -> &Vector {
        &self.samples[t]
    }

    /// Borrows all samples.
    pub fn samples(&self) -> &[Vector] {
        &self.samples
    }

    /// Consumes the excitation, returning the sample buffer.
    pub fn into_samples(self) -> Vec<Vector> {
        self.samples
    }

    /// Concatenates two excitations with the same channel count.
    ///
    /// # Panics
    ///
    /// Panics if the channel counts differ (and neither is empty).
    pub fn then(mut self, other: Excitation) -> Excitation {
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(
                self.channels(),
                other.channels(),
                "cannot concatenate excitations with different channel counts"
            );
        }
        self.samples.extend(other.samples);
        self
    }

    /// Fraction of steps on which channel `ch` changes value — a quick
    /// persistence-of-excitation diagnostic.
    pub fn switching_rate(&self, ch: usize) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let switches = self
            .samples
            .windows(2)
            .filter(|w| w[0][ch] != w[1][ch])
            .count();
        switches as f64 / (self.samples.len() - 1) as f64
    }

    /// Number of distinct values channel `ch` visits (up to float equality).
    pub fn distinct_levels(&self, ch: usize) -> usize {
        let mut seen: Vec<f64> = Vec::new();
        for s in &self.samples {
            let v = s[ch];
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen.len()
    }
}

/// Generates a multi-channel PRBS excitation.
///
/// Each channel is an independent maximal-length LFSR sequence that holds
/// its value for `hold` steps (controls the excitation bandwidth) and
/// switches between `lo[ch]` and `hi[ch]`. Channels use different seeds so
/// they do not correlate.
///
/// # Panics
///
/// Panics if `lo.len() != hi.len()`, if there are no channels, or if
/// `hold == 0`.
pub fn prbs(steps: usize, lo: &[f64], hi: &[f64], hold: usize, seed: u64) -> Excitation {
    assert_eq!(lo.len(), hi.len(), "lo/hi must list every channel");
    assert!(!lo.is_empty(), "need at least one channel");
    assert!(hold > 0, "hold must be positive");
    let channels = lo.len();
    // One 16-bit Galois LFSR per channel, distinct nonzero seeds.
    let mut lfsr: Vec<u16> = (0..channels)
        .map(|c| {
            let s = (seed ^ (0x9E37 + 0x1DB3 * c as u64)) as u16;
            if s == 0 {
                0xACE1
            } else {
                s
            }
        })
        .collect();
    let mut bits: Vec<bool> = lfsr.iter().map(|&s| s & 1 == 1).collect();
    let mut samples = Vec::with_capacity(steps);
    for t in 0..steps {
        if t % hold == 0 && t > 0 {
            for c in 0..channels {
                // Galois LFSR with taps 16,15,13,4 (maximal length).
                let l = &mut lfsr[c];
                let lsb = *l & 1 == 1;
                *l >>= 1;
                if lsb {
                    *l ^= 0xB400;
                }
                bits[c] = lsb;
            }
        }
        samples.push(Vector::from_fn(channels, |c| {
            if bits[c] {
                hi[c]
            } else {
                lo[c]
            }
        }));
    }
    Excitation::new(samples)
}

/// Generates a staircase sweep: each channel steps through `levels[ch]`
/// equally spaced values from `lo` to `hi` and back down, dwelling `dwell`
/// steps per level. Channels sweep at co-prime-ish phase offsets so they do
/// not move in lockstep.
///
/// # Panics
///
/// Panics if `lo`, `hi`, and `levels` disagree in length, if any channel has
/// fewer than 2 levels, or if `dwell == 0`.
pub fn staircase(
    steps: usize,
    lo: &[f64],
    hi: &[f64],
    levels: &[usize],
    dwell: usize,
) -> Excitation {
    assert!(
        lo.len() == hi.len() && lo.len() == levels.len(),
        "channel count mismatch"
    );
    assert!(
        levels.iter().all(|&l| l >= 2),
        "each channel needs >= 2 levels"
    );
    assert!(dwell > 0, "dwell must be positive");
    let channels = lo.len();
    let mut samples = Vec::with_capacity(steps);
    for t in 0..steps {
        samples.push(Vector::from_fn(channels, |c| {
            let n = levels[c];
            let period = 2 * (n - 1); // up then down
            let phase_offset = c * (dwell + 1); // desynchronize channels
            let k = ((t + phase_offset) / dwell) % period;
            let idx = if k < n { k } else { period - k };
            lo[c] + (hi[c] - lo[c]) * idx as f64 / (n - 1) as f64
        }));
    }
    Excitation::new(samples)
}

/// Generates a pseudo-random multilevel excitation: each channel holds a
/// uniformly drawn level from its `levels[ch]`-point grid for `hold` steps.
///
/// # Panics
///
/// Panics under the same conditions as [`staircase`].
pub fn multilevel(
    steps: usize,
    lo: &[f64],
    hi: &[f64],
    levels: &[usize],
    hold: usize,
    seed: u64,
) -> Excitation {
    assert!(
        lo.len() == hi.len() && lo.len() == levels.len(),
        "channel count mismatch"
    );
    assert!(
        levels.iter().all(|&l| l >= 2),
        "each channel needs >= 2 levels"
    );
    assert!(hold > 0, "hold must be positive");
    let channels = lo.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = Vector::from_fn(channels, |c| lo[c]);
    let mut samples = Vec::with_capacity(steps);
    for t in 0..steps {
        if t % hold == 0 {
            for c in 0..channels {
                let idx = rng.gen_range(0..levels[c]);
                current[c] = lo[c] + (hi[c] - lo[c]) * idx as f64 / (levels[c] - 1) as f64;
            }
        }
        samples.push(current.clone());
    }
    Excitation::new(samples)
}

/// The composite identification waveform used by the design flow: a PRBS
/// segment (fast dynamics), a staircase segment (DC gains across the range),
/// and a multilevel segment (intermediate settings), concatenated.
pub fn identification_waveform(
    steps_per_segment: usize,
    lo: &[f64],
    hi: &[f64],
    levels: &[usize],
    seed: u64,
) -> Excitation {
    // Hold times sit well above the plant's transient time constants
    // (DVFS relock, cache warm-up ≈ 6 epochs) so each setting's
    // steady-state response dominates the record; identification on
    // faster waveforms sees mostly transition stalls and produces
    // wrong-signed gains.
    let fast = prbs(steps_per_segment, lo, hi, 12, seed);
    let sweep = staircase(steps_per_segment, lo, hi, levels, 30);
    let multi = multilevel(steps_per_segment, lo, hi, levels, 20, seed ^ 0xC0FFEE);
    fast.then(sweep).then(multi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prbs_has_exactly_two_levels_per_channel() {
        let e = prbs(500, &[0.0, -1.0], &[1.0, 1.0], 2, 42);
        assert_eq!(e.len(), 500);
        assert_eq!(e.channels(), 2);
        assert_eq!(e.distinct_levels(0), 2);
        assert_eq!(e.distinct_levels(1), 2);
    }

    #[test]
    fn prbs_switches_roughly_half_the_time_at_hold_1() {
        let e = prbs(2000, &[0.0], &[1.0], 1, 7);
        let rate = e.switching_rate(0);
        assert!(rate > 0.3 && rate < 0.7, "switching rate {rate}");
    }

    #[test]
    fn prbs_channels_are_not_identical() {
        let e = prbs(300, &[0.0, 0.0], &[1.0, 1.0], 1, 9);
        let identical = (0..e.len()).all(|t| e.sample(t)[0] == e.sample(t)[1]);
        assert!(!identical);
    }

    #[test]
    fn prbs_hold_slows_switching() {
        let fast = prbs(1000, &[0.0], &[1.0], 1, 3);
        let slow = prbs(1000, &[0.0], &[1.0], 10, 3);
        assert!(slow.switching_rate(0) < fast.switching_rate(0));
    }

    #[test]
    fn staircase_visits_all_levels_and_stays_in_range() {
        let e = staircase(400, &[0.5], &[2.0], &[16], 3);
        assert_eq!(e.distinct_levels(0), 16);
        for t in 0..e.len() {
            let v = e.sample(t)[0];
            assert!((0.5..=2.0).contains(&v));
        }
    }

    #[test]
    fn staircase_channels_desynchronized() {
        let e = staircase(200, &[0.0, 0.0], &[1.0, 1.0], &[4, 4], 5);
        let same = (0..e.len()).all(|t| e.sample(t)[0] == e.sample(t)[1]);
        assert!(!same);
    }

    #[test]
    fn multilevel_visits_many_levels() {
        let e = multilevel(1000, &[0.0], &[1.5], &[16], 4, 11);
        assert!(
            e.distinct_levels(0) >= 12,
            "visited {}",
            e.distinct_levels(0)
        );
        for t in 0..e.len() {
            assert!((0.0..=1.5).contains(&e.sample(t)[0]));
        }
    }

    #[test]
    fn multilevel_is_deterministic_per_seed() {
        let a = multilevel(100, &[0.0], &[1.0], &[8], 3, 5);
        let b = multilevel(100, &[0.0], &[1.0], &[8], 3, 5);
        assert_eq!(a, b);
        let c = multilevel(100, &[0.0], &[1.0], &[8], 3, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn composite_waveform_concatenates() {
        let e = identification_waveform(100, &[0.0, 0.0], &[1.0, 3.0], &[4, 8], 1);
        assert_eq!(e.len(), 300);
        assert_eq!(e.channels(), 2);
        // The staircase + multilevel segments must visit interior levels.
        assert!(e.distinct_levels(1) > 2);
    }

    #[test]
    fn then_empty_is_noop() {
        let e = prbs(10, &[0.0], &[1.0], 1, 1);
        let combined = e.clone().then(Excitation::new(Vec::new()));
        assert_eq!(combined.len(), 10);
    }

    #[test]
    #[should_panic(expected = "different channel counts")]
    fn then_rejects_mismatched_channels() {
        let a = prbs(10, &[0.0], &[1.0], 1, 1);
        let b = prbs(10, &[0.0, 0.0], &[1.0, 1.0], 1, 1);
        let _ = a.then(b);
    }
}
