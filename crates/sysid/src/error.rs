use std::error::Error;
use std::fmt;

use mimo_linalg::LinalgError;

/// Errors produced during system identification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SysidError {
    /// The recorded input and output waveforms have inconsistent lengths
    /// or dimensions.
    InconsistentData {
        /// Description of the inconsistency.
        what: String,
    },
    /// Too few samples to estimate the requested model orders.
    NotEnoughData {
        /// Samples available.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// The regression problem was numerically unsolvable (e.g. an input that
    /// never moved during the experiment).
    PoorExcitation,
    /// An underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for SysidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysidError::InconsistentData { what } => write!(f, "inconsistent data: {what}"),
            SysidError::NotEnoughData { have, need } => {
                write!(
                    f,
                    "not enough data: have {have} samples, need at least {need}"
                )
            }
            SysidError::PoorExcitation => {
                write!(
                    f,
                    "regression is singular; excitation did not move all inputs"
                )
            }
            SysidError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for SysidError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SysidError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SysidError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::Singular => SysidError::PoorExcitation,
            other => SysidError::Linalg(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = SysidError::NotEnoughData { have: 3, need: 10 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn singular_maps_to_poor_excitation() {
        let e: SysidError = LinalgError::Singular.into();
        assert_eq!(e, SysidError::PoorExcitation);
    }

    #[test]
    fn other_linalg_errors_are_wrapped() {
        let e: SysidError = LinalgError::EmptyInput.into();
        assert!(matches!(e, SysidError::Linalg(_)));
        assert!(e.source().is_some());
    }
}
