//! Signal normalization.
//!
//! The plant's physical units are wildly mismatched — frequency in GHz,
//! power in watts, IPS in billions, cache level as a small integer. Least
//! squares over raw units produces badly conditioned regressors, and LQG
//! weights lose their paper-specified meaning. The identification and
//! control layers therefore work in *normalized deviation coordinates*:
//! each channel is mapped affinely so that its operating range becomes
//! roughly `[-1, 1]` around the operating point.

use mimo_linalg::Vector;

/// Removes a centered moving mean from a signal record.
///
/// Black-box identification across several applications (or across program
/// phases) sees large, slow output shifts that are *not* caused by the
/// inputs; regressing on the raw record lets those shifts masquerade as
/// strong state dynamics and corrupts the estimated gains (even their
/// signs). Subtracting a moving mean whose window sits far above the
/// excitation hold times and far below the phase durations removes the
/// drift while preserving the input-driven content.
///
/// The window is clamped at the record edges. `window` is rounded up to an
/// odd length.
pub fn remove_moving_mean(seq: &[Vector], window: usize) -> Vec<Vector> {
    if seq.is_empty() {
        return Vec::new();
    }
    let dim = seq[0].len();
    let w = window.max(1) | 1; // odd
    let half = w / 2;
    let n = seq.len();
    // Prefix sums per channel for O(n) moving means.
    let mut prefix = vec![vec![0.0_f64; n + 1]; dim];
    for (t, v) in seq.iter().enumerate() {
        for c in 0..dim {
            prefix[c][t + 1] = prefix[c][t] + v[c];
        }
    }
    (0..n)
        .map(|t| {
            let lo = t.saturating_sub(half);
            let hi = (t + half + 1).min(n);
            Vector::from_fn(dim, |c| {
                let mean = (prefix[c][hi] - prefix[c][lo]) / (hi - lo) as f64;
                seq[t][c] - mean
            })
        })
        .collect()
}

/// Per-channel affine map `normalized = (raw - offset) / span`.
///
/// # Example
///
/// ```
/// use mimo_sysid::scale::ChannelScaler;
/// use mimo_linalg::Vector;
///
/// // Frequency channel 0.5..2.0 GHz, power channel 0..4 W.
/// let s = ChannelScaler::from_ranges(&[(0.5, 2.0), (0.0, 4.0)]);
/// let norm = s.normalize(&Vector::from_slice(&[1.25, 2.0]));
/// assert!(norm[0].abs() < 1e-12); // midpoint maps to 0
/// assert!(norm[1].abs() < 1e-12);
/// let raw = s.denormalize(&norm);
/// assert!((raw[0] - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelScaler {
    offset: Vec<f64>,
    span: Vec<f64>,
}

impl ChannelScaler {
    /// Builds a scaler from explicit `(offset, span)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any span is zero or non-finite.
    pub fn new(offset: Vec<f64>, span: Vec<f64>) -> Self {
        assert_eq!(offset.len(), span.len(), "offset/span length mismatch");
        assert!(
            span.iter().all(|s| s.is_finite() && *s != 0.0),
            "spans must be nonzero and finite"
        );
        ChannelScaler { offset, span }
    }

    /// Builds a scaler from `(lo, hi)` ranges: the midpoint becomes the
    /// offset and half the range becomes the span, so the range maps onto
    /// `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any range is degenerate (`hi <= lo`).
    pub fn from_ranges(ranges: &[(f64, f64)]) -> Self {
        let mut offset = Vec::with_capacity(ranges.len());
        let mut span = Vec::with_capacity(ranges.len());
        for &(lo, hi) in ranges {
            assert!(hi > lo, "degenerate range ({lo}, {hi})");
            offset.push(0.5 * (lo + hi));
            span.push(0.5 * (hi - lo));
        }
        ChannelScaler { offset, span }
    }

    /// Builds a scaler from recorded data: offset is the per-channel mean,
    /// span is the per-channel max deviation from it (or 1.0 for a channel
    /// that never moved).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn from_data(data: &[Vector]) -> Self {
        assert!(!data.is_empty(), "cannot infer scales from empty data");
        let channels = data[0].len();
        let n = data.len() as f64;
        let mut offset = vec![0.0; channels];
        for v in data {
            for c in 0..channels {
                offset[c] += v[c];
            }
        }
        for o in &mut offset {
            *o /= n;
        }
        let mut span = vec![0.0_f64; channels];
        for v in data {
            for c in 0..channels {
                span[c] = span[c].max((v[c] - offset[c]).abs());
            }
        }
        for s in &mut span {
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        ChannelScaler { offset, span }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.offset.len()
    }

    /// Per-channel offsets (the operating point).
    pub fn offsets(&self) -> &[f64] {
        &self.offset
    }

    /// Per-channel spans.
    pub fn spans(&self) -> &[f64] {
        &self.span
    }

    /// Maps a raw vector into normalized coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` differs from the channel count.
    pub fn normalize(&self, raw: &Vector) -> Vector {
        assert_eq!(raw.len(), self.channels(), "channel count mismatch");
        Vector::from_fn(raw.len(), |c| (raw[c] - self.offset[c]) / self.span[c])
    }

    /// Maps a normalized vector back to raw units.
    ///
    /// # Panics
    ///
    /// Panics if `norm.len()` differs from the channel count.
    pub fn denormalize(&self, norm: &Vector) -> Vector {
        assert_eq!(norm.len(), self.channels(), "channel count mismatch");
        Vector::from_fn(norm.len(), |c| norm[c] * self.span[c] + self.offset[c])
    }

    /// Maps a raw vector into normalized coordinates, writing into `out`
    /// without allocating. Bit-identical to [`ChannelScaler::normalize`].
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` or `out.len()` differs from the channel count.
    pub fn normalize_into(&self, raw: &Vector, out: &mut Vector) {
        self.normalize_slices(raw.as_slice(), out.as_mut_slice());
    }

    /// Maps a normalized vector back to raw units, writing into `out`
    /// without allocating. Bit-identical to [`ChannelScaler::denormalize`].
    ///
    /// # Panics
    ///
    /// Panics if `norm.len()` or `out.len()` differs from the channel count.
    pub fn denormalize_into(&self, norm: &Vector, out: &mut Vector) {
        self.denormalize_slices(norm.as_slice(), out.as_mut_slice());
    }

    /// Slice form of [`ChannelScaler::normalize_into`], so callers whose
    /// buffers are fixed-size stack vectors can normalize without going
    /// through a heap-backed [`Vector`]. One implementation serves both
    /// paths — bit-identity holds by construction.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` or `out.len()` differs from the channel count.
    pub fn normalize_slices(&self, raw: &[f64], out: &mut [f64]) {
        assert_eq!(raw.len(), self.channels(), "channel count mismatch");
        assert_eq!(out.len(), self.channels(), "channel count mismatch");
        for c in 0..raw.len() {
            out[c] = (raw[c] - self.offset[c]) / self.span[c];
        }
    }

    /// Slice form of [`ChannelScaler::denormalize_into`].
    ///
    /// # Panics
    ///
    /// Panics if `norm.len()` or `out.len()` differs from the channel count.
    pub fn denormalize_slices(&self, norm: &[f64], out: &mut [f64]) {
        assert_eq!(norm.len(), self.channels(), "channel count mismatch");
        assert_eq!(out.len(), self.channels(), "channel count mismatch");
        for c in 0..norm.len() {
            out[c] = norm[c] * self.span[c] + self.offset[c];
        }
    }

    /// Normalizes a whole sequence.
    pub fn normalize_all(&self, raw: &[Vector]) -> Vec<Vector> {
        raw.iter().map(|v| self.normalize(v)).collect()
    }

    /// Denormalizes a whole sequence.
    pub fn denormalize_all(&self, norm: &[Vector]) -> Vec<Vector> {
        norm.iter().map(|v| self.denormalize(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let s = ChannelScaler::from_ranges(&[(0.5, 2.0), (16.0, 128.0)]);
        let raw = Vector::from_slice(&[0.7, 48.0]);
        let back = s.denormalize(&s.normalize(&raw));
        assert!((&back - &raw).norm_inf() < 1e-12);
    }

    #[test]
    fn range_maps_to_unit_interval() {
        let s = ChannelScaler::from_ranges(&[(0.5, 2.0)]);
        assert!((s.normalize(&Vector::from_slice(&[0.5]))[0] + 1.0).abs() < 1e-12);
        assert!((s.normalize(&Vector::from_slice(&[2.0]))[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_data_centers_on_mean() {
        let data = vec![
            Vector::from_slice(&[1.0, 10.0]),
            Vector::from_slice(&[3.0, 10.0]),
        ];
        let s = ChannelScaler::from_data(&data);
        assert!((s.offsets()[0] - 2.0).abs() < 1e-12);
        // Channel 1 never moved: span defaults to 1.0.
        assert_eq!(s.spans()[1], 1.0);
        let n = s.normalize(&Vector::from_slice(&[3.0, 10.0]));
        assert!((n[0] - 1.0).abs() < 1e-12);
        assert_eq!(n[1], 0.0);
    }

    #[test]
    fn normalize_all_applies_elementwise() {
        let s = ChannelScaler::from_ranges(&[(0.0, 2.0)]);
        let seq = vec![Vector::from_slice(&[0.0]), Vector::from_slice(&[2.0])];
        let normed = s.normalize_all(&seq);
        assert_eq!(normed[0][0], -1.0);
        assert_eq!(normed[1][0], 1.0);
        let back = s.denormalize_all(&normed);
        assert_eq!(back[1][0], 2.0);
    }

    #[test]
    fn into_variants_match_allocating_bitwise() {
        let s = ChannelScaler::from_ranges(&[(0.5, 2.0), (16.0, 128.0)]);
        let raw = Vector::from_slice(&[0.7, 48.0]);
        let want_n = s.normalize(&raw);
        let mut got_n = Vector::zeros(2);
        s.normalize_into(&raw, &mut got_n);
        let want_d = s.denormalize(&want_n);
        let mut got_d = Vector::zeros(2);
        s.denormalize_into(&got_n, &mut got_d);
        for c in 0..2 {
            assert_eq!(got_n[c].to_bits(), want_n[c].to_bits());
            assert_eq!(got_d[c].to_bits(), want_d[c].to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "degenerate range")]
    fn rejects_degenerate_range() {
        let _ = ChannelScaler::from_ranges(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn rejects_wrong_width() {
        let s = ChannelScaler::from_ranges(&[(0.0, 1.0)]);
        let _ = s.normalize(&Vector::from_slice(&[0.0, 1.0]));
    }
}

#[cfg(test)]
mod detrend_tests {
    use super::*;

    #[test]
    fn removes_constant_offset() {
        let seq: Vec<Vector> = (0..100).map(|_| Vector::from_slice(&[5.0])).collect();
        let out = remove_moving_mean(&seq, 11);
        assert!(out.iter().all(|v| v[0].abs() < 1e-12));
    }

    #[test]
    fn preserves_fast_content_removes_slow_step() {
        // Slow step at t=200 plus fast ±1 square wave of period 10.
        let seq: Vec<Vector> = (0..400)
            .map(|t| {
                let slow = if t < 200 { 0.0 } else { 10.0 };
                let fast = if (t / 5) % 2 == 0 { 1.0 } else { -1.0 };
                Vector::from_slice(&[slow + fast])
            })
            .collect();
        let out = remove_moving_mean(&seq, 101);
        // Away from the step, the fast wave survives nearly intact.
        assert!((out[100][0].abs() - 1.0).abs() < 0.1, "{}", out[100][0]);
        assert!((out[300][0].abs() - 1.0).abs() < 0.1);
        // The slow 10.0 offset is gone in the second half interior.
        assert!(out[350][0].abs() < 1.5);
    }

    #[test]
    fn empty_input_ok() {
        assert!(remove_moving_mean(&[], 11).is_empty());
    }

    #[test]
    fn window_one_zeroes_everything() {
        let seq = vec![Vector::from_slice(&[3.0]); 5];
        let out = remove_moving_mean(&seq, 1);
        assert!(out.iter().all(|v| v[0].abs() < 1e-12));
    }
}
