//! # mimo-sysid
//!
//! Black-box system identification for architectural control, reproducing
//! the role of MATLAB's System Identification Toolbox in the ISCA 2016 MIMO
//! paper (§IV-B1, "Modeling the System").
//!
//! The paper's flow is:
//!
//! 1. Apply "waveforms with special patterns" at the plant inputs —
//!    [`signal`] provides PRBS, staircase, and multilevel excitation.
//! 2. Record input/output waveforms and normalize them — [`scale`].
//! 3. Fit a multivariable ARX model with least squares — [`arx`] — assuming
//!    `y(t)` depends on the previous `na` outputs and the current and
//!    previous inputs plus a noise term.
//! 4. Realize the ARX fit as a state-space model `(A, B, C, D)` of chosen
//!    dimension — [`realize`].
//! 5. Estimate the two "unpredictability matrices" (process and measurement
//!    noise covariances) from the fit residuals — [`noise`].
//! 6. Validate against held-out applications and compute the maximum
//!    prediction error that sets the uncertainty guardband — [`validate`]
//!    (this drives Figure 7 and §VI-A2).
//!
//! # Example
//!
//! ```
//! use mimo_sysid::arx::{ArxOrders, ArxModel};
//! use mimo_linalg::Vector;
//!
//! // Identify y(t) = 0.5 y(t-1) + u(t-1) from clean data.
//! let mut u = Vec::new();
//! let mut y = Vec::new();
//! let (mut y_prev, mut u_prev) = (0.0, 0.0);
//! for t in 0..200usize {
//!     let ut = ((t / 7) % 3) as f64 - 1.0;
//!     let yt = 0.5 * y_prev + u_prev;
//!     u.push(Vector::from_slice(&[ut]));
//!     y.push(Vector::from_slice(&[yt]));
//!     y_prev = yt;
//!     u_prev = ut;
//! }
//! let orders = ArxOrders { na: 1, nb: 1, direct_feedthrough: false };
//! let model = ArxModel::fit(&u, &y, orders).unwrap();
//! assert!((model.a_coeffs()[0][(0, 0)] - 0.5).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arx;
pub mod noise;
pub mod realize;
pub mod scale;
pub mod signal;
pub mod validate;

mod error;

pub use error::SysidError;

/// Convenient result alias for identification operations.
pub type Result<T> = std::result::Result<T, SysidError>;
