//! State-space realization of ARX models.
//!
//! The LQG machinery wants the paper's Equations (1)–(2):
//!
//! ```text
//! x(t+1) = A x(t) + B u(t)
//! y(t)   = C x(t) + D u(t)
//! ```
//!
//! An ARX model realizes exactly into this form by taking the state to be
//! the stacked regression history
//! `x(t) = [y(t−1); …; y(t−na); u(t−1); …; u(t−L)]`,
//! where `L` is the deepest input lag used. The realization is not minimal,
//! but it is exact, numerically trivial to form, and its dimension
//! `na·O + L·I` is the "number of dimensions of the system state" that the
//! paper sweeps in Figure 7.

use mimo_linalg::{Matrix, Vector};

use crate::arx::ArxModel;

/// A discrete-time state-space realization `(A, B, C, D)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Realization {
    /// State evolution matrix (`N x N`).
    pub a: Matrix,
    /// Input-to-state matrix (`N x I`).
    pub b: Matrix,
    /// State-to-output matrix (`O x N`).
    pub c: Matrix,
    /// Feed-through matrix (`O x I`).
    pub d: Matrix,
}

impl Realization {
    /// State dimension `N`.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs `I`.
    pub fn num_inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs `O`.
    pub fn num_outputs(&self) -> usize {
        self.c.rows()
    }

    /// Advances the state one step: returns `(x_next, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `u` have the wrong dimension.
    pub fn step(&self, x: &Vector, u: &Vector) -> (Vector, Vector) {
        let x_next =
            &self.a.mul_vec(x).expect("state dim") + &self.b.mul_vec(u).expect("input dim");
        let y = &self.c.mul_vec(x).expect("state dim") + &self.d.mul_vec(u).expect("input dim");
        (x_next, y)
    }

    /// Free-run simulation from initial state `x0` under the input sequence.
    pub fn simulate(&self, x0: &Vector, inputs: &[Vector]) -> Vec<Vector> {
        let mut x = x0.clone();
        let mut ys = Vec::with_capacity(inputs.len());
        for u in inputs {
            let (x_next, y) = self.step(&x, u);
            ys.push(y);
            x = x_next;
        }
        ys
    }

    /// Builds the state vector corresponding to a recorded history, so a
    /// simulation can start flush with measured data.
    ///
    /// `y_hist` and `u_hist` are ordered oldest-first and must hold at least
    /// `na` outputs and `L` inputs respectively; the *most recent* samples
    /// are `y(t−1)` and `u(t−1)`.
    ///
    /// # Panics
    ///
    /// Panics if the histories are too short.
    pub fn state_from_history(
        &self,
        y_hist: &[Vector],
        u_hist: &[Vector],
        na: usize,
        input_lags: usize,
    ) -> Vector {
        let o = self.num_outputs();
        let i = self.num_inputs();
        assert!(y_hist.len() >= na, "output history too short");
        assert!(u_hist.len() >= input_lags, "input history too short");
        let mut x = Vector::zeros(self.state_dim());
        let mut idx = 0;
        // y(t-1) … y(t-na): most recent first.
        for k in 0..na {
            let v = &y_hist[y_hist.len() - 1 - k];
            for c in 0..o {
                x[idx] = v[c];
                idx += 1;
            }
        }
        for k in 0..input_lags {
            let v = &u_hist[u_hist.len() - 1 - k];
            for c in 0..i {
                x[idx] = v[c];
                idx += 1;
            }
        }
        x
    }
}

/// Realizes an ARX model as a state-space system.
///
/// # Example
///
/// ```
/// use mimo_sysid::arx::{ArxModel, ArxOrders};
/// use mimo_sysid::realize::to_state_space;
/// use mimo_linalg::Vector;
///
/// # fn main() -> Result<(), mimo_sysid::SysidError> {
/// // y(t) = 0.5 y(t-1) + u(t-1)
/// let mut u = Vec::new();
/// let mut y = Vec::new();
/// let (mut y1, mut u1) = (0.0, 0.0);
/// for t in 0..200usize {
///     let ut = ((t * 13) % 7) as f64 / 3.0 - 1.0;
///     let yt = 0.5 * y1 + u1;
///     u.push(Vector::from_slice(&[ut]));
///     y.push(Vector::from_slice(&[yt]));
///     y1 = yt;
///     u1 = ut;
/// }
/// let orders = ArxOrders { na: 1, nb: 1, direct_feedthrough: false };
/// let model = ArxModel::fit(&u, &y, orders)?;
/// let ss = to_state_space(&model);
/// assert_eq!(ss.state_dim(), 2); // one output lag + one input lag
/// # Ok(())
/// # }
/// ```
pub fn to_state_space(model: &ArxModel) -> Realization {
    let o = model.num_outputs();
    let i = model.num_inputs();
    let orders = model.orders();
    let na = orders.na;
    let j0 = usize::from(!orders.direct_feedthrough);
    let last_lag = j0 + orders.nb - 1; // deepest input lag referenced
    let l = last_lag; // number of past inputs stored in the state
    let n = na * o + l * i;

    // Output map: y(t) = C x(t) + D u(t).
    let mut c = Matrix::zeros(o, n);
    let mut d = Matrix::zeros(o, i);
    for (k, a_k) in model.a_coeffs().iter().enumerate() {
        c.set_block(0, k * o, a_k);
    }
    for (j, b_j) in model.b_coeffs().iter().enumerate() {
        let lag = j0 + j;
        if lag == 0 {
            d = b_j.clone();
        } else {
            c.set_block(0, na * o + (lag - 1) * i, b_j);
        }
    }

    // State update.
    let mut a = Matrix::zeros(n, n);
    let mut b = Matrix::zeros(n, i);
    // Rows 0..o: y(t) = C x + D u.
    a.set_block(0, 0, &c);
    b.set_block(0, 0, &d);
    // Shift output history: y(t−k) ← y(t−k+1).
    for k in 1..na {
        a.set_block(k * o, (k - 1) * o, &Matrix::identity(o));
    }
    if l > 0 {
        // u(t) enters the first input-history slot.
        b.set_block(na * o, 0, &Matrix::identity(i));
        // Shift input history.
        for k in 1..l {
            a.set_block(na * o + k * i, na * o + (k - 1) * i, &Matrix::identity(i));
        }
    }

    Realization { a, b, c, d }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arx::ArxOrders;

    /// Generate data from a known 2-in 2-out system and fit it.
    fn fitted_mimo() -> (ArxModel, Vec<Vector>, Vec<Vector>) {
        let a1 = Matrix::from_rows(&[&[0.5, 0.1], &[-0.1, 0.3]]);
        let b1 = Matrix::from_rows(&[&[1.0, 0.2], &[0.0, -0.7]]);
        let steps = 600;
        let mut u = Vec::new();
        let mut y = Vec::new();
        let mut yprev = Vector::zeros(2);
        let mut uprev = Vector::zeros(2);
        for t in 0..steps {
            let ut = Vector::from_slice(&[
                ((t * 31) % 11) as f64 / 5.0 - 1.0,
                ((t * 7) % 13) as f64 / 6.0 - 1.0,
            ]);
            let yt = &a1.mul_vec(&yprev).unwrap() + &b1.mul_vec(&uprev).unwrap();
            u.push(ut.clone());
            y.push(yt.clone());
            yprev = yt;
            uprev = ut;
        }
        let orders = ArxOrders {
            na: 1,
            nb: 1,
            direct_feedthrough: false,
        };
        let m = ArxModel::fit(&u, &y, orders).unwrap();
        (m, u, y)
    }

    #[test]
    fn realization_dimension() {
        let (m, _, _) = fitted_mimo();
        let ss = to_state_space(&m);
        // na=1, O=2 → 2 states from outputs; L=1, I=2 → 2 from inputs.
        assert_eq!(ss.state_dim(), 4);
        assert_eq!(ss.num_inputs(), 2);
        assert_eq!(ss.num_outputs(), 2);
    }

    #[test]
    fn realization_reproduces_arx_simulation() {
        let (m, u, y) = fitted_mimo();
        let ss = to_state_space(&m);
        // Start simulation at t=1 with the recorded history.
        let x0 = ss.state_from_history(&y[..1], &u[..1], 1, 1);
        let ys = ss.simulate(&x0, &u[1..]);
        let max_err = ys
            .iter()
            .zip(&y[1..])
            .map(|(a, b)| (a - b).norm_inf())
            .fold(0.0, f64::max);
        assert!(max_err < 1e-6, "max error {max_err}");
    }

    #[test]
    fn feedthrough_lands_in_d() {
        // y(t) = 0.4 y(t-1) + 2 u(t)
        let mut u = Vec::new();
        let mut y = Vec::new();
        let mut y1 = 0.0;
        for t in 0..300usize {
            let ut = ((t * 13) % 9) as f64 / 4.0 - 1.0;
            let yt = 0.4 * y1 + 2.0 * ut;
            u.push(Vector::from_slice(&[ut]));
            y.push(Vector::from_slice(&[yt]));
            y1 = yt;
        }
        let orders = ArxOrders {
            na: 1,
            nb: 1,
            direct_feedthrough: true,
        };
        let m = ArxModel::fit(&u, &y, orders).unwrap();
        let ss = to_state_space(&m);
        assert_eq!(ss.state_dim(), 1); // only y(t-1); no input history
        assert!((ss.d[(0, 0)] - 2.0).abs() < 1e-6);
        assert!((ss.c[(0, 0)] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn deeper_orders_give_larger_states() {
        let mut u = Vec::new();
        let mut y = Vec::new();
        let (mut y1, mut y2, mut u1, mut u2) = (0.0, 0.0, 0.0, 0.0);
        for t in 0..500usize {
            let ut = ((t * 29) % 17) as f64 / 8.0 - 1.0;
            let yt = 0.4 * y1 + 0.2 * y2 + 0.5 * u1 - 0.2 * u2;
            u.push(Vector::from_slice(&[ut]));
            y.push(Vector::from_slice(&[yt]));
            y2 = y1;
            y1 = yt;
            u2 = u1;
            u1 = ut;
        }
        let orders = ArxOrders {
            na: 2,
            nb: 2,
            direct_feedthrough: false,
        };
        let m = ArxModel::fit(&u, &y, orders).unwrap();
        let ss = to_state_space(&m);
        // 2 output lags + 2 input lags, SISO → N = 4.
        assert_eq!(ss.state_dim(), 4);
        let x0 = ss.state_from_history(&y[..2], &u[..2], 2, 2);
        let ys = ss.simulate(&x0, &u[2..]);
        let max_err = ys
            .iter()
            .zip(&y[2..])
            .map(|(a, b)| (a - b).norm_inf())
            .fold(0.0, f64::max);
        assert!(max_err < 1e-6, "max error {max_err}");
    }

    #[test]
    fn step_outputs_match_simulate() {
        let (m, u, _) = fitted_mimo();
        let ss = to_state_space(&m);
        let x0 = Vector::zeros(ss.state_dim());
        let ys = ss.simulate(&x0, &u[..10]);
        let mut x = x0;
        for (t, uu) in u[..10].iter().enumerate() {
            let (xn, y) = ss.step(&x, uu);
            assert_eq!(y, ys[t]);
            x = xn;
        }
    }
}
