//! Property-based tests for the control layer's guarantees.

use mimo_core::dare::{gain_from, residual, solve_dare};
use mimo_core::kalman::KalmanFilter;
use mimo_core::lqr::design_lqr;
use mimo_core::optimizer::{Metric, Optimizer};
use mimo_core::ss::StateSpace;
use mimo_linalg::{eigen, Matrix};
use proptest::prelude::*;

/// Strategy: a stable-ish random system with full-rank input coupling.
fn stabilizable_pair(n: usize, m: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (
        proptest::collection::vec(-1.0..1.0f64, n * n),
        proptest::collection::vec(-1.0..1.0f64, n * m),
    )
        .prop_map(move |(av, bv)| {
            let a0 = Matrix::from_vec(n, n, av);
            // Scale to spectral-norm-ish ≤ 1.2 so the pair is stabilizable
            // with the identity-coupled B below.
            let a = a0.scale(1.2 / a0.norm_inf().max(1e-6));
            let mut b = Matrix::from_vec(n, m, bv);
            // Guarantee actuation authority on every state.
            for i in 0..n {
                b[(i, i % m)] += 1.5;
            }
            (a, b)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dare_solution_satisfies_the_equation((a, b) in stabilizable_pair(3, 2)) {
        let q = Matrix::identity(3);
        let r = Matrix::identity(2);
        if let Ok(p) = solve_dare(&a, &b, &q, &r) {
            let res = residual(&a, &b, &q, &r, &p).unwrap();
            prop_assert!(res < 1e-6 * p.max_abs().max(1.0), "residual {res}");
            // P is symmetric PSD (diagonal non-negative).
            for i in 0..3 {
                prop_assert!(p[(i, i)] >= -1e-9);
                for j in 0..3 {
                    prop_assert!((p[(i, j)] - p[(j, i)]).abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn lqr_closed_loop_is_schur_stable((a, b) in stabilizable_pair(4, 2)) {
        let q = Matrix::identity(4);
        let r = Matrix::identity(2).scale(0.5);
        if let Ok(gain) = design_lqr(&a, &b, &q, &r) {
            let acl = &a - &(&b * &gain.k);
            let rho = eigen::spectral_radius(&acl).unwrap();
            prop_assert!(rho < 1.0, "closed-loop radius {rho}");
            prop_assert!((rho - gain.closed_loop_radius).abs() < 1e-9);
        }
    }

    #[test]
    fn lqr_gain_matches_dare_formula((a, b) in stabilizable_pair(3, 1)) {
        let q = Matrix::identity(3).scale(2.0);
        let r = Matrix::identity(1);
        if let Ok(p) = solve_dare(&a, &b, &q, &r) {
            let k = gain_from(&a, &b, &r, &p).unwrap();
            // K = (R + BᵀPB)⁻¹ BᵀPA by construction.
            let btp = &b.transpose() * &p;
            let lhs = &(&r + &(&btp * &b)) * &k;
            let rhs = &btp * &a;
            prop_assert!((&lhs - &rhs).max_abs() < 1e-8);
        }
    }

    #[test]
    fn kalman_estimator_is_stable((a, c_t) in stabilizable_pair(3, 2)) {
        // Duality: a stabilizable (Aᵀ, Cᵀ) pair gives a detectable (A, C).
        let c = c_t.transpose();
        let sys = StateSpace::new(
            a.transpose(),
            Matrix::zeros(3, 1),
            c,
            Matrix::zeros(2, 1),
        )
        .unwrap();
        let w = Matrix::identity(3).scale(0.1);
        let v = Matrix::identity(2).scale(0.1);
        if let Ok(kf) = KalmanFilter::design(&sys, &w, &v) {
            prop_assert!(kf.estimator_radius() < 1.0);
            // Covariance diagonal is non-negative.
            for i in 0..3 {
                prop_assert!(kf.covariance()[(i, i)] >= -1e-9);
            }
        }
    }

    #[test]
    fn dc_gain_matches_long_run_step_response((a, b) in stabilizable_pair(3, 2)) {
        // Make A strictly stable for open-loop simulation.
        let a = a.scale(0.6 / a.norm_inf().max(1e-6));
        let c = Matrix::identity(3);
        let sys = StateSpace::new(a, b, c, Matrix::zeros(3, 2)).unwrap();
        let dc = sys.dc_gain().unwrap();
        // Step on input 0.
        let u = mimo_linalg::Vector::from_slice(&[1.0, 0.0]);
        let mut x = mimo_linalg::Vector::zeros(3);
        let mut y = mimo_linalg::Vector::zeros(3);
        for _ in 0..400 {
            let (xn, yn) = sys.step(&x, &u);
            x = xn;
            y = yn;
        }
        for i in 0..3 {
            prop_assert!((y[i] - dc[(i, 0)]).abs() < 1e-6, "row {i}: {} vs {}", y[i], dc[(i, 0)]);
        }
    }

    #[test]
    fn optimizer_terminates_and_holds_best(
        max_tries in 1usize..15,
        scores in proptest::collection::vec((0.1..5.0f64, 0.1..5.0f64), 20)
    ) {
        let mut opt = Optimizer::new(Metric::EnergyDelay, 1.0, 1.0, max_tries);
        let mut best = f64::NEG_INFINITY;
        let mut iter = scores.into_iter();
        let mut used = 0;
        loop {
            let (ips, p) = iter.next().unwrap();
            best = best.max(Metric::EnergyDelay.score(ips, p));
            used += 1;
            if opt.observe(ips, p).is_none() {
                break;
            }
            prop_assert!(used <= max_tries);
        }
        prop_assert!(opt.is_done());
        prop_assert_eq!(opt.tries_used(), max_tries);
        // Held targets correspond to the best achieved point.
        let held = opt.targets();
        let held_score = Metric::EnergyDelay.score(held[0], held[1]);
        prop_assert!((held_score - best).abs() < 1e-9, "{held_score} vs {best}");
    }

    #[test]
    fn metric_scores_are_monotone(ips in 0.1..5.0f64, p in 0.1..5.0f64) {
        for m in [Metric::Energy, Metric::EnergyDelay, Metric::EnergyDelaySquared] {
            // More IPS at the same power is always at least as good.
            prop_assert!(m.score(ips * 1.1, p) >= m.score(ips, p));
            // More power at the same IPS is always worse.
            prop_assert!(m.score(ips, p * 1.1) < m.score(ips, p));
        }
    }
}
