//! Proof that the steady-state epoch hot path performs zero heap
//! allocations.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up the test drives the allocation-free paths — the scratch-based
//! LQG/Kalman updates, the unchanged-reference `set_reference` fast path,
//! and a full `EpochLoop` epoch over the real `Processor` plant — and
//! asserts the counter does not move.
//!
//! Everything is exercised from ONE `#[test]` function: the counter is
//! process-global, so concurrent tests in the same binary would pollute
//! the measurement windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mimo_core::engine::EpochLoop;
use mimo_core::governor::{fast_governor, Governor, MimoGovernor};
use mimo_core::kalman::KalmanScratch;
use mimo_core::lqg::LqgDesign;
use mimo_core::telemetry::{TelemetryConfig, TelemetrySink};
use mimo_core::StateSpace;
use mimo_linalg::{Matrix, Vector};
use mimo_sim::fault::{FaultInjector, FaultPlan};
use mimo_sim::{InputSet, ProcessorBuilder};
use mimo_sysid::scale::ChannelScaler;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Asserts `window` performs zero allocations. The counter is
/// process-global and the libtest harness occasionally allocates on its
/// own threads mid-window, so a non-zero count is retried: a hot path
/// that truly allocates does so on every attempt, while harness noise
/// (rare to begin with) vanishes across three independent windows.
fn assert_alloc_free(label: &str, mut window: impl FnMut()) {
    let mut deltas = Vec::new();
    for _ in 0..3 {
        let before = allocations();
        window();
        let delta = allocations() - before;
        if delta == 0 {
            return;
        }
        deltas.push(delta);
    }
    panic!("{label} allocated on every attempt: {deltas:?}");
}

/// A small 2-state / 2-input / 2-output design whose physical ranges line
/// up with the processor's frequency and cache knobs.
fn design() -> LqgDesign {
    LqgDesign {
        model: StateSpace::new(
            Matrix::diag(&[0.7, 0.6]),
            Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.6]]),
            Matrix::identity(2),
            Matrix::zeros(2, 2),
        )
        .unwrap(),
        process_noise: Matrix::identity(2).scale(1e-4),
        measurement_noise: Matrix::identity(2).scale(1e-4),
        output_weights: vec![10.0, 1000.0],
        input_weights: vec![0.01, 0.01],
        integral_weight: 0.05,
        input_scaler: ChannelScaler::from_ranges(&[(0.5, 2.0), (2.0, 8.0)]),
        output_scaler: ChannelScaler::from_ranges(&[(0.0, 4.0), (0.0, 4.0)]),
        input_grids: vec![
            (0..=15).map(|i| 0.5 + 0.1 * f64::from(i)).collect(),
            vec![2.0, 4.0, 6.0, 8.0],
        ],
    }
}

#[test]
fn steady_state_epoch_allocates_nothing() {
    // --- Kalman update_into ---------------------------------------------
    let ctrl = design().build().unwrap();
    let sys = ctrl.model().clone();
    let kf = ctrl.kalman().clone();
    let mut xhat = Vector::zeros(2);
    let mut scratch = KalmanScratch::new(2, 2);
    let u = Vector::from_slice(&[0.2, -0.1]);
    let y = Vector::from_slice(&[0.3, 0.1]);
    kf.update_into(&sys, &mut xhat, &u, &y, &mut scratch); // warm
    assert_alloc_free("KalmanFilter::update_into", || {
        for _ in 0..1000 {
            kf.update_into(&sys, &mut xhat, &u, &y, &mut scratch);
        }
    });

    // --- LqgController step_into ----------------------------------------
    let mut ctrl = design().build().unwrap();
    let targets = Vector::from_slice(&[2.5, 2.0]);
    ctrl.set_reference(&targets);
    let y_meas = Vector::from_slice(&[2.3, 1.7]);
    let mut u_out = Vector::zeros(2);
    for _ in 0..50 {
        ctrl.step_into(&y_meas, &mut u_out); // warm
    }
    assert_alloc_free("LqgController::step_into", || {
        for _ in 0..1000 {
            ctrl.step_into(&y_meas, &mut u_out);
        }
    });

    // --- set_reference with an unchanged target -------------------------
    assert_alloc_free("unchanged-target set_reference", || {
        for _ in 0..1000 {
            ctrl.set_reference(&targets);
        }
    });

    // --- Static-storage step_into ----------------------------------------
    // The stack-allocated controller must be exactly as clean — and
    // bit-identical to the dynamic path while we're watching.
    let mut fixed = design()
        .into_static::<2, 2, 2, 6>()
        .expect("design shape is 2-in/2-out/2-state");
    fixed.set_reference(&targets);
    let mut u_fixed = Vector::zeros(2);
    for _ in 0..50 {
        fixed.step_into(&y_meas, &mut u_fixed); // warm
    }
    assert_alloc_free("static LqgController::step_into", || {
        for _ in 0..1000 {
            fixed.step_into(&y_meas, &mut u_fixed);
        }
    });
    // Bit-identity spot check: from a common reset, both storages must
    // produce identical actuations (the retry-looping windows above may
    // have stepped the two controllers different numbers of times).
    ctrl.reset_state();
    fixed.reset_state();
    for _ in 0..25 {
        ctrl.step_into(&y_meas, &mut u_out);
        fixed.step_into(&y_meas, &mut u_fixed);
        assert_eq!(
            u_fixed[0].to_bits(),
            u_out[0].to_bits(),
            "static path diverged from dynamic"
        );
        assert_eq!(u_fixed[1].to_bits(), u_out[1].to_bits());
    }

    // --- A full EpochLoop epoch over the real processor plant -----------
    let plant = ProcessorBuilder::new()
        .app("namd")
        .seed(5)
        .input_set(InputSet::FreqCache)
        .build()
        .unwrap();
    let gov = MimoGovernor::new(design().build().unwrap());
    let mut lp = EpochLoop::new(gov, plant);
    lp.set_targets(&targets);
    lp.prime();
    // Warm-up covers actuator-grid statics, phase-table state, and the
    // first cache resizes.
    for _ in 0..300 {
        lp.step();
    }
    assert_alloc_free("EpochLoop::step over Processor", || {
        for _ in 0..2000 {
            lp.step();
        }
    });

    // Sanity: the boxed-governor form the fleet uses is equally clean.
    // `fast_governor` picks the static storage here (2-in/2-out/2-state),
    // so this window covers the exact monomorphized path the fleet steps.
    let plant = ProcessorBuilder::new()
        .app("astar")
        .seed(9)
        .input_set(InputSet::FreqCache)
        .build()
        .unwrap();
    let gov: Box<dyn Governor + Send> = fast_governor(design().build().unwrap());
    let mut lp = EpochLoop::new(gov, plant);
    lp.set_targets(&targets);
    for _ in 0..300 {
        lp.step();
    }
    assert_alloc_free("boxed-governor EpochLoop::step", || {
        for _ in 0..2000 {
            lp.step();
        }
    });

    // --- Faulting epochs are equally allocation-free ---------------------
    // An aggressive transient process keeps the error path hot: epochs
    // fault, degrade, quarantine, and recover, and none of it may allocate
    // (EpochError carries indices, not strings; the injector reuses its
    // scratch and last-good buffers).
    let plant = ProcessorBuilder::new()
        .app("milc")
        .seed(13)
        .input_set(InputSet::FreqCache)
        .build()
        .unwrap();
    let injector = FaultInjector::new(plant, FaultPlan::transient(0.3, 3, 0xFA11));
    let gov = MimoGovernor::new(design().build().unwrap());
    let mut lp = EpochLoop::new(gov, injector);
    lp.set_targets(&targets);
    // Warm-up fills the injector's active-fault list to its cap and the
    // engine's last-good buffers.
    for _ in 0..300 {
        lp.step();
    }
    assert_alloc_free("faulting EpochLoop::step", || {
        for _ in 0..2000 {
            lp.step();
        }
    });
    assert!(
        lp.fault_epochs() > 100,
        "fault process should have fired: {}",
        lp.fault_epochs()
    );

    // --- Observed epochs are equally allocation-free ----------------------
    // A full ring-buffer telemetry sink rides along: once the ring has
    // filled to capacity (done during warm-up), every further epoch only
    // overwrites slots and bumps fixed-size counters/histograms.
    let plant = ProcessorBuilder::new()
        .app("namd")
        .seed(21)
        .input_set(InputSet::FreqCache)
        .build()
        .unwrap();
    let injector = FaultInjector::new(plant, FaultPlan::transient(0.3, 3, 0xBEEF));
    let gov = MimoGovernor::new(design().build().unwrap());
    let sink = TelemetrySink::new(&TelemetryConfig::trace(128));
    let mut lp = EpochLoop::new(gov, injector).with_observer(sink);
    lp.set_targets(&targets);
    // Warm-up fills the trace ring past capacity so the steady-state
    // window exercises the overwrite path only.
    for _ in 0..300 {
        lp.step();
    }
    assert!(lp.observer().trace.len() == 128, "ring must be full");
    assert_alloc_free("observed (TelemetrySink) EpochLoop::step", || {
        for _ in 0..2000 {
            lp.step();
        }
    });
    // assert_alloc_free may run one to three windows; every stepped epoch
    // must have landed in the sink either way.
    let (_, _, sink) = lp.into_parts();
    assert!(sink.metrics.epochs >= 2300, "{}", sink.metrics.epochs);
    assert!(sink.trace.dropped() > 0);
}
