//! The weight methodology of §IV-B2 and the concrete weight sets of
//! Tables II, III, and V.
//!
//! Output weights (the diagonal of Q) say how bad it is for that output to
//! deviate from target; input weights (the diagonal of R) say how reluctant
//! the controller should be to move that input. Only *relative* values
//! matter: a 100× weight ratio between two outputs makes the controller
//! trade 1% of deviation in the heavy one against 10% in the light one
//! (the quadratic cost square-roots the ratio).

use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A named set of input/output weights for a controller design.
///
/// Weight sets double as **design-cache keys** (the experiment harness
/// memoizes one synthesized controller per distinct weight choice), so
/// they implement [`Eq`] and [`Hash`]. Weights are finite by construction
/// — the design flow rejects non-finite weights before any cache lookup —
/// which makes the derived `PartialEq` a valid equivalence relation here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightSet {
    /// Human-readable label (Table V uses Equal/Inputs/Power/Size).
    pub label: String,
    /// Output weights, ordered `[IPS, power]`.
    pub output: Vec<f64>,
    /// Input weights, ordered `[frequency, cache (, ROB)]`.
    pub input: Vec<f64>,
}

impl WeightSet {
    /// Table III's production weights for the two-input system:
    /// power 10 000, IPS 10, frequency 0.01, cache 0.0005.
    pub fn table_iii_two_input() -> Self {
        WeightSet {
            label: "TableIII-2in".into(),
            output: vec![10.0, 10_000.0],
            input: vec![0.01, 0.0005],
        }
    }

    /// Table III's weights for the three-input system, adding the ROB at
    /// 0.001 (2:1 versus cache resizing, §VI-D).
    pub fn table_iii_three_input() -> Self {
        WeightSet {
            label: "TableIII-3in".into(),
            output: vec![10.0, 10_000.0],
            input: vec![0.01, 0.0005, 0.001],
        }
    }

    /// The four weight choices of Table V (Figure 6's sensitivity study),
    /// given there as `[W_cache, W_freq, W_IPS, W_P]`.
    pub fn table_v() -> Vec<Self> {
        let make = |label: &str, wcache: f64, wfreq: f64, wips: f64, wp: f64| WeightSet {
            label: label.into(),
            output: vec![wips, wp],
            input: vec![wfreq, wcache],
        };
        vec![
            make("Equal", 1.0, 1.0, 1.0, 1.0),
            make("Inputs", 0.01, 0.01, 1.0, 1.0),
            make("Power", 0.01, 0.01, 1.0, 100.0),
            make("Size", 0.001, 0.01, 1.0, 100.0),
        ]
    }

    /// The deviation-tradeoff ratio between two weighted quantities: with
    /// weights `w_hi > w_lo`, the controller accepts `sqrt(w_hi / w_lo)`
    /// units of deviation in the light quantity per unit in the heavy one.
    pub fn tradeoff_ratio(w_hi: f64, w_lo: f64) -> f64 {
        (w_hi / w_lo).sqrt()
    }

    /// Ratio of the power weight to the IPS weight.
    pub fn power_to_ips(&self) -> f64 {
        self.output[1] / self.output[0]
    }
}

/// Valid because weight values are finite (see the struct docs): `==` on
/// finite floats is reflexive, symmetric, and transitive.
impl Eq for WeightSet {}

impl Hash for WeightSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.label.hash(state);
        self.output.len().hash(state);
        for w in self.output.iter().chain(&self.input) {
            // Hash through the bit pattern, normalizing -0.0 to +0.0 so
            // that hashing agrees with `==` on the one finite case where
            // bit patterns and numeric equality disagree.
            let w = if *w == 0.0 { 0.0 } else { *w };
            w.to_bits().hash(state);
        }
    }
}

/// Qualitative output-weight ranking of Table II (highest priority first).
pub const OUTPUT_PRIORITY: [&str; 7] = [
    "voltage_guardband",
    "temperature",
    "power",
    "core_utilization",
    "energy",
    "frame_rate",
    "instructions_per_second",
];

/// Qualitative input-weight ranking of Table II (highest change-overhead
/// first).
pub const INPUT_PRIORITY: [&str; 5] = [
    "cache_power_gating",
    "core_power_gating",
    "frequency",
    "issue_width",
    "ldst_queue_entries",
];

/// Position of a measure in a priority table; lower index = higher weight.
pub fn priority_rank(table: &[&str], name: &str) -> Option<usize> {
    table.iter().position(|&m| m == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_ratios_match_paper() {
        let w = WeightSet::table_iii_two_input();
        // Power:IPS is 1000:1 → √1000 ≈ 31.6 ≈ "30x more important".
        assert!((w.power_to_ips() - 1000.0).abs() < 1e-12);
        let t = WeightSet::tradeoff_ratio(w.output[1], w.output[0]);
        assert!((28.0..35.0).contains(&t), "tradeoff {t}");
        // Frequency:cache is 20:1.
        assert!((w.input[0] / w.input[1] - 20.0).abs() < 1e-12);
        // IPS:frequency is 1000:1.
        assert!((w.output[0] / w.input[0] - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn three_input_adds_rob_at_2_to_1_vs_cache() {
        let w = WeightSet::table_iii_three_input();
        assert_eq!(w.input.len(), 3);
        assert!((w.input[2] / w.input[1] - 2.0).abs() < 1e-12);
        // Other weights unchanged from the two-input set (§VI-D).
        let w2 = WeightSet::table_iii_two_input();
        assert_eq!(w.output, w2.output);
        assert_eq!(&w.input[..2], &w2.input[..]);
    }

    #[test]
    fn table_v_has_the_four_labels() {
        let sets = WeightSet::table_v();
        let labels: Vec<&str> = sets.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["Equal", "Inputs", "Power", "Size"]);
        // Power set: W_P = 100 × W_IPS.
        assert!((sets[2].power_to_ips() - 100.0).abs() < 1e-12);
        // Size set: cache weight 10x below frequency weight.
        assert!((sets[3].input[0] / sets[3].input[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn table_ii_rankings() {
        assert_eq!(priority_rank(&OUTPUT_PRIORITY, "power"), Some(2));
        assert!(
            priority_rank(&OUTPUT_PRIORITY, "power").unwrap()
                < priority_rank(&OUTPUT_PRIORITY, "instructions_per_second").unwrap()
        );
        assert!(
            priority_rank(&INPUT_PRIORITY, "cache_power_gating").unwrap()
                < priority_rank(&INPUT_PRIORITY, "frequency").unwrap()
        );
        assert_eq!(priority_rank(&INPUT_PRIORITY, "nonexistent"), None);
    }

    #[test]
    fn tradeoff_ratio_is_square_root() {
        // The paper's example: a 100x weight means 1% vs 10% deviations.
        assert!((WeightSet::tradeoff_ratio(100.0, 1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn weight_sets_are_cloneable_and_comparable() {
        let w = WeightSet::table_iii_two_input();
        assert_eq!(w.clone(), w);
        assert_ne!(w, WeightSet::table_iii_three_input());
    }

    #[test]
    fn weight_sets_hash_consistently_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let digest = |w: &WeightSet| {
            let mut h = DefaultHasher::new();
            w.hash(&mut h);
            h.finish()
        };
        let a = WeightSet::table_iii_two_input();
        assert_eq!(digest(&a), digest(&a.clone()));
        assert_ne!(digest(&a), digest(&WeightSet::table_iii_three_input()));
        // The one finite case where `==` and bit patterns disagree: a
        // zero weight must hash the same regardless of sign.
        let mut neg = a.clone();
        let mut pos = a.clone();
        neg.input[0] = -0.0;
        pos.input[0] = 0.0;
        assert_eq!(neg, pos);
        assert_eq!(digest(&neg), digest(&pos));
    }

    #[test]
    fn weight_sets_work_as_map_keys() {
        let mut map = std::collections::HashMap::new();
        map.insert(WeightSet::table_iii_two_input(), 1);
        map.insert(WeightSet::table_iii_three_input(), 2);
        assert_eq!(map[&WeightSet::table_iii_two_input()], 1);
        assert_eq!(map.len(), 2);
    }
}
