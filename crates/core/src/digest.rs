//! FNV-1a digests over exact `f64` bit patterns.
//!
//! Every reproducibility check in the workspace — the golden pins in
//! `tests/golden.rs`, `FleetStats::digest`, `ClusterStats::digest`, and the
//! digest columns of the experiment CSVs — reduces runs to one `u64` with
//! the same 64-bit FNV-1a mix. This module is the single definition of
//! that mix; the constants and the xor-then-multiply order are part of the
//! golden contract and must never change.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a mixer over 64-bit words.
///
/// Values are absorbed whole (not byte-wise): each call xors the word into
/// the state and multiplies by [`FNV_PRIME`], exactly the mix the golden
/// digests were recorded with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a digest at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs one 64-bit word.
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs the exact bit pattern of one `f64`.
    ///
    /// No normalization is applied — `-0.0` and `0.0` digest differently,
    /// as do distinct NaN payloads. That is deliberate: the digest asserts
    /// bit-identical runs, not numerically-equal ones.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest of everything absorbed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Order-dependent digest of a slice of `f64` bit patterns — the exact
/// reduction the golden tests pin.
#[must_use]
pub fn digest_f64(values: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    for &v in values {
        h.write_f64(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The historical hand-rolled loop this module replaced; the helper
    /// must reproduce it word for word.
    fn reference(values: &[f64]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for v in values {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    #[test]
    fn matches_the_historical_mix() {
        let cases: [&[f64]; 4] = [
            &[],
            &[0.0],
            &[1.5, -2.25, 3.0e17],
            &[f64::MIN_POSITIVE, f64::MAX, -0.0, 7.125],
        ];
        for vals in cases {
            assert_eq!(digest_f64(vals), reference(vals), "{vals:?}");
        }
    }

    #[test]
    fn empty_digest_is_the_offset_basis() {
        assert_eq!(digest_f64(&[]), FNV_OFFSET);
        assert_eq!(Fnv1a::new().finish(), FNV_OFFSET);
        assert_eq!(Fnv1a::default(), Fnv1a::new());
    }

    #[test]
    fn order_and_sign_matter() {
        assert_ne!(digest_f64(&[1.0, 2.0]), digest_f64(&[2.0, 1.0]));
        assert_ne!(digest_f64(&[0.0]), digest_f64(&[-0.0]));
    }

    #[test]
    fn mixed_word_and_float_writes() {
        let mut h = Fnv1a::new();
        h.write_u64(4);
        h.write_f64(2.5);
        let mut manual = 0xcbf29ce484222325u64;
        for w in [4u64, 2.5f64.to_bits()] {
            manual ^= w;
            manual = manual.wrapping_mul(0x100000001b3);
        }
        assert_eq!(h.finish(), manual);
    }
}
