//! Robust Stability Analysis (RSA) — §IV-B4.
//!
//! "RSA checks whether a perturbation equal in magnitude to the
//! uncertainty, if coming at the worst time and in the worst manner, can
//! make the system unstable." We implement the standard small-gain test
//! for multiplicative *output* uncertainty: the true plant output is
//! `(I + Δ·W) y` with `‖Δ‖∞ ≤ 1` and `W = diag(guardbands)` (e.g. 50% for
//! IPS, 30% for power). The closed loop is robustly stable if
//!
//! ```text
//! ‖ W · T(z) ‖∞ < 1,   T = transfer from the output-injection point to y
//! ```
//!
//! `T` is assembled in state-space from the plant model and the full
//! controller (estimator + Δu feedback + integrator), and the H∞ norm is
//! evaluated on a dense unit-circle frequency grid — a documented
//! approximation of MATLAB's Robust Control Toolbox analysis.

use mimo_linalg::{complex, eigen, Matrix};

use crate::lqg::LqgController;
use crate::ss::StateSpace;
use crate::{ControlError, Result};

/// Result of a robust stability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustReport {
    /// Spectral radius of the nominal closed loop (must be < 1).
    pub nominal_radius: f64,
    /// Peak of `‖W T(e^{jω})‖₂` over the frequency grid.
    pub peak_weighted_gain: f64,
    /// Largest uniform multiplicative uncertainty the loop tolerates
    /// (`1 / ‖T‖∞` with unweighted outputs).
    pub uniform_margin: f64,
    /// Whether the loop passed the weighted small-gain test.
    pub robust: bool,
}

/// Assembles the closed loop of `plant` and `ctrl` with a disturbance
/// input `w` added to the *measured* output and the true output `y` as the
/// system output. States: `[x_plant; x̂; u_prev; q]`.
///
/// # Errors
///
/// Returns [`ControlError::ValidationFailed`] for plants with direct
/// feed-through (the analysis assumes strictly proper identified models)
/// and [`ControlError::DimensionMismatch`] if plant and controller
/// dimensions disagree.
pub fn assemble_closed_loop(plant: &StateSpace, ctrl: &LqgController) -> Result<StateSpace> {
    if plant.d().max_abs() > 1e-12 {
        return Err(ControlError::ValidationFailed {
            what: "RSA supports strictly proper plants (D = 0); identify without feed-through"
                .into(),
        });
    }
    let n = plant.state_dim();
    let i = plant.num_inputs();
    let o = plant.num_outputs();
    let cn = ctrl.model().state_dim();
    if ctrl.num_inputs() != i || ctrl.num_outputs() != o {
        return Err(ControlError::DimensionMismatch {
            what: format!(
                "controller is {}x{}, plant is {i}x{o}",
                ctrl.num_inputs(),
                ctrl.num_outputs()
            ),
        });
    }

    // Partition the LQR gain F over [x̂(cn); u_prev(i); q(o)].
    let f = ctrl.feedback_gain();
    let fx = f.block(0, 0, i, cn);
    let fu = f.block(0, cn, i, i);
    let fq = f.block(0, cn + i, i, o);
    let l = ctrl.kalman().gain().clone();

    let am = ctrl.model().a();
    let bm = ctrl.model().b();
    let cm = ctrl.model().c();
    let (ap, bp, cp) = (plant.a(), plant.b(), plant.c());

    // u = −Fx x̂ + (I − Fu) u_prev − Fq q.
    let i_minus_fu = &Matrix::identity(i) - &fu;
    let neg_fx = fx.scale(-1.0);
    let neg_fq = fq.scale(-1.0);

    let dim = n + cn + i + o;
    let mut a = Matrix::zeros(dim, dim);
    // Plant row: x+ = Ap x + Bp u.
    a.set_block(0, 0, ap);
    a.set_block(0, n, &(bp * &neg_fx));
    a.set_block(0, n + cn, &(bp * &i_minus_fu));
    a.set_block(0, n + cn + i, &(bp * &neg_fq));
    // Estimator row: x̂+ = L Cp x + (Am − Bm Fx − L Cm) x̂
    //                 + Bm (I − Fu) u_prev − Bm Fq q + L w.
    a.set_block(n, 0, &(&l * cp));
    let est = &(am - &(bm * &fx)) - &(&l * cm);
    a.set_block(n, n, &est);
    a.set_block(n, n + cn, &(bm * &i_minus_fu));
    a.set_block(n, n + cn + i, &(bm * &neg_fq));
    // Input-memory row: u_prev+ = u.
    a.set_block(n + cn, n, &neg_fx);
    a.set_block(n + cn, n + cn, &i_minus_fu);
    a.set_block(n + cn, n + cn + i, &neg_fq);
    // Integrator row: q+ = Cp x + q + w.
    a.set_block(n + cn + i, 0, cp);
    a.set_block(n + cn + i, n + cn + i, &Matrix::identity(o));

    // Disturbance input w enters the estimator (through L) and integrator.
    let mut b = Matrix::zeros(dim, o);
    b.set_block(n, 0, &l);
    b.set_block(n + cn + i, 0, &Matrix::identity(o));

    // Output: true plant output y = Cp x.
    let mut c = Matrix::zeros(o, dim);
    c.set_block(0, 0, cp);
    let d = Matrix::zeros(o, o);

    StateSpace::new(a, b, c, d)
}

/// Runs the robust stability analysis.
///
/// `guardbands` are the per-output relative uncertainty bounds (e.g.
/// `[0.5, 0.3]` for 50% IPS / 30% power); `n_grid` is the number of
/// frequency samples in `[0, π]` (the paper's Table III analysis is
/// reproduced well with 256).
///
/// # Errors
///
/// Propagates assembly and numerical failures; an unstable *nominal* loop
/// reports `robust = false` rather than erroring.
pub fn analyze(
    plant: &StateSpace,
    ctrl: &LqgController,
    guardbands: &[f64],
    n_grid: usize,
) -> Result<RobustReport> {
    let o = plant.num_outputs();
    if guardbands.len() != o {
        return Err(ControlError::DimensionMismatch {
            what: format!("{} guardbands for {o} outputs", guardbands.len()),
        });
    }
    let cl = assemble_closed_loop(plant, ctrl)?;
    let nominal_radius = eigen::spectral_radius(cl.a()).map_err(ControlError::Linalg)?;
    if nominal_radius >= 1.0 {
        return Ok(RobustReport {
            nominal_radius,
            peak_weighted_gain: f64::INFINITY,
            uniform_margin: 0.0,
            robust: false,
        });
    }
    // Unweighted T for the uniform margin, weighted W·T for the test.
    let mut peak_t = 0.0_f64;
    let mut peak_wt = 0.0_f64;
    let w_diag = Matrix::diag(guardbands);
    let c_weighted = &w_diag * cl.c();
    let n = n_grid.max(16);
    for k in 0..n {
        let omega = std::f64::consts::PI * k as f64 / (n - 1) as f64;
        let g = complex::frequency_response(cl.a(), cl.b(), cl.c(), cl.d(), omega)
            .map_err(ControlError::Linalg)?;
        peak_t = peak_t.max(g.max_singular_value().map_err(ControlError::Linalg)?);
        let gw = complex::frequency_response(cl.a(), cl.b(), &c_weighted, cl.d(), omega)
            .map_err(ControlError::Linalg)?;
        peak_wt = peak_wt.max(gw.max_singular_value().map_err(ControlError::Linalg)?);
    }
    Ok(RobustReport {
        nominal_radius,
        peak_weighted_gain: peak_wt,
        uniform_margin: if peak_t > 0.0 {
            1.0 / peak_t
        } else {
            f64::INFINITY
        },
        robust: peak_wt < 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lqg::LqgDesign;
    use mimo_sysid::scale::ChannelScaler;

    fn fine_grid() -> Vec<f64> {
        (0..201).map(|i| -1.0 + 0.01 * i as f64).collect()
    }

    fn plant_2x2() -> StateSpace {
        StateSpace::new(
            Matrix::diag(&[0.7, 0.6]),
            Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.6]]),
            Matrix::identity(2),
            Matrix::zeros(2, 2),
        )
        .unwrap()
    }

    fn build_ctrl(input_weights: &[f64]) -> LqgController {
        LqgDesign {
            model: plant_2x2(),
            process_noise: Matrix::identity(2).scale(1e-4),
            measurement_noise: Matrix::identity(2).scale(1e-4),
            output_weights: vec![10.0, 10.0],
            input_weights: input_weights.to_vec(),
            integral_weight: 0.05,
            input_scaler: ChannelScaler::from_ranges(&[(-1.0, 1.0), (-1.0, 1.0)]),
            output_scaler: ChannelScaler::from_ranges(&[(-5.0, 5.0), (-5.0, 5.0)]),
            input_grids: vec![fine_grid(), fine_grid()],
        }
        .build()
        .unwrap()
    }

    #[test]
    fn nominal_loop_is_stable() {
        let ctrl = build_ctrl(&[0.1, 0.1]);
        let report = analyze(&plant_2x2(), &ctrl, &[0.3, 0.3], 64).unwrap();
        assert!(report.nominal_radius < 1.0);
        assert!(report.uniform_margin > 0.0);
    }

    #[test]
    fn cautious_design_is_more_robust() {
        // Higher input weights (more cautious control, §IV-B4's remedy)
        // should not shrink the stability margin.
        let aggressive = build_ctrl(&[0.001, 0.001]);
        let cautious = build_ctrl(&[1.0, 1.0]);
        let ra = analyze(&plant_2x2(), &aggressive, &[0.3, 0.3], 64).unwrap();
        let rc = analyze(&plant_2x2(), &cautious, &[0.3, 0.3], 64).unwrap();
        assert!(
            rc.uniform_margin >= ra.uniform_margin * 0.99,
            "cautious margin {} vs aggressive {}",
            rc.uniform_margin,
            ra.uniform_margin
        );
    }

    #[test]
    fn huge_guardbands_fail_the_test() {
        let ctrl = build_ctrl(&[0.1, 0.1]);
        let report = analyze(&plant_2x2(), &ctrl, &[50.0, 50.0], 64).unwrap();
        assert!(!report.robust, "50x uncertainty cannot be robust");
    }

    #[test]
    fn weighted_gain_scales_with_guardbands() {
        let ctrl = build_ctrl(&[0.1, 0.1]);
        let small = analyze(&plant_2x2(), &ctrl, &[0.1, 0.1], 64).unwrap();
        let large = analyze(&plant_2x2(), &ctrl, &[0.5, 0.5], 64).unwrap();
        assert!((large.peak_weighted_gain / small.peak_weighted_gain - 5.0).abs() < 0.2);
        // Uniform margin is guardband-independent.
        assert!((large.uniform_margin - small.uniform_margin).abs() < 1e-9);
    }

    #[test]
    fn guardband_count_checked() {
        let ctrl = build_ctrl(&[0.1, 0.1]);
        assert!(analyze(&plant_2x2(), &ctrl, &[0.3], 32).is_err());
    }

    #[test]
    fn feedthrough_plants_rejected() {
        let ctrl = build_ctrl(&[0.1, 0.1]);
        let plant_d = StateSpace::new(
            Matrix::diag(&[0.7, 0.6]),
            Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.6]]),
            Matrix::identity(2),
            Matrix::identity(2), // D ≠ 0
        )
        .unwrap();
        assert!(matches!(
            assemble_closed_loop(&plant_d, &ctrl),
            Err(ControlError::ValidationFailed { .. })
        ));
    }

    #[test]
    fn closed_loop_dimensions() {
        let ctrl = build_ctrl(&[0.1, 0.1]);
        let cl = assemble_closed_loop(&plant_2x2(), &ctrl).unwrap();
        // plant(2) + estimator(2) + u_prev(2) + integrator(2).
        assert_eq!(cl.state_dim(), 8);
        assert_eq!(cl.num_inputs(), 2); // w
        assert_eq!(cl.num_outputs(), 2); // y
    }

    #[test]
    fn margin_predicts_actual_perturbation_tolerance() {
        // Simulate the closed loop with a static gain perturbation just
        // inside the uniform margin: it must remain stable.
        let ctrl = build_ctrl(&[0.1, 0.1]);
        let report = analyze(&plant_2x2(), &ctrl, &[0.3, 0.3], 128).unwrap();
        let delta = (report.uniform_margin * 0.5).min(0.45);
        // Perturbed plant: outputs scaled by (1 + delta).
        let p = plant_2x2();
        let perturbed = StateSpace::new(
            p.a().clone(),
            p.b().clone(),
            p.c().scale(1.0 + delta),
            p.d().clone(),
        )
        .unwrap();
        let mut c = ctrl.clone();
        c.set_reference(&mimo_linalg::Vector::from_slice(&[1.0, 1.0]));
        let out_scaler = c.design().output_scaler.clone();
        let in_scaler = c.design().input_scaler.clone();
        let mut x = mimo_linalg::Vector::zeros(2);
        let mut y_phys = out_scaler.denormalize(&mimo_linalg::Vector::zeros(2));
        for _ in 0..1000 {
            let u = c.step(&y_phys);
            let (xn, y_norm) = perturbed.step(&x, &in_scaler.normalize(&u));
            x = xn;
            y_phys = out_scaler.denormalize(&y_norm);
            assert!(y_phys.all_finite());
        }
        assert!(
            x.norm_inf() < 100.0,
            "diverged under tolerated perturbation"
        );
    }
}
