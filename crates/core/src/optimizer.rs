//! Fast Optimization Leveraging Tracking — §V and §VI-B.
//!
//! Instead of searching the low-level configuration space, the optimizer
//! searches the small 2-D *target* space: it proposes `(IPS₀, P₀)` pairs,
//! lets the tracking controller realize each one, and hill-climbs the
//! metric `IPS^k / P` (maximizing it minimizes `E·D^(k−1)`):
//!
//! * "Up" — ask for much more IPS at slightly more power,
//! * "Down" — ask for slightly less IPS at much less power,
//!
//! keeping a move only if the *achieved* score improves, reversing
//! direction otherwise, with no backtracking and at most `MaxTries`
//! trials (Table III: 10). A new search starts when the application
//! changes phase.

use mimo_linalg::Vector;

/// The metric being minimized, `E·D^(k−1)` — maximize `IPS^k / P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Minimize energy (k = 1): maximize `IPS / P`.
    Energy,
    /// Minimize energy × delay (k = 2): maximize `IPS² / P`.
    EnergyDelay,
    /// Minimize energy × delay² (k = 3): maximize `IPS³ / P`.
    EnergyDelaySquared,
}

impl Metric {
    /// The IPS exponent `k`.
    pub fn exponent(&self) -> i32 {
        match self {
            Metric::Energy => 1,
            Metric::EnergyDelay => 2,
            Metric::EnergyDelaySquared => 3,
        }
    }

    /// The score `IPS^k / P` (higher is better).
    pub fn score(&self, ips: f64, power: f64) -> f64 {
        if power <= 0.0 {
            return 0.0;
        }
        ips.max(0.0).powi(self.exponent()) / power
    }
}

/// Search direction in the (IPS, P) target plane (Figure 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Higher IPS, slightly higher power.
    Up,
    /// Slightly lower IPS, much lower power.
    Down,
}

impl Direction {
    fn reversed(self) -> Self {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

/// Default `MaxTries` (Table III).
pub const MAX_TRIES: usize = 10;

/// The big step factor applied to the "free" axis of a move.
const BIG_STEP: f64 = 0.18;
/// The small step factor applied to the "costly" axis of a move. It must
/// still move the costly axis decisively: the tracking controller steers
/// mainly by the power reference, so a power step inside the noise floor
/// makes the trial indistinguishable from the previous point.
const SMALL_STEP: f64 = 0.15;

/// The target-space hill climber.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimizer {
    metric: Metric,
    max_tries: usize,
    tries: usize,
    direction: Direction,
    prev_score: f64,
    best_score: f64,
    best_point: (f64, f64),
    targets: (f64, f64),
    done: bool,
}

impl Optimizer {
    /// Starts a search with initial targets (typically the outputs measured
    /// at the midrange configuration, §VI-B).
    pub fn new(metric: Metric, initial_ips: f64, initial_power: f64, max_tries: usize) -> Self {
        Optimizer {
            metric,
            max_tries,
            tries: 0,
            direction: Direction::Up,
            prev_score: f64::NEG_INFINITY,
            best_score: f64::NEG_INFINITY,
            best_point: (initial_ips.max(1e-6), initial_power.max(1e-6)),
            targets: (initial_ips.max(1e-6), initial_power.max(1e-6)),
            done: false,
        }
    }

    /// The metric under optimization.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The current `(IPS₀, P₀)` targets for the tracking controller.
    pub fn targets(&self) -> Vector {
        Vector::from_slice(&[self.targets.0, self.targets.1])
    }

    /// Whether the search has exhausted its trials.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Trials consumed so far.
    pub fn tries_used(&self) -> usize {
        self.tries
    }

    /// Reports the outputs *achieved* after the controller converged on
    /// the current targets, and advances the search. Returns the next
    /// targets, or `None` once `MaxTries` is exhausted (the search holds
    /// the best point found).
    pub fn observe(&mut self, achieved_ips: f64, achieved_power: f64) -> Option<Vector> {
        if self.done {
            return None;
        }
        let score = self.metric.score(achieved_ips, achieved_power);
        // §VI-B: "If the resulting value of the measure IPS^k/P is higher
        // than the previous one, the algorithm continues to explore more
        // points in the same direction. Otherwise, it reverses."
        if score <= self.prev_score {
            self.direction = self.direction.reversed();
        }
        self.prev_score = score;
        if score > self.best_score {
            self.best_score = score;
            self.best_point = (achieved_ips.max(1e-6), achieved_power.max(1e-6));
        }
        self.tries += 1;
        if self.tries >= self.max_tries {
            // Hold the best point found.
            self.targets = self.best_point;
            self.done = true;
            return None;
        }
        // Propose the next target from the achieved point (the system may
        // not have reached the previous target; search from reality).
        let (ips, p) = (achieved_ips.max(1e-6), achieved_power.max(1e-6));
        self.targets = match self.direction {
            Direction::Up => (ips * (1.0 + BIG_STEP), p * (1.0 + SMALL_STEP)),
            Direction::Down => (ips * (1.0 - SMALL_STEP * 0.5), p * (1.0 - BIG_STEP)),
        };
        Some(self.targets())
    }

    /// Restarts the search (phase change detected, §V): back to the given
    /// starting outputs with a fresh trial budget.
    pub fn restart(&mut self, ips: f64, power: f64) {
        self.tries = 0;
        self.direction = Direction::Up;
        self.prev_score = f64::NEG_INFINITY;
        self.best_score = f64::NEG_INFINITY;
        self.best_point = (ips.max(1e-6), power.max(1e-6));
        self.targets = (ips.max(1e-6), power.max(1e-6));
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_scores() {
        assert!((Metric::Energy.score(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((Metric::EnergyDelay.score(2.0, 1.0) - 4.0).abs() < 1e-12);
        assert!((Metric::EnergyDelaySquared.score(2.0, 2.0) - 4.0).abs() < 1e-12);
        assert_eq!(Metric::EnergyDelay.score(1.0, 0.0), 0.0);
    }

    #[test]
    fn exhausts_max_tries() {
        let mut opt = Optimizer::new(Metric::EnergyDelay, 1.0, 1.0, 5);
        let mut steps = 0;
        while opt.observe(1.0, 1.0).is_some() {
            steps += 1;
        }
        assert!(opt.is_done());
        assert_eq!(opt.tries_used(), 5);
        assert_eq!(steps, 4); // the 5th observe returns None
                              // Further observes are inert.
        assert!(opt.observe(10.0, 1.0).is_none());
    }

    #[test]
    fn climbs_toward_better_scores_on_a_synthetic_plant() {
        // Synthetic plant: achieving a target (ips, p) costs p = ips^1.5
        // (superlinear power). The optimal E·D point for this plant is at
        // the high-IPS end within limits; the optimizer should raise IPS.
        let mut opt = Optimizer::new(Metric::EnergyDelay, 1.0, 1.0, MAX_TRIES);
        let mut ips = 1.0;
        let mut best_seen: f64 = Metric::EnergyDelay.score(ips, ips.powf(1.5));
        let mut t = opt.targets();
        loop {
            // The plant achieves the requested IPS (capped) with its power law.
            ips = t[0].clamp(0.2, 3.0);
            let p = ips.powf(1.5);
            best_seen = best_seen.max(Metric::EnergyDelay.score(ips, p));
            match opt.observe(ips, p) {
                Some(next) => t = next,
                None => break,
            }
        }
        // Score improves over the starting point: ips² / ips^1.5 = ips^0.5,
        // so higher ips is better — the optimizer must have pushed up.
        assert!(ips > 1.5, "final IPS {ips}");
        assert!(best_seen > 1.2, "best score {best_seen}");
    }

    #[test]
    fn descends_when_down_is_better() {
        // Plant where power rises with the cube of IPS: for E (k=1) the
        // score ips/p = ips^{-2} favors LOW ips. Start with Up, fail, and
        // the optimizer must reverse to Down.
        let mut opt = Optimizer::new(Metric::Energy, 1.0, 1.0, MAX_TRIES);
        let mut t = opt.targets();
        let mut final_ips = 1.0_f64;
        let _ = final_ips;
        loop {
            let ips = t[0].clamp(0.1, 3.0);
            let p = ips.powi(3).max(1e-6);
            final_ips = ips;
            match opt.observe(ips, p) {
                Some(next) => t = next,
                None => break,
            }
        }
        assert!(final_ips < 1.0, "should have walked down, got {final_ips}");
    }

    #[test]
    fn restart_resets_budget_and_direction() {
        let mut opt = Optimizer::new(Metric::EnergyDelay, 1.0, 1.0, 3);
        while opt.observe(1.0, 1.0).is_some() {}
        assert!(opt.is_done());
        opt.restart(2.0, 1.5);
        assert!(!opt.is_done());
        assert_eq!(opt.tries_used(), 0);
        let t = opt.targets();
        assert!((t[0] - 2.0).abs() < 1e-12);
        assert!((t[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn up_move_shape_matches_figure_5() {
        let mut opt = Optimizer::new(Metric::EnergyDelay, 1.0, 1.0, MAX_TRIES);
        // First move is Up: next IPS target grows much more than power.
        let next = opt.observe(1.0, 1.0).unwrap();
        let ips_growth = next[0] / 1.0;
        let p_growth = next[1] / 1.0;
        assert!(ips_growth > p_growth, "up move: {ips_growth} vs {p_growth}");
    }

    #[test]
    fn targets_never_negative() {
        let mut opt = Optimizer::new(Metric::Energy, 0.0, 0.0, MAX_TRIES);
        let t = opt.targets();
        assert!(t[0] > 0.0 && t[1] > 0.0);
        let next = opt.observe(0.0, 0.0).unwrap();
        assert!(next[0] > 0.0 && next[1] > 0.0);
    }
}
