//! Controller storage selection: dynamic heap-backed vs fixed-size stack.
//!
//! The deployed controllers are tiny and fixed per architecture, so the
//! runtime layer ([`KalmanFilter::update_into`](crate::kalman::KalmanFilter::update_into),
//! [`LqgController::step_into`](crate::lqg::LqgController::step_into)) is
//! written once, generically, over an [`LqgStorage`] selector. Two
//! selectors exist:
//!
//! * [`DynStore`] — the historical path: every buffer is a heap-backed
//!   [`Matrix`]/[`Vector`] sized at synthesis. This is the default type
//!   parameter everywhere, so existing code is unchanged.
//! * [`StaticStore<NU, NY, NX, NZ>`] — every buffer is a stack-allocated
//!   [`SMatrix`]/[`SVector`]
//!   whose dimensions are const generics. The controller arithmetic
//!   monomorphizes: dimension checks disappear and the tiny loops unroll.
//!
//! Synthesis (DARE, SVD, eigenvalues, RSA, steady-state resolves) always
//! runs on the dynamic path; storage only decides how the *runtime* copies
//! of the gains, model matrices, and state vectors are held. The
//! conversion shims ([`LqgController::into_static`](crate::lqg::LqgController::into_static),
//! [`LqgDesign::into_static`](crate::lqg::LqgDesign::into_static)) sit
//! exactly at that synthesis→runtime boundary.
//!
//! Stable Rust cannot express `NZ = NX + NU + NY` in the type system
//! (`generic_const_exprs` is unstable), so the augmented-state dimension
//! is a fourth const parameter validated at conversion time by
//! [`LqgStorage::check_dims`].

use mimo_linalg::{Matrix, SMatrix, SVector, Vector};

use crate::{ControlError, Result};

/// Selects the storage for every buffer a runtime controller owns.
///
/// The associated types mirror the controller's shapes: `A` is
/// `NX x NX`, `B` is `NX x NU`, `C` is `NY x NX`, `D` is `NY x NU`, the
/// Kalman gain `L` is `NX x NY`, and the LQR gain `F` maps the augmented
/// state `z = [x̃; ũ₋₁; q]` (dimension `NZ = NX + NU + NY`) to `NU`
/// input changes.
pub trait LqgStorage: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// Input-sized vector (`NU`).
    type VecU: mimo_linalg::VecKernel;
    /// Output-sized vector (`NY`).
    type VecY: mimo_linalg::VecKernel;
    /// State-sized vector (`NX`).
    type VecX: mimo_linalg::VecKernel;
    /// Augmented-state-sized vector (`NZ = NX + NU + NY`).
    type VecZ: mimo_linalg::VecKernel;
    /// State evolution matrix `A`.
    type MatA: mimo_linalg::MatVecKernel<Self::VecX, Self::VecX>;
    /// Input-to-state matrix `B`.
    type MatB: mimo_linalg::MatVecKernel<Self::VecU, Self::VecX>;
    /// State-to-output matrix `C`.
    type MatC: mimo_linalg::MatVecKernel<Self::VecX, Self::VecY>;
    /// Feed-through matrix `D`.
    type MatD: mimo_linalg::MatVecKernel<Self::VecU, Self::VecY>;
    /// Kalman predictor gain `L`.
    type GainL: mimo_linalg::MatVecKernel<Self::VecY, Self::VecX>;
    /// LQR feedback gain `F` over the augmented state.
    type GainF: mimo_linalg::MatVecKernel<Self::VecZ, Self::VecU>;

    /// Checks that this storage can hold a controller with `nu` inputs,
    /// `ny` outputs, and `nx` states.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] when a fixed-size
    /// storage's const dimensions disagree with the controller's.
    fn check_dims(nu: usize, ny: usize, nx: usize) -> Result<()>;
}

/// Dynamic storage: heap-backed [`Matrix`]/[`Vector`] buffers sized at
/// synthesis. The default — and the only choice for dimension sweeps
/// (e.g. Figure 7's state-order sweep) whose shapes are not known at
/// compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynStore;

impl LqgStorage for DynStore {
    type VecU = Vector;
    type VecY = Vector;
    type VecX = Vector;
    type VecZ = Vector;
    type MatA = Matrix;
    type MatB = Matrix;
    type MatC = Matrix;
    type MatD = Matrix;
    type GainL = Matrix;
    type GainF = Matrix;

    fn check_dims(_nu: usize, _ny: usize, _nx: usize) -> Result<()> {
        Ok(())
    }
}

/// Fixed-size storage: stack-allocated buffers with const-generic
/// dimensions. `NZ` must equal `NX + NU + NY` (checked at conversion, not
/// expressible on stable Rust).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticStore<const NU: usize, const NY: usize, const NX: usize, const NZ: usize>;

impl<const NU: usize, const NY: usize, const NX: usize, const NZ: usize> LqgStorage
    for StaticStore<NU, NY, NX, NZ>
{
    type VecU = SVector<NU>;
    type VecY = SVector<NY>;
    type VecX = SVector<NX>;
    type VecZ = SVector<NZ>;
    type MatA = SMatrix<NX, NX>;
    type MatB = SMatrix<NX, NU>;
    type MatC = SMatrix<NY, NX>;
    type MatD = SMatrix<NY, NU>;
    type GainL = SMatrix<NX, NY>;
    type GainF = SMatrix<NU, NZ>;

    fn check_dims(nu: usize, ny: usize, nx: usize) -> Result<()> {
        if nu != NU || ny != NY || nx != NX {
            return Err(ControlError::DimensionMismatch {
                what: format!(
                    "static storage is {NU}-in/{NY}-out/{NX}-state, \
                     controller is {nu}-in/{ny}-out/{nx}-state"
                ),
            });
        }
        if NZ != NX + NU + NY {
            return Err(ControlError::DimensionMismatch {
                what: format!(
                    "static storage NZ = {NZ} must equal NX + NU + NY = {}",
                    NX + NU + NY
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_accepts_anything() {
        assert!(DynStore::check_dims(2, 2, 4).is_ok());
        assert!(DynStore::check_dims(9, 1, 30).is_ok());
    }

    #[test]
    fn static_checks_every_dimension() {
        assert!(StaticStore::<2, 2, 4, 8>::check_dims(2, 2, 4).is_ok());
        assert!(StaticStore::<2, 2, 4, 8>::check_dims(3, 2, 4).is_err());
        assert!(StaticStore::<2, 2, 4, 8>::check_dims(2, 1, 4).is_err());
        assert!(StaticStore::<2, 2, 4, 8>::check_dims(2, 2, 5).is_err());
        // NZ must be NX + NU + NY.
        assert!(StaticStore::<2, 2, 4, 9>::check_dims(2, 2, 4).is_err());
    }
}
