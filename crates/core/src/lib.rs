//! # mimo-core
//!
//! The paper's contribution: MIMO control-theoretic controllers for
//! architectural resource management, plus the baseline controllers it is
//! evaluated against.
//!
//! * [`ss`] — discrete-time state-space systems (Equations 1–2).
//! * [`dare`] — discrete algebraic Riccati equation solver, the numerical
//!   core of LQG synthesis.
//! * [`lqr`] / [`kalman`] — optimal state feedback and state estimation.
//! * [`lqg`] — the MIMO LQG *tracking* controller of §III-A/§VI: Δu-form
//!   cost with designer weights Q (tracking error) and R (control effort),
//!   integral action for zero steady-state offset, Kalman state estimation,
//!   and quantization to the discrete actuator grids.
//! * [`weights`] — the qualitative weight methodology of Table II and the
//!   concrete weight sets of Tables III and V.
//! * [`robust`] — Robust Stability Analysis: closed-loop assembly and a
//!   small-gain test against the uncertainty guardbands (§IV-B4).
//! * [`optimizer`] — "Fast Optimization Leveraging Tracking" (§V): the
//!   high-level search that maximizes IPS^k/P to minimize E·D^(k−1).
//! * [`decoupled`] — the Decoupled baseline: two independent SISO LQG
//!   loops (cache→IPS, frequency→power).
//! * [`heuristic`] — the Heuristic baseline: offline-tuned feature ranking
//!   plus threshold rules (Zhang–Hoffmann-style).
//! * [`governor`] — the common per-epoch controller interface every
//!   architecture (Table IV) implements.
//! * [`engine`] — the unified epoch loop (decide → apply → record) that
//!   every driver, from the experiment runners to the fleet runtime,
//!   steps through; its hot path is allocation-free.
//! * [`telemetry`] — allocation-free epoch tracing and metrics behind the
//!   [`Observer`] API: ring-buffer traces, typed
//!   counters/histograms, and JSONL/CSV exporters that drain outside the
//!   hot loop.
//! * [`design`] — the Figure 3 design flow: identify → weight → synthesize
//!   → validate → guardband → RSA, end to end against a live plant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dare;
pub mod decoupled;
pub mod design;
pub mod digest;
pub mod engine;
pub mod governor;
pub mod heuristic;
pub mod kalman;
pub mod lqg;
pub mod lqr;
pub mod optimizer;
pub mod robust;
pub mod ss;
pub mod storage;
pub mod telemetry;
pub mod weights;

mod error;

pub use digest::{digest_f64, Fnv1a};
pub use engine::{EpochCause, EpochError, EpochLoop, StepOutcome};
pub use error::ControlError;
pub use governor::{fast_governor, Governor};
pub use lqg::LqgController;
pub use ss::StateSpace;
pub use storage::{DynStore, LqgStorage, StaticStore};
pub use telemetry::{NullObserver, Observer, TelemetryConfig, TelemetrySink};

/// Convenient result alias for controller design operations.
pub type Result<T> = std::result::Result<T, ControlError>;
