//! Trace exporters: JSONL and CSV writers that drain outside the hot loop.
//!
//! The hot loop only ever appends to the ring buffer; serialization
//! happens after the run (or between runs), when a driver drains the ring
//! through these helpers. Records contain only finite floats (the engine
//! restores last-good buffers on faulted epochs), so plain `Display`
//! formatting yields valid JSON numbers.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use super::record::EpochRecord;

/// Appends one record as a single JSON line (no trailing newline) to
/// `out`. The schema is documented in EXPERIMENTS.md:
///
/// ```json
/// {"type":"epoch","core":3,"epoch":17,"u":[1.3,6.0],"y":[2.91,1.88],
///  "health":"degraded","cause":"non_finite_measurement"}
/// ```
///
/// `core` is omitted for non-fleet loops and `cause` for healthy epochs.
pub fn record_to_json(rec: &EpochRecord, out: &mut String) {
    out.push_str("{\"type\":\"epoch\"");
    if let Some(core) = rec.core {
        let _ = write!(out, ",\"core\":{core}");
    }
    let _ = write!(out, ",\"epoch\":{}", rec.epoch);
    out.push_str(",\"u\":[");
    for (i, v) in rec.inputs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push_str("],\"y\":[");
    for (i, v) in rec.outputs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    let _ = write!(out, "],\"health\":\"{}\"", rec.health.as_str());
    if let Some(cause) = rec.cause {
        let _ = write!(out, ",\"cause\":\"{}\"", cause.as_str());
    }
    out.push('}');
}

/// Writes records as JSON Lines (one object per line).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(w: &mut W, records: &[EpochRecord]) -> io::Result<()> {
    let mut line = String::new();
    for rec in records {
        line.clear();
        record_to_json(rec, &mut line);
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Writes records as CSV with a header row. Channel columns are padded to
/// the widest record in the batch; narrower records leave the extra
/// columns empty.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_csv<W: Write>(w: &mut W, records: &[EpochRecord]) -> io::Result<()> {
    let n_u = records.iter().map(|r| r.n_inputs).max().unwrap_or(0);
    let n_y = records.iter().map(|r| r.n_outputs).max().unwrap_or(0);
    let mut line = String::from("epoch,core,health,cause");
    for i in 0..n_u {
        let _ = write!(line, ",u{i}");
    }
    for i in 0..n_y {
        let _ = write!(line, ",y{i}");
    }
    line.push('\n');
    w.write_all(line.as_bytes())?;
    for rec in records {
        line.clear();
        let _ = write!(line, "{},", rec.epoch);
        if let Some(core) = rec.core {
            let _ = write!(line, "{core}");
        }
        let _ = write!(line, ",{},", rec.health.as_str());
        if let Some(cause) = rec.cause {
            line.push_str(cause.as_str());
        }
        for i in 0..n_u {
            line.push(',');
            if let Some(v) = rec.inputs().get(i) {
                let _ = write!(line, "{v}");
            }
        }
        for i in 0..n_y {
            line.push(',');
            if let Some(v) = rec.outputs().get(i) {
                let _ = write!(line, "{v}");
            }
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Writes records as JSON Lines to a file, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_jsonl<P: AsRef<Path>>(path: P, records: &[EpochRecord]) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut buf = Vec::new();
    write_jsonl(&mut buf, records)?;
    fs::write(path, buf)
}

#[cfg(test)]
mod tests {
    use super::super::record::{CauseCode, Health};
    use super::*;
    use mimo_linalg::Vector;

    fn records() -> Vec<EpochRecord> {
        let u = Vector::from_slice(&[1.3, 6.0]);
        let y = Vector::from_slice(&[2.5, 1.875]);
        vec![
            EpochRecord::capture(0, None, &u, &y, Health::Healthy, None),
            EpochRecord::capture(
                1,
                Some(3),
                &u,
                &y,
                Health::Degraded,
                Some(CauseCode::NonFiniteMeasurement),
            ),
        ]
    }

    #[test]
    fn jsonl_schema_round_trips_key_fields() {
        let mut out = Vec::new();
        write_jsonl(&mut out, &records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"type\":\"epoch\",\"epoch\":0,\"u\":[1.3,6],\"y\":[2.5,1.875],\"health\":\"healthy\"}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"epoch\",\"core\":3,\"epoch\":1,\"u\":[1.3,6],\"y\":[2.5,1.875],\
             \"health\":\"degraded\",\"cause\":\"non_finite_measurement\"}"
        );
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let mut out = Vec::new();
        write_csv(&mut out, &records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "epoch,core,health,cause,u0,u1,y0,y1");
        assert_eq!(lines[1], "0,,healthy,,1.3,6,2.5,1.875");
        assert_eq!(
            lines[2],
            "1,3,degraded,non_finite_measurement,1.3,6,2.5,1.875"
        );
    }

    #[test]
    fn empty_batch_writes_header_only() {
        let mut out = Vec::new();
        write_csv(&mut out, &[]).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "epoch,core,health,cause\n");
        let mut out = Vec::new();
        write_jsonl(&mut out, &[]).unwrap();
        assert!(out.is_empty());
    }
}
