//! Allocation-free epoch tracing and metrics behind the [`Observer`] API.
//!
//! The paper's controller is judged entirely by per-epoch signals (IPS,
//! power, actuator settings), but the runners only exposed end-of-run
//! summaries. This module makes a run *watchable*: the engine notifies an
//! [`Observer`] at four points —
//!
//! * [`Observer::on_epoch`] — once per epoch, with a stack-allocated
//!   [`EpochRecord`] snapshot of the actuation, measurement, and health;
//! * [`Observer::on_fault`] — on every faulted epoch, with the full
//!   [`EpochError`];
//! * [`Observer::on_quarantine`] — once, when the failure streak latches
//!   the quarantine;
//! * [`Observer::on_run_end`] — when the driver finishes, with a
//!   [`RunSummary`].
//!
//! The hook is wired statically: [`crate::engine::EpochLoop`] takes the
//! observer as a type parameter defaulting to [`NullObserver`], whose
//! hooks are empty and report [`Observer::enabled`] `= false`, so the
//! default monomorphizes to the exact pre-telemetry hot loop — golden
//! digests and the zero-allocation guarantee are untouched.
//!
//! The batteries-included observer is [`TelemetrySink`]: a fixed-capacity
//! [`RingTrace`] of recent records plus [`Metrics`] (health counters,
//! per-cause fault counters, IPS/power/latency histograms). Everything it
//! touches per epoch is fixed-size, so steady-state epochs stay
//! allocation-free with telemetry attached; serialization happens after
//! the run via the export writers ([`write_jsonl`], [`write_csv`],
//! [`save_jsonl`]).

use std::time::Instant;

use crate::engine::EpochError;

mod export;
mod metrics;
mod record;
mod ring;

pub use export::{record_to_json, save_jsonl, write_csv, write_jsonl};
pub use metrics::{Histogram, Log2Histogram, Metrics};
pub use record::{CauseCode, EpochRecord, Health, MAX_CHANNELS};
pub use ring::RingTrace;

/// End-of-run summary handed to [`Observer::on_run_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Epochs stepped over the run, including faulted ones.
    pub epochs: u64,
    /// Faulted epochs over the run.
    pub fault_epochs: u64,
    /// Whether the loop ever latched quarantine.
    pub quarantined: bool,
    /// Epoch of the first quarantine latch, if any.
    pub quarantine_epoch: Option<u64>,
}

/// A quarantine latch event, as captured by [`TelemetrySink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// Epoch at which the streak crossed the threshold.
    pub epoch: u64,
    /// Fleet core id, if the loop ran inside a fleet.
    pub core: Option<usize>,
    /// Compact cause code of the latching fault.
    pub cause: CauseCode,
    /// Offending channel for non-finite measurement/actuation causes.
    pub channel: Option<usize>,
}

impl From<&EpochError> for QuarantineEvent {
    fn from(err: &EpochError) -> Self {
        use crate::engine::EpochCause;
        let channel = match &err.cause {
            EpochCause::NonFiniteMeasurement { channel }
            | EpochCause::NonFiniteActuation { channel } => Some(*channel),
            _ => None,
        };
        QuarantineEvent {
            epoch: err.epoch,
            core: err.core,
            cause: (&err.cause).into(),
            channel,
        }
    }
}

/// Receives engine notifications. All hooks default to no-ops, so an
/// observer implements only what it cares about.
///
/// The trait is object-safe: boxed observers (`Box<dyn Observer + Send>`)
/// work anywhere a concrete one does, via the blanket impls below.
pub trait Observer {
    /// Whether this observer wants per-epoch records. The engine skips
    /// building the [`EpochRecord`] entirely when this returns `false`
    /// (statically so for [`NullObserver`]), which is what keeps the
    /// default hot loop bit-and-instruction-identical to an unobserved
    /// one.
    fn enabled(&self) -> bool {
        true
    }

    /// Called once per epoch with this epoch's record.
    fn on_epoch(&mut self, record: &EpochRecord) {
        let _ = record;
    }

    /// Called on every faulted epoch with the full error.
    fn on_fault(&mut self, error: &EpochError) {
        let _ = error;
    }

    /// Called once when the failure streak latches the quarantine.
    fn on_quarantine(&mut self, error: &EpochError) {
        let _ = error;
    }

    /// Called when the driver declares the run over (see
    /// [`crate::engine::EpochLoop::finish`]).
    fn on_run_end(&mut self, summary: &RunSummary) {
        let _ = summary;
    }
}

/// The default observer: every hook is a no-op and [`Observer::enabled`]
/// is statically `false`, so an `EpochLoop` with this observer compiles to
/// the exact pre-telemetry hot loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn on_epoch(&mut self, record: &EpochRecord) {
        (**self).on_epoch(record);
    }

    fn on_fault(&mut self, error: &EpochError) {
        (**self).on_fault(error);
    }

    fn on_quarantine(&mut self, error: &EpochError) {
        (**self).on_quarantine(error);
    }

    fn on_run_end(&mut self, summary: &RunSummary) {
        (**self).on_run_end(summary);
    }
}

impl<O: Observer + ?Sized> Observer for Box<O> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn on_epoch(&mut self, record: &EpochRecord) {
        (**self).on_epoch(record);
    }

    fn on_fault(&mut self, error: &EpochError) {
        (**self).on_fault(error);
    }

    fn on_quarantine(&mut self, error: &EpochError) {
        (**self).on_quarantine(error);
    }

    fn on_run_end(&mut self, summary: &RunSummary) {
        (**self).on_run_end(summary);
    }
}

/// `None` is a disabled observer; `Some` forwards. This is how the fleet
/// threads one statically-typed observer slot through every core whether
/// telemetry is on or off.
impl<O: Observer> Observer for Option<O> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(Observer::enabled)
    }

    fn on_epoch(&mut self, record: &EpochRecord) {
        if let Some(o) = self {
            o.on_epoch(record);
        }
    }

    fn on_fault(&mut self, error: &EpochError) {
        if let Some(o) = self {
            o.on_fault(error);
        }
    }

    fn on_quarantine(&mut self, error: &EpochError) {
        if let Some(o) = self {
            o.on_quarantine(error);
        }
    }

    fn on_run_end(&mut self, summary: &RunSummary) {
        if let Some(o) = self {
            o.on_run_end(summary);
        }
    }
}

/// Configuration for a [`TelemetrySink`] (and, through
/// `FleetConfig::observer`, for per-core fleet telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch; when `false` no sink is attached at all.
    pub enabled: bool,
    /// Ring-buffer capacity for the per-loop epoch trace (0 = metrics
    /// only, no trace).
    pub trace_capacity: usize,
    /// Whether to sample wall-clock epoch-to-epoch latency into
    /// [`Metrics::epoch_latency_ns`]. Off by default: latency is
    /// nondeterministic and excluded from bit-identity comparisons.
    pub time_epochs: bool,
}

impl TelemetryConfig {
    /// Telemetry fully disabled (the default).
    pub fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            trace_capacity: 0,
            time_epochs: false,
        }
    }

    /// Telemetry enabled with a ring trace of `capacity` records.
    pub fn trace(capacity: usize) -> Self {
        TelemetryConfig {
            enabled: true,
            trace_capacity: capacity,
            time_epochs: false,
        }
    }

    /// Telemetry enabled with metrics only (no per-epoch trace).
    pub fn metrics_only() -> Self {
        TelemetryConfig::trace(0)
    }

    /// Enables wall-clock epoch latency sampling (builder style).
    pub fn timed(mut self) -> Self {
        self.time_epochs = true;
        self
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::off()
    }
}

/// The standard observer: ring trace + metrics + quarantine capture.
///
/// Per-epoch work is bounded and allocation-free: one ring slot write,
/// a handful of counter increments, and (optionally) one `Instant::now`.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    /// Recent epoch records, oldest overwritten first.
    pub trace: RingTrace,
    /// Aggregated counters and histograms.
    pub metrics: Metrics,
    /// First quarantine latch observed, if any.
    pub quarantine: Option<QuarantineEvent>,
    /// End-of-run summary, populated by [`Observer::on_run_end`].
    pub summary: Option<RunSummary>,
    time_epochs: bool,
    last_epoch_at: Option<Instant>,
}

impl TelemetrySink {
    /// Builds a sink per `cfg` (ring capacity, latency sampling).
    pub fn new(cfg: &TelemetryConfig) -> Self {
        TelemetrySink {
            trace: RingTrace::with_capacity(cfg.trace_capacity),
            metrics: Metrics::new(),
            quarantine: None,
            summary: None,
            time_epochs: cfg.time_epochs,
            last_epoch_at: None,
        }
    }
}

impl Observer for TelemetrySink {
    fn on_epoch(&mut self, record: &EpochRecord) {
        if self.time_epochs {
            let now = Instant::now();
            if let Some(prev) = self.last_epoch_at {
                let ns = u64::try_from(now.duration_since(prev).as_nanos()).unwrap_or(u64::MAX);
                self.metrics.epoch_latency_ns.record(ns);
            }
            self.last_epoch_at = Some(now);
        }
        self.metrics.record(record);
        self.trace.push(*record);
    }

    fn on_quarantine(&mut self, error: &EpochError) {
        self.metrics.quarantines += 1;
        if self.quarantine.is_none() {
            self.quarantine = Some(error.into());
        }
    }

    fn on_run_end(&mut self, summary: &RunSummary) {
        self.summary = Some(*summary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EpochCause;
    use mimo_linalg::Vector;

    fn record(epoch: u64, health: Health, cause: Option<CauseCode>) -> EpochRecord {
        let u = Vector::from_slice(&[1.3, 6.0]);
        let y = Vector::from_slice(&[2.5, 1.75]);
        EpochRecord::capture(epoch, Some(2), &u, &y, health, cause)
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
        // Blanket impls forward `enabled`.
        let mut null = NullObserver;
        assert!(!Observer::enabled(&&mut null));
        let boxed: Box<dyn Observer> = Box::new(NullObserver);
        assert!(!boxed.enabled());
        assert!(!None::<TelemetrySink>.enabled());
        assert!(Some(TelemetrySink::new(&TelemetryConfig::trace(4))).enabled());
    }

    #[test]
    fn sink_accumulates_trace_metrics_and_quarantine() {
        let mut sink = TelemetrySink::new(&TelemetryConfig::trace(8));
        sink.on_epoch(&record(0, Health::Healthy, None));
        sink.on_epoch(&record(
            1,
            Health::Degraded,
            Some(CauseCode::NonFiniteMeasurement),
        ));
        let err = EpochError {
            epoch: 2,
            core: Some(2),
            cause: EpochCause::NonFiniteMeasurement { channel: 1 },
        };
        sink.on_fault(&err);
        sink.on_quarantine(&err);
        sink.on_epoch(&record(
            2,
            Health::Quarantined,
            Some(CauseCode::NonFiniteMeasurement),
        ));
        sink.on_run_end(&RunSummary {
            epochs: 3,
            fault_epochs: 2,
            quarantined: true,
            quarantine_epoch: Some(2),
        });
        assert_eq!(sink.trace.len(), 3);
        assert_eq!(sink.metrics.epochs, 3);
        assert_eq!(sink.metrics.fault_epochs, 2);
        assert_eq!(sink.metrics.quarantines, 1);
        let q = sink.quarantine.expect("quarantine captured");
        assert_eq!(q.epoch, 2);
        assert_eq!(q.core, Some(2));
        assert_eq!(q.cause, CauseCode::NonFiniteMeasurement);
        assert_eq!(q.channel, Some(1));
        assert_eq!(sink.summary.unwrap().quarantine_epoch, Some(2));
        // A second latch (e.g. after a fallback rescue fails) keeps the
        // first event but still counts.
        sink.on_quarantine(&EpochError { epoch: 9, ..err });
        assert_eq!(sink.metrics.quarantines, 2);
        assert_eq!(sink.quarantine.unwrap().epoch, 2);
    }

    #[test]
    fn timed_sink_samples_latency() {
        let mut sink = TelemetrySink::new(&TelemetryConfig::metrics_only().timed());
        for e in 0..5 {
            sink.on_epoch(&record(e, Health::Healthy, None));
        }
        // 5 epochs → 4 inter-epoch gaps.
        assert_eq!(sink.metrics.epoch_latency_ns.count(), 4);
        // Untimed sinks sample nothing.
        let mut cold = TelemetrySink::new(&TelemetryConfig::metrics_only());
        cold.on_epoch(&record(0, Health::Healthy, None));
        cold.on_epoch(&record(1, Health::Healthy, None));
        assert_eq!(cold.metrics.epoch_latency_ns.count(), 0);
    }
}
