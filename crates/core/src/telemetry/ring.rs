//! Fixed-capacity ring buffer for epoch records.
//!
//! The buffer allocates once at construction and never again: pushes into
//! a full ring overwrite the oldest record (counting what was dropped), so
//! the steady-state epoch path stays allocation-free no matter how long
//! the run is.

use super::record::EpochRecord;
use super::Observer;

/// A fixed-capacity trace of the most recent epoch records.
#[derive(Debug, Clone)]
pub struct RingTrace {
    buf: Vec<EpochRecord>,
    capacity: usize,
    /// Index of the oldest record once the buffer has wrapped.
    head: usize,
    /// Records overwritten because the ring was full.
    dropped: u64,
}

impl RingTrace {
    /// Creates a ring holding at most `capacity` records. A capacity of 0
    /// is legal and makes every push a drop-only no-op.
    pub fn with_capacity(capacity: usize) -> Self {
        RingTrace {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full. Never
    /// allocates: within capacity it fills pre-reserved space, beyond it
    /// it overwrites in place.
    #[inline]
    pub fn push(&mut self, rec: EpochRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records lost to overwriting (or to a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held records oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &EpochRecord> {
        let (older, newer) = (&self.buf[self.head..], &self.buf[..self.head]);
        older.iter().chain(newer.iter())
    }

    /// Copies the held records out, oldest → newest (allocates — call
    /// outside the hot loop, e.g. when draining to an exporter).
    pub fn to_vec(&self) -> Vec<EpochRecord> {
        self.iter().copied().collect()
    }
}

impl Observer for RingTrace {
    fn on_epoch(&mut self, record: &EpochRecord) {
        self.push(*record);
    }
}

#[cfg(test)]
mod tests {
    use super::super::record::Health;
    use super::*;
    use mimo_linalg::Vector;

    fn rec(epoch: u64) -> EpochRecord {
        let u = Vector::from_slice(&[epoch as f64, 0.0]);
        EpochRecord::capture(epoch, None, &u, &u, Health::Healthy, None)
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut ring = RingTrace::with_capacity(4);
        assert!(ring.is_empty());
        for e in 0..4 {
            ring.push(rec(e));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0);
        let order: Vec<u64> = ring.iter().map(|r| r.epoch).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        // Wrap: 0 and 1 are overwritten by 4 and 5.
        ring.push(rec(4));
        ring.push(rec(5));
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let order: Vec<u64> = ring.iter().map(|r| r.epoch).collect();
        assert_eq!(order, vec![2, 3, 4, 5]);
        assert_eq!(
            ring.to_vec().iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn wraps_many_times_without_growing() {
        let mut ring = RingTrace::with_capacity(3);
        for e in 0..1000 {
            ring.push(rec(e));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.dropped(), 997);
        let order: Vec<u64> = ring.iter().map(|r| r.epoch).collect();
        assert_eq!(order, vec![997, 998, 999]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut ring = RingTrace::with_capacity(0);
        ring.push(rec(0));
        ring.push(rec(1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.to_vec(), vec![]);
    }
}
