//! Typed counters and histograms for epoch telemetry.
//!
//! All state is fixed-size after construction, so recording into metrics
//! on the hot path performs no heap allocations. Merging is plain counter
//! addition plus a fixed-order floating-point reduction, so merging
//! per-core metrics **in core order** yields bit-identical results no
//! matter how many worker threads produced them.

use super::record::{CauseCode, EpochRecord, Health};

/// A linear-binned histogram over a fixed `[lo, hi)` range. Out-of-range
/// values clamp into the edge bins; non-finite values are counted
/// separately and never recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples recorded (finite only).
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    non_finite: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite: 0,
        }
    }

    /// Records one sample (no allocation).
    #[inline]
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        let bins = self.counts.len();
        let t = (v - self.lo) / (self.hi - self.lo) * bins as f64;
        let idx = (t as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Counter addition is commutative and the
    /// float reductions (`sum`, `min`, `max`) are evaluated in call order,
    /// so merging in a fixed order is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different ranges or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo.to_bits(), other.lo.to_bits(), "histogram lo");
        assert_eq!(self.hi.to_bits(), other.hi.to_bits(), "histogram hi");
        assert_eq!(self.counts.len(), other.counts.len(), "histogram bins");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.non_finite += other.non_finite;
    }

    /// Samples recorded (finite values only).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts, lowest bin first.
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded sample (−inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Non-finite samples rejected.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }
}

/// A log₂-bucketed histogram for nanosecond latencies: bucket *i* holds
/// samples in `[2^i, 2^(i+1))` ns (bucket 0 holds 0–1 ns). Fixed 64-bucket
/// storage, so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; 64],
    count: u64,
    max_ns: u64,
}

impl Log2Histogram {
    /// An empty latency histogram.
    pub fn new() -> Self {
        Log2Histogram {
            counts: [0; 64],
            count: 0,
            max_ns: 0,
        }
    }

    /// Records one latency sample in nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros()).saturating_sub(1) as usize;
        self.counts[bucket.min(63)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds `other` into `self` (pure integer addition — commutative).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts (bucket *i* covers `[2^i, 2^(i+1))` ns).
    pub fn bucket_counts(&self) -> &[u64; 64] {
        &self.counts
    }

    /// Largest latency seen, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

/// IPS histogram range (BIPS): generous enough for every catalog plant.
const IPS_RANGE: (f64, f64, usize) = (0.0, 6.0, 48);
/// Power histogram range (watts).
const POWER_RANGE: (f64, f64, usize) = (0.0, 6.0, 48);

/// Aggregated epoch metrics: health counters, per-cause fault counters,
/// and IPS/power/latency distributions.
///
/// Everything except `epoch_latency_ns` is a pure function of the epoch
/// records, so merged metrics are worker-count-independent; wall-clock
/// latency is inherently nondeterministic and is excluded from any
/// determinism claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Epochs recorded.
    pub epochs: u64,
    /// Epochs that completed healthy.
    pub healthy_epochs: u64,
    /// Epochs that faulted (degraded or quarantined).
    pub fault_epochs: u64,
    /// Quarantine latch transitions observed.
    pub quarantines: u64,
    /// Faulted epochs bucketed by [`CauseCode::index`].
    pub faults_by_cause: [u64; CauseCode::COUNT],
    /// Distribution of measured IPS (output channel 0), BIPS.
    pub ips: Histogram,
    /// Distribution of measured power (output channel 1), watts.
    pub power: Histogram,
    /// Distribution of wall-clock epoch-to-epoch latency, nanoseconds
    /// (only populated when timing is enabled; nondeterministic).
    pub epoch_latency_ns: Log2Histogram,
}

impl Metrics {
    /// Empty metrics with the standard IPS/power ranges.
    pub fn new() -> Self {
        Metrics {
            epochs: 0,
            healthy_epochs: 0,
            fault_epochs: 0,
            quarantines: 0,
            faults_by_cause: [0; CauseCode::COUNT],
            ips: Histogram::new(IPS_RANGE.0, IPS_RANGE.1, IPS_RANGE.2),
            power: Histogram::new(POWER_RANGE.0, POWER_RANGE.1, POWER_RANGE.2),
            epoch_latency_ns: Log2Histogram::new(),
        }
    }

    /// Folds one epoch record in (no allocation).
    #[inline]
    pub fn record(&mut self, rec: &EpochRecord) {
        self.epochs += 1;
        match rec.health {
            Health::Healthy => self.healthy_epochs += 1,
            Health::Degraded | Health::Quarantined => self.fault_epochs += 1,
        }
        if let Some(cause) = rec.cause {
            self.faults_by_cause[cause.index()] += 1;
        }
        if rec.n_outputs >= 2 {
            self.ips.record(rec.y[0]);
            self.power.record(rec.y[1]);
        }
    }

    /// Folds `other` into `self`. Call in a fixed order (e.g. core order)
    /// for deterministic float reductions; the counters themselves are
    /// order-independent.
    pub fn merge(&mut self, other: &Metrics) {
        self.epochs += other.epochs;
        self.healthy_epochs += other.healthy_epochs;
        self.fault_epochs += other.fault_epochs;
        self.quarantines += other.quarantines;
        for (a, b) in self.faults_by_cause.iter_mut().zip(&other.faults_by_cause) {
            *a += b;
        }
        self.ips.merge(&other.ips);
        self.power.merge(&other.power);
        self.epoch_latency_ns.merge(&other.epoch_latency_ns);
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_linalg::Vector;

    #[test]
    fn histogram_clamps_and_aggregates() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for v in [0.5, 1.5, 1.6, 3.9, -10.0, 100.0] {
            h.record(v);
        }
        h.record(f64::NAN);
        assert_eq!(h.bin_counts(), &[2, 2, 0, 2]); // -10 clamps low, 100 high
        assert_eq!(h.count(), 6);
        assert_eq!(h.non_finite(), 1);
        assert_eq!(h.min(), -10.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - (0.5 + 1.5 + 1.6 + 3.9 - 10.0 + 100.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_matches_sequential_recording() {
        let samples = [0.1, 0.9, 2.2, 3.3, 1.7, 2.8];
        let mut whole = Histogram::new(0.0, 4.0, 8);
        for &v in &samples {
            whole.record(v);
        }
        let mut a = Histogram::new(0.0, 4.0, 8);
        let mut b = Histogram::new(0.0, 4.0, 8);
        for &v in &samples[..3] {
            a.record(v);
        }
        for &v in &samples[3..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "histogram bins")]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(0.0, 4.0, 8);
        let b = Histogram::new(0.0, 4.0, 4);
        a.merge(&b);
    }

    #[test]
    fn log2_histogram_buckets_powers_of_two() {
        let mut h = Log2Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(1023); // bucket 9
        h.record(1024); // bucket 10
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[9], 1);
        assert_eq!(h.bucket_counts()[10], 1);
        assert_eq!(h.max_ns(), 1024);
        let mut other = Log2Histogram::new();
        other.record(u64::MAX); // top bucket, no overflow
        h.merge(&other);
        assert_eq!(h.bucket_counts()[63], 1);
        assert_eq!(h.max_ns(), u64::MAX);
    }

    #[test]
    fn metrics_bucket_health_and_causes() {
        use super::super::record::{CauseCode, EpochRecord, Health};
        let u = Vector::from_slice(&[1.3, 6.0]);
        let y = Vector::from_slice(&[2.9, 1.8]);
        let mut m = Metrics::new();
        m.record(&EpochRecord::capture(
            0,
            None,
            &u,
            &y,
            Health::Healthy,
            None,
        ));
        m.record(&EpochRecord::capture(
            1,
            None,
            &u,
            &y,
            Health::Degraded,
            Some(CauseCode::NonFiniteMeasurement),
        ));
        m.record(&EpochRecord::capture(
            2,
            None,
            &u,
            &y,
            Health::Quarantined,
            Some(CauseCode::NonFiniteMeasurement),
        ));
        assert_eq!(m.epochs, 3);
        assert_eq!(m.healthy_epochs, 1);
        assert_eq!(m.fault_epochs, 2);
        assert_eq!(
            m.faults_by_cause[CauseCode::NonFiniteMeasurement.index()],
            2
        );
        assert_eq!(m.ips.count(), 3);
        assert_eq!(m.power.count(), 3);
    }

    #[test]
    fn metrics_merge_is_partition_independent() {
        use super::super::record::{EpochRecord, Health};
        let u = Vector::from_slice(&[1.3, 6.0]);
        // Dyadic sample values: every partial sum is exactly representable,
        // so the float reductions are associative here and full equality is
        // meaningful for any partition point.
        let recs: Vec<EpochRecord> = (0..10)
            .map(|e| {
                let y = Vector::from_slice(&[0.5 * e as f64, 0.25 * e as f64]);
                EpochRecord::capture(e as u64, None, &u, &y, Health::Healthy, None)
            })
            .collect();
        let mut whole = Metrics::new();
        for r in &recs {
            whole.record(r);
        }
        // Partition at every split point; merged result must be identical
        // as long as the merge itself runs in order.
        for split in 0..=recs.len() {
            let mut a = Metrics::new();
            let mut b = Metrics::new();
            for r in &recs[..split] {
                a.record(r);
            }
            for r in &recs[split..] {
                b.record(r);
            }
            a.merge(&b);
            assert_eq!(a, whole, "split at {split}");
        }
    }
}
