//! The per-epoch observation record and its compact health/cause codes.
//!
//! [`EpochRecord`] is a fixed-size `Copy` snapshot of one epoch — built on
//! the stack inside the hot loop and handed to the observer by reference,
//! so producing one never touches the heap. Channel storage is capped at
//! [`MAX_CHANNELS`]; every plant in the repo has at most three inputs and
//! two outputs, and anything wider is truncated rather than allocated.

use mimo_linalg::Vector;

use crate::engine::EpochCause;

/// Maximum input/output channels an [`EpochRecord`] stores inline. Wider
/// interfaces are truncated (the record stays `Copy` and heap-free).
pub const MAX_CHANNELS: usize = 4;

/// Health verdict of one epoch, as recorded by the telemetry layer.
///
/// Mirrors [`crate::engine::StepOutcome`] without carrying the error
/// payload, so it stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// The epoch completed without any fault.
    Healthy,
    /// The epoch faulted but the loop is still in service.
    Degraded,
    /// The epoch faulted while the loop was (or just became) quarantined.
    Quarantined,
}

impl Health {
    /// Stable lowercase label used by the JSONL/CSV exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Quarantined => "quarantined",
        }
    }
}

/// Compact, payload-free code for an [`EpochCause`] — the telemetry-side
/// projection used to bucket fault counters without holding the full
/// error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CauseCode {
    /// The plant produced a NaN/Inf measurement.
    NonFiniteMeasurement,
    /// The governor produced a NaN/Inf actuation.
    NonFiniteActuation,
    /// The governor itself rejected the epoch.
    Governor,
    /// The plant itself rejected the epoch.
    Plant,
}

impl CauseCode {
    /// Number of distinct cause codes (sizes the per-cause counters).
    pub const COUNT: usize = 4;

    /// Dense index into a `[u64; CauseCode::COUNT]` counter array.
    pub fn index(&self) -> usize {
        match self {
            CauseCode::NonFiniteMeasurement => 0,
            CauseCode::NonFiniteActuation => 1,
            CauseCode::Governor => 2,
            CauseCode::Plant => 3,
        }
    }

    /// Stable snake_case label used by the JSONL/CSV exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            CauseCode::NonFiniteMeasurement => "non_finite_measurement",
            CauseCode::NonFiniteActuation => "non_finite_actuation",
            CauseCode::Governor => "governor",
            CauseCode::Plant => "plant",
        }
    }
}

impl From<&EpochCause> for CauseCode {
    fn from(cause: &EpochCause) -> Self {
        match cause {
            EpochCause::NonFiniteMeasurement { .. } => CauseCode::NonFiniteMeasurement,
            EpochCause::NonFiniteActuation { .. } => CauseCode::NonFiniteActuation,
            EpochCause::Governor(_) => CauseCode::Governor,
            EpochCause::Plant(_) => CauseCode::Plant,
        }
    }
}

/// One epoch's observation: what was actuated, what was measured, and how
/// healthy the epoch was.
///
/// On faulted epochs the engine restores its buffers to the last healthy
/// values before the record is captured, so `u`/`y` are always finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Fleet core id, when the loop runs inside a fleet.
    pub core: Option<usize>,
    /// Valid entries in `u` (min of the plant's inputs and
    /// [`MAX_CHANNELS`]).
    pub n_inputs: usize,
    /// Valid entries in `y`.
    pub n_outputs: usize,
    /// Actuation applied this epoch (first `n_inputs` entries).
    pub u: [f64; MAX_CHANNELS],
    /// Measurement observed this epoch (first `n_outputs` entries). By
    /// repo convention channel 0 is IPS (BIPS) and channel 1 power (W).
    pub y: [f64; MAX_CHANNELS],
    /// Health verdict of the epoch.
    pub health: Health,
    /// Fault cause when `health` is not [`Health::Healthy`].
    pub cause: Option<CauseCode>,
}

impl EpochRecord {
    /// Snapshots the engine's buffers into a stack record (no heap).
    #[inline]
    pub fn capture(
        epoch: u64,
        core: Option<usize>,
        u: &Vector,
        y: &Vector,
        health: Health,
        cause: Option<CauseCode>,
    ) -> Self {
        let mut ua = [0.0; MAX_CHANNELS];
        let mut ya = [0.0; MAX_CHANNELS];
        let n_inputs = u.len().min(MAX_CHANNELS);
        let n_outputs = y.len().min(MAX_CHANNELS);
        for (slot, v) in ua.iter_mut().zip(u.iter()) {
            *slot = *v;
        }
        for (slot, v) in ya.iter_mut().zip(y.iter()) {
            *slot = *v;
        }
        EpochRecord {
            epoch,
            core,
            n_inputs,
            n_outputs,
            u: ua,
            y: ya,
            health,
            cause,
        }
    }

    /// The valid actuation channels.
    pub fn inputs(&self) -> &[f64] {
        &self.u[..self.n_inputs]
    }

    /// The valid measurement channels.
    pub fn outputs(&self) -> &[f64] {
        &self.y[..self.n_outputs]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_truncates_and_slices() {
        let u = Vector::from_slice(&[1.3, 6.0]);
        let y = Vector::from_slice(&[2.9, 1.8]);
        let r = EpochRecord::capture(7, Some(3), &u, &y, Health::Healthy, None);
        assert_eq!(r.inputs(), &[1.3, 6.0]);
        assert_eq!(r.outputs(), &[2.9, 1.8]);
        assert_eq!(r.epoch, 7);
        assert_eq!(r.core, Some(3));
        // Wider than MAX_CHANNELS: truncated, not allocated.
        let wide = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = EpochRecord::capture(0, None, &wide, &wide, Health::Healthy, None);
        assert_eq!(r.n_inputs, MAX_CHANNELS);
        assert_eq!(r.inputs(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn cause_codes_project_from_epoch_causes() {
        let c: CauseCode = (&EpochCause::NonFiniteMeasurement { channel: 1 }).into();
        assert_eq!(c, CauseCode::NonFiniteMeasurement);
        assert_eq!(c.index(), 0);
        assert_eq!(c.as_str(), "non_finite_measurement");
        let c: CauseCode = (&EpochCause::NonFiniteActuation { channel: 0 }).into();
        assert_eq!(c.index(), 1);
        // Every code has a distinct index below COUNT.
        let all = [
            CauseCode::NonFiniteMeasurement,
            CauseCode::NonFiniteActuation,
            CauseCode::Governor,
            CauseCode::Plant,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.index() < CauseCode::COUNT);
            for b in &all[i + 1..] {
                assert_ne!(a.index(), b.index());
            }
        }
    }

    #[test]
    fn health_labels_are_stable() {
        assert_eq!(Health::Healthy.as_str(), "healthy");
        assert_eq!(Health::Degraded.as_str(), "degraded");
        assert_eq!(Health::Quarantined.as_str(), "quarantined");
    }
}
