//! Steady-state Kalman filtering.
//!
//! §III-A: "the controller begins with a state estimate and generates the
//! system inputs based on this estimate. The controller refines the
//! estimate and learns the true state by comparing the output predicted
//! using the state estimate and the true output." That estimator is the
//! Kalman filter; its steady-state gain comes from the dual Riccati
//! equation over the identified unpredictability matrices `W` (process)
//! and `V` (measurement).

use mimo_linalg::storage::{add_assign_slices, sub_into_slices};
use mimo_linalg::{eigen, MatVecKernel, Matrix, VecKernel, Vector};

use crate::dare::solve_dare;
use crate::ss::StateSpace;
use crate::storage::{DynStore, LqgStorage};
use crate::{ControlError, Result};

/// A steady-state Kalman filter for a [`StateSpace`] plant.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanFilter {
    /// Predictor gain `L` (`states x outputs`).
    l: Matrix,
    /// Error covariance solution of the dual DARE.
    p: Matrix,
    /// Spectral radius of the estimator dynamics `A − L C`.
    estimator_radius: f64,
}

impl KalmanFilter {
    /// Designs the steady-state filter for `sys` with process noise
    /// covariance `w` (`N x N`) and measurement noise covariance `v`
    /// (`O x O`).
    ///
    /// # Errors
    ///
    /// * [`ControlError::DimensionMismatch`] — covariance shapes don't
    ///   match the plant.
    /// * [`ControlError::RiccatiDiverged`] — `(A, C)` not detectable.
    ///
    /// # Example
    ///
    /// ```
    /// use mimo_core::{kalman::KalmanFilter, StateSpace};
    /// use mimo_linalg::Matrix;
    ///
    /// # fn main() -> Result<(), mimo_core::ControlError> {
    /// let sys = StateSpace::new(
    ///     Matrix::from_rows(&[&[0.9]]),
    ///     Matrix::from_rows(&[&[1.0]]),
    ///     Matrix::from_rows(&[&[1.0]]),
    ///     Matrix::zeros(1, 1),
    /// )?;
    /// let kf = KalmanFilter::design(&sys, &Matrix::identity(1), &Matrix::identity(1))?;
    /// assert!(kf.estimator_radius() < 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn design(sys: &StateSpace, w: &Matrix, v: &Matrix) -> Result<Self> {
        let n = sys.state_dim();
        let o = sys.num_outputs();
        if w.shape() != (n, n) {
            return Err(ControlError::DimensionMismatch {
                what: format!("W is {:?}, plant state dim is {n}", w.shape()),
            });
        }
        if v.shape() != (o, o) {
            return Err(ControlError::DimensionMismatch {
                what: format!("V is {:?}, plant output dim is {o}", v.shape()),
            });
        }
        // Duality: the filter Riccati for (A, C, W, V) is the control DARE
        // for (Aᵀ, Cᵀ, W, V).
        let p = solve_dare(&sys.a().transpose(), &sys.c().transpose(), w, v)?;
        // L = A P Cᵀ (C P Cᵀ + V)⁻¹.
        let pct = &p * &sys.c().transpose();
        let s = &(sys.c() * &pct) + v;
        let gain_t = s
            .solve(&(sys.a() * &pct).transpose())
            .map_err(ControlError::Linalg)?;
        let l = gain_t.transpose();
        let a_est = sys.a() - &(&l * sys.c());
        let estimator_radius = eigen::spectral_radius(&a_est).map_err(ControlError::Linalg)?;
        if estimator_radius >= 1.0 {
            return Err(ControlError::ValidationFailed {
                what: format!("estimator not stable (radius {estimator_radius:.4})"),
            });
        }
        Ok(KalmanFilter {
            l,
            p,
            estimator_radius,
        })
    }

    /// The predictor gain `L`.
    pub fn gain(&self) -> &Matrix {
        &self.l
    }

    /// The steady-state error covariance.
    pub fn covariance(&self) -> &Matrix {
        &self.p
    }

    /// Spectral radius of `A − LC` (estimation error dynamics).
    pub fn estimator_radius(&self) -> f64 {
        self.estimator_radius
    }

    /// One predictor update:
    /// `x̂(t+1) = A x̂ + B u + L (y − C x̂ − D u)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches (programming errors).
    pub fn update(&self, sys: &StateSpace, xhat: &Vector, u: &Vector, y: &Vector) -> Vector {
        let mut scratch = KalmanScratch::new(sys.state_dim(), sys.num_outputs());
        let mut x_next = xhat.clone();
        self.update_into(sys, &mut x_next, u, y, &mut scratch);
        x_next
    }

    /// One predictor update, in place and allocation-free: overwrites
    /// `xhat` with `x̂(t+1) = A x̂ + B u + L (y − C x̂ − D u)` using the
    /// caller-provided [`KalmanScratch`].
    ///
    /// Bit-identical to [`KalmanFilter::update`] (which forwards here):
    /// the same matrix-vector products and elementwise sums are evaluated
    /// in the same order.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches (programming errors).
    pub fn update_into(
        &self,
        sys: &StateSpace,
        xhat: &mut Vector,
        u: &Vector,
        y: &Vector,
        s: &mut KalmanScratch,
    ) {
        update_kalman::<DynStore>(&self.l, sys.a(), sys.b(), sys.c(), sys.d(), xhat, u, y, s);
    }
}

/// One predictor update over storage `S` — the monomorphizing core that
/// both [`KalmanFilter::update_into`] (with `S = `[`DynStore`]) and the
/// fixed-size controllers (with `S = `[`StaticStore`](crate::storage::StaticStore))
/// call. Overwrites `xhat` with `x̂(t+1) = A x̂ + B u + L (y − C x̂ − D u)`.
///
/// Bit-identity: every storage runs the same matrix-vector products and
/// elementwise sums in the same order, so the result does not depend on
/// `S`.
///
/// # Panics
///
/// The dynamic storage panics on dimension mismatches (programming
/// errors); fixed-size storages make them unrepresentable.
#[allow(clippy::too_many_arguments)]
pub fn update_kalman<S: LqgStorage>(
    l: &S::GainL,
    a: &S::MatA,
    b: &S::MatB,
    c: &S::MatC,
    d: &S::MatD,
    xhat: &mut S::VecX,
    u: &S::VecU,
    y: &S::VecY,
    s: &mut KalmanScratch<S>,
) {
    // y_pred = C x̂ + D u.
    c.mat_vec_into(xhat, &mut s.y_pred);
    d.mat_vec_into(u, &mut s.d_u);
    add_assign_slices(s.y_pred.as_mut_slice(), s.d_u.as_slice());
    // innov = y − y_pred.
    sub_into_slices(y.as_slice(), s.y_pred.as_slice(), s.innov.as_mut_slice());
    // correction = L innov.
    l.mat_vec_into(&s.innov, &mut s.correction);
    // x̂ ← (A x̂ + B u) + correction.
    a.mat_vec_into(xhat, &mut s.a_x);
    b.mat_vec_into(u, &mut s.b_u);
    add_assign_slices(s.a_x.as_mut_slice(), s.b_u.as_slice());
    add_assign_slices(s.a_x.as_mut_slice(), s.correction.as_slice());
    xhat.as_mut_slice().copy_from_slice(s.a_x.as_slice());
}

/// Reusable temporaries for [`KalmanFilter::update_into`] /
/// [`update_kalman`], sized for one plant so a steady-state estimator
/// update performs no heap allocations. With the default [`DynStore`]
/// storage the buffers live on the heap; with a fixed-size storage the
/// whole scratch is plain stack data.
#[derive(Debug, Clone)]
pub struct KalmanScratch<S: LqgStorage = DynStore> {
    y_pred: S::VecY,
    d_u: S::VecY,
    innov: S::VecY,
    a_x: S::VecX,
    b_u: S::VecX,
    correction: S::VecX,
}

impl<S: LqgStorage> KalmanScratch<S> {
    /// Allocates scratch for a plant with `n` states and `o` outputs.
    ///
    /// # Panics
    ///
    /// Panics if a fixed-size storage's const dimensions disagree with
    /// `n`/`o` (a programming error — callers size scratch from the same
    /// model the storage was checked against).
    pub fn new(n: usize, o: usize) -> Self {
        let vec_y = || S::VecY::new_dim(o).expect("scratch output dim matches storage");
        let vec_x = || S::VecX::new_dim(n).expect("scratch state dim matches storage");
        KalmanScratch {
            y_pred: vec_y(),
            d_u: vec_y(),
            innov: vec_y(),
            a_x: vec_x(),
            b_u: vec_x(),
            correction: vec_x(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scalar_sys(a: f64) -> StateSpace {
        StateSpace::new(
            Matrix::from_rows(&[&[a]]),
            Matrix::from_rows(&[&[1.0]]),
            Matrix::from_rows(&[&[1.0]]),
            Matrix::zeros(1, 1),
        )
        .unwrap()
    }

    fn normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn estimator_is_stable() {
        let sys = scalar_sys(0.95);
        let kf = KalmanFilter::design(&sys, &Matrix::identity(1), &Matrix::identity(1)).unwrap();
        assert!(kf.estimator_radius() < 1.0);
        assert!(kf.gain()[(0, 0)] > 0.0);
    }

    #[test]
    fn noisy_measurements_lower_the_gain() {
        let sys = scalar_sys(0.9);
        let w = Matrix::from_rows(&[&[1.0]]);
        let trusty = KalmanFilter::design(&sys, &w, &Matrix::from_rows(&[&[0.01]])).unwrap();
        let noisy = KalmanFilter::design(&sys, &w, &Matrix::from_rows(&[&[100.0]])).unwrap();
        assert!(trusty.gain()[(0, 0)] > 10.0 * noisy.gain()[(0, 0)]);
    }

    #[test]
    fn estimate_converges_to_true_state() {
        // Noiseless simulation: the estimate must converge to the state.
        let sys = StateSpace::new(
            Matrix::from_rows(&[&[0.8, 0.2], &[0.0, 0.9]]),
            Matrix::from_rows(&[&[1.0], &[0.5]]),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let w = Matrix::identity(2).scale(0.01);
        let v = Matrix::identity(1).scale(0.01);
        let kf = KalmanFilter::design(&sys, &w, &v).unwrap();

        let mut x = Vector::from_slice(&[3.0, -2.0]);
        let mut xhat = Vector::zeros(2);
        let u = Vector::from_slice(&[0.3]);
        for _ in 0..300 {
            let y = sys.c().mul_vec(&x).unwrap();
            xhat = kf.update(&sys, &xhat, &u, &y);
            let (xn, _) = sys.step(&x, &u);
            x = xn;
        }
        assert!((&x - &xhat).norm_inf() < 1e-6, "x {x:?} xhat {xhat:?}");
    }

    #[test]
    fn filtering_beats_raw_pseudo_inversion_under_noise() {
        // With noisy sensors, the filtered estimate of a hidden state should
        // track better than instantaneous inversion of the measurement.
        let sys = scalar_sys(0.98);
        let w = Matrix::from_rows(&[&[0.0001]]);
        let v = Matrix::from_rows(&[&[0.09]]); // σ = 0.3 sensor noise
        let kf = KalmanFilter::design(&sys, &w, &v).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = 1.0;
        let mut xhat = Vector::zeros(1);
        let u = Vector::from_slice(&[0.02]);
        let mut err_filter = 0.0;
        let mut err_raw = 0.0;
        for t in 0..4000 {
            let y_noisy = x + 0.3 * normal(&mut rng);
            // Skip the initial estimator transient in the comparison.
            if t > 200 {
                err_raw += (y_noisy - x).powi(2);
                err_filter += (xhat[0] - x).powi(2);
            }
            xhat = kf.update(&sys, &xhat, &u, &Vector::from_slice(&[y_noisy]));
            x = 0.98 * x + u[0];
        }
        assert!(
            err_filter < 0.5 * err_raw,
            "filter {err_filter} vs raw {err_raw}"
        );
    }

    #[test]
    fn dimension_checks() {
        let sys = scalar_sys(0.5);
        assert!(KalmanFilter::design(&sys, &Matrix::identity(2), &Matrix::identity(1)).is_err());
        assert!(KalmanFilter::design(&sys, &Matrix::identity(1), &Matrix::identity(2)).is_err());
    }

    #[test]
    fn undetectable_system_fails() {
        // Unstable state invisible from the output.
        let sys = StateSpace::new(
            Matrix::diag(&[1.5, 0.5]),
            Matrix::from_rows(&[&[1.0], &[1.0]]),
            Matrix::from_rows(&[&[0.0, 1.0]]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(KalmanFilter::design(&sys, &Matrix::identity(2), &Matrix::identity(1)).is_err());
    }
}
