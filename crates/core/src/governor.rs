//! The common per-epoch controller interface.
//!
//! Table IV compares four architectures — Baseline, Heuristic, Decoupled,
//! and MIMO. All of them observe the outputs each epoch and produce the
//! next actuation; [`Governor`] is that contract, so the experiment runner
//! treats them uniformly.

use mimo_linalg::Vector;

use crate::error::ControlError;
use crate::lqg::LqgController;
use crate::storage::{DynStore, LqgStorage};

/// Rejects measurements containing NaN or infinite entries. Stateful
/// governors call this before consuming `y`, because folding a non-finite
/// sample into controller state (a Kalman estimate, an integrator) would
/// corrupt every subsequent decision.
pub fn screen_measurement(y: &Vector) -> crate::Result<()> {
    match y.iter().position(|v| !v.is_finite()) {
        Some(channel) => Err(ControlError::NonFiniteMeasurement { channel }),
        None => Ok(()),
    }
}

/// A controller that is invoked once per epoch.
pub trait Governor {
    /// Display name (used in experiment reports).
    fn name(&self) -> &str;

    /// Number of inputs the governor actuates.
    fn num_inputs(&self) -> usize;

    /// Updates the output reference targets (physical units).
    fn set_targets(&mut self, y0: &Vector);

    /// Consumes this epoch's measured outputs and returns the physical
    /// actuation to apply for the next epoch. `phase_changed` reports a
    /// program phase boundary (some governors re-plan on it).
    fn decide(&mut self, y: &Vector, phase_changed: bool) -> Vector;

    /// In-place, fallible variant of [`Governor::decide`]: writes the
    /// actuation into `out` (which must have [`Governor::num_inputs`]
    /// elements). The default forwards to `decide`; allocation-free
    /// governors override it so the epoch hot loop performs no heap
    /// allocations. On finite inputs implementations must be bit-identical
    /// to `decide`.
    ///
    /// # Errors
    ///
    /// Stateful implementations return
    /// [`ControlError::NonFiniteMeasurement`] when `y` contains NaN or
    /// infinite entries (consuming one would corrupt controller state);
    /// on error `out` and the governor's state are left untouched.
    fn decide_into(
        &mut self,
        y: &Vector,
        phase_changed: bool,
        out: &mut Vector,
    ) -> crate::Result<()> {
        out.copy_from(&self.decide(y, phase_changed));
        Ok(())
    }

    /// Clears runtime state (not the design).
    fn reset(&mut self);
}

impl<G: Governor + ?Sized> Governor for &mut G {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }

    fn set_targets(&mut self, y0: &Vector) {
        (**self).set_targets(y0);
    }

    fn decide(&mut self, y: &Vector, phase_changed: bool) -> Vector {
        (**self).decide(y, phase_changed)
    }

    fn decide_into(
        &mut self,
        y: &Vector,
        phase_changed: bool,
        out: &mut Vector,
    ) -> crate::Result<()> {
        (**self).decide_into(y, phase_changed, out)
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

impl<G: Governor + ?Sized> Governor for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }

    fn set_targets(&mut self, y0: &Vector) {
        (**self).set_targets(y0);
    }

    fn decide(&mut self, y: &Vector, phase_changed: bool) -> Vector {
        (**self).decide(y, phase_changed)
    }

    fn decide_into(
        &mut self,
        y: &Vector,
        phase_changed: bool,
        out: &mut Vector,
    ) -> crate::Result<()> {
        (**self).decide_into(y, phase_changed, out)
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// The Baseline architecture: a non-configurable design whose inputs are
/// fixed at profiling-chosen values.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedGovernor {
    actuation: Vector,
}

impl FixedGovernor {
    /// Creates a baseline that always applies `actuation`.
    pub fn new(actuation: Vector) -> Self {
        FixedGovernor { actuation }
    }
}

impl Governor for FixedGovernor {
    fn name(&self) -> &str {
        "Baseline"
    }

    fn num_inputs(&self) -> usize {
        self.actuation.len()
    }

    fn set_targets(&mut self, _y0: &Vector) {}

    fn decide(&mut self, _y: &Vector, _phase_changed: bool) -> Vector {
        self.actuation.clone()
    }

    fn decide_into(
        &mut self,
        _y: &Vector,
        _phase_changed: bool,
        out: &mut Vector,
    ) -> crate::Result<()> {
        out.copy_from(&self.actuation);
        Ok(())
    }

    fn reset(&mut self) {}
}

/// The MIMO architecture: wraps the LQG tracking controller.
///
/// Generic over the controller's runtime storage: the default dynamic
/// governor is what `design_mimo`-style synthesis hands out, while
/// [`fast_governor`] re-homes a controller into stack storage when its
/// shape matches one of the deployed architectures.
#[derive(Debug, Clone)]
pub struct MimoGovernor<S: LqgStorage = DynStore> {
    ctrl: LqgController<S>,
}

impl<S: LqgStorage> MimoGovernor<S> {
    /// Wraps a synthesized controller.
    pub fn new(ctrl: LqgController<S>) -> Self {
        MimoGovernor { ctrl }
    }

    /// Borrows the underlying controller (e.g. for robustness analysis).
    pub fn controller(&self) -> &LqgController<S> {
        &self.ctrl
    }
}

/// Wraps a dynamic controller in the fastest governor available for its
/// shape: when the dimensions match one of the reference architectures the
/// controller is re-homed into stack storage
/// ([`StaticStore`](crate::storage::StaticStore)) and the
/// returned governor steps monomorphized fixed-size kernels; any other
/// shape (e.g. Figure 7's state-order sweep) keeps the dynamic path.
///
/// The static path is bit-identical to the dynamic one, so callers can
/// adopt this unconditionally — golden digests do not move.
pub fn fast_governor(ctrl: LqgController) -> Box<dyn Governor + Send> {
    let shape = (
        ctrl.num_inputs(),
        ctrl.num_outputs(),
        ctrl.model().state_dim(),
    );
    // NZ = NX + NU + NY, spelled out because stable Rust cannot compute it.
    match shape {
        // Two-input architectures (cache+frequency, §VI): 2-in/2-out,
        // na=1, L=1 ⇒ 4 states.
        (2, 2, 4) => match ctrl.into_static::<2, 2, 4, 8>() {
            Ok(c) => Box::new(MimoGovernor::new(c)),
            Err(_) => unreachable!("shape checked above"),
        },
        // Three-input architecture (§VI-C): 3-in/2-out, 5 states.
        (3, 2, 5) => match ctrl.into_static::<3, 2, 5, 10>() {
            Ok(c) => Box::new(MimoGovernor::new(c)),
            Err(_) => unreachable!("shape checked above"),
        },
        // Decoupled SISO loops: 1-in/1-out, 2 states.
        (1, 1, 2) => match ctrl.into_static::<1, 1, 2, 4>() {
            Ok(c) => Box::new(MimoGovernor::new(c)),
            Err(_) => unreachable!("shape checked above"),
        },
        // The 2-state unit-test plant used across the test suite.
        (2, 2, 2) => match ctrl.into_static::<2, 2, 2, 6>() {
            Ok(c) => Box::new(MimoGovernor::new(c)),
            Err(_) => unreachable!("shape checked above"),
        },
        _ => Box::new(MimoGovernor::new(ctrl)),
    }
}

impl<S: LqgStorage> Governor for MimoGovernor<S> {
    fn name(&self) -> &str {
        "MIMO"
    }

    fn num_inputs(&self) -> usize {
        self.ctrl.num_inputs()
    }

    fn set_targets(&mut self, y0: &Vector) {
        self.ctrl.set_reference(y0);
    }

    fn decide(&mut self, y: &Vector, _phase_changed: bool) -> Vector {
        self.ctrl.step(y)
    }

    fn decide_into(
        &mut self,
        y: &Vector,
        _phase_changed: bool,
        out: &mut Vector,
    ) -> crate::Result<()> {
        screen_measurement(y)?;
        self.ctrl.step_into(y, out);
        Ok(())
    }

    fn reset(&mut self) {
        self.ctrl.reset_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_governor_is_constant() {
        let mut g = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        g.set_targets(&Vector::from_slice(&[99.0, 99.0]));
        let u1 = g.decide(&Vector::from_slice(&[0.0, 0.0]), false);
        let u2 = g.decide(&Vector::from_slice(&[5.0, 5.0]), true);
        assert_eq!(u1, u2);
        assert_eq!(g.num_inputs(), 2);
        assert_eq!(g.name(), "Baseline");
        g.reset();
        assert_eq!(g.decide(&Vector::zeros(2), false), u1);
    }

    #[test]
    fn governor_trait_is_object_safe() {
        let g = FixedGovernor::new(Vector::from_slice(&[1.0]));
        let boxed: Box<dyn Governor> = Box::new(g);
        assert_eq!(boxed.name(), "Baseline");
    }
}
