//! The end-to-end controller design flow of Figure 3.
//!
//! ```text
//! select outputs+targets → decide Q → select inputs → decide R
//!   → generate experimental data → least squares → (A,B,C,D,noise)
//!   → design controller → validate model & estimate error
//!   → decide uncertainty → robust? → deploy
//! ```
//!
//! [`DesignFlow::run`] performs identification and synthesis against a
//! live [`Plant`]; [`DesignFlow::validate`] runs the held-out-application
//! validation, sets the uncertainty guardbands (3× the observed maximum
//! model error, §VI-A2), and iterates the Robust Stability Analysis loop —
//! raising the input weights when the loop is not robust, exactly the
//! remedy §IV-B4 prescribes.

use mimo_linalg::Vector;
use mimo_sim::Plant;
use mimo_sysid::arx::{ArxModel, ArxOrders};
use mimo_sysid::noise::estimate_noise;
use mimo_sysid::realize::to_state_space;
use mimo_sysid::scale::{remove_moving_mean, ChannelScaler};

/// Moving-mean window (epochs) for identification detrending: far above
/// the excitation hold times (12–30 epochs), far below phase durations
/// (700+ epochs).
const DETREND_WINDOW: usize = 201;
use mimo_sysid::signal::{identification_waveform, Excitation};
use mimo_sysid::validate::compare;

use crate::lqg::{LqgController, LqgDesign};
use crate::robust::{analyze, RobustReport};
use crate::ss::StateSpace;
use crate::weights::WeightSet;
use crate::{ControlError, Result};

/// Recorded identification data in physical units.
#[derive(Debug, Clone, Default)]
pub struct IdentificationData {
    /// Inputs applied per epoch.
    pub u: Vec<Vector>,
    /// Outputs measured per epoch.
    pub y: Vec<Vector>,
}

impl IdentificationData {
    /// Appends another recording (the few boundary regression rows between
    /// recordings contribute negligible error relative to thousands of
    /// samples).
    pub fn extend(&mut self, other: IdentificationData) {
        self.u.extend(other.u);
        self.y.extend(other.y);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.u.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.u.is_empty()
    }
}

/// Drives `plant` with an excitation and records the response.
pub fn record_excitation<P: Plant + ?Sized>(
    plant: &mut P,
    excitation: &Excitation,
) -> IdentificationData {
    let mut data = IdentificationData::default();
    for t in 0..excitation.len() {
        let u = excitation.sample(t).clone();
        let y = plant.apply(&u);
        data.u.push(u);
        data.y.push(y);
    }
    data
}

/// Configuration of the design flow. Defaults mirror Table III.
#[derive(Debug, Clone)]
pub struct DesignFlow {
    /// Input/output cost weights.
    pub weights: WeightSet,
    /// ARX output order (`na`); with `nb = 1` and no feed-through the
    /// state dimension is `na·O + I` (4 for the paper's 2-input system).
    pub arx_na: usize,
    /// Whether the model includes direct feed-through `D` (the deployed
    /// design is strictly proper, as RSA requires).
    pub direct_feedthrough: bool,
    /// Integral-action weight fraction.
    pub integral_weight: f64,
    /// Share of innovation variance attributed to process noise.
    pub process_fraction: f64,
    /// Global scale applied to all input weights when mapping the paper's
    /// weight values onto our normalized coordinates. Only weight *ratios*
    /// are physically meaningful (§IV-B2: "the absolute values of the
    /// weights are unimportant"); this calibration places Table III's
    /// ratios in the well-damped regime of this plant, found by offline
    /// experimentation exactly as the paper prescribes.
    pub input_weight_scale: f64,
    /// Epochs per excitation segment (three segments total).
    pub segment_epochs: usize,
    /// Multiplier from observed validation error to uncertainty guardband
    /// (§VI-A2 uses 3×).
    pub guardband_multiplier: f64,
    /// Frequency-grid resolution for RSA.
    pub rsa_grid: usize,
    /// Redesign attempts (input-weight escalations) before giving up.
    pub max_redesigns: usize,
    /// Seed for the excitation generator.
    pub seed: u64,
}

impl DesignFlow {
    /// The two-input design of §VI (frequency + cache).
    pub fn two_input() -> Self {
        DesignFlow {
            weights: WeightSet::table_iii_two_input(),
            arx_na: 1,
            direct_feedthrough: false,
            integral_weight: 0.05,
            process_fraction: 0.3,
            input_weight_scale: 3e5,
            segment_epochs: 700,
            guardband_multiplier: 3.0,
            rsa_grid: 128,
            max_redesigns: 8,
            seed: 20160618, // ISCA 2016
        }
    }

    /// The three-input design of §VI-D (adds the ROB), reusing every other
    /// decision.
    pub fn three_input() -> Self {
        DesignFlow {
            weights: WeightSet::table_iii_three_input(),
            ..Self::two_input()
        }
    }

    /// Overrides the weight set (Table V studies).
    pub fn with_weights(mut self, weights: WeightSet) -> Self {
        self.weights = weights;
        self
    }

    /// Overrides the ARX output order (Figure 7 dimension sweep).
    pub fn with_arx_na(mut self, na: usize) -> Self {
        self.arx_na = na;
        self
    }

    /// Builds the excitation waveform for a plant's grids.
    pub fn excitation_for<P: Plant + ?Sized>(&self, plant: &P, seed: u64) -> Excitation {
        let grids = plant.input_grids();
        let lo: Vec<f64> = grids.iter().map(|g| g[0]).collect();
        let hi: Vec<f64> = grids
            .iter()
            .map(|g| *g.last().expect("nonempty grid"))
            .collect();
        let levels: Vec<usize> = grids.iter().map(Vec::len).collect();
        identification_waveform(self.segment_epochs, &lo, &hi, &levels, seed)
    }

    /// Identification + synthesis against one training plant.
    ///
    /// # Errors
    ///
    /// Propagates identification and synthesis failures; returns
    /// [`ControlError::DimensionMismatch`] if the weight set does not match
    /// the plant's input/output counts.
    pub fn run<P: Plant + ?Sized>(&self, plant: &mut P) -> Result<DesignResult> {
        self.run_multi(std::iter::once(plant))
    }

    /// Identification + synthesis over several training plants (the
    /// paper's four-application training set).
    ///
    /// # Errors
    ///
    /// As [`DesignFlow::run`].
    pub fn run_multi<'p, P, It>(&self, plants: It) -> Result<DesignResult>
    where
        P: Plant + ?Sized + 'p,
        It: IntoIterator<Item = &'p mut P>,
    {
        let mut data = IdentificationData::default();
        let mut record_bounds: Vec<usize> = vec![0];
        let mut grids: Option<Vec<Vec<f64>>> = None;
        let mut n_inputs = 0;
        let mut n_outputs = 0;
        for (k, plant) in plants.into_iter().enumerate() {
            if grids.is_none() {
                grids = Some(plant.input_grids());
                n_inputs = plant.num_inputs();
                n_outputs = plant.num_outputs();
                if self.weights.input.len() != n_inputs || self.weights.output.len() != n_outputs {
                    return Err(ControlError::DimensionMismatch {
                        what: format!(
                            "weight set '{}' has {}in/{}out for a {}in/{}out plant",
                            self.weights.label,
                            self.weights.input.len(),
                            self.weights.output.len(),
                            n_inputs,
                            n_outputs
                        ),
                    });
                }
            }
            plant.reset();
            let excitation = self.excitation_for(plant, self.seed.wrapping_add(k as u64));
            data.extend(record_excitation(plant, &excitation));
            record_bounds.push(data.len());
        }
        let grids = grids.ok_or(ControlError::DimensionMismatch {
            what: "no training plants supplied".into(),
        })?;

        // Scalers: inputs from the physical grids, outputs from the data.
        let ranges: Vec<(f64, f64)> = grids
            .iter()
            .map(|g| (g[0], *g.last().expect("nonempty")))
            .collect();
        let input_scaler = ChannelScaler::from_ranges(&ranges);
        let output_scaler = ChannelScaler::from_data(&data.y);

        let u_norm = input_scaler.normalize_all(&data.u);
        let y_norm = output_scaler.normalize_all(&data.y);

        // Detrend each application's record separately: slow cross-app and
        // cross-phase output drift is not input-driven and would corrupt
        // the regression (see `remove_moving_mean`).
        let mut u_fit: Vec<Vector> = Vec::with_capacity(u_norm.len());
        let mut y_fit: Vec<Vector> = Vec::with_capacity(y_norm.len());
        for w in record_bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            u_fit.extend(remove_moving_mean(&u_norm[a..b], DETREND_WINDOW));
            y_fit.extend(remove_moving_mean(&y_norm[a..b], DETREND_WINDOW));
        }

        let orders = ArxOrders {
            na: self.arx_na,
            nb: 1,
            direct_feedthrough: self.direct_feedthrough,
        };
        let arx = ArxModel::fit(&u_fit, &y_fit, orders)?;
        let realization = to_state_space(&arx);
        let model = StateSpace::from(realization);
        let noise = estimate_noise(arx.residuals(), model.state_dim(), self.process_fraction)?;

        let design = LqgDesign {
            model: model.clone(),
            process_noise: noise.process,
            measurement_noise: noise.measurement,
            output_weights: self.weights.output.clone(),
            input_weights: self
                .weights
                .input
                .iter()
                .map(|w| w * self.input_weight_scale)
                .collect(),
            integral_weight: self.integral_weight,
            input_scaler,
            output_scaler,
            input_grids: grids,
        };
        let controller = design.build()?;
        Ok(DesignResult {
            flow: self.clone(),
            controller,
            model,
            orders,
            training_samples: data.len(),
            n_inputs,
            n_outputs,
        })
    }

    /// The validation + uncertainty + RSA loop: measures model error on
    /// held-out plants, sets guardbands at `guardband_multiplier × error`,
    /// and escalates input weights until the loop is robust.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ValidationFailed`] if no redesign within the
    /// budget passes RSA; propagates numerical failures.
    pub fn validate<'p, P, It>(
        &self,
        result: DesignResult,
        validation: It,
    ) -> Result<ValidatedDesign>
    where
        P: Plant + ?Sized + 'p,
        It: IntoIterator<Item = &'p mut P>,
    {
        let errors = self.measure_model_error(&result, validation)?;
        // Multiplicative-output uncertainty beyond 100% can never pass the
        // small-gain test for an integral-action loop (T(1) = I), so cap the
        // guardband below 1.
        let guardbands: Vec<f64> = errors
            .iter()
            .map(|e| (self.guardband_multiplier * e).clamp(0.05, 0.8))
            .collect();
        let mut validated = self.rsa_redesign(&result, &guardbands)?;
        validated.max_model_error_frac = errors;
        Ok(validated)
    }

    /// Measures the model's average relative prediction error (fraction,
    /// per output) on held-out plants — §VI-A2's validation step.
    ///
    /// The paper's uncertainty is the *average* prediction error over the
    /// whole execution ("consistently (i.e., on average) X% off"); windowed
    /// maxima would include phase-change transients and be far too
    /// pessimistic.
    ///
    /// # Errors
    ///
    /// Propagates comparison failures.
    pub fn measure_model_error<'p, P, It>(
        &self,
        result: &DesignResult,
        validation: It,
    ) -> Result<Vec<f64>>
    where
        P: Plant + ?Sized + 'p,
        It: IntoIterator<Item = &'p mut P>,
    {
        let design = result.controller.design();
        let mut max_err_frac = vec![0.0_f64; result.n_outputs];
        for (k, plant) in validation.into_iter().enumerate() {
            plant.reset();
            let excitation = self.excitation_for(plant, self.seed.wrapping_add(1000 + k as u64));
            let data = record_excitation(plant, &excitation);
            let u_norm = design.input_scaler.normalize_all(&data.u);
            // Free-run the model on the validation inputs.
            let x0 = Vector::zeros(result.model.state_dim());
            let y_pred_norm = result.model.simulate(&x0, &u_norm);
            // Compare in *physical* units — normalized coordinates are
            // centered on the training data and would wildly inflate the
            // relative error of a differently-behaved validation app.
            let y_pred = design.output_scaler.denormalize_all(&y_pred_norm);
            // Skip the initial transient (the model starts at rest).
            let skip = 50.min(y_pred.len() / 4);
            let report = compare(&data.y[skip..], &y_pred[skip..], 20)?;
            for (o, &e) in report.mean_rel_error_pct.iter().enumerate() {
                max_err_frac[o] = max_err_frac[o].max(e / 100.0);
            }
        }
        Ok(max_err_frac)
    }

    /// The RSA loop for explicit guardbands: de-escalates the integral
    /// (tracking) weight — §IV-B4's "use lower Q weights relative to R
    /// weights, thereby making the system less ripply" — until the weighted
    /// small-gain peak clears its target. Because the loop has integral
    /// action, `T(1) = I`, so the weighted peak can never drop below the
    /// largest guardband; the target sits halfway between that floor and
    /// the stability bound of 1. Larger guardbands therefore yield more
    /// cautious (slower-converging) controllers — the Figure 8 tradeoff.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ValidationFailed`] if the budget of
    /// `max_redesigns` de-escalations is exhausted, or if a guardband of
    /// 1.0 or more makes the test infeasible outright.
    pub fn rsa_redesign(
        &self,
        result: &DesignResult,
        guardbands: &[f64],
    ) -> Result<ValidatedDesign> {
        let floor = guardbands.iter().copied().fold(0.0_f64, f64::max);
        if floor >= 1.0 {
            return Err(ControlError::ValidationFailed {
                what: format!(
                    "guardband {floor:.2} >= 1 is infeasible for an integral-action loop"
                ),
            });
        }
        // Larger uncertainty must leave more stability slack: the margin
        // demanded scales with the guardband (and can never go below the
        // structural floor set by T(1) = I).
        let target_peak = (1.0 - 0.5 * floor).max(floor + 0.05);
        let mut controller = result.controller.clone();
        let mut report: RobustReport;
        let mut redesigns = 0;
        loop {
            report = analyze(&result.model, &controller, guardbands, self.rsa_grid)?;
            if report.robust && report.peak_weighted_gain <= target_peak {
                break;
            }
            if redesigns >= self.max_redesigns {
                if report.robust {
                    // Robust but without the slack margin: accept.
                    break;
                }
                return Err(ControlError::ValidationFailed {
                    what: format!(
                        "not robust after {redesigns} redesigns (peak weighted gain {:.3})",
                        report.peak_weighted_gain
                    ),
                });
            }
            let mut d = controller.design().clone();
            d.integral_weight *= 0.4;
            controller = d.build()?;
            redesigns += 1;
        }
        Ok(ValidatedDesign {
            controller,
            model: result.model.clone(),
            max_model_error_frac: Vec::new(),
            guardbands: guardbands.to_vec(),
            rsa: report,
            redesigns,
        })
    }
}

/// Output of the identification + synthesis stage.
#[derive(Debug, Clone)]
pub struct DesignResult {
    /// The flow configuration used.
    pub flow: DesignFlow,
    /// The synthesized (not yet RSA-validated) controller.
    pub controller: LqgController,
    /// The identified normalized model.
    pub model: StateSpace,
    /// ARX orders used.
    pub orders: ArxOrders,
    /// Total identification samples recorded.
    pub training_samples: usize,
    /// Plant input count.
    pub n_inputs: usize,
    /// Plant output count.
    pub n_outputs: usize,
}

impl DesignResult {
    /// Consumes the result, returning the controller.
    pub fn into_controller(self) -> LqgController {
        self.controller
    }
}

/// Output of the validation + RSA stage.
#[derive(Debug, Clone)]
pub struct ValidatedDesign {
    /// The final, robust controller.
    pub controller: LqgController,
    /// The identified model.
    pub model: StateSpace,
    /// Maximum observed model error per output (fraction).
    pub max_model_error_frac: Vec<f64>,
    /// The uncertainty guardbands used for RSA (fraction).
    pub guardbands: Vec<f64>,
    /// The final RSA report.
    pub rsa: RobustReport,
    /// How many input-weight escalations were needed.
    pub redesigns: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_sim::{InputSet, ProcessorBuilder};

    fn training_plant(app: &str, seed: u64) -> mimo_sim::Processor {
        ProcessorBuilder::new()
            .app(app)
            .seed(seed)
            .input_set(InputSet::FreqCache)
            .build()
            .unwrap()
    }

    #[test]
    fn two_input_design_has_table_iii_dimension() {
        let mut plant = training_plant("namd", 1);
        let result = DesignFlow::two_input().run(&mut plant).unwrap();
        // na=1, O=2, I=2, strictly proper → dim 4 (Table III).
        assert_eq!(result.model.state_dim(), 4);
        assert_eq!(result.controller.num_inputs(), 2);
        assert_eq!(result.controller.num_outputs(), 2);
        assert!(result.training_samples > 1000);
    }

    #[test]
    fn identified_model_is_stable_and_has_positive_dc_gains() {
        let mut plant = training_plant("sjeng", 3);
        let result = DesignFlow::two_input().run(&mut plant).unwrap();
        assert!(result.model.spectral_radius().unwrap() < 1.0);
        let dc = result.model.dc_gain().unwrap();
        // Frequency (input 0) raises both IPS (output 0) and power (1).
        assert!(dc[(0, 0)] > 0.0, "freq→IPS gain {dc:?}");
        assert!(dc[(1, 0)] > 0.0, "freq→power gain {dc:?}");
        // Cache (input 1) raises power.
        assert!(dc[(1, 1)] > 0.0, "cache→power gain {dc:?}");
    }

    #[test]
    fn multi_app_training_works() {
        let mut p1 = training_plant("namd", 1);
        let mut p2 = training_plant("gobmk", 2);
        let plants: Vec<&mut mimo_sim::Processor> = vec![&mut p1, &mut p2];
        let result = DesignFlow::two_input().run_multi(plants).unwrap();
        assert!(result.training_samples > 3000);
    }

    #[test]
    fn weight_mismatch_rejected() {
        let mut plant = ProcessorBuilder::new()
            .app("namd")
            .input_set(InputSet::FreqCacheRob)
            .build()
            .unwrap();
        // Two-input weights on a three-input plant.
        assert!(matches!(
            DesignFlow::two_input().run(&mut plant),
            Err(ControlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn three_input_flow_matches_three_input_plant() {
        let mut plant = ProcessorBuilder::new()
            .app("namd")
            .seed(5)
            .input_set(InputSet::FreqCacheRob)
            .build()
            .unwrap();
        let result = DesignFlow::three_input().run(&mut plant).unwrap();
        assert_eq!(result.controller.num_inputs(), 3);
        // dim = na·O + I = 2 + 3 = 5.
        assert_eq!(result.model.state_dim(), 5);
    }

    #[test]
    fn validation_produces_guardbands_and_robust_design() {
        let mut train = training_plant("namd", 7);
        let flow = DesignFlow::two_input();
        let result = flow.run(&mut train).unwrap();
        let mut v1 = training_plant("h264ref", 8);
        let mut v2 = training_plant("tonto", 9);
        let validation: Vec<&mut mimo_sim::Processor> = vec![&mut v1, &mut v2];
        let validated = flow.validate(result, validation).unwrap();
        assert!(validated.rsa.robust);
        assert_eq!(validated.guardbands.len(), 2);
        for g in &validated.guardbands {
            assert!((0.05..=2.0).contains(g), "guardband {g}");
        }
        assert!(validated.rsa.nominal_radius < 1.0);
    }
}
