//! Piecewise-constant reference schedules (§VIII-E).

use mimo_linalg::Vector;

/// One reference step of a time-varying schedule: from `epoch` on, track
/// `targets`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceStep {
    /// First epoch at which these targets apply.
    pub epoch: usize,
    /// `[IPS, power]` targets.
    pub targets: Vector,
}

/// Walks a sorted [`ReferenceStep`] schedule epoch by epoch, invoking a
/// callback for every step boundary crossed so the governor can be
/// retargeted.
#[derive(Debug, Clone)]
pub struct ScheduleCursor<'a> {
    schedule: &'a [ReferenceStep],
    idx: usize,
}

impl<'a> ScheduleCursor<'a> {
    /// Positions the cursor on the first step.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty.
    pub fn new(schedule: &'a [ReferenceStep]) -> Self {
        assert!(!schedule.is_empty(), "schedule must have at least one step");
        ScheduleCursor { schedule, idx: 0 }
    }

    /// The targets of the step currently in force.
    pub fn current(&self) -> &'a Vector {
        &self.schedule[self.idx].targets
    }

    /// Advances to the step in force at epoch `t`, calling `apply` with
    /// each intermediate step's targets (in order), and returns the final
    /// targets. Epochs must be visited in nondecreasing order.
    pub fn advance<F: FnMut(&Vector)>(&mut self, t: usize, mut apply: F) -> &'a Vector {
        while self.idx + 1 < self.schedule.len() && self.schedule[self.idx + 1].epoch <= t {
            self.idx += 1;
            apply(&self.schedule[self.idx].targets);
        }
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Vec<ReferenceStep> {
        vec![
            ReferenceStep {
                epoch: 0,
                targets: Vector::from_slice(&[2.0, 1.5]),
            },
            ReferenceStep {
                epoch: 5,
                targets: Vector::from_slice(&[3.0, 1.9]),
            },
            ReferenceStep {
                epoch: 5,
                targets: Vector::from_slice(&[1.2, 1.0]),
            },
        ]
    }

    #[test]
    fn cursor_starts_on_first_step() {
        let s = sched();
        let c = ScheduleCursor::new(&s);
        assert_eq!(c.current()[0], 2.0);
    }

    #[test]
    fn cursor_applies_every_crossed_step() {
        let s = sched();
        let mut c = ScheduleCursor::new(&s);
        let mut applied = Vec::new();
        let t0 = c.advance(0, |v| applied.push(v[0]));
        assert_eq!(t0[0], 2.0);
        assert!(applied.is_empty());
        // Epoch 5 crosses two boundaries at once; both fire, last wins.
        let t5 = c.advance(5, |v| applied.push(v[0]));
        assert_eq!(applied, vec![3.0, 1.2]);
        assert_eq!(t5[0], 1.2);
        // Later epochs stay on the last step.
        let t9 = c.advance(9, |v| applied.push(v[0]));
        assert_eq!(applied.len(), 2);
        assert_eq!(t9[0], 1.2);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_schedule_panics() {
        let _ = ScheduleCursor::new(&[]);
    }
}
