//! The unified epoch engine: one hot loop for every driver.
//!
//! Every evaluation path in the repo — the experiment runners
//! (tracking, schedules, optimization) and the fleet runtime — repeats
//! the same epoch cadence: read the plant, let the governor decide,
//! apply the actuation, record. [`EpochLoop`] owns that cadence once, so
//! drivers become thin configurations instead of re-implementations, and
//! the loop body routes through the allocation-free `*_into` paths
//! ([`crate::governor::Governor::decide_into`],
//! [`mimo_sim::Plant::apply_into`]) so a steady-state epoch performs zero
//! heap allocations.
//!
//! Bit-exactness contract: stepping a governor/plant pair through
//! [`EpochLoop::step`] produces the same measurements, statistics, and
//! digests as the hand-rolled loops it replaced, because the `*_into`
//! kernels evaluate the same floating-point operations in the same order.

use mimo_linalg::Vector;
use mimo_sim::Plant;

use crate::governor::Governor;
use crate::telemetry::{CauseCode, EpochRecord, Health, NullObserver, Observer, RunSummary};

mod outcome;
mod schedule;
mod summary;

pub use outcome::{EpochCause, EpochError, StepOutcome};
pub use schedule::{ReferenceStep, ScheduleCursor};
pub use summary::{
    fleet_warmup, grid_step, rel_tracking_error, summarize, TrackingErrorAccumulator,
    TrackingStats, WARMUP_EPOCHS,
};

/// Consecutive failed epochs after which [`EpochLoop::step`] escalates
/// from [`StepOutcome::Degraded`] to [`StepOutcome::Quarantined`].
/// Overridable per loop via [`EpochLoop::set_quarantine_threshold`].
pub const DEFAULT_QUARANTINE_THRESHOLD: u32 = 4;

/// Drives one governor against one plant, epoch by epoch.
///
/// The loop owns the measurement (`y`) and actuation (`u`) buffers and
/// reuses them every epoch; optional history recording powers the
/// [`TrackingStats`] reductions.
///
/// Both type parameters accept owned values, `&mut` borrows, or boxed
/// trait objects (blanket impls forward the traits), so callers choose
/// their ownership model: the experiment runners lend `&mut dyn
/// Governor` / `&mut Processor`, the fleet gives each core an owned
/// `Box<dyn Governor + Send>` + `Processor`.
///
/// The third parameter is the telemetry [`Observer`], defaulting to
/// [`NullObserver`] — a statically-disabled observer whose hooks
/// monomorphize away, keeping the unobserved hot loop bit-identical to
/// the pre-telemetry engine. Attach a real observer with
/// [`EpochLoop::with_observer`].
#[derive(Debug)]
pub struct EpochLoop<G: Governor, P: Plant, O: Observer = NullObserver> {
    gov: G,
    plant: P,
    obs: O,
    /// Last measured outputs, fed to the governor next epoch.
    y: Vector,
    /// Actuation buffer, rewritten every epoch.
    u: Vector,
    /// Last healthy measurement, restored into `y` on faulted epochs so
    /// downstream consumers (history, fleet observations) stay finite.
    y_good: Vector,
    /// Last healthy actuation, restored into `u` on faulted epochs.
    u_good: Vector,
    /// Actuator grids, captured once at construction.
    grids: Vec<Vec<f64>>,
    u_hist: Vec<Vector>,
    y_hist: Vec<Vector>,
    record: bool,
    /// Epochs stepped (including faulted ones).
    epoch: u64,
    /// Fleet core id stamped into [`EpochError`]s, if any.
    core: Option<usize>,
    /// Current streak of failed epochs.
    consecutive_faults: u32,
    /// Total failed epochs over the loop's lifetime.
    fault_epochs: u64,
    /// Streak length at which faults escalate to quarantine.
    quarantine_threshold: u32,
    quarantined: bool,
    /// Epoch at which the loop first quarantined.
    quarantine_epoch: Option<u64>,
}

impl<G: Governor, P: Plant> EpochLoop<G, P> {
    /// Pairs `gov` with `plant`. The initial measurement is all zeros
    /// (the fleet convention); call [`EpochLoop::prime`] to start from a
    /// real reading instead.
    ///
    /// # Panics
    ///
    /// Panics if the governor actuates a different number of inputs than
    /// the plant exposes.
    pub fn new(gov: G, plant: P) -> Self {
        assert_eq!(
            gov.num_inputs(),
            plant.num_inputs(),
            "governor/plant input count mismatch"
        );
        let y = Vector::zeros(plant.num_outputs());
        let u = Vector::zeros(plant.num_inputs());
        let grids = plant.input_grids();
        EpochLoop {
            y_good: y.clone(),
            u_good: u.clone(),
            gov,
            plant,
            obs: NullObserver,
            y,
            u,
            grids,
            u_hist: Vec::new(),
            y_hist: Vec::new(),
            record: false,
            epoch: 0,
            core: None,
            consecutive_faults: 0,
            fault_epochs: 0,
            quarantine_threshold: DEFAULT_QUARANTINE_THRESHOLD,
            quarantined: false,
            quarantine_epoch: None,
        }
    }
}

impl<G: Governor, P: Plant, O: Observer> EpochLoop<G, P, O> {
    /// Replaces the loop's observer (consuming the loop, since the
    /// observer is a type parameter), preserving all control and health
    /// state. Typical use is attaching a
    /// [`TelemetrySink`](crate::telemetry::TelemetrySink) right after
    /// [`EpochLoop::new`]:
    ///
    /// ```ignore
    /// let lp = EpochLoop::new(gov, plant)
    ///     .with_observer(TelemetrySink::new(&TelemetryConfig::trace(256)));
    /// ```
    pub fn with_observer<O2: Observer>(self, obs: O2) -> EpochLoop<G, P, O2> {
        EpochLoop {
            gov: self.gov,
            plant: self.plant,
            obs,
            y: self.y,
            u: self.u,
            y_good: self.y_good,
            u_good: self.u_good,
            grids: self.grids,
            u_hist: self.u_hist,
            y_hist: self.y_hist,
            record: self.record,
            epoch: self.epoch,
            core: self.core,
            consecutive_faults: self.consecutive_faults,
            fault_epochs: self.fault_epochs,
            quarantine_threshold: self.quarantine_threshold,
            quarantined: self.quarantined,
            quarantine_epoch: self.quarantine_epoch,
        }
    }

    /// Obtains the first measurement by running one epoch at the plant's
    /// current configuration (the experiment-runner convention).
    pub fn prime(&mut self) {
        self.y = self.plant.observe();
        if self.y.all_finite() {
            self.y_good.copy_from(&self.y);
        }
    }

    /// Seeds the measurement buffer from outputs obtained externally
    /// (e.g. an optimizer's own priming epochs).
    pub fn seed_outputs(&mut self, y: &Vector) {
        self.y.copy_from(y);
        if self.y.all_finite() {
            self.y_good.copy_from(&self.y);
        }
    }

    /// Forwards reference targets to the governor.
    pub fn set_targets(&mut self, y0: &Vector) {
        self.gov.set_targets(y0);
    }

    /// Enables per-epoch input/output history recording (required by
    /// [`EpochLoop::summarize`]), reserving room for `epochs` entries.
    pub fn record_history(&mut self, epochs: usize) {
        self.record = true;
        self.u_hist.reserve(epochs);
        self.y_hist.reserve(epochs);
    }

    /// Runs one epoch: the governor consumes the previous measurement and
    /// the plant's phase flag, the plant applies the decided actuation,
    /// and the fresh measurement lands in [`EpochLoop::outputs`] (and the
    /// history when recording is enabled).
    ///
    /// Every epoch is screened at the two trust boundaries: the actuation
    /// leaving the governor and the measurement leaving the plant must be
    /// finite. On any failure the measurement and actuation buffers are
    /// restored to their last healthy values (so `outputs()` and the
    /// recorded history never carry NaN/Inf), the failure streak is
    /// counted, and the verdict reports [`StepOutcome::Degraded`] — or
    /// [`StepOutcome::Quarantined`] once the streak reaches the
    /// quarantine threshold.
    pub fn step(&mut self) -> StepOutcome {
        let epoch = self.epoch;
        self.epoch += 1;
        let result = self.try_epoch();
        self.settle(epoch, result)
    }

    /// Runs one epoch whose governor decision was computed *externally* —
    /// the batched bank path. The caller (a governor bank in `mimo-fleet`
    /// stepping many cores at once) passes either the decided actuation
    /// in physical units or the
    /// [`EpochCause`] its screening produced; this method then runs the
    /// same screen → apply → screen tail and the same fault/quarantine
    /// bookkeeping as [`EpochLoop::step`], so outcomes, buffers, health
    /// latches, and telemetry are bit-identical to the per-cell path when
    /// the external decision matches what the owned governor would have
    /// decided.
    ///
    /// Note the owned governor is **not** consulted — the caller is
    /// responsible for keeping any governor state consistent (the bank
    /// owns the controller runtime wholesale while a core is enrolled).
    ///
    /// # Panics
    ///
    /// Panics if an `Ok` decision's length differs from the plant's input
    /// count.
    pub fn step_decided(
        &mut self,
        decision: std::result::Result<&[f64], EpochCause>,
    ) -> StepOutcome {
        let epoch = self.epoch;
        self.epoch += 1;
        let result = match decision {
            Ok(u) => {
                self.u.as_mut_slice().copy_from_slice(u);
                self.apply_decided()
            }
            Err(cause) => Err(cause),
        };
        self.settle(epoch, result)
    }

    /// The shared epilogue of [`EpochLoop::step`] / [`EpochLoop::step_decided`]:
    /// turns the epoch result into a [`StepOutcome`], maintaining the
    /// last-good buffers, failure streaks, the quarantine latch, and
    /// telemetry.
    fn settle(&mut self, epoch: u64, result: std::result::Result<(), EpochCause>) -> StepOutcome {
        match result {
            Ok(()) => {
                self.consecutive_faults = 0;
                self.y_good.copy_from(&self.y);
                self.u_good.copy_from(&self.u);
                if self.record {
                    self.u_hist.push(self.u.clone());
                    self.y_hist.push(self.y.clone());
                }
                if self.obs.enabled() {
                    self.observe_epoch(epoch, Health::Healthy, None);
                }
                StepOutcome::Healthy
            }
            Err(cause) => {
                self.u.copy_from(&self.u_good);
                self.y.copy_from(&self.y_good);
                self.fault_epochs += 1;
                self.consecutive_faults = self.consecutive_faults.saturating_add(1);
                if self.record {
                    self.u_hist.push(self.u.clone());
                    self.y_hist.push(self.y.clone());
                }
                let error = EpochError {
                    epoch,
                    core: self.core,
                    cause,
                };
                let escalate =
                    self.quarantined || self.consecutive_faults >= self.quarantine_threshold;
                let fresh_latch = escalate && !self.quarantined;
                if fresh_latch {
                    self.quarantined = true;
                    // Keep the *first* latch epoch: a supervisor may
                    // repair the loop with `reset_health` and the loop may
                    // latch again, but the reported onset must not move.
                    self.quarantine_epoch.get_or_insert(epoch);
                }
                if self.obs.enabled() {
                    let health = if escalate {
                        Health::Quarantined
                    } else {
                        Health::Degraded
                    };
                    self.observe_epoch(epoch, health, Some((&error.cause).into()));
                    self.obs.on_fault(&error);
                    if fresh_latch {
                        self.obs.on_quarantine(&error);
                    }
                }
                if escalate {
                    StepOutcome::Quarantined(error)
                } else {
                    StepOutcome::Degraded(error)
                }
            }
        }
    }

    /// Builds this epoch's [`EpochRecord`] on the stack and hands it to
    /// the observer. Only called when the observer is enabled; the buffers
    /// are already restored to last-good values on faulted epochs, so the
    /// record never carries NaN/Inf.
    #[inline]
    fn observe_epoch(&mut self, epoch: u64, health: Health, cause: Option<CauseCode>) {
        let rec = EpochRecord::capture(epoch, self.core, &self.u, &self.y, health, cause);
        self.obs.on_epoch(&rec);
    }

    /// Declares the run over: hands an end-of-run [`RunSummary`] to the
    /// observer (a no-op with the default [`NullObserver`]). Drivers call
    /// this once after their final epoch; calling it again re-emits the
    /// summary with the then-current counters.
    pub fn finish(&mut self) {
        if self.obs.enabled() {
            let summary = RunSummary {
                epochs: self.epoch,
                fault_epochs: self.fault_epochs,
                quarantined: self.quarantine_epoch.is_some(),
                quarantine_epoch: self.quarantine_epoch,
            };
            self.obs.on_run_end(&summary);
        }
    }

    /// The fallible decide → screen → apply → screen pipeline of one
    /// epoch. On error the buffers may hold partial values; `step`
    /// restores them from the last-good copies.
    fn try_epoch(&mut self) -> Result<(), EpochCause> {
        let phase = self.plant.phase_changed();
        self.gov
            .decide_into(&self.y, phase, &mut self.u)
            .map_err(EpochCause::Governor)?;
        self.apply_decided()
    }

    /// The post-decision half of one epoch: screen the actuation, apply
    /// it to the plant, screen the measurement. Shared between
    /// [`EpochLoop::step`] (decision from the owned governor) and
    /// [`EpochLoop::step_decided`] (decision from a bank).
    fn apply_decided(&mut self) -> Result<(), EpochCause> {
        if let Some(channel) = self.u.iter().position(|v| !v.is_finite()) {
            return Err(EpochCause::NonFiniteActuation { channel });
        }
        self.plant
            .apply_into(&self.u, &mut self.y)
            .map_err(EpochCause::Plant)?;
        if let Some(channel) = self.y.iter().position(|v| !v.is_finite()) {
            return Err(EpochCause::NonFiniteMeasurement { channel });
        }
        Ok(())
    }

    /// The most recent measurement.
    pub fn outputs(&self) -> &Vector {
        &self.y
    }

    /// The most recent actuation.
    pub fn last_input(&self) -> &Vector {
        &self.u
    }

    /// Borrows the plant.
    pub fn plant(&self) -> &P {
        &self.plant
    }

    /// Mutably borrows the plant.
    pub fn plant_mut(&mut self) -> &mut P {
        &mut self.plant
    }

    /// Borrows the governor.
    pub fn governor(&self) -> &G {
        &self.gov
    }

    /// Mutably borrows the governor.
    pub fn governor_mut(&mut self) -> &mut G {
        &mut self.gov
    }

    /// Borrows the observer (e.g. to inspect a sink's metrics mid-run).
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Mutably borrows the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// The actuator grids captured from the plant at construction (e.g.
    /// for building a fallback governor after a quarantine).
    pub fn input_grids(&self) -> &[Vec<f64>] {
        &self.grids
    }

    /// Stamps a fleet core id into every subsequent [`EpochError`].
    pub fn set_core(&mut self, core: usize) {
        self.core = Some(core);
    }

    /// Overrides the consecutive-failure streak at which `step` escalates
    /// to [`StepOutcome::Quarantined`] (default
    /// [`DEFAULT_QUARANTINE_THRESHOLD`]; clamped to at least 1).
    pub fn set_quarantine_threshold(&mut self, streak: u32) {
        self.quarantine_threshold = streak.max(1);
    }

    /// Epochs stepped so far, including faulted ones.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total failed epochs over the loop's lifetime.
    pub fn fault_epochs(&self) -> u64 {
        self.fault_epochs
    }

    /// Whether the loop is currently quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// The epoch at which the loop first quarantined, if it ever did.
    pub fn quarantine_epoch(&self) -> Option<u64> {
        self.quarantine_epoch
    }

    /// Clears the quarantine flag and failure streak — called after the
    /// supervisor repairs the loop (e.g. swaps in a fallback governor).
    /// Lifetime counters (`fault_epochs`, `quarantine_epoch`) are kept
    /// for reporting.
    pub fn reset_health(&mut self) {
        self.quarantined = false;
        self.consecutive_faults = 0;
    }

    /// Reduces the recorded history to [`TrackingStats`] against fixed
    /// `targets` (history recording must be enabled).
    pub fn summarize(&self, targets: &Vector, keep_trace: bool) -> TrackingStats {
        summary::summarize(&self.u_hist, &self.y_hist, targets, &self.grids, keep_trace)
    }

    /// Consumes the loop, returning the recorded `(inputs, outputs)`
    /// histories.
    pub fn into_histories(self) -> (Vec<Vector>, Vec<Vector>) {
        (self.u_hist, self.y_hist)
    }

    /// Consumes the loop, returning the governor, plant, and observer.
    pub fn into_parts(self) -> (G, P, O) {
        (self.gov, self.plant, self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::FixedGovernor;

    /// A deterministic 2-in/2-out plant: y = u, counting epochs.
    #[derive(Debug)]
    struct Echo {
        epochs: usize,
    }

    impl Plant for Echo {
        fn num_inputs(&self) -> usize {
            2
        }

        fn num_outputs(&self) -> usize {
            2
        }

        fn input_grids(&self) -> Vec<Vec<f64>> {
            vec![vec![0.0, 1.0, 2.0], vec![0.0, 4.0, 8.0]]
        }

        fn apply(&mut self, u: &Vector) -> Vector {
            self.epochs += 1;
            u.clone()
        }

        fn observe(&mut self) -> Vector {
            self.epochs += 1;
            Vector::from_slice(&[0.5, 0.5])
        }

        fn phase_changed(&self) -> bool {
            false
        }

        fn reset(&mut self) {
            self.epochs = 0;
        }
    }

    #[test]
    fn step_feeds_actuation_through_plant() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let mut lp = EpochLoop::new(gov, Echo { epochs: 0 });
        assert_eq!(lp.outputs(), &Vector::zeros(2));
        lp.prime();
        assert_eq!(lp.outputs(), &Vector::from_slice(&[0.5, 0.5]));
        assert!(lp.step().is_healthy());
        assert_eq!(lp.outputs(), &Vector::from_slice(&[1.0, 4.0]));
        assert_eq!(lp.last_input(), &Vector::from_slice(&[1.0, 4.0]));
        assert_eq!(lp.plant().epochs, 2);
        assert_eq!(lp.epoch(), 1);
        assert_eq!(lp.fault_epochs(), 0);
    }

    #[test]
    fn history_and_summarize_work() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let mut lp = EpochLoop::new(gov, Echo { epochs: 0 });
        lp.record_history(8);
        for _ in 0..8 {
            lp.step();
        }
        let targets = Vector::from_slice(&[1.0, 4.0]);
        let stats = lp.summarize(&targets, true);
        assert_eq!(stats.avg_err_pct, vec![0.0, 0.0]);
        assert_eq!(stats.steady_epoch, vec![Some(0), Some(0)]);
        assert_eq!(stats.final_outputs, targets);
        assert_eq!(stats.trace.as_ref().map(Vec::len), Some(8));
        let (u_hist, y_hist) = lp.into_histories();
        assert_eq!(u_hist.len(), 8);
        assert_eq!(y_hist.len(), 8);
    }

    #[test]
    fn accepts_borrowed_and_boxed_parties() {
        let mut gov = FixedGovernor::new(Vector::from_slice(&[2.0, 8.0]));
        let mut plant = Echo { epochs: 0 };
        {
            let dyn_gov: &mut dyn Governor = &mut gov;
            let mut lp = EpochLoop::new(dyn_gov, &mut plant);
            lp.step();
            assert_eq!(lp.outputs(), &Vector::from_slice(&[2.0, 8.0]));
        }
        let boxed: Box<dyn Governor + Send> = Box::new(gov);
        let mut lp = EpochLoop::new(boxed, plant);
        lp.step();
        assert_eq!(lp.plant().epochs, 2);
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn input_count_mismatch_panics() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0]));
        let _ = EpochLoop::new(gov, Echo { epochs: 0 });
    }

    /// A plant that emits NaN on output 0 for epochs in `[from, to)`.
    #[derive(Debug)]
    struct NanWindow {
        epochs: usize,
        from: usize,
        to: usize,
    }

    impl Plant for NanWindow {
        fn num_inputs(&self) -> usize {
            2
        }

        fn num_outputs(&self) -> usize {
            2
        }

        fn input_grids(&self) -> Vec<Vec<f64>> {
            vec![vec![0.0, 1.0, 2.0], vec![0.0, 4.0, 8.0]]
        }

        fn apply(&mut self, u: &Vector) -> Vector {
            let faulted = self.epochs >= self.from && self.epochs < self.to;
            self.epochs += 1;
            if faulted {
                Vector::from_slice(&[f64::NAN, u[1]])
            } else {
                u.clone()
            }
        }

        fn observe(&mut self) -> Vector {
            Vector::from_slice(&[0.5, 0.5])
        }

        fn phase_changed(&self) -> bool {
            false
        }

        fn reset(&mut self) {
            self.epochs = 0;
        }
    }

    #[test]
    fn faulted_epochs_degrade_then_quarantine_and_restore_buffers() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let plant = NanWindow {
            epochs: 0,
            from: 2,
            to: 2 + DEFAULT_QUARANTINE_THRESHOLD as usize,
        };
        let mut lp = EpochLoop::new(gov, plant);
        lp.record_history(8);
        assert!(lp.step().is_healthy());
        assert!(lp.step().is_healthy());
        let good = lp.outputs().clone();
        // First three faults degrade; the fourth crosses the threshold.
        for i in 0..DEFAULT_QUARANTINE_THRESHOLD - 1 {
            let outcome = lp.step();
            match outcome {
                StepOutcome::Degraded(ref e) => {
                    assert_eq!(e.epoch, 2 + u64::from(i));
                    assert_eq!(e.core, None);
                    assert_eq!(e.cause, EpochCause::NonFiniteMeasurement { channel: 0 });
                }
                other => panic!("expected Degraded, got {other:?}"),
            }
            // Buffers restored to the last healthy epoch.
            assert_eq!(lp.outputs(), &good);
        }
        match lp.step() {
            StepOutcome::Quarantined(e) => {
                assert_eq!(e.epoch, 1 + u64::from(DEFAULT_QUARANTINE_THRESHOLD))
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
        assert!(lp.is_quarantined());
        assert_eq!(
            lp.quarantine_epoch(),
            Some(1 + u64::from(DEFAULT_QUARANTINE_THRESHOLD))
        );
        assert_eq!(lp.fault_epochs(), u64::from(DEFAULT_QUARANTINE_THRESHOLD));
        // The plant healed: the epoch itself succeeds, but the quarantine
        // latch stays until the supervisor calls reset_health.
        assert!(lp.step().is_healthy());
        assert!(lp.is_quarantined());
        lp.reset_health();
        assert!(!lp.is_quarantined());
        assert!(lp.step().is_healthy());
        // History never recorded a NaN.
        let (u_hist, y_hist) = lp.into_histories();
        assert!(u_hist.iter().all(Vector::all_finite));
        assert!(y_hist.iter().all(Vector::all_finite));
    }

    #[test]
    fn step_decided_matches_step_including_fault_machinery() {
        // Two identical loops: one stepped normally, one via external
        // decisions replicating what the FixedGovernor would decide.
        // Outcomes, buffers, histories, and the quarantine latch must
        // match epoch for epoch.
        let mk = || {
            let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
            let plant = NanWindow {
                epochs: 0,
                from: 2,
                to: 2 + DEFAULT_QUARANTINE_THRESHOLD as usize,
            };
            let mut lp = EpochLoop::new(gov, plant);
            lp.record_history(10);
            lp
        };
        let mut solo = mk();
        let mut banked = mk();
        for _ in 0..10 {
            let a = solo.step();
            let b = banked.step_decided(Ok(&[1.0, 4.0]));
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert_eq!(solo.outputs(), banked.outputs());
            assert_eq!(solo.last_input(), banked.last_input());
            assert_eq!(solo.is_quarantined(), banked.is_quarantined());
        }
        assert_eq!(solo.fault_epochs(), banked.fault_epochs());
        assert_eq!(solo.quarantine_epoch(), banked.quarantine_epoch());
        assert_eq!(solo.into_histories(), banked.into_histories());
    }

    #[test]
    fn step_decided_err_counts_as_faulted_epoch() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let mut lp = EpochLoop::new(gov, Echo { epochs: 0 });
        assert!(lp.step_decided(Ok(&[1.0, 4.0])).is_healthy());
        let good = lp.outputs().clone();
        match lp.step_decided(Err(EpochCause::NonFiniteActuation { channel: 1 })) {
            StepOutcome::Degraded(e) => {
                assert_eq!(e.cause, EpochCause::NonFiniteActuation { channel: 1 });
                assert_eq!(e.epoch, 1);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // Buffers restored; the plant never ran this epoch.
        assert_eq!(lp.outputs(), &good);
        assert_eq!(lp.fault_epochs(), 1);
        // Non-finite actuation passed as Ok is still screened here.
        match lp.step_decided(Ok(&[f64::NAN, 4.0])) {
            StepOutcome::Degraded(e) => {
                assert_eq!(e.cause, EpochCause::NonFiniteActuation { channel: 0 });
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn core_id_is_stamped_into_errors() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let plant = NanWindow {
            epochs: 0,
            from: 0,
            to: 1,
        };
        let mut lp = EpochLoop::new(gov, plant);
        lp.set_core(7);
        match lp.step() {
            StepOutcome::Degraded(e) => assert_eq!(e.core, Some(7)),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_actuation_is_caught_before_the_plant() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, f64::INFINITY]));
        let mut lp = EpochLoop::new(gov, Echo { epochs: 0 });
        match lp.step() {
            StepOutcome::Degraded(e) => {
                assert_eq!(e.cause, EpochCause::NonFiniteActuation { channel: 1 });
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The plant never saw the bad actuation.
        assert_eq!(lp.plant().epochs, 0);
    }

    #[test]
    fn observer_sees_every_epoch_fault_and_one_quarantine() {
        use crate::telemetry::{TelemetryConfig, TelemetrySink};
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let plant = NanWindow {
            epochs: 0,
            from: 2,
            to: 2 + DEFAULT_QUARANTINE_THRESHOLD as usize + 2,
        };
        let mut lp = EpochLoop::new(gov, plant)
            .with_observer(TelemetrySink::new(&TelemetryConfig::trace(64)));
        lp.set_core(5);
        for _ in 0..10 {
            lp.step();
        }
        lp.finish();
        let sink = lp.observer();
        assert_eq!(sink.metrics.epochs, 10);
        assert_eq!(sink.metrics.healthy_epochs, 4);
        assert_eq!(sink.metrics.fault_epochs, 6);
        assert_eq!(
            sink.metrics.faults_by_cause[crate::telemetry::CauseCode::NonFiniteMeasurement.index()],
            6
        );
        // The latch fires exactly once even though two more epochs fault
        // while quarantined.
        assert_eq!(sink.metrics.quarantines, 1);
        let q = sink.quarantine.expect("quarantine event captured");
        assert_eq!(q.epoch, 1 + u64::from(DEFAULT_QUARANTINE_THRESHOLD));
        assert_eq!(q.core, Some(5));
        assert_eq!(q.channel, Some(0));
        let summary = sink.summary.expect("run summary emitted");
        assert_eq!(summary.epochs, 10);
        assert_eq!(summary.fault_epochs, 6);
        assert!(summary.quarantined);
        assert_eq!(summary.quarantine_epoch, lp.quarantine_epoch());
        // The trace labels healthy/degraded/quarantined epochs in order,
        // and faulted records carry the restored (finite) buffers.
        let trace = lp.observer().trace.to_vec();
        assert_eq!(trace.len(), 10);
        let labels: Vec<&str> = trace.iter().map(|r| r.health.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "healthy",
                "healthy",
                "degraded",
                "degraded",
                "degraded",
                "quarantined",
                "quarantined",
                "quarantined",
                "healthy",
                "healthy",
            ]
        );
        assert!(trace
            .iter()
            .flat_map(|r| r.inputs().iter().chain(r.outputs()))
            .all(|v| v.is_finite()));
        // into_parts hands the observer back for draining.
        let (_gov, _plant, sink) = lp.into_parts();
        assert_eq!(sink.trace.len(), 10);
    }

    #[test]
    fn with_observer_preserves_state_and_null_default_is_free() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let mut lp = EpochLoop::new(gov, Echo { epochs: 0 });
        assert!(!lp.observer().enabled());
        lp.step();
        lp.finish(); // no-op with the NullObserver default
        let before = lp.outputs().clone();
        // Swapping observers mid-run keeps epochs, buffers, and health.
        let mut lp = lp.with_observer(crate::telemetry::RingTrace::with_capacity(4));
        assert_eq!(lp.epoch(), 1);
        assert_eq!(lp.outputs(), &before);
        lp.step();
        assert_eq!(lp.observer().len(), 1);
        assert_eq!(lp.observer().iter().next().unwrap().epoch, 1);
    }
}
