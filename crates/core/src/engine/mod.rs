//! The unified epoch engine: one hot loop for every driver.
//!
//! Every evaluation path in the repo — the experiment runners
//! (tracking, schedules, optimization) and the fleet runtime — repeats
//! the same epoch cadence: read the plant, let the governor decide,
//! apply the actuation, record. [`EpochLoop`] owns that cadence once, so
//! drivers become thin configurations instead of re-implementations, and
//! the loop body routes through the allocation-free `*_into` paths
//! ([`crate::governor::Governor::decide_into`],
//! [`mimo_sim::Plant::apply_into`]) so a steady-state epoch performs zero
//! heap allocations.
//!
//! Bit-exactness contract: stepping a governor/plant pair through
//! [`EpochLoop::step`] produces the same measurements, statistics, and
//! digests as the hand-rolled loops it replaced, because the `*_into`
//! kernels evaluate the same floating-point operations in the same order.

use mimo_linalg::Vector;
use mimo_sim::Plant;

use crate::governor::Governor;

mod schedule;
mod summary;

pub use schedule::{ReferenceStep, ScheduleCursor};
pub use summary::{
    fleet_warmup, grid_step, rel_tracking_error, summarize, TrackingErrorAccumulator,
    TrackingStats, WARMUP_EPOCHS,
};

/// Drives one governor against one plant, epoch by epoch.
///
/// The loop owns the measurement (`y`) and actuation (`u`) buffers and
/// reuses them every epoch; optional history recording powers the
/// [`TrackingStats`] reductions.
///
/// Both type parameters accept owned values, `&mut` borrows, or boxed
/// trait objects (blanket impls forward the traits), so callers choose
/// their ownership model: the experiment runners lend `&mut dyn
/// Governor` / `&mut Processor`, the fleet gives each core an owned
/// `Box<dyn Governor + Send>` + `Processor`.
#[derive(Debug)]
pub struct EpochLoop<G: Governor, P: Plant> {
    gov: G,
    plant: P,
    /// Last measured outputs, fed to the governor next epoch.
    y: Vector,
    /// Actuation buffer, rewritten every epoch.
    u: Vector,
    /// Actuator grids, captured once at construction.
    grids: Vec<Vec<f64>>,
    u_hist: Vec<Vector>,
    y_hist: Vec<Vector>,
    record: bool,
}

impl<G: Governor, P: Plant> EpochLoop<G, P> {
    /// Pairs `gov` with `plant`. The initial measurement is all zeros
    /// (the fleet convention); call [`EpochLoop::prime`] to start from a
    /// real reading instead.
    ///
    /// # Panics
    ///
    /// Panics if the governor actuates a different number of inputs than
    /// the plant exposes.
    pub fn new(gov: G, plant: P) -> Self {
        assert_eq!(
            gov.num_inputs(),
            plant.num_inputs(),
            "governor/plant input count mismatch"
        );
        let y = Vector::zeros(plant.num_outputs());
        let u = Vector::zeros(plant.num_inputs());
        let grids = plant.input_grids();
        EpochLoop {
            gov,
            plant,
            y,
            u,
            grids,
            u_hist: Vec::new(),
            y_hist: Vec::new(),
            record: false,
        }
    }

    /// Obtains the first measurement by running one epoch at the plant's
    /// current configuration (the experiment-runner convention).
    pub fn prime(&mut self) {
        self.y = self.plant.observe();
    }

    /// Seeds the measurement buffer from outputs obtained externally
    /// (e.g. an optimizer's own priming epochs).
    pub fn seed_outputs(&mut self, y: &Vector) {
        self.y.copy_from(y);
    }

    /// Forwards reference targets to the governor.
    pub fn set_targets(&mut self, y0: &Vector) {
        self.gov.set_targets(y0);
    }

    /// Enables per-epoch input/output history recording (required by
    /// [`EpochLoop::summarize`]), reserving room for `epochs` entries.
    pub fn record_history(&mut self, epochs: usize) {
        self.record = true;
        self.u_hist.reserve(epochs);
        self.y_hist.reserve(epochs);
    }

    /// Runs one epoch: the governor consumes the previous measurement and
    /// the plant's phase flag, the plant applies the decided actuation,
    /// and the fresh measurement is returned (and recorded when history
    /// is enabled).
    pub fn step(&mut self) -> &Vector {
        let phase = self.plant.phase_changed();
        self.gov.decide_into(&self.y, phase, &mut self.u);
        self.plant.apply_into(&self.u, &mut self.y);
        if self.record {
            self.u_hist.push(self.u.clone());
            self.y_hist.push(self.y.clone());
        }
        &self.y
    }

    /// The most recent measurement.
    pub fn outputs(&self) -> &Vector {
        &self.y
    }

    /// The most recent actuation.
    pub fn last_input(&self) -> &Vector {
        &self.u
    }

    /// Borrows the plant.
    pub fn plant(&self) -> &P {
        &self.plant
    }

    /// Mutably borrows the plant.
    pub fn plant_mut(&mut self) -> &mut P {
        &mut self.plant
    }

    /// Borrows the governor.
    pub fn governor(&self) -> &G {
        &self.gov
    }

    /// Mutably borrows the governor.
    pub fn governor_mut(&mut self) -> &mut G {
        &mut self.gov
    }

    /// Reduces the recorded history to [`TrackingStats`] against fixed
    /// `targets` (history recording must be enabled).
    pub fn summarize(&self, targets: &Vector, keep_trace: bool) -> TrackingStats {
        summary::summarize(&self.u_hist, &self.y_hist, targets, &self.grids, keep_trace)
    }

    /// Consumes the loop, returning the recorded `(inputs, outputs)`
    /// histories.
    pub fn into_histories(self) -> (Vec<Vector>, Vec<Vector>) {
        (self.u_hist, self.y_hist)
    }

    /// Consumes the loop, returning the governor and plant.
    pub fn into_parts(self) -> (G, P) {
        (self.gov, self.plant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::FixedGovernor;

    /// A deterministic 2-in/2-out plant: y = u, counting epochs.
    #[derive(Debug)]
    struct Echo {
        epochs: usize,
    }

    impl Plant for Echo {
        fn num_inputs(&self) -> usize {
            2
        }

        fn num_outputs(&self) -> usize {
            2
        }

        fn input_grids(&self) -> Vec<Vec<f64>> {
            vec![vec![0.0, 1.0, 2.0], vec![0.0, 4.0, 8.0]]
        }

        fn apply(&mut self, u: &Vector) -> Vector {
            self.epochs += 1;
            u.clone()
        }

        fn observe(&mut self) -> Vector {
            self.epochs += 1;
            Vector::from_slice(&[0.5, 0.5])
        }

        fn phase_changed(&self) -> bool {
            false
        }

        fn reset(&mut self) {
            self.epochs = 0;
        }
    }

    #[test]
    fn step_feeds_actuation_through_plant() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let mut lp = EpochLoop::new(gov, Echo { epochs: 0 });
        assert_eq!(lp.outputs(), &Vector::zeros(2));
        lp.prime();
        assert_eq!(lp.outputs(), &Vector::from_slice(&[0.5, 0.5]));
        let y = lp.step().clone();
        assert_eq!(y, Vector::from_slice(&[1.0, 4.0]));
        assert_eq!(lp.last_input(), &Vector::from_slice(&[1.0, 4.0]));
        assert_eq!(lp.plant().epochs, 2);
    }

    #[test]
    fn history_and_summarize_work() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let mut lp = EpochLoop::new(gov, Echo { epochs: 0 });
        lp.record_history(8);
        for _ in 0..8 {
            lp.step();
        }
        let targets = Vector::from_slice(&[1.0, 4.0]);
        let stats = lp.summarize(&targets, true);
        assert_eq!(stats.avg_err_pct, vec![0.0, 0.0]);
        assert_eq!(stats.steady_epoch, vec![Some(0), Some(0)]);
        assert_eq!(stats.final_outputs, targets);
        assert_eq!(stats.trace.as_ref().map(Vec::len), Some(8));
        let (u_hist, y_hist) = lp.into_histories();
        assert_eq!(u_hist.len(), 8);
        assert_eq!(y_hist.len(), 8);
    }

    #[test]
    fn accepts_borrowed_and_boxed_parties() {
        let mut gov = FixedGovernor::new(Vector::from_slice(&[2.0, 8.0]));
        let mut plant = Echo { epochs: 0 };
        {
            let dyn_gov: &mut dyn Governor = &mut gov;
            let mut lp = EpochLoop::new(dyn_gov, &mut plant);
            lp.step();
            assert_eq!(lp.outputs(), &Vector::from_slice(&[2.0, 8.0]));
        }
        let boxed: Box<dyn Governor + Send> = Box::new(gov);
        let mut lp = EpochLoop::new(boxed, plant);
        lp.step();
        assert_eq!(lp.plant().epochs, 2);
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn input_count_mismatch_panics() {
        let gov = FixedGovernor::new(Vector::from_slice(&[1.0]));
        let _ = EpochLoop::new(gov, Echo { epochs: 0 });
    }
}
