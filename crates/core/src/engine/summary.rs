//! Epoch-history metrics shared by every driver.
//!
//! The experiment runners and the fleet runtime both reduce per-epoch
//! histories to the paper's metrics — average tracking error after
//! warm-up, steady-state epochs, final-window means. Centralizing the
//! arithmetic keeps the reductions bit-identical across drivers.

use mimo_linalg::Vector;

/// Epochs discarded from the front of a run when computing averages
/// (controller warm-up) in the experiment drivers.
pub const WARMUP_EPOCHS: usize = 200;

/// Warm-up epochs excluded from fleet tracking-error accumulation while
/// the per-core loops converge onto their references: a fifth of the run,
/// capped at 200 epochs.
pub fn fleet_warmup(total_epochs: usize) -> usize {
    (total_epochs / 5).min(200)
}

/// Relative tracking error `|y − r| / |r|`, guarded against degenerate
/// references.
///
/// For a healthy positive reference this is bit-identical to the naive
/// `((y − r) / r).abs()`. The guards only engage at the edges:
///
/// * non-finite measurement or reference → `1.0` (a full miss, instead of
///   letting a NaN poison every downstream average);
/// * `|r| ≤ 1e-9` (a zero reference, e.g. an idle core assigned no IPS
///   share) → `0.0` when the measurement matches to the same tolerance,
///   `1.0` otherwise — a defined value instead of dividing by zero.
pub fn rel_tracking_error(y: f64, r: f64) -> f64 {
    if !y.is_finite() || !r.is_finite() {
        return 1.0;
    }
    if r.abs() <= 1e-9 {
        return if (y - r).abs() <= 1e-9 { 0.0 } else { 1.0 };
    }
    ((y - r) / r).abs()
}

/// Tracking-run metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingStats {
    /// Average |y − y₀| / y₀ per output, in percent, after warm-up.
    pub avg_err_pct: Vec<f64>,
    /// Epochs until each *input* last changed by more than one grid step
    /// (the paper's "epochs to achieve steady state" per input); `None`
    /// if the input never settles.
    pub steady_epoch: Vec<Option<usize>>,
    /// Mean outputs over the final quarter of the run.
    pub final_outputs: Vector,
    /// Recorded output trace (per epoch) when requested.
    pub trace: Option<Vec<Vector>>,
}

/// Reduces recorded input/output histories to [`TrackingStats`] against
/// fixed `targets`.
pub fn summarize(
    u_hist: &[Vector],
    y_hist: &[Vector],
    targets: &Vector,
    grids: &[Vec<f64>],
    keep_trace: bool,
) -> TrackingStats {
    let epochs = y_hist.len();
    let o = targets.len();
    let warm = WARMUP_EPOCHS.min(epochs / 4);

    let mut avg_err_pct = vec![0.0; o];
    let mut n = 0usize;
    for y in &y_hist[warm..] {
        for c in 0..o {
            avg_err_pct[c] += rel_tracking_error(y[c], targets[c]) * 100.0;
        }
        n += 1;
    }
    for e in &mut avg_err_pct {
        *e /= n.max(1) as f64;
    }

    // Steady-state epoch per input: last time the input moved by more than
    // one grid step from its final value.
    let n_inputs = grids.len();
    let mut steady_epoch = vec![None; n_inputs];
    if let Some(last_u) = u_hist.last() {
        for i in 0..n_inputs {
            let step = grid_step(&grids[i]);
            let final_v = last_u[i];
            let mut last_move = 0usize;
            for (t, u) in u_hist.iter().enumerate() {
                if (u[i] - final_v).abs() > step * 1.01 {
                    last_move = t + 1;
                }
            }
            // The input never settles if it was still away from its final
            // value in the last tenth of the run.
            steady_epoch[i] = if last_move < epochs.saturating_sub(epochs / 10) {
                Some(last_move)
            } else {
                None
            };
        }
    }

    // Mean over the final quarter; an empty run has no final window (the
    // unguarded `epochs - quarter` underflowed when epochs == 0).
    let quarter = (epochs / 4).max(1).min(epochs);
    let mut final_outputs = Vector::zeros(o);
    for y in &y_hist[epochs - quarter..] {
        final_outputs += y;
    }
    if quarter > 0 {
        final_outputs = final_outputs.scale(1.0 / quarter as f64);
    }

    TrackingStats {
        avg_err_pct,
        steady_epoch,
        final_outputs,
        trace: keep_trace.then(|| y_hist.to_vec()),
    }
}

/// The smallest spacing of a sorted actuator grid (floored at `1e-9` so a
/// duplicate-valued grid cannot yield a zero step).
pub fn grid_step(grid: &[f64]) -> f64 {
    grid.windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min)
        .max(1e-9)
}

/// Streaming per-channel tracking-error accumulator with a warm-up window,
/// as used by the fleet runtime: epochs before `warmup` advance the clock
/// but contribute no error samples.
#[derive(Debug, Clone)]
pub struct TrackingErrorAccumulator {
    epoch: usize,
    warmup: usize,
    sums: Vec<f64>,
    samples: u64,
}

impl TrackingErrorAccumulator {
    /// Creates an accumulator over `channels` outputs that ignores the
    /// first `warmup` recorded epochs.
    pub fn new(channels: usize, warmup: usize) -> Self {
        TrackingErrorAccumulator {
            epoch: 0,
            warmup,
            sums: vec![0.0; channels],
            samples: 0,
        }
    }

    /// Records one epoch's measurement against the reference in force.
    ///
    /// # Panics
    ///
    /// Panics if `y` or `target` has fewer channels than the accumulator.
    pub fn record(&mut self, y: &Vector, target: &Vector) {
        if self.epoch >= self.warmup {
            for c in 0..self.sums.len() {
                self.sums[c] += rel_tracking_error(y[c], target[c]);
            }
            self.samples += 1;
        }
        self.epoch += 1;
    }

    /// Average tracking error for `channel`, in percent, over the recorded
    /// post-warm-up epochs (0 when nothing was recorded).
    pub fn avg_pct(&self, channel: usize) -> f64 {
        100.0 * self.sums[channel] / self.samples.max(1) as f64
    }

    /// Post-warm-up epochs recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_error_matches_naive_for_positive_refs() {
        for (y, r) in [(2.3, 2.5), (0.0, 1.9), (5.0, 0.1), (1.0, 1.0)] {
            assert_eq!(
                rel_tracking_error(y, r).to_bits(),
                ((y - r) / r).abs().to_bits()
            );
        }
    }

    #[test]
    fn rel_error_guards_zero_reference() {
        assert_eq!(rel_tracking_error(0.0, 0.0), 0.0);
        assert_eq!(rel_tracking_error(5e-10, 0.0), 0.0);
        assert_eq!(rel_tracking_error(1.0, 0.0), 1.0);
        assert_eq!(rel_tracking_error(1.0, 5e-10), 1.0);
    }

    #[test]
    fn rel_error_guards_non_finite_values() {
        assert_eq!(rel_tracking_error(f64::NAN, 2.0), 1.0);
        assert_eq!(rel_tracking_error(2.0, f64::NAN), 1.0);
        assert_eq!(rel_tracking_error(f64::INFINITY, 2.0), 1.0);
        assert_eq!(rel_tracking_error(2.0, f64::NEG_INFINITY), 1.0);
    }

    #[test]
    fn fleet_warmup_is_a_capped_fifth() {
        assert_eq!(fleet_warmup(0), 0);
        assert_eq!(fleet_warmup(100), 20);
        assert_eq!(fleet_warmup(10_000), 200);
    }

    #[test]
    fn accumulator_skips_warmup_and_averages() {
        let mut acc = TrackingErrorAccumulator::new(2, 2);
        let target = Vector::from_slice(&[2.0, 1.0]);
        // Two warm-up epochs: huge errors that must not count.
        acc.record(&Vector::from_slice(&[20.0, 10.0]), &target);
        acc.record(&Vector::from_slice(&[20.0, 10.0]), &target);
        assert_eq!(acc.samples(), 0);
        assert_eq!(acc.avg_pct(0), 0.0);
        // Two counted epochs at 50% / 100% error.
        acc.record(&Vector::from_slice(&[1.0, 2.0]), &target);
        acc.record(&Vector::from_slice(&[3.0, 0.0]), &target);
        assert_eq!(acc.samples(), 2);
        assert!((acc.avg_pct(0) - 50.0).abs() < 1e-12);
        assert!((acc.avg_pct(1) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_handles_empty_history() {
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let grids = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let stats = summarize(&[], &[], &targets, &grids, true);
        assert_eq!(stats.avg_err_pct, vec![0.0, 0.0]);
        assert_eq!(stats.steady_epoch, vec![None, None]);
        assert_eq!(stats.final_outputs, Vector::zeros(2));
        assert_eq!(stats.trace, Some(vec![]));
    }

    #[test]
    fn grid_step_floors_at_epsilon() {
        assert_eq!(grid_step(&[1.0, 1.0, 1.0]), 1e-9);
        assert!((grid_step(&[0.5, 0.6, 0.8]) - 0.1).abs() < 1e-12);
    }
}
