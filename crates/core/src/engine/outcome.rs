//! Epoch failure taxonomy: what one `decide → apply` round can report.
//!
//! The engine screens the pipeline at its two trust boundaries — the
//! actuation leaving the governor and the measurement leaving the plant —
//! and wraps whatever goes wrong in an [`EpochError`] that pins down
//! *when* (epoch index), *where* (core id, for fleet runs), and *why*
//! ([`EpochCause`]). [`StepOutcome`] is the health verdict the caller
//! acts on: keep going, tolerate, or pull the core out of rotation.
//!
//! None of these types carry floats, so they derive `PartialEq` without a
//! NaN-equality footgun, and none of their constructors allocate on the
//! paths the engine takes (the wrapped `ControlError`/`SimError` variants
//! it produces are payload-free or carry plain integers), keeping faulting
//! epochs as allocation-free as healthy ones.

use std::error::Error;
use std::fmt;

use mimo_sim::SimError;

use crate::error::ControlError;

/// Why an epoch failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EpochCause {
    /// The plant produced a NaN or infinite measurement (e.g. a faulted
    /// sensor) on this output channel.
    NonFiniteMeasurement {
        /// Offending output channel.
        channel: usize,
    },
    /// The governor produced a NaN or infinite actuation (e.g. a diverged
    /// estimator) on this input channel.
    NonFiniteActuation {
        /// Offending input channel.
        channel: usize,
    },
    /// The governor itself rejected the epoch.
    Governor(ControlError),
    /// The plant itself rejected the epoch.
    Plant(SimError),
}

impl fmt::Display for EpochCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochCause::NonFiniteMeasurement { channel } => {
                write!(
                    f,
                    "plant emitted a non-finite measurement on channel {channel}"
                )
            }
            EpochCause::NonFiniteActuation { channel } => {
                write!(
                    f,
                    "governor emitted a non-finite actuation on channel {channel}"
                )
            }
            EpochCause::Governor(e) => write!(f, "governor failed: {e}"),
            EpochCause::Plant(e) => write!(f, "plant failed: {e}"),
        }
    }
}

/// A failed epoch: when, where, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochError {
    /// Zero-based epoch index at which the failure occurred.
    pub epoch: u64,
    /// Fleet core id, when the loop runs inside a fleet (see
    /// [`crate::engine::EpochLoop::set_core`]).
    pub core: Option<usize>,
    /// What went wrong.
    pub cause: EpochCause,
}

impl fmt::Display for EpochError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.core {
            Some(core) => write!(f, "epoch {} (core {core}): {}", self.epoch, self.cause),
            None => write!(f, "epoch {}: {}", self.epoch, self.cause),
        }
    }
}

impl Error for EpochError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.cause {
            EpochCause::Governor(e) => Some(e),
            EpochCause::Plant(e) => Some(e),
            _ => None,
        }
    }
}

/// The health verdict of one [`crate::engine::EpochLoop::step`].
///
/// Deliberately **not** `#[must_use]`: throughput-oriented drivers that
/// poll [`crate::engine::EpochLoop::outputs`] afterwards (the engine
/// substitutes last-good values on faulted epochs, so the buffers are
/// always finite) may ignore the verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// The epoch completed; buffers hold fresh values.
    Healthy,
    /// The epoch failed but the loop is still in service; the measurement
    /// and actuation buffers were restored to their last healthy values.
    Degraded(EpochError),
    /// The failure streak crossed the quarantine threshold (or the loop
    /// was already quarantined); the caller should pull this loop out of
    /// rotation or install a fallback governor.
    Quarantined(EpochError),
}

impl StepOutcome {
    /// Whether the epoch completed without any fault.
    pub fn is_healthy(&self) -> bool {
        matches!(self, StepOutcome::Healthy)
    }

    /// The error carried by a degraded or quarantined outcome.
    pub fn error(&self) -> Option<&EpochError> {
        match self {
            StepOutcome::Healthy => None,
            StepOutcome::Degraded(e) | StepOutcome::Quarantined(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_pins_epoch_and_core() {
        let e = EpochError {
            epoch: 17,
            core: Some(3),
            cause: EpochCause::NonFiniteMeasurement { channel: 1 },
        };
        let s = e.to_string();
        assert!(s.contains("epoch 17"), "{s}");
        assert!(s.contains("core 3"), "{s}");
        assert!(s.contains("channel 1"), "{s}");
        let solo = EpochError { core: None, ..e };
        assert!(!solo.to_string().contains("core"), "{solo}");
    }

    #[test]
    fn source_chains_to_the_underlying_error() {
        let e = EpochError {
            epoch: 0,
            core: None,
            cause: EpochCause::Plant(SimError::NonFiniteActuation { channel: 0 }),
        };
        assert!(e.source().is_some());
        let screened = EpochError {
            epoch: 0,
            core: None,
            cause: EpochCause::NonFiniteActuation { channel: 0 },
        };
        assert!(screened.source().is_none());
    }

    #[test]
    fn outcome_accessors() {
        assert!(StepOutcome::Healthy.is_healthy());
        assert!(StepOutcome::Healthy.error().is_none());
        let err = EpochError {
            epoch: 2,
            core: None,
            cause: EpochCause::NonFiniteActuation { channel: 0 },
        };
        let degraded = StepOutcome::Degraded(err.clone());
        assert!(!degraded.is_healthy());
        assert_eq!(degraded.error(), Some(&err));
        assert!(StepOutcome::Quarantined(err).error().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<EpochError>();
    }
}
