//! The MIMO LQG tracking controller — the paper's central artifact.
//!
//! §III-A: "the LQG controller tries to minimize the sum of the squares of
//! a set of costs … the differences between each output and its reference
//! value, and between each input and the proposed new value of that input —
//! the controller minimizes input changes to avoid quick jerks from steady
//! state."
//!
//! That is a Δu-penalized tracking LQG. We augment the identified plant
//! `x(t+1) = Ax + Bu, y = Cx + Du` (in normalized deviation coordinates
//! around the steady state for the current reference) with the previous
//! input and an error integrator:
//!
//! ```text
//! z = [x̃; ũ₋₁; q],  q(t+1) = q + ỹ(t)
//!
//!     [A  B  0]       [B]
//! Ā = [0  I  0],  B̄ = [I],   Δu = −F z
//!     [C  D  I]       [D]
//! ```
//!
//! LQR over `(Ā, B̄)` with cost `ỹᵀQỹ + qᵀ(ρQ)q + ΔuᵀRΔu` yields `F`; a
//! steady-state Kalman filter over the identified noise covariances
//! estimates `x`. The integral state guarantees zero steady-state offset
//! despite model error; the Δu formulation implements the paper's
//! control-effort weights. Finally, each input is quantized to its
//! discrete actuator grid and the quantized value is fed back into the
//! controller state (anti-windup against quantization).

use mimo_linalg::lu::LuDecomposition;
use mimo_linalg::{MatVecKernel, Matrix, VecKernel, Vector};
use mimo_sysid::scale::ChannelScaler;

use crate::kalman::{update_kalman, KalmanFilter, KalmanScratch};
use crate::lqr::{design_lqr, LqrGain};
use crate::ss::StateSpace;
use crate::storage::{DynStore, LqgStorage, StaticStore};
use crate::{ControlError, Result};

/// Bound on normalized inputs (slightly beyond the identification range so
/// the controller can pin actuators at their ends).
const U_CLAMP: f64 = 1.05;

/// Bound on each integrator channel (anti-windup for infeasible
/// references, e.g. non-responsive applications).
const Q_CLAMP: f64 = 4.0;

/// Integrator leak: the error integral decays by this factor per epoch.
/// A pure integrator (leak = 1) is unstabilizable when the plant's DC gain
/// is rank deficient — which genuinely happens here, because every knob
/// moves IPS and power in nearly the same ratio. The leak keeps the
/// augmented design solvable at the cost of a vanishing steady-state
/// offset (scaled by `1 − leak`).
const INTEGRATOR_LEAK: f64 = 0.995;

/// Everything needed to synthesize an [`LqgController`].
#[derive(Debug, Clone)]
pub struct LqgDesign {
    /// Identified plant model in normalized coordinates.
    pub model: StateSpace,
    /// Process-noise covariance (`N x N`).
    pub process_noise: Matrix,
    /// Measurement-noise covariance (`O x O`).
    pub measurement_noise: Matrix,
    /// Tracking-error cost diagonal (one weight per output) — the paper's
    /// `Q` matrix.
    pub output_weights: Vec<f64>,
    /// Control-effort cost diagonal (one weight per input) — the paper's
    /// `R` matrix, penalizing *changes* of each input.
    pub input_weights: Vec<f64>,
    /// Integral-action weight as a fraction of each output weight.
    pub integral_weight: f64,
    /// Physical-to-normalized map for the inputs.
    pub input_scaler: ChannelScaler,
    /// Physical-to-normalized map for the outputs.
    pub output_scaler: ChannelScaler,
    /// Allowed physical values per input (the actuator grids).
    pub input_grids: Vec<Vec<f64>>,
}

impl LqgDesign {
    /// Synthesizes the controller.
    ///
    /// # Errors
    ///
    /// * [`ControlError::DimensionMismatch`] — weights/scalers/grids don't
    ///   match the model dimensions.
    /// * [`ControlError::InfeasibleReference`] — more outputs than inputs
    ///   (the MIMO structural limit of §III-B).
    /// * [`ControlError::RiccatiDiverged`] / [`ControlError::BadWeights`] —
    ///   synthesis failures from the LQR/Kalman stages.
    pub fn build(self) -> Result<LqgController> {
        self.build_with::<DynStore>()
    }

    /// Synthesizes the controller with an explicit runtime storage.
    ///
    /// Synthesis itself (LQR, Kalman, steady-state resolve) always runs on
    /// dynamic matrices; `S` only selects how the runtime copies of the
    /// gains and state are held. `build_with::<DynStore>()` is exactly
    /// [`LqgDesign::build`].
    ///
    /// # Errors
    ///
    /// Everything [`LqgDesign::build`] returns, plus
    /// [`ControlError::DimensionMismatch`] when `S` is a
    /// [`StaticStore`] whose const dimensions disagree with the model.
    pub fn build_with<S: LqgStorage>(self) -> Result<LqgController<S>> {
        let n = self.model.state_dim();
        let i = self.model.num_inputs();
        let o = self.model.num_outputs();
        if o > i {
            return Err(ControlError::InfeasibleReference {
                what: format!("{o} outputs > {i} inputs; MIMO needs outputs <= inputs"),
            });
        }
        if self.output_weights.len() != o || self.input_weights.len() != i {
            return Err(ControlError::DimensionMismatch {
                what: format!(
                    "weights: {} output / {} input weights for an {o}-output {i}-input model",
                    self.output_weights.len(),
                    self.input_weights.len()
                ),
            });
        }
        if self.input_scaler.channels() != i
            || self.output_scaler.channels() != o
            || self.input_grids.len() != i
        {
            return Err(ControlError::DimensionMismatch {
                what: "scaler or grid channel counts disagree with the model".into(),
            });
        }
        if self.integral_weight <= 0.0 {
            return Err(ControlError::BadWeights {
                what: format!("integral weight {} must be positive", self.integral_weight),
            });
        }
        S::check_dims(i, o, n)?;

        // --- Augmented system -------------------------------------------
        let a = self.model.a();
        let b = self.model.b();
        let c = self.model.c();
        let d = self.model.d();
        let z_dim = n + i + o;
        let mut a_aug = Matrix::zeros(z_dim, z_dim);
        a_aug.set_block(0, 0, a);
        a_aug.set_block(0, n, b);
        a_aug.set_block(n, n, &Matrix::identity(i));
        a_aug.set_block(n + i, 0, c);
        a_aug.set_block(n + i, n, d);
        a_aug.set_block(n + i, n + i, &Matrix::identity(o).scale(INTEGRATOR_LEAK));
        let mut b_aug = Matrix::zeros(z_dim, i);
        b_aug.set_block(0, 0, b);
        b_aug.set_block(n, 0, &Matrix::identity(i));
        b_aug.set_block(n + i, 0, d);

        // --- Cost --------------------------------------------------------
        let q_out = Matrix::diag(&self.output_weights);
        // M maps z to ỹ (ignoring the direct DΔu term, exact for strictly
        // proper models).
        let mut m = Matrix::zeros(o, z_dim);
        m.set_block(0, 0, c);
        m.set_block(0, n, d);
        let mut q_aug = &(&m.transpose() * &q_out) * &m;
        let q_int = q_out.scale(self.integral_weight);
        for r in 0..o {
            for cc in 0..o {
                q_aug[(n + i + r, n + i + cc)] += q_int[(r, cc)];
            }
        }
        // Small direct penalty on the held-input deviation. The u₋₁ memory
        // has an open-loop eigenvalue of exactly 1; along any null
        // direction of the plant gain it is invisible to the output cost,
        // which would leave an undetectable marginal mode (LQR radius
        // pinned at 1.0) and a drifting actuator. The ε makes every input
        // direction detectable.
        const UPREV_EPS: f64 = 2.0;
        for k in 0..i {
            q_aug[(n + k, n + k)] += UPREV_EPS;
        }
        let r_mat = Matrix::diag(&self.input_weights);

        let lqr: LqrGain = design_lqr(&a_aug, &b_aug, &q_aug, &r_mat)?;
        let kalman =
            KalmanFilter::design(&self.model, &self.process_noise, &self.measurement_noise)?;

        let rt = LqgRt::<S>::from_synthesis(&lqr.k, kalman.gain(), &self.model)?;
        let ss_solver = SteadyStateSolver::new(&self);
        let mut ctrl = LqgController {
            closed_loop_radius: lqr.closed_loop_radius,
            kalman,
            rt,
            scratch: LqgScratch::new(n, i, o),
            ss_solver,
            design: self,
        };
        // Initialize at a neutral reference (normalized zero = operating
        // midpoint); callers set the real target afterwards.
        ctrl.recompute_steady_state();
        Ok(ctrl)
    }

    /// Synthesizes a controller whose runtime buffers are stack-allocated
    /// with the given const dimensions (`NZ` must equal `NX + NU + NY`).
    ///
    /// This is the synthesis→runtime conversion shim: identical to
    /// [`LqgDesign::build`] followed by
    /// [`LqgController::into_static`], in one step.
    ///
    /// # Errors
    ///
    /// Everything [`LqgDesign::build_with`] returns.
    pub fn into_static<const NU: usize, const NY: usize, const NX: usize, const NZ: usize>(
        self,
    ) -> Result<LqgController<StaticStore<NU, NY, NX, NZ>>> {
        self.build_with::<StaticStore<NU, NY, NX, NZ>>()
    }
}

/// Precomputed artifacts of the steady-state resolve.
///
/// Everything in `LqgController::recompute_steady_state`'s ridge
/// inversion except the reference itself is a pure function of the design:
/// the weighted gain product `Gᵀ Q`, the LU factorization of the
/// regularized Gram matrix, and the LU factorization of `I − A`. Caching
/// them at synthesis turns the per-retarget work into one small
/// matrix-vector product plus two triangular substitutions — the dominant
/// cost of fleet retargeting drops by an order of magnitude, and because
/// [`Matrix::solve`] is itself "factorize, then substitute", the cached
/// path reproduces the original solve **bit for bit** (identical inputs,
/// identical operation sequence).
///
/// Fallbacks mirror the uncached chain exactly: a failed DC gain or an
/// unfactorizable Gram matrix leaves `u_ss` at zero, and an unfactorizable
/// `I − A` leaves `x_ss` at zero.
#[derive(Debug, Clone)]
pub struct SteadyStateSolver {
    nu: usize,
    nx: usize,
    /// `Gᵀ Q`; `None` when the DC gain itself failed.
    gtq: Option<Matrix>,
    /// LU of `Gᵀ Q G + λ I`; `None` when the DC gain or the factorization
    /// failed.
    lhs_lu: Option<LuDecomposition>,
    /// LU of `I − A`; `None` when `I − A` is singular.
    ia_lu: Option<LuDecomposition>,
    /// Copy of the model's `B`, for the `x_ss` propagation.
    b: Matrix,
}

impl SteadyStateSolver {
    /// Precomputes the reference-independent artifacts from a design.
    pub fn new(design: &LqgDesign) -> Self {
        let i = design.model.num_inputs();
        let n = design.model.state_dim();
        let mut gtq_out = None;
        let mut lhs_lu = None;
        if let Ok(g) = design.model.dc_gain() {
            let q = Matrix::diag(&design.output_weights);
            let gtq = &g.transpose() * &q;
            let gram = &gtq * &g;
            let lambda = 0.05 * (gram.trace() / i as f64).max(1e-12);
            let lhs = &gram + &Matrix::identity(i).scale(lambda);
            lhs_lu = LuDecomposition::new(&lhs).ok();
            gtq_out = Some(gtq);
        }
        let i_minus_a = Matrix::identity(n) - design.model.a();
        SteadyStateSolver {
            nu: i,
            nx: n,
            gtq: gtq_out,
            lhs_lu,
            ia_lu: LuDecomposition::new(&i_minus_a).ok(),
            b: design.model.b().clone(),
        }
    }

    /// Resolves the steady-state operating point for a normalized
    /// reference, writing the clamped `u_ss` and implied `x_ss`.
    /// Bit-identical to the uncached ridge solve (see the type docs).
    pub fn resolve(&self, y_ref_norm: &[f64], u_ss_out: &mut [f64], x_ss_out: &mut [f64]) {
        let y_ref = Vector::from_slice(y_ref_norm);
        let u_ss = match (&self.gtq, &self.lhs_lu) {
            (Some(gtq), Some(lu)) => {
                let rhs = gtq * &y_ref.to_col_matrix();
                lu.solve(&rhs).ok().map(Vector::from)
            }
            _ => None,
        }
        .unwrap_or_else(|| Vector::zeros(self.nu));
        let u_ss = u_ss.map(|v| v.clamp(-U_CLAMP, U_CLAMP));
        u_ss_out.copy_from_slice(u_ss.as_slice());
        let x_ss = match &self.ia_lu {
            Some(lu) => lu
                .solve(&(&self.b * &u_ss.to_col_matrix()))
                .map(Vector::from)
                .unwrap_or_else(|_| Vector::zeros(self.nx)),
            None => Vector::zeros(self.nx),
        };
        x_ss_out.copy_from_slice(x_ss.as_slice());
    }
}

/// The synthesized MIMO LQG tracking controller.
///
/// Call [`LqgController::set_reference`] with physical targets, then
/// [`LqgController::step`] once per epoch with the measured outputs; the
/// returned vector is the physical, grid-quantized actuation to apply next.
#[derive(Debug, Clone)]
pub struct LqgController<S: LqgStorage = DynStore> {
    design: LqgDesign,
    closed_loop_radius: f64,
    kalman: KalmanFilter,
    /// Runtime copies of the gains, model matrices, and state, held in
    /// `S`'s storage.
    rt: LqgRt<S>,
    /// Reusable temporaries so a steady-state epoch allocates nothing.
    scratch: LqgScratch<S>,
    /// Cached steady-state solve artifacts (pure function of the design).
    ss_solver: SteadyStateSolver,
}

/// The runtime half of the controller: everything the per-epoch hot path
/// touches, held in the selected storage. Gains and model matrices are
/// bit-exact copies of the synthesis artifacts; the vectors are the
/// controller's evolving state (normalized coordinates).
#[derive(Debug, Clone)]
struct LqgRt<S: LqgStorage> {
    /// LQR gain `F` over the augmented state.
    f: S::GainF,
    /// Kalman predictor gain `L`.
    l: S::GainL,
    /// Model matrices (copies of the identified plant's).
    a: S::MatA,
    b: S::MatB,
    c: S::MatC,
    d: S::MatD,
    /// State estimate.
    xhat: S::VecX,
    /// Previous (quantized, normalized) input.
    u_prev: S::VecU,
    /// Leaky error integrator.
    q_int: S::VecY,
    /// Normalized reference.
    y_ref_norm: S::VecY,
    /// Steady-state operating point for the current reference.
    x_ss: S::VecX,
    u_ss: S::VecU,
}

impl<S: LqgStorage> LqgRt<S> {
    /// Builds the runtime bundle from freshly synthesized dynamic
    /// artifacts, with zeroed state.
    fn from_synthesis(f: &Matrix, l: &Matrix, model: &StateSpace) -> Result<Self> {
        let n = model.state_dim();
        let i = model.num_inputs();
        let o = model.num_outputs();
        let lin = ControlError::Linalg;
        Ok(LqgRt {
            f: S::GainF::from_matrix(f).map_err(lin)?,
            l: S::GainL::from_matrix(l).map_err(lin)?,
            a: S::MatA::from_matrix(model.a()).map_err(lin)?,
            b: S::MatB::from_matrix(model.b()).map_err(lin)?,
            c: S::MatC::from_matrix(model.c()).map_err(lin)?,
            d: S::MatD::from_matrix(model.d()).map_err(lin)?,
            xhat: S::VecX::new_dim(n).map_err(lin)?,
            u_prev: S::VecU::new_dim(i).map_err(lin)?,
            q_int: S::VecY::new_dim(o).map_err(lin)?,
            y_ref_norm: S::VecY::new_dim(o).map_err(lin)?,
            x_ss: S::VecX::new_dim(n).map_err(lin)?,
            u_ss: S::VecU::new_dim(i).map_err(lin)?,
        })
    }

    /// Re-homes the bundle into another storage. Every element round-trips
    /// through the dynamic types bit-exactly, so the converted controller
    /// continues from the identical state.
    fn convert<T: LqgStorage>(&self) -> Result<LqgRt<T>> {
        let lin = ControlError::Linalg;
        Ok(LqgRt {
            f: T::GainF::from_matrix(&self.f.to_matrix()).map_err(lin)?,
            l: T::GainL::from_matrix(&self.l.to_matrix()).map_err(lin)?,
            a: T::MatA::from_matrix(&self.a.to_matrix()).map_err(lin)?,
            b: T::MatB::from_matrix(&self.b.to_matrix()).map_err(lin)?,
            c: T::MatC::from_matrix(&self.c.to_matrix()).map_err(lin)?,
            d: T::MatD::from_matrix(&self.d.to_matrix()).map_err(lin)?,
            xhat: T::VecX::from_vector(&self.xhat.to_vector()).map_err(lin)?,
            u_prev: T::VecU::from_vector(&self.u_prev.to_vector()).map_err(lin)?,
            q_int: T::VecY::from_vector(&self.q_int.to_vector()).map_err(lin)?,
            y_ref_norm: T::VecY::from_vector(&self.y_ref_norm.to_vector()).map_err(lin)?,
            x_ss: T::VecX::from_vector(&self.x_ss.to_vector()).map_err(lin)?,
            u_ss: T::VecU::from_vector(&self.u_ss.to_vector()).map_err(lin)?,
        })
    }
}

/// Reusable temporaries for [`LqgController::step_into`], sized once at
/// synthesis so the 50 µs epoch step performs zero heap allocations.
#[derive(Debug, Clone)]
struct LqgScratch<S: LqgStorage> {
    /// Normalized measurement.
    y_norm: S::VecY,
    /// Augmented state `[x̃; ũ₋₁; q]`.
    z: S::VecZ,
    /// `Δu = −F z`.
    du: S::VecU,
    /// Clamped normalized candidate input.
    u_raw: S::VecU,
    /// Physical candidate input before quantization.
    u_phys_raw: S::VecU,
    /// Physical previous input (for slew limiting).
    u_prev_phys: S::VecU,
    /// Estimator temporaries.
    kalman: KalmanScratch<S>,
}

impl<S: LqgStorage> LqgScratch<S> {
    fn new(n: usize, i: usize, o: usize) -> Self {
        let vu = || S::VecU::new_dim(i).expect("scratch input dim matches storage");
        LqgScratch {
            y_norm: S::VecY::new_dim(o).expect("scratch output dim matches storage"),
            z: S::VecZ::new_dim(n + i + o).expect("scratch augmented dim matches storage"),
            du: vu(),
            u_raw: vu(),
            u_phys_raw: vu(),
            u_prev_phys: vu(),
            kalman: KalmanScratch::new(n, o),
        }
    }
}

impl<S: LqgStorage> LqgController<S> {
    /// Number of actuated inputs.
    pub fn num_inputs(&self) -> usize {
        self.design.model.num_inputs()
    }

    /// Number of tracked outputs.
    pub fn num_outputs(&self) -> usize {
        self.design.model.num_outputs()
    }

    /// The identified model the controller was designed on.
    pub fn model(&self) -> &StateSpace {
        &self.design.model
    }

    /// The LQR gain `F` over `[x̃; ũ₋₁; q]`, in the runtime storage
    /// (`&Matrix` on the default dynamic path).
    pub fn feedback_gain(&self) -> &S::GainF {
        &self.rt.f
    }

    /// The Kalman filter used for state estimation.
    pub fn kalman(&self) -> &KalmanFilter {
        &self.kalman
    }

    /// Spectral radius of the nominal augmented closed loop (< 1 by
    /// construction).
    pub fn closed_loop_radius(&self) -> f64 {
        self.closed_loop_radius
    }

    /// The design the controller was built from.
    pub fn design(&self) -> &LqgDesign {
        &self.design
    }

    /// Current physical reference targets.
    pub fn reference(&self) -> Vector {
        self.design
            .output_scaler
            .denormalize(&self.rt.y_ref_norm.to_vector())
    }

    /// Re-homes the controller into another runtime storage, carrying the
    /// full runtime state (estimate, integrator, previous input,
    /// reference) bit-exactly.
    ///
    /// # Errors
    ///
    /// [`ControlError::DimensionMismatch`] when `T` is a [`StaticStore`]
    /// whose const dimensions disagree with the controller's.
    pub fn with_storage<T: LqgStorage>(&self) -> Result<LqgController<T>> {
        let n = self.design.model.state_dim();
        let i = self.num_inputs();
        let o = self.num_outputs();
        T::check_dims(i, o, n)?;
        Ok(LqgController {
            design: self.design.clone(),
            closed_loop_radius: self.closed_loop_radius,
            kalman: self.kalman.clone(),
            rt: self.rt.convert()?,
            scratch: LqgScratch::new(n, i, o),
            ss_solver: self.ss_solver.clone(),
        })
    }

    /// Converts to a stack-allocated controller with the given const
    /// dimensions (`NZ` must equal `NX + NU + NY`). The static controller
    /// steps bit-identically to this one.
    ///
    /// # Errors
    ///
    /// [`ControlError::DimensionMismatch`] when the const dimensions
    /// disagree with the controller's.
    pub fn into_static<const NU: usize, const NY: usize, const NX: usize, const NZ: usize>(
        self,
    ) -> Result<LqgController<StaticStore<NU, NY, NX, NZ>>> {
        self.with_storage()
    }

    /// Converts back to the dynamic heap-backed storage.
    pub fn to_dynamic(&self) -> LqgController {
        self.with_storage::<DynStore>()
            .expect("dynamic storage accepts any dimensions")
    }

    /// Sets the physical output targets (e.g. `[2.5 BIPS, 2.0 W]`).
    ///
    /// Infeasible targets are accepted: the steady-state solve falls back
    /// to the closest achievable point and the integrator clamp prevents
    /// windup — matching the paper's non-responsive-application behavior,
    /// where the controller gets as close as it can.
    pub fn set_reference(&mut self, y0_physical: &Vector) {
        assert_eq!(
            y0_physical.len(),
            self.num_outputs(),
            "reference dimension mismatch"
        );
        // Allocation-free normalize with change detection: retargeting
        // every epoch (the fleet arbiter's cadence) must not pay the
        // steady-state resolve when the reference did not actually move.
        // `recompute_steady_state` depends only on the normalized
        // reference and the design, so skipping it on bit-equal targets
        // leaves the controller state bit-identical.
        let offsets = self.design.output_scaler.offsets();
        let spans = self.design.output_scaler.spans();
        let mut changed = false;
        let y_ref = self.rt.y_ref_norm.as_mut_slice();
        for c in 0..y0_physical.len() {
            let v = (y0_physical[c] - offsets[c]) / spans[c];
            if v.to_bits() != y_ref[c].to_bits() {
                y_ref[c] = v;
                changed = true;
            }
        }
        if changed {
            self.recompute_steady_state();
        }
    }

    fn recompute_steady_state(&mut self) {
        // Output-weighted, Tikhonov-regularized inversion of the DC gain:
        //   u_ss = (Gᵀ Q G + λ I)⁻¹ Gᵀ Q y₀.
        // Identified DC gains are frequently ill-conditioned (every knob
        // moves both outputs in a similar ratio), and an exact solve then
        // produces enormous opposite-signed feed-forward inputs that pin
        // the actuators at their clamps. The ridge biases u_ss toward the
        // operating midpoint; the integrator removes the residual offset.
        // The reference-independent half (Gᵀ Q and both LU factorizations)
        // is cached in [`SteadyStateSolver`] at synthesis, so a retarget
        // pays only the right-hand side and the substitutions — bit-
        // identical to the full solve, an order of magnitude cheaper.
        self.ss_solver.resolve(
            self.rt.y_ref_norm.as_slice(),
            self.rt.u_ss.as_mut_slice(),
            self.rt.x_ss.as_mut_slice(),
        );
    }

    /// One control epoch: consumes the physical measurement `y(t)` and
    /// returns the physical, quantized actuation `u(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `y_physical` has the wrong dimension.
    pub fn step(&mut self, y_physical: &Vector) -> Vector {
        let mut u_phys = Vector::zeros(self.num_inputs());
        self.step_into(y_physical, &mut u_phys);
        u_phys
    }

    /// One control epoch, in place: consumes the physical measurement
    /// `y(t)` and writes the physical, quantized actuation `u(t)` into
    /// `out`. Bit-identical to [`LqgController::step`] (which forwards
    /// here) but allocation-free: every temporary lives in the scratch
    /// workspace sized at synthesis.
    ///
    /// # Panics
    ///
    /// Panics if `y_physical` or `out` has the wrong dimension.
    pub fn step_into(&mut self, y_physical: &Vector, out: &mut Vector) {
        assert_eq!(
            y_physical.len(),
            self.num_outputs(),
            "measurement dimension mismatch"
        );
        assert_eq!(out.len(), self.num_inputs(), "actuation dimension mismatch");
        let s = &mut self.scratch;
        let rt = &mut self.rt;
        self.design
            .output_scaler
            .normalize_slices(y_physical.as_slice(), s.y_norm.as_mut_slice());

        // Estimator update with the input actually applied last epoch.
        update_kalman::<S>(
            &rt.l,
            &rt.a,
            &rt.b,
            &rt.c,
            &rt.d,
            &mut rt.xhat,
            &rt.u_prev,
            &s.y_norm,
            &mut s.kalman,
        );

        // Integrate the tracking error (leaky, with anti-windup clamp).
        integrate_tracking_error(
            rt.q_int.as_mut_slice(),
            s.y_norm.as_slice(),
            rt.y_ref_norm.as_slice(),
        );

        // Δu = −F [x̃; ũ₋₁; q].
        assemble_augmented_state(
            s.z.as_mut_slice(),
            rt.xhat.as_slice(),
            rt.x_ss.as_slice(),
            rt.u_prev.as_slice(),
            rt.u_ss.as_slice(),
            rt.q_int.as_slice(),
        );
        rt.f.mat_vec_into(&s.z, &mut s.du);
        negate(s.du.as_mut_slice());

        // Apply, clamp, quantize, and slew-limit to one grid step per
        // epoch per input: ways are power-gated one at a time and DVFS
        // relocks per step, and single-step motion stops the controller
        // from reacting to its own transition stalls (§IV-B2's "smaller
        // steps ... more effective control").
        apply_du_clamped(
            s.u_raw.as_mut_slice(),
            rt.u_prev.as_slice(),
            s.du.as_slice(),
        );
        self.design
            .input_scaler
            .denormalize_slices(s.u_raw.as_slice(), s.u_phys_raw.as_mut_slice());
        self.design
            .input_scaler
            .denormalize_slices(rt.u_prev.as_slice(), s.u_prev_phys.as_mut_slice());
        quantize_with_slew(
            &self.design.input_grids,
            s.u_phys_raw.as_slice(),
            s.u_prev_phys.as_slice(),
            out.as_mut_slice(),
        );
        // Feed the *quantized* input back (anti-windup against rounding).
        self.design
            .input_scaler
            .normalize_slices(out.as_slice(), rt.u_prev.as_mut_slice());
    }

    /// Resets the runtime state (estimate, integrator, previous input)
    /// without touching the design or the reference.
    pub fn reset_state(&mut self) {
        self.rt.xhat.as_mut_slice().fill(0.0);
        self.rt.u_prev.as_mut_slice().fill(0.0);
        self.rt.q_int.as_mut_slice().fill(0.0);
    }

    /// Seeds the previous-input memory from a physical actuation (e.g. the
    /// configuration the plant is currently running).
    pub fn seed_input(&mut self, u_physical: &Vector) {
        self.design
            .input_scaler
            .normalize_slices(u_physical.as_slice(), self.rt.u_prev.as_mut_slice());
    }

    /// Borrowed views of the runtime gain and model matrices, in storage
    /// `S`. The fleet's banked stepping path reads these once per bank so
    /// every enrolled core shares the identical bit-exact copies.
    pub fn runtime_matrices(&self) -> LqgMatrices<'_, S> {
        LqgMatrices {
            f: &self.rt.f,
            l: &self.rt.l,
            a: &self.rt.a,
            b: &self.rt.b,
            c: &self.rt.c,
            d: &self.rt.d,
        }
    }

    /// Snapshot of the evolving runtime state (estimate, held input,
    /// integrator, normalized reference, steady-state operating point) in
    /// dynamic vectors — every element a bit-exact copy.
    pub fn export_state(&self) -> LqgState {
        LqgState {
            xhat: self.rt.xhat.to_vector(),
            u_prev: self.rt.u_prev.to_vector(),
            q_int: self.rt.q_int.to_vector(),
            y_ref_norm: self.rt.y_ref_norm.to_vector(),
            x_ss: self.rt.x_ss.to_vector(),
            u_ss: self.rt.u_ss.to_vector(),
        }
    }

    /// The cached steady-state solve artifacts this controller retargets
    /// through.
    pub fn steady_state_solver(&self) -> &SteadyStateSolver {
        &self.ss_solver
    }
}

/// Borrowed views of an [`LqgController`]'s runtime gain and model
/// matrices (see [`LqgController::runtime_matrices`]).
pub struct LqgMatrices<'a, S: LqgStorage> {
    /// LQR gain `F` over `[x̃; ũ₋₁; q]`.
    pub f: &'a S::GainF,
    /// Kalman predictor gain `L`.
    pub l: &'a S::GainL,
    /// Model `A`.
    pub a: &'a S::MatA,
    /// Model `B`.
    pub b: &'a S::MatB,
    /// Model `C`.
    pub c: &'a S::MatC,
    /// Model `D`.
    pub d: &'a S::MatD,
}

/// Snapshot of an [`LqgController`]'s evolving runtime state (see
/// [`LqgController::export_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LqgState {
    /// State estimate `x̂`.
    pub xhat: Vector,
    /// Previous (quantized, normalized) input.
    pub u_prev: Vector,
    /// Leaky error integrator.
    pub q_int: Vector,
    /// Normalized reference.
    pub y_ref_norm: Vector,
    /// Steady-state operating state for the current reference.
    pub x_ss: Vector,
    /// Steady-state operating input for the current reference.
    pub u_ss: Vector,
}

// --- Slice-level pieces of the LQG epoch -------------------------------
//
// `step_into` is built from these free functions so the fleet's banked
// (structure-of-arrays) stepping path can run the *same* scalar code per
// core: one implementation, one floating-point operation order, bit parity
// by construction.

/// Leaky error integration with the anti-windup clamp:
/// `q ← clamp(q·leak + (y − y_ref), ±Q_CLAMP)` per channel.
pub fn integrate_tracking_error(q_int: &mut [f64], y_norm: &[f64], y_ref_norm: &[f64]) {
    for c in 0..q_int.len() {
        let err = y_norm[c] - y_ref_norm[c];
        q_int[c] = (q_int[c] * INTEGRATOR_LEAK + err).clamp(-Q_CLAMP, Q_CLAMP);
    }
}

/// Assembles the augmented state `z = [x̂ − x_ss; u₋₁ − u_ss; q]`.
pub fn assemble_augmented_state(
    z: &mut [f64],
    xhat: &[f64],
    x_ss: &[f64],
    u_prev: &[f64],
    u_ss: &[f64],
    q_int: &[f64],
) {
    let n = xhat.len();
    let i = u_prev.len();
    for k in 0..n {
        z[k] = xhat[k] - x_ss[k];
    }
    for k in 0..i {
        z[n + k] = u_prev[k] - u_ss[k];
    }
    for (k, &q) in q_int.iter().enumerate() {
        z[n + i + k] = q;
    }
}

/// In-place sign flip (`v ← v · −1`), the `Δu = −F z` negation.
pub fn negate(values: &mut [f64]) {
    for v in values {
        *v *= -1.0;
    }
}

/// Candidate input: `u_raw = clamp(u_prev + Δu, ±U_CLAMP)` per channel.
pub fn apply_du_clamped(u_raw: &mut [f64], u_prev: &[f64], du: &[f64]) {
    for k in 0..u_raw.len() {
        u_raw[k] = (u_prev[k] + du[k]).clamp(-U_CLAMP, U_CLAMP);
    }
}

/// Grid quantization with the one-step-per-epoch slew limit: each channel
/// moves at most one grid index from its current (quantized) position
/// toward the nearest-to-candidate index.
pub fn quantize_with_slew(
    grids: &[Vec<f64>],
    u_phys_raw: &[f64],
    u_prev_phys: &[f64],
    out: &mut [f64],
) {
    for ch in 0..out.len() {
        let grid = &grids[ch];
        let target = quantize_index(grid, u_phys_raw[ch]);
        let current = quantize_index(grid, u_prev_phys[ch]);
        let stepped = if target > current {
            current + 1
        } else if target < current {
            current - 1
        } else {
            current
        };
        out[ch] = grid[stepped];
    }
}

/// Nearest-value quantization to a sorted grid.
#[cfg(test)]
fn quantize_to(grid: &[f64], v: f64) -> f64 {
    grid[quantize_index(grid, v)]
}

/// Index of the nearest grid value.
pub fn quantize_index(grid: &[f64], v: f64) -> usize {
    debug_assert!(!grid.is_empty());
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &g) in grid.iter().enumerate() {
        let d = (g - v).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A known 2-input 2-output plant for closed-loop tests:
    /// x(t+1) = diag(0.7, 0.6)x + Bu, y = x, with cross coupling in B.
    fn test_plant() -> StateSpace {
        StateSpace::new(
            Matrix::diag(&[0.7, 0.6]),
            Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.6]]),
            Matrix::identity(2),
            Matrix::zeros(2, 2),
        )
        .unwrap()
    }

    fn fine_grid() -> Vec<f64> {
        (0..201).map(|i| -1.0 + 0.01 * i as f64).collect()
    }

    fn test_design(model: StateSpace, qw: &[f64], rw: &[f64]) -> LqgDesign {
        let n = model.state_dim();
        LqgDesign {
            process_noise: Matrix::identity(n).scale(1e-4),
            measurement_noise: Matrix::identity(model.num_outputs()).scale(1e-4),
            output_weights: qw.to_vec(),
            input_weights: rw.to_vec(),
            integral_weight: 0.05,
            input_scaler: ChannelScaler::from_ranges(&[(-1.0, 1.0), (-1.0, 1.0)]),
            output_scaler: ChannelScaler::from_ranges(&[(-5.0, 5.0), (-5.0, 5.0)]),
            // Fine grids so quantization barely interferes in unit tests.
            input_grids: vec![fine_grid(), fine_grid()],
            model,
        }
    }

    /// Simulates the closed loop for `steps` epochs and returns the final
    /// physical output.
    fn run_closed_loop(
        ctrl: &mut LqgController,
        plant: &StateSpace,
        y0: &Vector,
        steps: usize,
    ) -> Vector {
        ctrl.set_reference(y0);
        let out_scaler = ctrl.design().output_scaler.clone();
        let in_scaler = ctrl.design().input_scaler.clone();
        let mut x = Vector::zeros(plant.state_dim());
        let mut y_phys = out_scaler.denormalize(&plant.c().mul_vec(&x).unwrap());
        for _ in 0..steps {
            let u_phys = ctrl.step(&y_phys);
            let u_norm = in_scaler.normalize(&u_phys);
            let (xn, y_norm) = plant.step(&x, &u_norm);
            x = xn;
            y_phys = out_scaler.denormalize(&y_norm);
        }
        y_phys
    }

    #[test]
    fn tracks_a_feasible_mimo_reference() {
        let plant = test_plant();
        let mut ctrl = test_design(plant.clone(), &[10.0, 1000.0], &[0.01, 0.01])
            .build()
            .unwrap();
        let y0 = Vector::from_slice(&[2.0, 1.0]);
        let y = run_closed_loop(&mut ctrl, &plant, &y0, 400);
        assert!(
            (&y - &y0).norm_inf() < 0.05,
            "tracking failed: y = {y:?}, target {y0:?}"
        );
    }

    #[test]
    fn integral_action_rejects_plant_gain_error() {
        // Controller designed on the nominal model, but the true plant has
        // 25% higher gain — integral action must still remove the offset.
        let model = test_plant();
        let true_plant = StateSpace::new(
            model.a().clone(),
            model.b().scale(1.25),
            model.c().clone(),
            model.d().clone(),
        )
        .unwrap();
        let mut ctrl = test_design(model, &[10.0, 10.0], &[0.05, 0.05])
            .build()
            .unwrap();
        let y0 = Vector::from_slice(&[1.5, -1.0]);
        let y = run_closed_loop(&mut ctrl, &true_plant, &y0, 800);
        assert!(
            (&y - &y0).norm_inf() < 0.08,
            "offset not rejected: {y:?} vs {y0:?}"
        );
    }

    #[test]
    fn output_weight_prioritizes_that_output() {
        // Both outputs are driven by (almost) the same input direction, so
        // the targets [1, -1] conflict: the loop must compromise. The
        // heavily weighted output should end up closer to its target.
        let plant = StateSpace::new(
            Matrix::diag(&[0.5, 0.5]),
            Matrix::from_rows(&[&[0.5, 0.02], &[0.5, -0.02]]),
            Matrix::identity(2),
            Matrix::zeros(2, 2),
        )
        .unwrap();
        let y0 = Vector::from_slice(&[1.0, -1.0]);
        let mut errs = Vec::new();
        for qw in [[1.0, 1.0], [1.0, 400.0]] {
            let mut ctrl = test_design(plant.clone(), &qw, &[0.01, 0.01])
                .build()
                .unwrap();
            let y = run_closed_loop(&mut ctrl, &plant, &y0, 800);
            errs.push((y[1] - y0[1]).abs());
        }
        assert!(
            errs[1] < errs[0],
            "weighting output 1 at 400x should shrink its error: {errs:?}"
        );
    }

    #[test]
    fn higher_input_weight_slows_that_input() {
        let plant = test_plant();
        let y0 = Vector::from_slice(&[2.0, 2.0]);
        // Under slew limiting, a heavier input weight shows up as a later
        // first movement of that input (it takes longer for the accumulated
        // error to justify paying the change cost).
        let mut first_move_epoch = Vec::new();
        for rw in [[0.01, 0.01], [0.01, 2000.0]] {
            let mut design = test_design(plant.clone(), &[10.0, 10.0], &rw);
            // Coarse grids: moving one step is a deliberate act, so the
            // change-cost asymmetry becomes visible.
            let coarse: Vec<f64> = (0..9).map(|i| -1.0 + 0.25 * i as f64).collect();
            design.input_grids = vec![coarse.clone(), coarse];
            let mut ctrl = design.build().unwrap();
            ctrl.set_reference(&y0);
            let start = ctrl.step(&Vector::from_slice(&[0.0, 0.0]))[1];
            let mut moved_at = 200;
            for t in 1..200 {
                let u = ctrl.step(&Vector::from_slice(&[0.0, 0.0]));
                if (u[1] - start).abs() > 1e-12 {
                    moved_at = t;
                    break;
                }
            }
            first_move_epoch.push(moved_at);
        }
        assert!(
            first_move_epoch[1] > first_move_epoch[0],
            "heavy weight should delay input 1: {first_move_epoch:?}"
        );
    }

    #[test]
    fn infeasible_reference_saturates_without_windup() {
        let plant = test_plant();
        let mut ctrl = test_design(plant.clone(), &[10.0, 10.0], &[0.01, 0.01])
            .build()
            .unwrap();
        // Far beyond the reachable set given u ∈ [-1, 1].
        let y0 = Vector::from_slice(&[50.0, 50.0]);
        let y = run_closed_loop(&mut ctrl, &plant, &y0, 500);
        // Saturated but finite and stable.
        assert!(y.all_finite());
        // And the controller recovers promptly when the target becomes
        // feasible again (windup would delay this for hundreds of epochs).
        let y_ok = Vector::from_slice(&[1.0, 1.0]);
        let y2 = run_closed_loop(&mut ctrl, &plant, &y_ok, 600);
        assert!((&y2 - &y_ok).norm_inf() < 0.1, "recovery failed: {y2:?}");
    }

    #[test]
    fn quantization_to_coarse_grid_still_converges_nearby() {
        let plant = test_plant();
        let mut design = test_design(plant.clone(), &[10.0, 10.0], &[0.05, 0.05]);
        // Coarse 9-point grids.
        design.input_grids = vec![
            (0..9).map(|i| -1.0 + 0.25 * i as f64).collect(),
            (0..9).map(|i| -1.0 + 0.25 * i as f64).collect(),
        ];
        let mut ctrl = design.build().unwrap();
        let y0 = Vector::from_slice(&[1.2, 0.8]);
        let y = run_closed_loop(&mut ctrl, &plant, &y0, 600);
        // Within a quantization step of the target.
        assert!((&y - &y0).norm_inf() < 0.6, "coarse tracking: {y:?}");
    }

    #[test]
    fn rejects_more_outputs_than_inputs() {
        // 1 input, 2 outputs.
        let model = StateSpace::new(
            Matrix::diag(&[0.5, 0.5]),
            Matrix::from_rows(&[&[1.0], &[0.5]]),
            Matrix::identity(2),
            Matrix::zeros(2, 1),
        )
        .unwrap();
        let design = LqgDesign {
            process_noise: Matrix::identity(2).scale(1e-4),
            measurement_noise: Matrix::identity(2).scale(1e-4),
            output_weights: vec![1.0, 1.0],
            input_weights: vec![1.0],
            integral_weight: 0.05,
            input_scaler: ChannelScaler::from_ranges(&[(-1.0, 1.0)]),
            output_scaler: ChannelScaler::from_ranges(&[(-1.0, 1.0), (-1.0, 1.0)]),
            input_grids: vec![fine_grid()],
            model,
        };
        assert!(matches!(
            design.build(),
            Err(ControlError::InfeasibleReference { .. })
        ));
    }

    #[test]
    fn dimension_validation() {
        let model = test_plant();
        let mut d = test_design(model, &[1.0, 1.0], &[1.0, 1.0]);
        d.output_weights = vec![1.0]; // wrong count
        assert!(matches!(
            d.build(),
            Err(ControlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn closed_loop_radius_reported_stable() {
        let ctrl = test_design(test_plant(), &[10.0, 100.0], &[0.1, 0.1])
            .build()
            .unwrap();
        assert!(ctrl.closed_loop_radius() < 1.0);
    }

    #[test]
    fn reset_and_seed() {
        let mut ctrl = test_design(test_plant(), &[1.0, 1.0], &[1.0, 1.0])
            .build()
            .unwrap();
        ctrl.set_reference(&Vector::from_slice(&[1.0, 1.0]));
        let _ = ctrl.step(&Vector::from_slice(&[0.5, 0.2]));
        ctrl.reset_state();
        assert_eq!(ctrl.rt.u_prev.norm_inf(), 0.0);
        ctrl.seed_input(&Vector::from_slice(&[0.5, -0.5]));
        assert!(ctrl.rt.u_prev.norm_inf() > 0.0);
    }

    #[test]
    fn static_build_matches_dynamic_bit_for_bit() {
        // The 2-state/2-in/2-out test plant monomorphizes to
        // StaticStore<2, 2, 2, 6>. Drive both controllers through the same
        // measurement sequence and demand identical bits at every epoch.
        let design = test_design(test_plant(), &[10.0, 1000.0], &[0.01, 0.01]);
        let mut dynamic = design.clone().build().unwrap();
        let mut fixed = design.into_static::<2, 2, 2, 6>().unwrap();
        let y0 = Vector::from_slice(&[2.0, 1.0]);
        dynamic.set_reference(&y0);
        fixed.set_reference(&y0);
        let mut u_d = Vector::zeros(2);
        let mut u_s = Vector::zeros(2);
        for t in 0..300 {
            let y = Vector::from_slice(&[(t as f64 * 0.37).sin() * 3.0, (t as f64 * 0.19).cos()]);
            dynamic.step_into(&y, &mut u_d);
            fixed.step_into(&y, &mut u_s);
            for k in 0..2 {
                assert_eq!(
                    u_d[k].to_bits(),
                    u_s[k].to_bits(),
                    "divergence at epoch {t} channel {k}: {} vs {}",
                    u_d[k],
                    u_s[k]
                );
            }
        }
    }

    #[test]
    fn mid_run_conversion_carries_state_bit_exactly() {
        let design = test_design(test_plant(), &[10.0, 10.0], &[0.05, 0.05]);
        let mut dynamic = design.build().unwrap();
        dynamic.set_reference(&Vector::from_slice(&[1.5, -1.0]));
        let mut u_d = Vector::zeros(2);
        let mut u_s = Vector::zeros(2);
        for t in 0..50 {
            let y = Vector::from_slice(&[(t as f64 * 0.11).sin(), (t as f64 * 0.07).cos()]);
            dynamic.step_into(&y, &mut u_d);
        }
        // Convert mid-run: the static controller must continue exactly
        // where the dynamic one left off.
        let mut fixed = dynamic.with_storage::<StaticStore<2, 2, 2, 6>>().unwrap();
        for t in 50..150 {
            let y = Vector::from_slice(&[(t as f64 * 0.11).sin(), (t as f64 * 0.07).cos()]);
            dynamic.step_into(&y, &mut u_d);
            fixed.step_into(&y, &mut u_s);
            for k in 0..2 {
                assert_eq!(u_d[k].to_bits(), u_s[k].to_bits(), "epoch {t} channel {k}");
            }
        }
        // And back: round-tripping to dynamic also preserves state.
        let mut back = fixed.to_dynamic();
        let y = Vector::from_slice(&[0.4, -0.2]);
        fixed.step_into(&y, &mut u_s);
        back.step_into(&y, &mut u_d);
        assert_eq!(u_d[0].to_bits(), u_s[0].to_bits());
        assert_eq!(u_d[1].to_bits(), u_s[1].to_bits());
    }

    #[test]
    fn static_conversion_rejects_wrong_dimensions() {
        let ctrl = test_design(test_plant(), &[1.0, 1.0], &[1.0, 1.0])
            .build()
            .unwrap();
        // Wrong NU.
        assert!(ctrl.with_storage::<StaticStore<3, 2, 2, 7>>().is_err());
        // Wrong NZ (must be NX + NU + NY = 6).
        assert!(ctrl.with_storage::<StaticStore<2, 2, 2, 7>>().is_err());
        // Right shape converts.
        assert!(ctrl.with_storage::<StaticStore<2, 2, 2, 6>>().is_ok());
    }

    #[test]
    fn quantize_to_picks_nearest() {
        let grid = [0.0, 1.0, 2.0];
        assert_eq!(quantize_to(&grid, 0.4), 0.0);
        assert_eq!(quantize_to(&grid, 0.6), 1.0);
        assert_eq!(quantize_to(&grid, 99.0), 2.0);
    }
}
