//! Discrete-time algebraic Riccati equation (DARE) solver.
//!
//! LQG synthesis reduces to two Riccati equations — one for the optimal
//! state-feedback gain and its dual for the steady-state Kalman filter.
//! MATLAB's `dlqr`/`kalman` hide this; here we solve
//!
//! ```text
//! P = AᵀPA − AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q
//! ```
//!
//! with the structure-preserving doubling algorithm (SDA), which converges
//! quadratically, falling back to the plain fixed-point iteration when
//! doubling hits a singular intermediate.

use mimo_linalg::Matrix;

use crate::{ControlError, Result};

/// Convergence tolerance on the relative change of `P` between iterations.
const TOL: f64 = 1e-11;

/// Iteration budgets.
const MAX_DOUBLING: usize = 120;
const MAX_FIXED_POINT: usize = 20_000;

/// Solves the DARE `P = AᵀPA − AᵀPB(R + BᵀPB)⁻¹BᵀPA + Q`.
///
/// Requirements: `Q` symmetric positive semidefinite, `R` symmetric
/// positive definite, `(A, B)` stabilizable. The returned `P` is the
/// unique stabilizing solution (symmetric, PSD).
///
/// # Errors
///
/// * [`ControlError::DimensionMismatch`] — inconsistent shapes.
/// * [`ControlError::RiccatiDiverged`] — iteration failed to converge
///   (unstabilizable pair or indefinite weights).
///
/// # Example
///
/// ```
/// use mimo_core::dare::solve_dare;
/// use mimo_linalg::Matrix;
///
/// # fn main() -> Result<(), mimo_core::ControlError> {
/// // Scalar: a=1 (integrator), b=1, q=1, r=1 → p = (1+sqrt(5))/2 · … known.
/// let p = solve_dare(
///     &Matrix::from_rows(&[&[1.0]]),
///     &Matrix::from_rows(&[&[1.0]]),
///     &Matrix::from_rows(&[&[1.0]]),
///     &Matrix::from_rows(&[&[1.0]]),
/// )?;
/// // p solves p = p - p²/(1+p) + 1 → p² - p - 1 = 0 → golden ratio.
/// assert!((p[(0, 0)] - 1.618033988749895).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve_dare(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<Matrix> {
    check_dims(a, b, q, r)?;
    match solve_doubling(a, b, q, r) {
        Ok(p) => Ok(p),
        Err(_) => solve_fixed_point(a, b, q, r),
    }
}

fn check_dims(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<()> {
    let n = a.rows();
    let m = b.cols();
    if !a.is_square() || q.shape() != (n, n) || b.rows() != n || r.shape() != (m, m) {
        return Err(ControlError::DimensionMismatch {
            what: format!(
                "A {:?}, B {:?}, Q {:?}, R {:?}",
                a.shape(),
                b.shape(),
                q.shape(),
                r.shape()
            ),
        });
    }
    Ok(())
}

/// Structure-preserving doubling algorithm.
///
/// Iterates the triple `(Ak, Gk, Hk)` with
/// `A₀ = A`, `G₀ = B R⁻¹ Bᵀ`, `H₀ = Q`:
///
/// ```text
/// W   = I + Gk Hk
/// A⁺  = Ak W⁻¹ Ak
/// G⁺  = Gk + Ak W⁻¹ Gk Akᵀ
/// H⁺  = Hk + Akᵀ Hk W⁻¹ Ak
/// ```
///
/// `Hk` converges quadratically to the stabilizing solution.
fn solve_doubling(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    let r_inv_bt = r.solve(&b.transpose()).map_err(ControlError::Linalg)?;
    let mut gk = b * &r_inv_bt; // B R⁻¹ Bᵀ
    let mut ak = a.clone();
    let mut hk = q.clone();
    let eye = Matrix::identity(n);

    for it in 0..MAX_DOUBLING {
        let w = &eye + &(&gk * &hk);
        let w_inv_ak = w.solve(&ak).map_err(|_| ControlError::RiccatiDiverged {
            iterations: it,
            residual: f64::NAN,
        })?;
        let w_inv_g = w.solve(&gk).map_err(|_| ControlError::RiccatiDiverged {
            iterations: it,
            residual: f64::NAN,
        })?;
        let a_next = &ak * &w_inv_ak;
        let g_next = (&gk + &(&(&ak * &w_inv_g) * &ak.transpose())).symmetrize();
        let h_next = (&hk + &(&(&ak.transpose() * &hk) * &w_inv_ak)).symmetrize();

        let delta = (&h_next - &hk).max_abs();
        let scale = h_next.max_abs().max(1.0);
        hk = h_next;
        ak = a_next;
        gk = g_next;
        if !hk.all_finite() {
            return Err(ControlError::RiccatiDiverged {
                iterations: it,
                residual: f64::INFINITY,
            });
        }
        if delta <= TOL * scale {
            let p = hk.symmetrize();
            let resid = residual(a, b, q, r, &p)?;
            let rscale = p.max_abs().max(1.0);
            if resid <= 1e-6 * rscale {
                return Ok(p);
            }
            return Err(ControlError::RiccatiDiverged {
                iterations: it,
                residual: resid,
            });
        }
    }
    Err(ControlError::RiccatiDiverged {
        iterations: MAX_DOUBLING,
        residual: f64::NAN,
    })
}

/// Plain fixed-point iteration of the Riccati recursion (value iteration).
fn solve_fixed_point(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<Matrix> {
    let mut p = q.clone();
    for it in 0..MAX_FIXED_POINT {
        let next = riccati_step(a, b, q, r, &p)?;
        let delta = (&next - &p).max_abs();
        let scale = next.max_abs().max(1.0);
        p = next.symmetrize();
        if !p.all_finite() {
            return Err(ControlError::RiccatiDiverged {
                iterations: it,
                residual: f64::INFINITY,
            });
        }
        if delta <= TOL * scale {
            return Ok(p);
        }
    }
    let resid = residual(a, b, q, r, &p)?;
    Err(ControlError::RiccatiDiverged {
        iterations: MAX_FIXED_POINT,
        residual: resid,
    })
}

/// One application of the Riccati map.
fn riccati_step(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix, p: &Matrix) -> Result<Matrix> {
    let at_p = &a.transpose() * p;
    let at_p_a = &at_p * a;
    let at_p_b = &at_p * b;
    let r_plus = r + &(&(&b.transpose() * p) * b);
    let x = r_plus
        .solve(&at_p_b.transpose())
        .map_err(ControlError::Linalg)?; // (R+BᵀPB)⁻¹ BᵀPA
    Ok(&(&at_p_a - &(&at_p_b * &x)) + q)
}

/// DARE residual `‖P − f(P)‖∞`, used to verify solutions.
///
/// # Errors
///
/// Propagates linear-algebra failures from the Riccati map.
pub fn residual(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix, p: &Matrix) -> Result<f64> {
    Ok((&riccati_step(a, b, q, r, p)? - p).max_abs())
}

/// The LQR gain associated with a DARE solution:
/// `K = (R + BᵀPB)⁻¹ BᵀPA`, so that `u = −K x` is optimal.
///
/// # Errors
///
/// Propagates linear-algebra failures.
pub fn gain_from(a: &Matrix, b: &Matrix, r: &Matrix, p: &Matrix) -> Result<Matrix> {
    let bt_p = &b.transpose() * p;
    let r_plus = r + &(&bt_p * b);
    let rhs = &bt_p * a;
    r_plus.solve(&rhs).map_err(ControlError::Linalg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_linalg::eigen::spectral_radius;

    fn assert_dare_solution(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix, p: &Matrix) {
        let res = residual(a, b, q, r, p).unwrap();
        let scale = p.max_abs().max(1.0);
        assert!(res < 1e-8 * scale, "residual {res}");
        // Stabilizing: closed loop A − B K is Schur stable.
        let k = gain_from(a, b, r, p).unwrap();
        let acl = a - &(b * &k);
        let rho = spectral_radius(&acl).unwrap();
        assert!(rho < 1.0, "closed-loop spectral radius {rho}");
    }

    #[test]
    fn scalar_integrator_golden_ratio() {
        let a = Matrix::from_rows(&[&[1.0]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let q = Matrix::from_rows(&[&[1.0]]);
        let r = Matrix::from_rows(&[&[1.0]]);
        let p = solve_dare(&a, &b, &q, &r).unwrap();
        assert!((p[(0, 0)] - (1.0 + 5.0_f64.sqrt()) / 2.0).abs() < 1e-9);
        assert_dare_solution(&a, &b, &q, &r, &p);
    }

    #[test]
    fn stable_plant_cheap_control() {
        // Stable A with huge R: P ≈ solution of the Lyapunov equation.
        let a = Matrix::from_rows(&[&[0.5]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let q = Matrix::from_rows(&[&[1.0]]);
        let r = Matrix::from_rows(&[&[1e8]]);
        let p = solve_dare(&a, &b, &q, &r).unwrap();
        // Lyapunov: p = a²p + q → p = 1/(1-0.25) = 4/3.
        assert!((p[(0, 0)] - 4.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn mimo_system() {
        let a = Matrix::from_rows(&[&[1.1, 0.3, 0.0], &[0.0, 0.9, 0.2], &[0.1, 0.0, 0.7]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]]);
        let q = Matrix::diag(&[1.0, 2.0, 0.5]);
        let r = Matrix::diag(&[1.0, 3.0]);
        let p = solve_dare(&a, &b, &q, &r).unwrap();
        assert_dare_solution(&a, &b, &q, &r, &p);
        // P symmetric PSD: diagonal positive.
        for i in 0..3 {
            assert!(p[(i, i)] > 0.0);
            for j in 0..3 {
                assert!((p[(i, j)] - p[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn unstable_mimo_gets_stabilized() {
        let a = Matrix::from_rows(&[&[1.5, 0.2], &[0.0, 1.2]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.4]]);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(&[&[0.1]]);
        let p = solve_dare(&a, &b, &q, &r).unwrap();
        assert_dare_solution(&a, &b, &q, &r, &p);
    }

    #[test]
    fn zero_q_with_stable_a() {
        let a = Matrix::diag(&[0.3, -0.5]);
        let b = Matrix::from_fn(2, 1, |_, _| 1.0);
        let q = Matrix::zeros(2, 2);
        let r = Matrix::from_rows(&[&[1.0]]);
        let p = solve_dare(&a, &b, &q, &r).unwrap();
        // With no state cost and stable A, P = 0.
        assert!(p.max_abs() < 1e-8);
    }

    #[test]
    fn unstabilizable_pair_diverges() {
        // Unstable mode with no control authority.
        let a = Matrix::diag(&[2.0, 0.5]);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(&[&[1.0]]);
        assert!(matches!(
            solve_dare(&a, &b, &q, &r),
            Err(ControlError::RiccatiDiverged { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(3, 1);
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        assert!(matches!(
            solve_dare(&a, &b, &q, &r),
            Err(ControlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn doubling_and_fixed_point_agree() {
        let a = Matrix::from_rows(&[&[0.95, 0.1], &[-0.05, 0.8]]);
        let b = Matrix::from_rows(&[&[0.5], &[1.0]]);
        let q = Matrix::diag(&[2.0, 1.0]);
        let r = Matrix::from_rows(&[&[0.5]]);
        let p1 = solve_doubling(&a, &b, &q, &r).unwrap();
        let p2 = solve_fixed_point(&a, &b, &q, &r).unwrap();
        assert!((&p1 - &p2).max_abs() < 1e-7);
    }

    #[test]
    fn heavier_state_cost_raises_p() {
        let a = Matrix::from_rows(&[&[0.9]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let r = Matrix::from_rows(&[&[1.0]]);
        let p1 = solve_dare(&a, &b, &Matrix::from_rows(&[&[1.0]]), &r).unwrap();
        let p10 = solve_dare(&a, &b, &Matrix::from_rows(&[&[10.0]]), &r).unwrap();
        assert!(p10[(0, 0)] > p1[(0, 0)]);
    }
}
