use std::error::Error;
use std::fmt;

use mimo_linalg::LinalgError;
use mimo_sysid::SysidError;

/// Errors produced during controller design and operation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// State-space matrices had inconsistent dimensions.
    DimensionMismatch {
        /// Description of the inconsistency.
        what: String,
    },
    /// The Riccati iteration failed to converge — typically an
    /// unstabilizable `(A, B)` pair or indefinite weights.
    RiccatiDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Last residual observed.
        residual: f64,
    },
    /// Weight matrices must be positive (semi-)definite diagonals.
    BadWeights {
        /// Description of the offending weight.
        what: String,
    },
    /// The MIMO structural requirement `outputs <= inputs` (§III-B) was
    /// violated, or no steady-state input exists for the requested
    /// reference.
    InfeasibleReference {
        /// Description of the infeasibility.
        what: String,
    },
    /// The designed closed loop failed validation (not stable, or not
    /// robust at the requested uncertainty guardband).
    ValidationFailed {
        /// Which check failed.
        what: String,
    },
    /// A measurement fed to a governor was NaN or infinite. Consuming it
    /// would permanently corrupt internal controller state (e.g. the
    /// Kalman estimate), so the epoch is rejected instead.
    NonFiniteMeasurement {
        /// Index of the offending output channel.
        channel: usize,
    },
    /// An underlying identification failure.
    Sysid(SysidError),
    /// An underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            ControlError::RiccatiDiverged {
                iterations,
                residual,
            } => write!(
                f,
                "riccati iteration diverged after {iterations} iterations (residual {residual:.3e})"
            ),
            ControlError::BadWeights { what } => write!(f, "bad weights: {what}"),
            ControlError::InfeasibleReference { what } => {
                write!(f, "infeasible reference: {what}")
            }
            ControlError::ValidationFailed { what } => write!(f, "validation failed: {what}"),
            ControlError::NonFiniteMeasurement { channel } => {
                write!(f, "measurement channel {channel} is NaN or infinite")
            }
            ControlError::Sysid(e) => write!(f, "identification failure: {e}"),
            ControlError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for ControlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControlError::Sysid(e) => Some(e),
            ControlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SysidError> for ControlError {
    fn from(e: SysidError) -> Self {
        ControlError::Sysid(e)
    }
}

impl From<LinalgError> for ControlError {
    fn from(e: LinalgError) -> Self {
        ControlError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ControlError::RiccatiDiverged {
            iterations: 500,
            residual: 1.0,
        };
        assert!(e.to_string().contains("500"));
        let e2: ControlError = LinalgError::Singular.into();
        assert!(e2.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<ControlError>();
    }
}
