//! The Heuristic baseline (Table IV): a sophisticated rule-based
//! controller in the style of Zhang & Hoffmann \[41\] and Isci et al. \[8\].
//!
//! Two stages, as §VII-C describes:
//!
//! 1. **Feature ranking** — the adaptive features (frequency, cache, ROB)
//!    are ranked by their profiled impact on each output.
//! 2. **Threshold rules** — for tracking, the controller compares each
//!    output with its reference and steps the ranked features using
//!    experimentally tuned thresholds; for optimization, it runs an
//!    iterative per-feature search (in rank order) over a bounded number
//!    of trials.
//!
//! Thresholds and dwell constants are tuned offline on the training set —
//! and, unlike MIMO's weights, they do not adapt at runtime, which is
//! exactly the weakness the paper's evaluation exposes.

use mimo_linalg::Vector;
use mimo_sim::Plant;

use crate::governor::Governor;
use crate::optimizer::Metric;

/// Profiled sensitivity of each output to each input.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRanking {
    /// |ΔIPS| / IPS when the input sweeps min→max, per input.
    pub perf_impact: Vec<f64>,
    /// |Δpower| / power when the input sweeps min→max, per input.
    pub power_impact: Vec<f64>,
    /// Input indices ordered by combined impact, highest first.
    pub order: Vec<usize>,
}

impl SensitivityRanking {
    /// Inputs ranked by performance impact, highest first.
    pub fn perf_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.perf_impact.len()).collect();
        idx.sort_by(|&a, &b| self.perf_impact[b].total_cmp(&self.perf_impact[a]));
        idx
    }

    /// Inputs ranked by power impact, highest first.
    pub fn power_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.power_impact.len()).collect();
        idx.sort_by(|&a, &b| self.power_impact[b].total_cmp(&self.power_impact[a]));
        idx
    }

    /// A canned ranking for when profiling is impossible — e.g. installing
    /// a fallback governor on a live, quarantined core. Frequency (input 0)
    /// is assumed dominant, with the remaining knobs in index order; that
    /// matches what [`profile_sensitivity`] measures on every training
    /// workload for the paper's input sets.
    pub fn frequency_first(num_inputs: usize) -> Self {
        let impact: Vec<f64> = (0..num_inputs).map(|i| 1.0 / (i + 1) as f64).collect();
        SensitivityRanking {
            perf_impact: impact.clone(),
            power_impact: impact,
            order: (0..num_inputs).collect(),
        }
    }
}

/// Profiles a plant's input sensitivities by sweeping each input from min
/// to max with the others pinned at midrange, dwelling `settle` epochs at
/// each end (like the ranking step of \[8\]).
///
/// # Panics
///
/// Panics if the plant reports an empty actuator grid (every real
/// actuator has at least one setting).
pub fn profile_sensitivity<P: Plant + ?Sized>(plant: &mut P, settle: usize) -> SensitivityRanking {
    let grids = plant.input_grids();
    let n = grids.len();
    let mid: Vec<f64> = grids.iter().map(|g| g[g.len() / 2]).collect();
    let mut perf_impact = vec![0.0; n];
    let mut power_impact = vec![0.0; n];

    let measure = |plant: &mut P, u: &Vector| -> (f64, f64) {
        let mut acc = Vector::zeros(2);
        for _ in 0..settle {
            let _ = plant.apply(u);
        }
        let reps = settle.max(1);
        for _ in 0..reps {
            let y = plant.apply(u);
            acc += &y;
        }
        (acc[0] / reps as f64, acc[1] / reps as f64)
    };

    for i in 0..n {
        plant.reset();
        let mut u_lo = Vector::from_slice(&mid);
        u_lo[i] = grids[i][0];
        let (ips_lo, p_lo) = measure(plant, &u_lo);
        let mut u_hi = Vector::from_slice(&mid);
        // input_grids() never returns empty grids (every actuator has at
        // least one setting), so the last element exists.
        u_hi[i] = grids[i][grids[i].len() - 1];
        let (ips_hi, p_hi) = measure(plant, &u_hi);
        perf_impact[i] = (ips_hi - ips_lo).abs() / ips_lo.max(1e-9);
        power_impact[i] = (p_hi - p_lo).abs() / p_lo.max(1e-9);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ca = perf_impact[a] + power_impact[a];
        let cb = perf_impact[b] + power_impact[b];
        cb.total_cmp(&ca)
    });
    SensitivityRanking {
        perf_impact,
        power_impact,
        order,
    }
}

/// Relative error deadband before the tracker acts (tuned on the training
/// set).
const TRACK_DEADBAND: f64 = 0.04;
/// Epochs averaged between tracker actions. Rule-based managers act on
/// coarse OS-like periods, far slower than the 50 µs MIMO loop.
const TRACK_WINDOW: usize = 25;
/// Epochs spent re-classifying the application after a phase change.
const CLASSIFY_EPOCHS: usize = 20;
/// Training-set-calibrated efficiency cutoff (BIPS per watt at the probe
/// configuration) separating "compute" from "memory-bound" classes. Like
/// every statically tuned threshold, it misclassifies production apps
/// whose miss behavior differs from the training set — the paper's
/// perlbench/dealII failure mode.
const CLASS_CUTOFF_BIPS_PER_W: f64 = 1.45;

/// The workload class the rules are specialized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AppClass {
    Compute,
    MemoryBound,
}

/// The tracking-mode heuristic controller.
#[derive(Debug, Clone)]
pub struct HeuristicTracker {
    grids: Vec<Vec<f64>>,
    ranking: SensitivityRanking,
    /// Current grid index per input.
    idx: Vec<usize>,
    targets: Vector,
    /// Running sum of the measurements in the current action window.
    win_sum: Vector,
    /// Number of measurements accumulated in `win_sum`.
    win_n: usize,
    /// Knob orders precomputed per `[class][objective]` (class: compute /
    /// memory-bound; objective: power / perf) so the per-epoch rules never
    /// allocate.
    orders: [[Vec<usize>; 2]; 2],
    class: AppClass,
    classify_left: usize,
    classify_acc: (f64, f64, usize),
}

impl HeuristicTracker {
    /// Creates a tracker starting from the midrange configuration.
    pub fn new(grids: Vec<Vec<f64>>, ranking: SensitivityRanking, targets: Vector) -> Self {
        let idx = grids.iter().map(|g| g.len() / 2).collect();
        // Cache (input 1) promoted to the front for memory-bound code.
        let promote_cache = |mut order: Vec<usize>| {
            if let Some(pos) = order.iter().position(|&i| i == 1) {
                order.remove(pos);
                order.insert(0, 1);
            }
            order
        };
        let orders = [
            [ranking.power_order(), ranking.perf_order()],
            [
                promote_cache(ranking.power_order()),
                promote_cache(ranking.perf_order()),
            ],
        ];
        let win_sum = Vector::zeros(targets.len());
        HeuristicTracker {
            grids,
            ranking,
            idx,
            targets,
            win_sum,
            win_n: 0,
            orders,
            class: AppClass::Compute,
            classify_left: CLASSIFY_EPOCHS,
            classify_acc: (0.0, 0.0, 0),
        }
    }

    /// The knob order the current class prescribes: compute code tunes the
    /// frequency first; memory-bound code leads with the cache.
    fn class_order(&self, for_perf: bool) -> &[usize] {
        let class = match self.class {
            AppClass::Compute => 0,
            AppClass::MemoryBound => 1,
        };
        &self.orders[class][usize::from(for_perf)]
    }

    fn actuation(&self) -> Vector {
        Vector::from_fn(self.grids.len(), |i| self.grids[i][self.idx[i]])
    }

    fn clear_window(&mut self) {
        self.win_sum.fill(0.0);
        self.win_n = 0;
    }

    /// Steps input `i` by `dir` grid positions, clamped; returns whether it
    /// moved.
    fn nudge(&mut self, i: usize, dir: isize) -> bool {
        let cur = self.idx[i] as isize;
        let max = self.grids[i].len() as isize - 1;
        let next = (cur + dir).clamp(0, max);
        let moved = next != cur;
        self.idx[i] = next as usize;
        moved
    }

    /// The per-epoch rule evaluation shared by `decide` and `decide_into`:
    /// consumes one measurement and possibly moves the grid indices.
    fn update(&mut self, y: &Vector, phase_changed: bool) {
        if phase_changed {
            // Re-classify against the statically tuned cutoff.
            self.classify_left = CLASSIFY_EPOCHS;
            self.classify_acc = (0.0, 0.0, 0);
            self.clear_window();
        }
        if self.classify_left > 0 {
            self.classify_left -= 1;
            self.classify_acc.0 += y[0];
            self.classify_acc.1 += y[1];
            self.classify_acc.2 += 1;
            if self.classify_left == 0 && self.classify_acc.2 > 0 {
                let ips = self.classify_acc.0 / self.classify_acc.2 as f64;
                let p = (self.classify_acc.1 / self.classify_acc.2 as f64).max(1e-9);
                self.class = if ips / p < CLASS_CUTOFF_BIPS_PER_W {
                    AppClass::MemoryBound
                } else {
                    AppClass::Compute
                };
            }
            return;
        }
        if self.win_sum.len() != y.len() {
            // Output dimension changed under us; restart the window.
            self.win_sum = Vector::zeros(y.len());
            self.win_n = 0;
        }
        self.win_sum += y;
        self.win_n += 1;
        if self.win_n < TRACK_WINDOW {
            return;
        }
        let inv = 1.0 / self.win_n as f64;
        let avg_ips = self.win_sum[0] * inv;
        let avg_p = self.win_sum[1] * inv;
        self.clear_window();

        let ips0 = self.targets[0].max(1e-9);
        let p0 = self.targets[1].max(1e-9);
        let e_p = (avg_p - p0) / p0; // >0: over power budget
        let e_ips = (ips0 - avg_ips) / ips0; // >0: too slow

        let n = self.grids.len();
        // Rule 1 (power is the critical output): over budget → step down the
        // strongest power knob (per the class-specialized order) that can
        // still move.
        if e_p > TRACK_DEADBAND {
            for k in 0..n {
                let i = self.class_order(false)[k];
                if self.nudge(i, -1) {
                    break;
                }
            }
        } else if e_ips > TRACK_DEADBAND {
            // Rule 2: too slow and power headroom available → step up the
            // strongest performance knob for this class.
            if e_p < -TRACK_DEADBAND {
                for k in 0..n {
                    let i = self.class_order(true)[k];
                    if self.nudge(i, 1) {
                        break;
                    }
                }
            }
        } else if e_ips < -TRACK_DEADBAND && e_p < -TRACK_DEADBAND {
            // Rule 3: faster than needed with power to spare → trim the
            // weakest performance knob to save energy.
            for k in (0..n).rev() {
                let i = self.class_order(true)[k];
                if self.nudge(i, -1) {
                    break;
                }
            }
        }
    }
}

impl HeuristicTracker {
    /// Borrows the profiled ranking the rules were tuned from.
    pub fn ranking(&self) -> &SensitivityRanking {
        &self.ranking
    }
}

impl Governor for HeuristicTracker {
    fn name(&self) -> &str {
        "Heuristic"
    }

    fn num_inputs(&self) -> usize {
        self.grids.len()
    }

    fn set_targets(&mut self, y0: &Vector) {
        if self.targets.len() == y0.len() {
            self.targets.copy_from(y0);
        } else {
            self.targets = y0.clone();
        }
    }

    fn decide(&mut self, y: &Vector, phase_changed: bool) -> Vector {
        self.update(y, phase_changed);
        self.actuation()
    }

    fn decide_into(
        &mut self,
        y: &Vector,
        phase_changed: bool,
        out: &mut Vector,
    ) -> crate::Result<()> {
        self.update(y, phase_changed);
        for i in 0..self.grids.len() {
            out[i] = self.grids[i][self.idx[i]];
        }
        Ok(())
    }

    fn reset(&mut self) {
        for (i, g) in self.grids.iter().enumerate() {
            self.idx[i] = g.len() / 2;
        }
        self.clear_window();
        self.class = AppClass::Compute;
        self.classify_left = CLASSIFY_EPOCHS;
        self.classify_acc = (0.0, 0.0, 0);
    }
}

/// Epochs dwelt per candidate configuration in the optimization search.
const OPT_DWELL: usize = 40;

/// The optimization-mode heuristic: an iterative per-feature search in
/// rank order (similar to \[10\], \[23\], \[41\], \[42\]), capped at `max_tries`
/// configurations, restarted on phase changes.
#[derive(Debug, Clone)]
pub struct HeuristicOptimizer {
    grids: Vec<Vec<f64>>,
    ranking: SensitivityRanking,
    metric: Metric,
    max_tries: usize,
    // Search state.
    idx: Vec<usize>,
    best_idx: Vec<usize>,
    best_score: f64,
    feature_pos: usize, // which ranked feature is being searched
    candidate: usize,   // which setting of that feature is being tried
    tries: usize,
    dwell: usize,
    acc_ips: f64,
    acc_p: f64,
    acc_n: usize,
    done: bool,
}

impl HeuristicOptimizer {
    /// Creates the search, starting from the midrange configuration.
    pub fn new(
        grids: Vec<Vec<f64>>,
        ranking: SensitivityRanking,
        metric: Metric,
        max_tries: usize,
    ) -> Self {
        let idx: Vec<usize> = grids.iter().map(|g| g.len() / 2).collect();
        HeuristicOptimizer {
            best_idx: idx.clone(),
            idx,
            grids,
            ranking,
            metric,
            max_tries,
            best_score: f64::NEG_INFINITY,
            feature_pos: 0,
            candidate: 0,
            tries: 0,
            dwell: 0,
            acc_ips: 0.0,
            acc_p: 0.0,
            acc_n: 0,
            done: false,
        }
    }

    fn actuation(&self) -> Vector {
        Vector::from_fn(self.grids.len(), |i| self.grids[i][self.idx[i]])
    }

    /// Whether the search has exhausted its budget.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn advance_candidate(&mut self) {
        loop {
            if self.feature_pos >= self.ranking.order.len() || self.tries >= self.max_tries {
                self.done = true;
                self.idx.copy_from_slice(&self.best_idx);
                return;
            }
            let feat = self.ranking.order[self.feature_pos];
            // Probe a spread of settings (ends + middle) rather than every
            // grid point, like bounded search heuristics do.
            let g_len = self.grids[feat].len();
            let probes = [0, g_len / 2, g_len - 1];
            if self.candidate >= probes.len() {
                // Move to the next ranked feature with the best so far fixed.
                self.idx.copy_from_slice(&self.best_idx);
                self.feature_pos += 1;
                self.candidate = 0;
                continue;
            }
            self.idx.copy_from_slice(&self.best_idx);
            self.idx[feat] = probes[self.candidate];
            self.candidate += 1;
            self.tries += 1;
            return;
        }
    }

    /// The per-epoch search step shared by `decide` and `decide_into`.
    fn update(&mut self, y: &Vector, phase_changed: bool) {
        if phase_changed {
            self.reset();
        }
        if self.done {
            return;
        }
        self.acc_ips += y[0];
        self.acc_p += y[1];
        self.acc_n += 1;
        self.dwell += 1;
        if self.dwell >= OPT_DWELL {
            let ips = self.acc_ips / self.acc_n as f64;
            let p = self.acc_p / self.acc_n as f64;
            let score = self.metric.score(ips, p);
            if score > self.best_score {
                self.best_score = score;
                self.best_idx.copy_from_slice(&self.idx);
            }
            self.dwell = 0;
            self.acc_ips = 0.0;
            self.acc_p = 0.0;
            self.acc_n = 0;
            self.advance_candidate();
        }
    }
}

impl Governor for HeuristicOptimizer {
    fn name(&self) -> &str {
        "Heuristic"
    }

    fn num_inputs(&self) -> usize {
        self.grids.len()
    }

    fn set_targets(&mut self, _y0: &Vector) {
        // The optimizer mode ignores external targets; it maximizes its
        // metric directly.
    }

    fn decide(&mut self, y: &Vector, phase_changed: bool) -> Vector {
        self.update(y, phase_changed);
        self.actuation()
    }

    fn decide_into(
        &mut self,
        y: &Vector,
        phase_changed: bool,
        out: &mut Vector,
    ) -> crate::Result<()> {
        self.update(y, phase_changed);
        for i in 0..self.grids.len() {
            out[i] = self.grids[i][self.idx[i]];
        }
        Ok(())
    }

    fn reset(&mut self) {
        for (i, g) in self.grids.iter().enumerate() {
            let mid = g.len() / 2;
            self.idx[i] = mid;
            self.best_idx[i] = mid;
        }
        self.best_score = f64::NEG_INFINITY;
        self.feature_pos = 0;
        self.candidate = 0;
        self.tries = 0;
        self.dwell = 0;
        self.acc_ips = 0.0;
        self.acc_p = 0.0;
        self.acc_n = 0;
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_sim::{InputSet, ProcessorBuilder};

    fn grids2() -> Vec<Vec<f64>> {
        vec![
            (0..16).map(|i| 0.5 + 0.1 * i as f64).collect(),
            vec![2.0, 4.0, 6.0, 8.0],
        ]
    }

    fn ranking2() -> SensitivityRanking {
        SensitivityRanking {
            perf_impact: vec![1.0, 0.3],
            power_impact: vec![1.5, 0.4],
            order: vec![0, 1],
        }
    }

    #[test]
    fn profiling_ranks_frequency_first_on_compute_bound() {
        let mut p = ProcessorBuilder::new()
            .app("namd")
            .seed(1)
            .input_set(InputSet::FreqCache)
            .build()
            .unwrap();
        let r = profile_sensitivity(&mut p, 30);
        // For compute-bound namd, frequency dominates both outputs.
        assert_eq!(r.order[0], 0, "impacts: {r:?}");
        assert!(r.perf_impact[0] > r.perf_impact[1]);
        assert_eq!(r.perf_order()[0], 0);
        assert_eq!(r.power_order()[0], 0);
    }

    #[test]
    fn tracker_cuts_power_when_over_budget() {
        let mut t = HeuristicTracker::new(grids2(), ranking2(), Vector::from_slice(&[2.5, 2.0]));
        let start = t.actuation();
        // Report sustained over-power.
        let mut u = start.clone();
        for _ in 0..CLASSIFY_EPOCHS + 4 * TRACK_WINDOW {
            u = t.decide(&Vector::from_slice(&[2.5, 3.0]), false);
        }
        assert!(u[0] < start[0], "frequency should drop: {start:?} → {u:?}");
    }

    #[test]
    fn tracker_speeds_up_with_headroom() {
        let mut t = HeuristicTracker::new(grids2(), ranking2(), Vector::from_slice(&[2.5, 2.0]));
        let start = t.actuation();
        let mut u = start.clone();
        for _ in 0..CLASSIFY_EPOCHS + 4 * TRACK_WINDOW {
            // Too slow, lots of power headroom.
            u = t.decide(&Vector::from_slice(&[1.0, 1.0]), false);
        }
        assert!(u[0] > start[0], "frequency should rise: {start:?} → {u:?}");
    }

    #[test]
    fn tracker_holds_inside_deadband() {
        let mut t = HeuristicTracker::new(grids2(), ranking2(), Vector::from_slice(&[2.5, 2.0]));
        let start = t.actuation();
        let mut u = start.clone();
        for _ in 0..CLASSIFY_EPOCHS + 4 * TRACK_WINDOW {
            u = t.decide(&Vector::from_slice(&[2.51, 1.99]), false);
        }
        assert_eq!(u, start);
    }

    #[test]
    fn tracker_trims_when_overshooting_both() {
        let mut t = HeuristicTracker::new(grids2(), ranking2(), Vector::from_slice(&[1.0, 2.0]));
        let start = t.actuation();
        let mut u = start.clone();
        for _ in 0..CLASSIFY_EPOCHS + 4 * TRACK_WINDOW {
            // Much faster than needed, power below budget.
            u = t.decide(&Vector::from_slice(&[2.0, 1.0]), false);
        }
        assert!(u != start, "should trim some knob: {u:?}");
    }

    #[test]
    fn tracker_reset_restores_midrange() {
        let mut t = HeuristicTracker::new(grids2(), ranking2(), Vector::from_slice(&[2.5, 2.0]));
        let start = t.actuation();
        for _ in 0..CLASSIFY_EPOCHS + 5 * TRACK_WINDOW {
            let _ = t.decide(&Vector::from_slice(&[0.5, 3.5]), false);
        }
        t.reset();
        assert_eq!(t.actuation(), start);
    }

    #[test]
    fn optimizer_search_terminates_and_improves() {
        // Synthetic scoring: score is maximized at the highest frequency
        // (ips = f, p = 1). The search should land near the top setting.
        let mut opt = HeuristicOptimizer::new(grids2(), ranking2(), Metric::EnergyDelay, 10);
        let mut u = opt.actuation();
        for _ in 0..OPT_DWELL * 40 {
            if opt.is_done() {
                break;
            }
            let ips = u[0]; // pretend IPS equals frequency
            u = opt.decide(&Vector::from_slice(&[ips, 1.0]), false);
        }
        assert!(opt.is_done());
        let f = opt.actuation()[0];
        assert!(f >= 1.9, "search stopped at {f} GHz");
    }

    #[test]
    fn optimizer_respects_max_tries() {
        let mut opt = HeuristicOptimizer::new(grids2(), ranking2(), Metric::Energy, 2);
        let mut epochs = 0;
        let mut u = opt.actuation();
        while !opt.is_done() && epochs < OPT_DWELL * 20 {
            u = opt.decide(&Vector::from_slice(&[u[0], 1.0]), false);
            epochs += 1;
        }
        // 2 tries × OPT_DWELL epochs plus bookkeeping.
        assert!(epochs <= OPT_DWELL * 4, "took {epochs} epochs");
    }

    #[test]
    fn optimizer_restarts_on_phase_change() {
        let mut opt = HeuristicOptimizer::new(grids2(), ranking2(), Metric::Energy, 6);
        let mut u = opt.actuation();
        while !opt.is_done() {
            u = opt.decide(&Vector::from_slice(&[u[0], 1.0]), false);
        }
        assert!(opt.is_done());
        let _ = opt.decide(&Vector::from_slice(&[1.0, 1.0]), true);
        assert!(!opt.is_done(), "phase change must restart the search");
    }
}
