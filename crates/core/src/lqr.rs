//! Linear-quadratic regulator synthesis.
//!
//! Given the (possibly augmented) system `(A, B)` and the designer's cost
//! matrices, computes the optimal state-feedback gain `K` minimizing
//! `Σ xᵀQx + uᵀRu`, so `u = −Kx` stabilizes the loop — the Optimality,
//! Convergence, and Stability guarantees of §III-B come from exactly this
//! construction.

use mimo_linalg::{eigen, Matrix};

use crate::dare::{gain_from, solve_dare};
use crate::{ControlError, Result};

/// An LQR design result.
#[derive(Debug, Clone, PartialEq)]
pub struct LqrGain {
    /// The feedback gain `K` (`inputs x states`), for `u = −K x`.
    pub k: Matrix,
    /// The Riccati solution `P` (cost-to-go matrix).
    pub p: Matrix,
    /// Spectral radius of the closed loop `A − BK`.
    pub closed_loop_radius: f64,
}

/// Designs an LQR controller.
///
/// # Errors
///
/// * [`ControlError::BadWeights`] — `Q` or `R` is not a positive
///   (semi-)definite diagonal-dominant symmetric matrix (R must be strictly
///   positive definite).
/// * [`ControlError::RiccatiDiverged`] — `(A, B)` not stabilizable.
///
/// # Example
///
/// ```
/// use mimo_core::lqr::design_lqr;
/// use mimo_linalg::Matrix;
///
/// # fn main() -> Result<(), mimo_core::ControlError> {
/// let a = Matrix::from_rows(&[&[1.2]]); // unstable
/// let b = Matrix::from_rows(&[&[1.0]]);
/// let gain = design_lqr(&a, &b, &Matrix::identity(1), &Matrix::identity(1))?;
/// assert!(gain.closed_loop_radius < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn design_lqr(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<LqrGain> {
    validate_weight(q, "Q", false)?;
    validate_weight(r, "R", true)?;
    let p = solve_dare(a, b, q, r)?;
    let k = gain_from(a, b, r, &p)?;
    let acl = a - &(b * &k);
    let closed_loop_radius = eigen::spectral_radius(&acl).map_err(ControlError::Linalg)?;
    if closed_loop_radius >= 1.0 {
        return Err(ControlError::ValidationFailed {
            what: format!("LQR closed loop not Schur stable (radius {closed_loop_radius:.4})"),
        });
    }
    Ok(LqrGain {
        k,
        p,
        closed_loop_radius,
    })
}

/// Checks that a weight matrix is symmetric with non-negative diagonal
/// (strictly positive when `strict`), and at least positive semidefinite in
/// the weak diagonal-dominance sense used for designer-supplied diagonals.
pub(crate) fn validate_weight(w: &Matrix, name: &str, strict: bool) -> Result<()> {
    if !w.is_square() {
        return Err(ControlError::BadWeights {
            what: format!("{name} must be square, got {:?}", w.shape()),
        });
    }
    let n = w.rows();
    for i in 0..n {
        let d = w[(i, i)];
        if d < 0.0 || (strict && d <= 0.0) || !d.is_finite() {
            return Err(ControlError::BadWeights {
                what: format!(
                    "{name}[{i},{i}] = {d} must be {}",
                    if strict { "positive" } else { "non-negative" }
                ),
            });
        }
        for j in 0..n {
            if (w[(i, j)] - w[(j, i)]).abs() > 1e-9 * w.max_abs().max(1.0) {
                return Err(ControlError::BadWeights {
                    what: format!("{name} must be symmetric"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_linalg::Vector;

    #[test]
    fn regulates_unstable_scalar() {
        let a = Matrix::from_rows(&[&[1.5]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let gain = design_lqr(&a, &b, &Matrix::identity(1), &Matrix::identity(1)).unwrap();
        // Simulate the closed loop from x0 = 1.
        let mut x = 1.0_f64;
        for _ in 0..50 {
            let u = -gain.k[(0, 0)] * x;
            x = 1.5 * x + u;
        }
        assert!(x.abs() < 1e-6, "state did not converge: {x}");
    }

    #[test]
    fn cheaper_control_acts_harder() {
        let a = Matrix::from_rows(&[&[1.1]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let q = Matrix::identity(1);
        let cheap = design_lqr(&a, &b, &q, &Matrix::from_rows(&[&[0.01]])).unwrap();
        let dear = design_lqr(&a, &b, &q, &Matrix::from_rows(&[&[100.0]])).unwrap();
        assert!(cheap.k[(0, 0)].abs() > dear.k[(0, 0)].abs());
        // Cheap control drives the closed loop closer to deadbeat.
        assert!(cheap.closed_loop_radius < dear.closed_loop_radius);
    }

    #[test]
    fn mimo_regulation_converges() {
        let a = Matrix::from_rows(&[&[1.05, 0.2], &[0.0, 0.95]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.3, 1.0]]);
        let q = Matrix::diag(&[1.0, 5.0]);
        let r = Matrix::diag(&[1.0, 2.0]);
        let gain = design_lqr(&a, &b, &q, &r).unwrap();
        assert!(gain.closed_loop_radius < 1.0);
        // State converges in simulation.
        let mut x = Vector::from_slice(&[2.0, -1.0]);
        for _ in 0..200 {
            let u = gain.k.mul_vec(&x).unwrap().scale(-1.0);
            x = &a.mul_vec(&x).unwrap() + &b.mul_vec(&u).unwrap();
        }
        assert!(x.norm_inf() < 1e-8, "{x:?}");
    }

    #[test]
    fn rejects_negative_weights() {
        let a = Matrix::identity(1);
        let b = Matrix::identity(1);
        assert!(matches!(
            design_lqr(&a, &b, &Matrix::from_rows(&[&[-1.0]]), &Matrix::identity(1)),
            Err(ControlError::BadWeights { .. })
        ));
        assert!(matches!(
            design_lqr(&a, &b, &Matrix::identity(1), &Matrix::zeros(1, 1)),
            Err(ControlError::BadWeights { .. })
        ));
    }

    #[test]
    fn rejects_asymmetric_weights() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut q = Matrix::identity(2);
        q[(0, 1)] = 0.5; // asymmetric
        assert!(matches!(
            design_lqr(&a, &b, &q, &Matrix::identity(2)),
            Err(ControlError::BadWeights { .. })
        ));
    }

    #[test]
    fn relative_weights_shift_effort_between_inputs() {
        // Two inputs with identical authority; the heavier-weighted one
        // should be used less (§IV-B2's input-weight semantics).
        let a = Matrix::from_rows(&[&[1.2]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0]]);
        let q = Matrix::identity(1);
        let r = Matrix::diag(&[1.0, 100.0]);
        let gain = design_lqr(&a, &b, &q, &r).unwrap();
        assert!(
            gain.k[(0, 0)].abs() > 10.0 * gain.k[(1, 0)].abs(),
            "K = {:?}",
            gain.k
        );
    }
}
