//! Discrete-time state-space systems — the paper's Equations (1)–(2):
//!
//! ```text
//! x(t+1) = A x(t) + B u(t)
//! y(t)   = C x(t) + D u(t)
//! ```

use mimo_linalg::{Matrix, Vector};
use mimo_sysid::realize::Realization;

use crate::{ControlError, Result};

/// A discrete-time linear system `(A, B, C, D)`.
///
/// # Example
///
/// ```
/// use mimo_core::StateSpace;
/// use mimo_linalg::Matrix;
///
/// # fn main() -> Result<(), mimo_core::ControlError> {
/// let sys = StateSpace::new(
///     Matrix::from_rows(&[&[0.5]]),
///     Matrix::from_rows(&[&[1.0]]),
///     Matrix::from_rows(&[&[1.0]]),
///     Matrix::zeros(1, 1),
/// )?;
/// // DC gain of y(t+1)=0.5y+u is 1/(1-0.5) = 2.
/// assert!((sys.dc_gain()?[(0, 0)] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpace {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    d: Matrix,
}

impl StateSpace {
    /// Creates a system, checking dimensional consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] if the shapes do not
    /// form a valid `(A, B, C, D)` quadruple.
    pub fn new(a: Matrix, b: Matrix, c: Matrix, d: Matrix) -> Result<Self> {
        let n = a.rows();
        if !a.is_square() {
            return Err(ControlError::DimensionMismatch {
                what: format!("A must be square, got {:?}", a.shape()),
            });
        }
        if b.rows() != n {
            return Err(ControlError::DimensionMismatch {
                what: format!("B has {} rows, state dim is {n}", b.rows()),
            });
        }
        if c.cols() != n {
            return Err(ControlError::DimensionMismatch {
                what: format!("C has {} cols, state dim is {n}", c.cols()),
            });
        }
        if d.shape() != (c.rows(), b.cols()) {
            return Err(ControlError::DimensionMismatch {
                what: format!(
                    "D is {:?}, expected ({}, {})",
                    d.shape(),
                    c.rows(),
                    b.cols()
                ),
            });
        }
        Ok(StateSpace { a, b, c, d })
    }

    /// State dimension `N`.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs `I`.
    pub fn num_inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs `O`.
    pub fn num_outputs(&self) -> usize {
        self.c.rows()
    }

    /// The evolution matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// The input matrix `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// The output matrix `C`.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// The feed-through matrix `D`.
    pub fn d(&self) -> &Matrix {
        &self.d
    }

    /// Advances one step: `(x_next, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `u` have wrong dimensions.
    pub fn step(&self, x: &Vector, u: &Vector) -> (Vector, Vector) {
        let xn = &self.a.mul_vec(x).expect("x dim") + &self.b.mul_vec(u).expect("u dim");
        let y = &self.c.mul_vec(x).expect("x dim") + &self.d.mul_vec(u).expect("u dim");
        (xn, y)
    }

    /// Simulates the output sequence from `x0` under `inputs`.
    pub fn simulate(&self, x0: &Vector, inputs: &[Vector]) -> Vec<Vector> {
        let mut x = x0.clone();
        inputs
            .iter()
            .map(|u| {
                let (xn, y) = self.step(&x, u);
                x = xn;
                y
            })
            .collect()
    }

    /// Steady-state (DC) gain `C (I − A)⁻¹ B + D`.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::Linalg`] if `I − A` is singular (a pole at
    /// `z = 1`).
    pub fn dc_gain(&self) -> Result<Matrix> {
        let n = self.state_dim();
        let i_minus_a = Matrix::identity(n) - &self.a;
        let x = i_minus_a.solve(&self.b)?;
        Ok(&self.c * &x + &self.d)
    }

    /// Solves for a steady state `(x_ss, u_ss)` with `y_ss = y0`:
    ///
    /// ```text
    /// [A − I  B] [x_ss]   [0 ]
    /// [C      D] [u_ss] = [y0]
    /// ```
    ///
    /// With more inputs than outputs the system is underdetermined and the
    /// minimum-norm solution is returned (via SVD pseudo-inverse).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InfeasibleReference`] if no steady state
    /// achieves `y0` (e.g. an unreachable target), and propagates linear
    /// algebra failures.
    pub fn steady_state_for(&self, y0: &Vector) -> Result<(Vector, Vector)> {
        let n = self.state_dim();
        let i = self.num_inputs();
        let o = self.num_outputs();
        if y0.len() != o {
            return Err(ControlError::DimensionMismatch {
                what: format!("reference has {} entries, plant has {o} outputs", y0.len()),
            });
        }
        let a_minus_i = &self.a - &Matrix::identity(n);
        let top = Matrix::hstack(&a_minus_i, &self.b).map_err(ControlError::Linalg)?;
        let bottom = Matrix::hstack(&self.c, &self.d).map_err(ControlError::Linalg)?;
        let m = Matrix::vstack(&top, &bottom).map_err(ControlError::Linalg)?;
        let mut rhs = Matrix::zeros(n + o, 1);
        for k in 0..o {
            rhs[(n + k, 0)] = y0[k];
        }
        let pinv = mimo_linalg::svd::Svd::new(&m)
            .map_err(ControlError::Linalg)?
            .pseudo_inverse(1e-10);
        let sol = &pinv * &rhs;
        // Verify the solution actually satisfies the equations (the
        // pseudo-inverse silently returns a least-squares fit otherwise).
        let resid = (&(&m * &sol) - &rhs).max_abs();
        let scale = y0.norm_inf().max(1.0);
        if resid > 1e-6 * scale {
            return Err(ControlError::InfeasibleReference {
                what: format!("no steady state reaches the reference (residual {resid:.3e})"),
            });
        }
        let x_ss = Vector::from(sol.block(0, 0, n, 1));
        let u_ss = Vector::from(sol.block(n, 0, i, 1));
        Ok((x_ss, u_ss))
    }

    /// Spectral radius of `A` — below 1 means open-loop stable.
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue failures.
    pub fn spectral_radius(&self) -> Result<f64> {
        Ok(mimo_linalg::eigen::spectral_radius(&self.a)?)
    }
}

impl From<Realization> for StateSpace {
    fn from(r: Realization) -> Self {
        // A Realization is dimensionally consistent by construction.
        StateSpace {
            a: r.a,
            b: r.b,
            c: r.c,
            d: r.d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_lag(pole: f64, gain: f64) -> StateSpace {
        StateSpace::new(
            Matrix::from_rows(&[&[pole]]),
            Matrix::from_rows(&[&[gain]]),
            Matrix::from_rows(&[&[1.0]]),
            Matrix::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn dimension_checks() {
        let bad = StateSpace::new(
            Matrix::zeros(2, 3),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        );
        assert!(matches!(bad, Err(ControlError::DimensionMismatch { .. })));
        let bad_b = StateSpace::new(
            Matrix::identity(2),
            Matrix::zeros(3, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        );
        assert!(bad_b.is_err());
        let bad_d = StateSpace::new(
            Matrix::identity(2),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(2, 2),
        );
        assert!(bad_d.is_err());
    }

    #[test]
    fn step_and_simulate_agree() {
        let sys = scalar_lag(0.5, 1.0);
        let inputs = vec![Vector::from_slice(&[1.0]); 5];
        let ys = sys.simulate(&Vector::zeros(1), &inputs);
        // y(t) = x(t); x: 0, 1, 1.5, 1.75, 1.875
        assert!((ys[0][0] - 0.0).abs() < 1e-12);
        assert!((ys[4][0] - 1.875).abs() < 1e-12);
    }

    #[test]
    fn dc_gain_scalar() {
        let sys = scalar_lag(0.8, 0.4);
        assert!((sys.dc_gain().unwrap()[(0, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_square_system() {
        let sys = scalar_lag(0.5, 1.0);
        let (x_ss, u_ss) = sys.steady_state_for(&Vector::from_slice(&[4.0])).unwrap();
        // y = x = 4 needs u = (1-0.5)*4 = 2.
        assert!((x_ss[0] - 4.0).abs() < 1e-9);
        assert!((u_ss[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_wide_system_min_norm() {
        // Two inputs, one output: y = x, x(t+1) = 0.5x + u1 + u2.
        let sys = StateSpace::new(
            Matrix::from_rows(&[&[0.5]]),
            Matrix::from_rows(&[&[1.0, 1.0]]),
            Matrix::from_rows(&[&[1.0]]),
            Matrix::zeros(1, 2),
        )
        .unwrap();
        let (x_ss, u_ss) = sys.steady_state_for(&Vector::from_slice(&[2.0])).unwrap();
        assert!((x_ss[0] - 2.0).abs() < 1e-9);
        // Min-norm split: u1 = u2 = 0.5.
        assert!((u_ss[0] - 0.5).abs() < 1e-9);
        assert!((u_ss[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn steady_state_infeasible_when_unreachable() {
        // Output decoupled from input: x2 unreachable, y = x2.
        let sys = StateSpace::new(
            Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 0.5]]),
            Matrix::from_rows(&[&[1.0], &[0.0]]),
            Matrix::from_rows(&[&[0.0, 1.0]]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(matches!(
            sys.steady_state_for(&Vector::from_slice(&[1.0])),
            Err(ControlError::InfeasibleReference { .. })
        ));
    }

    #[test]
    fn spectral_radius_works() {
        let sys = scalar_lag(-0.7, 1.0);
        assert!((sys.spectral_radius().unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn from_realization() {
        let r = Realization {
            a: Matrix::diag(&[0.5, 0.2]),
            b: Matrix::from_fn(2, 1, |_, _| 1.0),
            c: Matrix::from_fn(1, 2, |_, _| 1.0),
            d: Matrix::zeros(1, 1),
        };
        let ss = StateSpace::from(r);
        assert_eq!(ss.state_dim(), 2);
        assert_eq!(ss.num_inputs(), 1);
        assert_eq!(ss.num_outputs(), 1);
    }

    #[test]
    fn reference_dimension_checked() {
        let sys = scalar_lag(0.5, 1.0);
        assert!(sys
            .steady_state_for(&Vector::from_slice(&[1.0, 2.0]))
            .is_err());
    }
}
