//! The Decoupled baseline: two formally designed SISO controllers with no
//! coordination (Table IV).
//!
//! "One changes cache size to control IPS, and the other changes frequency
//! to control power. There is no coordination between the two." Each loop
//! is a full LQG design — identified, weighted, synthesized with the same
//! machinery as MIMO — but each sees only its own input/output pair, so
//! cross couplings (cache→power, frequency→IPS) act as unmodeled
//! disturbances. §VIII-D shows where that breaks down.

use mimo_linalg::Vector;
use mimo_sim::Plant;

use crate::design::DesignFlow;
use crate::governor::Governor;
use crate::lqg::LqgController;
use crate::weights::WeightSet;
use crate::Result;

/// Restricts a [`Plant`] to a single input/output pair; the other inputs
/// are pinned at fixed values. Used to identify the SISO submodels.
#[derive(Debug)]
pub struct SisoView<'a, P: Plant + ?Sized> {
    inner: &'a mut P,
    input_idx: usize,
    output_idx: usize,
    pinned: Vec<f64>,
}

impl<'a, P: Plant + ?Sized> SisoView<'a, P> {
    /// Creates a view exposing `input_idx → output_idx`, pinning all other
    /// inputs to `pinned` (which must list every inner input).
    ///
    /// # Panics
    ///
    /// Panics if the indices or `pinned` are out of range.
    pub fn new(inner: &'a mut P, input_idx: usize, output_idx: usize, pinned: Vec<f64>) -> Self {
        assert!(input_idx < inner.num_inputs());
        assert!(output_idx < inner.num_outputs());
        assert_eq!(pinned.len(), inner.num_inputs());
        SisoView {
            inner,
            input_idx,
            output_idx,
            pinned,
        }
    }
}

impl<P: Plant + ?Sized> Plant for SisoView<'_, P> {
    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn input_grids(&self) -> Vec<Vec<f64>> {
        vec![self.inner.input_grids()[self.input_idx].clone()]
    }

    fn apply(&mut self, u: &Vector) -> Vector {
        let mut full = Vector::from_slice(&self.pinned);
        full[self.input_idx] = u[0];
        let y = self.inner.apply(&full);
        Vector::from_slice(&[y[self.output_idx]])
    }

    fn observe(&mut self) -> Vector {
        let y = self.inner.observe();
        Vector::from_slice(&[y[self.output_idx]])
    }

    fn phase_changed(&self) -> bool {
        self.inner.phase_changed()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// The two uncoordinated SISO loops.
#[derive(Debug, Clone)]
pub struct DecoupledGovernor {
    /// Cache → IPS loop.
    ips_loop: LqgController,
    /// Frequency → power loop.
    power_loop: LqgController,
    /// Single-element measurement/actuation scratch buffers so the hot
    /// `decide_into` path never allocates.
    y_scratch: Vector,
    u_cache: Vector,
    u_freq: Vector,
}

impl DecoupledGovernor {
    /// Wraps two synthesized SISO controllers (`ips_loop` actuating the
    /// cache, `power_loop` actuating the frequency).
    pub fn new(ips_loop: LqgController, power_loop: LqgController) -> Self {
        DecoupledGovernor {
            ips_loop,
            power_loop,
            y_scratch: Vector::zeros(1),
            u_cache: Vector::zeros(1),
            u_freq: Vector::zeros(1),
        }
    }

    /// Borrows the cache→IPS loop.
    pub fn ips_loop(&self) -> &LqgController {
        &self.ips_loop
    }

    /// Borrows the frequency→power loop.
    pub fn power_loop(&self) -> &LqgController {
        &self.power_loop
    }
}

impl Governor for DecoupledGovernor {
    fn name(&self) -> &str {
        "Decoupled"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn set_targets(&mut self, y0: &Vector) {
        // y0 = [IPS target, power target].
        self.y_scratch[0] = y0[0];
        self.ips_loop.set_reference(&self.y_scratch);
        self.y_scratch[0] = y0[1];
        self.power_loop.set_reference(&self.y_scratch);
    }

    fn decide(&mut self, y: &Vector, phase_changed: bool) -> Vector {
        let mut out = Vector::zeros(2);
        self.decide_into(y, phase_changed, &mut out)
            .expect("DecoupledGovernor::decide received a non-finite measurement");
        out
    }

    fn decide_into(&mut self, y: &Vector, _phase_changed: bool, out: &mut Vector) -> Result<()> {
        crate::governor::screen_measurement(y)?;
        // Each loop sees only its own output; no coordination.
        self.y_scratch[0] = y[0];
        self.ips_loop.step_into(&self.y_scratch, &mut self.u_cache);
        self.y_scratch[0] = y[1];
        self.power_loop.step_into(&self.y_scratch, &mut self.u_freq);
        // Actuation order matches InputSet::FreqCache: [frequency, cache].
        out[0] = self.u_freq[0];
        out[1] = self.u_cache[0];
        Ok(())
    }

    fn reset(&mut self) {
        self.ips_loop.reset_state();
        self.power_loop.reset_state();
    }
}

/// Designs the Decoupled architecture against two-input plants
/// (frequency = input 0, cache = input 1; IPS = output 0, power = output
/// 1), identifying each SISO submodel across the whole training set with
/// the other input pinned at its midrange.
///
/// # Errors
///
/// Propagates identification and synthesis failures from either loop.
pub fn design_decoupled<P: Plant>(plants: &mut [P], seed: u64) -> Result<DecoupledGovernor> {
    let first = plants
        .first()
        .ok_or(crate::ControlError::DimensionMismatch {
            what: "decoupled design needs at least one training plant".into(),
        })?;
    let grids = first.input_grids();
    let pinned: Vec<f64> = grids.iter().map(|g| g[g.len() / 2]).collect();

    let siso_flow = |label: &str, q: f64, r: f64, sd: u64| DesignFlow {
        weights: WeightSet {
            label: label.into(),
            output: vec![q],
            input: vec![r],
        },
        seed: sd,
        ..DesignFlow::two_input()
    };

    // Cache (input 1) → IPS (output 0).
    let ips_ctrl = {
        let mut views: Vec<SisoView<P>> = plants
            .iter_mut()
            .map(|p| SisoView::new(p, 1, 0, pinned.clone()))
            .collect();
        siso_flow("SISO-cache-ips", 10.0, 0.0005, seed)
            .run_multi(views.iter_mut())?
            .into_controller()
    };
    // Frequency (input 0) → power (output 1).
    let power_ctrl = {
        let mut views: Vec<SisoView<P>> = plants
            .iter_mut()
            .map(|p| SisoView::new(p, 0, 1, pinned.clone()))
            .collect();
        siso_flow("SISO-freq-power", 10_000.0, 0.01, seed ^ 0x5151)
            .run_multi(views.iter_mut())?
            .into_controller()
    };
    Ok(DecoupledGovernor::new(ips_ctrl, power_ctrl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_sim::{InputSet, Processor, ProcessorBuilder};

    fn plant(app: &str, seed: u64) -> Processor {
        ProcessorBuilder::new()
            .app(app)
            .seed(seed)
            .input_set(InputSet::FreqCache)
            .build()
            .unwrap()
    }

    #[test]
    fn siso_view_restricts_dimensions() {
        let mut p = plant("namd", 1);
        let mut view = SisoView::new(&mut p, 0, 1, vec![1.3, 6.0]);
        assert_eq!(view.num_inputs(), 1);
        assert_eq!(view.num_outputs(), 1);
        assert_eq!(view.input_grids().len(), 1);
        assert_eq!(view.input_grids()[0].len(), 16); // frequency grid
        let y = view.apply(&Vector::from_slice(&[2.0]));
        assert_eq!(y.len(), 1);
        assert!(y[0] > 0.0); // power
    }

    #[test]
    fn siso_view_pins_other_inputs() {
        let mut p = plant("namd", 2);
        {
            let mut view = SisoView::new(&mut p, 0, 1, vec![0.0, 4.0]);
            let _ = view.apply(&Vector::from_slice(&[1.0]));
        }
        // The cache stayed at the pinned 4 ways.
        assert_eq!(p.config().l2_ways, 4);
        assert!((p.config().freq_ghz - 1.0).abs() < 1e-9);
    }

    #[test]
    fn design_produces_two_siso_loops() {
        let mut ps = vec![plant("namd", 3), plant("leslie3d", 4)];
        let gov = design_decoupled(&mut ps, 77).unwrap();
        assert_eq!(gov.ips_loop().num_inputs(), 1);
        assert_eq!(gov.power_loop().num_inputs(), 1);
        assert_eq!(gov.num_inputs(), 2);
        assert_eq!(gov.name(), "Decoupled");
    }

    #[test]
    fn governor_emits_freq_cache_order() {
        let mut ps = vec![plant("namd", 4)];
        let mut gov = design_decoupled(&mut ps, 78).unwrap();
        gov.set_targets(&Vector::from_slice(&[2.5, 2.0]));
        let u = gov.decide(&Vector::from_slice(&[1.5, 1.2]), false);
        assert_eq!(u.len(), 2);
        // Frequency on the frequency grid, cache on the cache grid.
        assert!((0.5..=2.0).contains(&u[0]), "freq {u:?}");
        assert!([2.0, 4.0, 6.0, 8.0].contains(&u[1]), "cache {u:?}");
    }

    #[test]
    fn reset_clears_loop_state() {
        let mut ps = vec![plant("gobmk", 5)];
        let mut gov = design_decoupled(&mut ps, 79).unwrap();
        gov.set_targets(&Vector::from_slice(&[2.0, 1.5]));
        let _ = gov.decide(&Vector::from_slice(&[1.0, 1.0]), false);
        gov.reset();
        // After reset the first decision from identical measurements is
        // reproducible.
        let a = gov.decide(&Vector::from_slice(&[1.0, 1.0]), false);
        gov.reset();
        let b = gov.decide(&Vector::from_slice(&[1.0, 1.0]), false);
        assert_eq!(a, b);
    }
}
