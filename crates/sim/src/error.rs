use std::error::Error;
use std::fmt;

/// Errors produced by the processor simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The requested application is not in the workload catalog.
    UnknownApp {
        /// Name that failed to resolve.
        name: String,
    },
    /// An actuation vector had the wrong number of entries for the active
    /// input set.
    BadActuation {
        /// Entries supplied.
        got: usize,
        /// Entries expected.
        expected: usize,
    },
    /// A configuration value fell outside its actuator grid and could not
    /// be interpreted.
    InvalidConfig {
        /// Description of the invalid setting.
        what: String,
    },
    /// An actuation entry was NaN or infinite. Non-finite commands cannot
    /// be quantized meaningfully, so the plant rejects the epoch instead
    /// of silently snapping to an arbitrary grid point.
    NonFiniteActuation {
        /// Index of the offending input channel.
        channel: usize,
    },
    /// A shared-LLC contention configuration was unusable.
    BadLlcConfig {
        /// Description of the invalid setting.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownApp { name } => {
                write!(
                    f,
                    "unknown application '{name}'; see workload::catalog_names()"
                )
            }
            SimError::BadActuation { got, expected } => {
                write!(f, "actuation vector has {got} entries, expected {expected}")
            }
            SimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            SimError::NonFiniteActuation { channel } => {
                write!(f, "actuation channel {channel} is NaN or infinite")
            }
            SimError::BadLlcConfig { what } => {
                write!(f, "invalid shared-LLC configuration: {what}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_app() {
        let e = SimError::UnknownApp {
            name: "quake3".into(),
        };
        assert!(e.to_string().contains("quake3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<SimError>();
    }
}
