//! Configurable inputs of the processor — Table III of the paper.
//!
//! * **Frequency**: 16 DVFS settings, 0.5 GHz to 2.0 GHz in 0.1 GHz steps.
//! * **Cache size**: 4 settings by power-gating ways; (L2, L1)
//!   associativities (8,4), (6,3), (4,2), (2,1). The physical actuator
//!   value is the L2 way count {8, 6, 4, 2} so that "bigger is more cache".
//! * **ROB size**: 8 settings, 16 to 128 entries in 16-entry steps.
//!
//! Controllers compute continuous input values; [`ActuatorGrid::quantize`]
//! snaps them to the discrete settings the hardware supports — the
//! discreteness that drives the paper's input-weight discussion (§IV-B2).

use crate::{Result, SimError};

/// The discrete settings available to one actuator.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuatorGrid {
    name: &'static str,
    values: Vec<f64>,
}

impl ActuatorGrid {
    /// Creates a grid from a sorted list of allowed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or not strictly increasing.
    pub fn new(name: &'static str, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "actuator grid must not be empty");
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "actuator grid must be strictly increasing"
        );
        ActuatorGrid { name, values }
    }

    /// Human-readable actuator name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The allowed values, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of settings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Grids are never empty; this always returns `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Smallest allowed value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest allowed value.
    pub fn max(&self) -> f64 {
        // The constructor rejects empty grids, so the last element exists.
        self.values[self.values.len() - 1]
    }

    /// Midrange setting (the optimizer's §VI-B starting point).
    pub fn mid(&self) -> f64 {
        self.values[self.values.len() / 2]
    }

    /// Snaps a continuous value to the nearest allowed setting.
    pub fn quantize(&self, v: f64) -> f64 {
        self.values[self.quantize_index(v)]
    }

    /// Index of the nearest allowed setting.
    pub fn quantize_index(&self, v: f64) -> usize {
        if v.is_nan() {
            return 0;
        }
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &g) in self.values.iter().enumerate() {
            let d = (g - v).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Index of a value that must already be on the grid.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `v` is not (within 1e-9 of)
    /// a grid point.
    pub fn index_of(&self, v: f64) -> Result<usize> {
        let idx = self.quantize_index(v);
        if (self.values[idx] - v).abs() > 1e-9 {
            return Err(SimError::InvalidConfig {
                what: format!("{} = {v} is not an allowed setting", self.name),
            });
        }
        Ok(idx)
    }

    /// The neighboring setting `steps` above (positive) or below (negative)
    /// `v`, clamped to the grid ends.
    pub fn step_from(&self, v: f64, steps: isize) -> f64 {
        let idx = self.quantize_index(v) as isize + steps;
        let idx = idx.clamp(0, self.values.len() as isize - 1) as usize;
        self.values[idx]
    }
}

/// Frequency grid: 0.5 to 2.0 GHz in 0.1 GHz steps (16 settings).
///
/// Returns a shared static so per-epoch quantization never allocates.
pub fn frequency_grid() -> &'static ActuatorGrid {
    static GRID: std::sync::OnceLock<ActuatorGrid> = std::sync::OnceLock::new();
    GRID.get_or_init(|| {
        ActuatorGrid::new(
            "frequency_ghz",
            (0..16).map(|i| 0.5 + 0.1 * i as f64).collect(),
        )
    })
}

/// Cache-size grid, expressed as active L2 ways: {2, 4, 6, 8}.
///
/// Returns a shared static so per-epoch quantization never allocates.
pub fn cache_grid() -> &'static ActuatorGrid {
    static GRID: std::sync::OnceLock<ActuatorGrid> = std::sync::OnceLock::new();
    GRID.get_or_init(|| ActuatorGrid::new("l2_ways", vec![2.0, 4.0, 6.0, 8.0]))
}

/// ROB-size grid: 16 to 128 entries in 16-entry steps (8 settings).
///
/// Returns a shared static so per-epoch quantization never allocates.
pub fn rob_grid() -> &'static ActuatorGrid {
    static GRID: std::sync::OnceLock<ActuatorGrid> = std::sync::OnceLock::new();
    GRID.get_or_init(|| {
        ActuatorGrid::new("rob_entries", (1..=8).map(|i| 16.0 * i as f64).collect())
    })
}

/// L1 ways paired with a given L2 way count — the paper gates both caches
/// together: (8,4), (6,3), (4,2), (2,1).
pub fn l1_ways_for_l2(l2_ways: usize) -> usize {
    l2_ways / 2
}

/// Which inputs the controller actuates: the paper's two-input system
/// (frequency + cache) or the three-input extension (§VI-D adds the ROB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// Frequency and cache size.
    FreqCache,
    /// Frequency, cache size, and ROB size.
    FreqCacheRob,
}

impl InputSet {
    /// Number of actuated inputs.
    pub fn len(&self) -> usize {
        match self {
            InputSet::FreqCache => 2,
            InputSet::FreqCacheRob => 3,
        }
    }

    /// Input sets are never empty; this always returns `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The actuator grids, in input order (frequency, cache[, rob]).
    ///
    /// The grids themselves are shared statics; only the spine `Vec` is
    /// allocated, so this is cheap to call but still should be hoisted out
    /// of per-epoch loops (use [`InputSet::grid`] there).
    pub fn grids(&self) -> Vec<&'static ActuatorGrid> {
        match self {
            InputSet::FreqCache => vec![frequency_grid(), cache_grid()],
            InputSet::FreqCacheRob => vec![frequency_grid(), cache_grid(), rob_grid()],
        }
    }

    /// The actuator grid for input `i`, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn grid(&self, i: usize) -> &'static ActuatorGrid {
        assert!(i < self.len(), "input index {i} out of range for {self:?}");
        match i {
            0 => frequency_grid(),
            1 => cache_grid(),
            _ => rob_grid(),
        }
    }
}

/// A complete plant configuration. Inputs not in the active [`InputSet`]
/// stay at their baseline values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantConfig {
    /// Core + L1 frequency in GHz.
    pub freq_ghz: f64,
    /// Active L2 ways (L1 ways are half).
    pub l2_ways: usize,
    /// Active ROB entries.
    pub rob_entries: usize,
}

impl PlantConfig {
    /// The baseline architecture of Table III, optimized for E×D:
    /// 1.3 GHz, L2 6-way / L1 3-way, 48-entry ROB.
    pub fn baseline() -> Self {
        PlantConfig {
            freq_ghz: 1.3,
            l2_ways: 6,
            rob_entries: 48,
        }
    }

    /// The maximum configuration: 2.0 GHz, full cache, full ROB.
    pub fn max() -> Self {
        PlantConfig {
            freq_ghz: 2.0,
            l2_ways: 8,
            rob_entries: 128,
        }
    }

    /// The optimizer's midrange starting point (§VI-B): 1 GHz (actually the
    /// 1.2 GHz grid midpoint is documented as 1 GHz in the paper; we use the
    /// literal 1.0 GHz it states), (4,2) cache, 64-entry ROB.
    pub fn midrange() -> Self {
        PlantConfig {
            freq_ghz: 1.0,
            l2_ways: 4,
            rob_entries: 64,
        }
    }

    /// Builds a config from an actuation vector over the given input set,
    /// quantizing each entry to its grid. Inputs outside the set keep the
    /// values in `base`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadActuation`] if `u` has the wrong length.
    pub fn from_actuation(u: &[f64], set: InputSet, base: &PlantConfig) -> Result<Self> {
        if u.len() != set.len() {
            return Err(SimError::BadActuation {
                got: u.len(),
                expected: set.len(),
            });
        }
        let fg = frequency_grid();
        let cg = cache_grid();
        let mut cfg = *base;
        cfg.freq_ghz = fg.quantize(u[0]);
        cfg.l2_ways = cg.quantize(u[1]) as usize;
        if set == InputSet::FreqCacheRob {
            cfg.rob_entries = rob_grid().quantize(u[2]) as usize;
        }
        Ok(cfg)
    }

    /// The actuation vector corresponding to this config for an input set.
    pub fn to_actuation(&self, set: InputSet) -> Vec<f64> {
        match set {
            InputSet::FreqCache => vec![self.freq_ghz, self.l2_ways as f64],
            InputSet::FreqCacheRob => {
                vec![self.freq_ghz, self.l2_ways as f64, self.rob_entries as f64]
            }
        }
    }

    /// Active L1 ways.
    pub fn l1_ways(&self) -> usize {
        l1_ways_for_l2(self.l2_ways)
    }

    /// Validates that every field sits on its actuator grid.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        frequency_grid().index_of(self.freq_ghz)?;
        cache_grid().index_of(self.l2_ways as f64)?;
        rob_grid().index_of(self.rob_entries as f64)?;
        Ok(())
    }
}

impl Default for PlantConfig {
    fn default() -> Self {
        PlantConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_grid_sizes() {
        assert_eq!(frequency_grid().len(), 16);
        assert_eq!(cache_grid().len(), 4);
        assert_eq!(rob_grid().len(), 8);
    }

    #[test]
    fn frequency_grid_endpoints() {
        let g = frequency_grid();
        assert!((g.min() - 0.5).abs() < 1e-12);
        assert!((g.max() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantize_snaps_to_nearest() {
        let g = frequency_grid();
        assert!((g.quantize(1.34) - 1.3).abs() < 1e-12);
        assert!((g.quantize(1.36) - 1.4).abs() < 1e-12);
        assert!((g.quantize(-3.0) - 0.5).abs() < 1e-12);
        assert!((g.quantize(99.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantize_is_idempotent() {
        let g = rob_grid();
        for &v in g.values() {
            assert_eq!(g.quantize(v), v);
        }
    }

    #[test]
    fn quantize_handles_nan() {
        let g = cache_grid();
        assert_eq!(g.quantize(f64::NAN), 2.0);
    }

    #[test]
    fn step_from_clamps() {
        let g = cache_grid();
        assert_eq!(g.step_from(8.0, 1), 8.0);
        assert_eq!(g.step_from(8.0, -1), 6.0);
        assert_eq!(g.step_from(2.0, -5), 2.0);
        assert_eq!(g.step_from(4.0, 2), 8.0);
    }

    #[test]
    fn index_of_rejects_off_grid() {
        let g = frequency_grid();
        assert!(g.index_of(1.25).is_err());
        assert_eq!(g.index_of(1.2).unwrap(), 7);
    }

    #[test]
    fn l1_pairs_with_l2() {
        assert_eq!(l1_ways_for_l2(8), 4);
        assert_eq!(l1_ways_for_l2(6), 3);
        assert_eq!(l1_ways_for_l2(4), 2);
        assert_eq!(l1_ways_for_l2(2), 1);
    }

    #[test]
    fn baseline_is_on_grid() {
        PlantConfig::baseline().validate().unwrap();
        PlantConfig::max().validate().unwrap();
        PlantConfig::midrange().validate().unwrap();
    }

    #[test]
    fn actuation_round_trip_two_inputs() {
        let base = PlantConfig::baseline();
        let u = [1.74, 4.9];
        let cfg = PlantConfig::from_actuation(&u, InputSet::FreqCache, &base).unwrap();
        assert!((cfg.freq_ghz - 1.7).abs() < 1e-12);
        assert_eq!(cfg.l2_ways, 4);
        assert_eq!(cfg.rob_entries, base.rob_entries); // untouched
        let back = cfg.to_actuation(InputSet::FreqCache);
        assert_eq!(back.len(), 2);
        assert!((back[0] - 1.7).abs() < 1e-12);
    }

    #[test]
    fn actuation_three_inputs_touches_rob() {
        let base = PlantConfig::baseline();
        let u = [0.5, 2.0, 100.0];
        let cfg = PlantConfig::from_actuation(&u, InputSet::FreqCacheRob, &base).unwrap();
        assert_eq!(cfg.rob_entries, 96);
    }

    #[test]
    fn actuation_length_checked() {
        let base = PlantConfig::baseline();
        assert!(matches!(
            PlantConfig::from_actuation(&[1.0], InputSet::FreqCache, &base),
            Err(SimError::BadActuation { .. })
        ));
    }

    #[test]
    fn input_set_metadata() {
        assert_eq!(InputSet::FreqCache.len(), 2);
        assert_eq!(InputSet::FreqCacheRob.len(), 3);
        assert_eq!(InputSet::FreqCache.grids().len(), 2);
        assert_eq!(InputSet::FreqCacheRob.grids()[2].name(), "rob_entries");
    }

    #[test]
    fn mid_setting() {
        assert!((cache_grid().mid() - 6.0).abs() < 1e-12);
        assert!((rob_grid().mid() - 80.0).abs() < 1e-12);
    }
}
