//! Deterministic fault injection around any [`Plant`].
//!
//! Real on-chip controllers spend most of their engineering budget on the
//! *unhappy* path — sensors latch, ADCs return garbage, voltage regulators
//! overshoot. The simulator's plant is too well behaved to exercise any of
//! that, so [`FaultInjector`] wraps a plant and corrupts its interface the
//! way real hardware does:
//!
//! * **Stuck sensor** — a measurement channel latches at its last healthy
//!   reading and stops responding.
//! * **NaN measurement** — a channel returns NaN (an unlocked PLL counter,
//!   an uninitialized energy register).
//! * **Actuator stuck-at** — an input channel ignores commands and stays
//!   pinned at a fixed value.
//! * **Power spike** — the power reading is multiplied by a transient
//!   factor (a di/dt event or a regulator overshoot).
//!
//! Faults come from two sources: a **schedule** ([`FaultSpec`]) of
//! explicitly placed windows, and a **transient process** that starts a
//! short random fault each epoch with probability [`FaultPlan::rate`],
//! driven by a dedicated seeded RNG. Both are deterministic: the same plan
//! and seed produce the same fault sequence, epoch for epoch, which is what
//! lets the fleet runtime keep its bit-identical-across-workers invariant
//! with faults enabled.
//!
//! Bit-exactness contract: an injector with an empty schedule and zero
//! transient rate is a transparent wrapper — it performs no RNG draws and
//! forwards `apply_into` untouched, so fault-free runs reproduce the exact
//! digests of the unwrapped plant. The steady-state epoch path performs no
//! heap allocations, faulting or not.

use mimo_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::processor::Plant;
use crate::Result;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Output `channel` latches at its last healthy reading.
    StuckSensor {
        /// Faulted output channel.
        channel: usize,
    },
    /// Output `channel` reads NaN.
    NanMeasurement {
        /// Faulted output channel.
        channel: usize,
    },
    /// Input `input` ignores commands and stays at `value`.
    ActuatorStuckAt {
        /// Faulted input channel.
        input: usize,
        /// Value the actuator is pinned to.
        value: f64,
    },
    /// The power reading (output channel 1) is multiplied by `factor`.
    PowerSpike {
        /// Multiplicative spike on the power channel.
        factor: f64,
    },
}

/// Number of distinct [`FaultKind`] variants — sizes the per-kind
/// injection counters (see [`FaultInjector::injected_by_kind`]).
pub const FAULT_KIND_COUNT: usize = 4;

impl FaultKind {
    /// Dense index into a `[u64; FAULT_KIND_COUNT]` counter array.
    pub fn index(&self) -> usize {
        match self {
            FaultKind::StuckSensor { .. } => 0,
            FaultKind::NanMeasurement { .. } => 1,
            FaultKind::ActuatorStuckAt { .. } => 2,
            FaultKind::PowerSpike { .. } => 3,
        }
    }

    /// Stable snake_case label used by telemetry reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::StuckSensor { .. } => "stuck_sensor",
            FaultKind::NanMeasurement { .. } => "nan_measurement",
            FaultKind::ActuatorStuckAt { .. } => "actuator_stuck_at",
            FaultKind::PowerSpike { .. } => "power_spike",
        }
    }
}

/// A scheduled fault window: `kind` is active for epochs
/// `[start_epoch, start_epoch + duration)`. Use `duration = u64::MAX` for
/// a permanent fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// First faulted epoch (0-based, counted by the injector).
    pub start_epoch: u64,
    /// Number of faulted epochs (saturating; `u64::MAX` = forever).
    pub duration: u64,
}

impl FaultSpec {
    /// Whether this spec is active at `epoch`.
    fn active_at(&self, epoch: u64) -> bool {
        epoch >= self.start_epoch && epoch - self.start_epoch < self.duration
    }
}

/// The full fault configuration for one injector.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Explicitly scheduled fault windows.
    pub scheduled: Vec<FaultSpec>,
    /// Per-epoch probability of starting a random transient fault.
    /// `0.0` disables the transient process entirely (no RNG draws).
    pub rate: f64,
    /// Length of each random transient, in epochs.
    pub transient_epochs: u64,
    /// Seed for the transient process (independent of the plant's seed).
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan: no scheduled faults, no transients. Wrapping a plant
    /// with this plan is bit-exact pass-through.
    pub fn none() -> Self {
        FaultPlan {
            scheduled: Vec::new(),
            rate: 0.0,
            transient_epochs: 0,
            seed: 0,
        }
    }

    /// A plan with only the random transient process enabled.
    pub fn transient(rate: f64, transient_epochs: u64, seed: u64) -> Self {
        FaultPlan {
            scheduled: Vec::new(),
            rate,
            transient_epochs,
            seed,
        }
    }

    /// Adds a scheduled fault window (builder style).
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.scheduled.push(spec);
        self
    }

    /// Whether the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.rate <= 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Upper bound on concurrently active transient faults. New transients are
/// skipped (deterministically) while the list is full, which keeps the
/// active list allocation-free after construction.
const MAX_ACTIVE_TRANSIENTS: usize = 8;

/// Wraps any [`Plant`], corrupting actuations and measurements according
/// to a deterministic [`FaultPlan`]. See the module docs for the fault
/// model and the bit-exactness contract.
#[derive(Debug, Clone)]
pub struct FaultInjector<P: Plant> {
    inner: P,
    plan: FaultPlan,
    rng: StdRng,
    epoch: u64,
    /// Active transient faults as `(kind, end_epoch)`.
    active: Vec<(FaultKind, u64)>,
    /// Last healthy (pre-fault) reading per output channel, for
    /// [`FaultKind::StuckSensor`].
    last_good: Vector,
    /// Scratch actuation buffer for actuator faults.
    u_scratch: Vector,
    /// Epochs in which at least one fault corrupted the interface.
    faulted_epochs: u64,
    /// Corruptions applied, bucketed by [`FaultKind::index`]. One fault
    /// active for N epochs counts N times.
    injected_by_kind: [u64; FAULT_KIND_COUNT],
}

impl<P: Plant> FaultInjector<P> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        let last_good = Vector::zeros(inner.num_outputs());
        let u_scratch = Vector::zeros(inner.num_inputs());
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            inner,
            plan,
            rng,
            epoch: 0,
            active: Vec::with_capacity(MAX_ACTIVE_TRANSIENTS),
            last_good,
            u_scratch,
            faulted_epochs: 0,
            injected_by_kind: [0; FAULT_KIND_COUNT],
        }
    }

    /// Borrows the wrapped plant.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutably borrows the wrapped plant.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwraps the injector, returning the plant.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Epochs stepped so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epochs in which at least one fault corrupted the interface.
    pub fn faulted_epochs(&self) -> u64 {
        self.faulted_epochs
    }

    /// Corruptions applied so far, bucketed by [`FaultKind::index`]. A
    /// fault active for N epochs counts N times, so the totals measure
    /// exposure, not distinct fault instances.
    pub fn injected_by_kind(&self) -> &[u64; FAULT_KIND_COUNT] {
        &self.injected_by_kind
    }

    /// Draws this epoch's transient process and expires finished
    /// transients. Zero-rate plans perform no RNG draws at all, keeping
    /// the wrapper bit-exact.
    fn advance_transients(&mut self) {
        if self.plan.rate <= 0.0 {
            return;
        }
        let epoch = self.epoch;
        self.active.retain(|&(_, end)| epoch < end);
        if self.rng.gen::<f64>() < self.plan.rate && self.active.len() < self.active.capacity() {
            let kind = match self.rng.gen::<u64>() % 4 {
                0 => FaultKind::StuckSensor {
                    channel: (self.rng.gen::<u64>() % self.last_good.len().max(1) as u64) as usize,
                },
                1 => FaultKind::NanMeasurement {
                    channel: (self.rng.gen::<u64>() % self.last_good.len().max(1) as u64) as usize,
                },
                2 => {
                    let input =
                        (self.rng.gen::<u64>() % self.u_scratch.len().max(1) as u64) as usize;
                    FaultKind::ActuatorStuckAt {
                        input,
                        // Pinned at whatever the last command was; resolved
                        // when the fault is applied.
                        value: f64::NAN,
                    }
                }
                _ => FaultKind::PowerSpike {
                    factor: 1.5 + self.rng.gen::<f64>(),
                },
            };
            let end = epoch.saturating_add(self.plan.transient_epochs.max(1));
            self.active.push((kind, end));
        }
    }

    /// Applies active actuator faults to `u`, writing the substituted
    /// actuation into the scratch buffer. Returns `true` (scratch filled)
    /// if at least one actuator fault fired.
    fn faulted_input(&mut self, u: &Vector) -> bool {
        let epoch = self.epoch;
        let mut any = false;
        for spec in &self.plan.scheduled {
            if let FaultKind::ActuatorStuckAt { input, value } = spec.kind {
                if spec.active_at(epoch) && input < self.u_scratch.len() {
                    if !any {
                        self.u_scratch.copy_from(u);
                        any = true;
                    }
                    self.u_scratch[input] = value;
                    self.injected_by_kind[spec.kind.index()] += 1;
                }
            }
        }
        for i in 0..self.active.len() {
            if let (FaultKind::ActuatorStuckAt { input, value }, _) = self.active[i] {
                if input >= self.u_scratch.len() {
                    continue;
                }
                if !any {
                    self.u_scratch.copy_from(u);
                    any = true;
                }
                if value.is_finite() {
                    self.u_scratch[input] = value;
                } else {
                    // First activation of a transient stuck-at: latch the
                    // knob at the current command so it stops responding
                    // from here on rather than jumping somewhere new.
                    let pinned = self.u_scratch[input];
                    self.active[i].0 = FaultKind::ActuatorStuckAt {
                        input,
                        value: pinned,
                    };
                }
                self.injected_by_kind[self.active[i].0.index()] += 1;
            }
        }
        any
    }

    /// Applies active sensor faults to the fresh measurement in `out`.
    /// Returns whether anything was corrupted.
    fn corrupt_output(&mut self, out: &mut Vector) -> bool {
        let epoch = self.epoch;
        let mut any = false;
        // Record the healthy reading before corruption so StuckSensor has
        // a latch value even when it activates this very epoch.
        let n = out.len();
        let apply_kind = |kind: &FaultKind, out: &mut Vector, last_good: &Vector| match *kind {
            FaultKind::StuckSensor { channel } if channel < n => {
                out[channel] = last_good[channel];
                true
            }
            FaultKind::NanMeasurement { channel } if channel < n => {
                out[channel] = f64::NAN;
                true
            }
            FaultKind::PowerSpike { factor } if n > 1 => {
                out[1] *= factor;
                true
            }
            _ => false,
        };
        for i in 0..n {
            if out[i].is_finite() {
                self.last_good[i] = out[i];
            }
        }
        for spec in &self.plan.scheduled {
            if spec.active_at(epoch) && apply_kind(&spec.kind, out, &self.last_good) {
                self.injected_by_kind[spec.kind.index()] += 1;
                any = true;
            }
        }
        for (kind, _) in &self.active {
            if apply_kind(kind, out, &self.last_good) {
                self.injected_by_kind[kind.index()] += 1;
                any = true;
            }
        }
        any
    }
}

impl<P: Plant> Plant for FaultInjector<P> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn input_grids(&self) -> Vec<Vec<f64>> {
        self.inner.input_grids()
    }

    fn apply(&mut self, u: &Vector) -> Vector {
        let mut out = Vector::zeros(self.inner.num_outputs());
        self.apply_into(u, &mut out)
            .expect("FaultInjector::apply received an invalid actuation");
        out
    }

    fn observe(&mut self) -> Vector {
        // Priming reads bypass fault accounting: the wrapped plant decides
        // what a first reading looks like.
        self.inner.observe()
    }

    fn apply_into(&mut self, u: &Vector, out: &mut Vector) -> Result<()> {
        if self.plan.is_empty() {
            // Transparent mode: identical call sequence to the bare plant.
            let r = self.inner.apply_into(u, out);
            if r.is_ok() {
                self.epoch += 1;
            }
            return r;
        }
        self.advance_transients();
        let in_faulted = self.faulted_input(u);
        let r = if in_faulted {
            // Move the scratch buffer out so `inner` can be borrowed
            // mutably alongside it; no allocation (the placeholder is
            // zero-length) and the buffer is put straight back.
            let scratch = std::mem::replace(&mut self.u_scratch, Vector::zeros(0));
            let r = self.inner.apply_into(&scratch, out);
            self.u_scratch = scratch;
            r
        } else {
            self.inner.apply_into(u, out)
        };
        if r.is_err() {
            self.faulted_epochs += 1;
            self.epoch += 1;
            return r;
        }
        let out_faulted = self.corrupt_output(out);
        if in_faulted || out_faulted {
            self.faulted_epochs += 1;
        }
        self.epoch += 1;
        Ok(())
    }

    fn phase_changed(&self) -> bool {
        self.inner.phase_changed()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.rng = StdRng::seed_from_u64(self.plan.seed);
        self.epoch = 0;
        self.active.clear();
        for i in 0..self.last_good.len() {
            self.last_good[i] = 0.0;
        }
        self.faulted_epochs = 0;
        self.injected_by_kind = [0; FAULT_KIND_COUNT];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal 2-in/2-out echo plant: y = u.
    #[derive(Debug, Clone)]
    struct Echo;

    impl Plant for Echo {
        fn num_inputs(&self) -> usize {
            2
        }

        fn num_outputs(&self) -> usize {
            2
        }

        fn input_grids(&self) -> Vec<Vec<f64>> {
            vec![vec![0.0, 1.0], vec![0.0, 1.0]]
        }

        fn apply(&mut self, u: &Vector) -> Vector {
            u.clone()
        }

        fn observe(&mut self) -> Vector {
            Vector::zeros(2)
        }

        fn phase_changed(&self) -> bool {
            false
        }

        fn reset(&mut self) {}
    }

    #[test]
    fn injection_counters_bucket_by_kind_and_count_exposure() {
        // NaN sensor for 3 epochs, actuator stuck for 2, spike for 1.
        let plan = FaultPlan::none()
            .with_fault(FaultSpec {
                kind: FaultKind::NanMeasurement { channel: 0 },
                start_epoch: 1,
                duration: 3,
            })
            .with_fault(FaultSpec {
                kind: FaultKind::ActuatorStuckAt {
                    input: 1,
                    value: 0.25,
                },
                start_epoch: 2,
                duration: 2,
            })
            .with_fault(FaultSpec {
                kind: FaultKind::PowerSpike { factor: 2.0 },
                start_epoch: 5,
                duration: 1,
            });
        let mut inj = FaultInjector::new(Echo, plan);
        let u = Vector::from_slice(&[1.0, 1.0]);
        let mut y = Vector::zeros(2);
        for _ in 0..8 {
            inj.apply_into(&u, &mut y).unwrap();
        }
        let by_kind = *inj.injected_by_kind();
        assert_eq!(by_kind[FaultKind::StuckSensor { channel: 0 }.index()], 0);
        assert_eq!(by_kind[FaultKind::NanMeasurement { channel: 0 }.index()], 3);
        assert_eq!(
            by_kind[FaultKind::ActuatorStuckAt {
                input: 0,
                value: 0.0
            }
            .index()],
            2
        );
        assert_eq!(by_kind[FaultKind::PowerSpike { factor: 1.0 }.index()], 1);
        // Faulted epochs are 1,2,3,5 — overlapping faults at epochs 2–3
        // count once here but separately in the per-kind buckets.
        assert_eq!(inj.faulted_epochs(), 4);
        // reset clears the buckets.
        inj.reset();
        assert_eq!(*inj.injected_by_kind(), [0; FAULT_KIND_COUNT]);
        assert_eq!(inj.faulted_epochs(), 0);
    }

    #[test]
    fn kind_labels_and_indices_are_distinct() {
        let kinds = [
            FaultKind::StuckSensor { channel: 0 },
            FaultKind::NanMeasurement { channel: 0 },
            FaultKind::ActuatorStuckAt {
                input: 0,
                value: 0.0,
            },
            FaultKind::PowerSpike { factor: 1.0 },
        ];
        for (i, a) in kinds.iter().enumerate() {
            assert!(a.index() < FAULT_KIND_COUNT);
            for b in &kinds[i + 1..] {
                assert_ne!(a.index(), b.index());
                assert_ne!(a.as_str(), b.as_str());
            }
        }
        assert_eq!(kinds[0].as_str(), "stuck_sensor");
    }
}
