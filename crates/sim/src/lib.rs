//! # mimo-sim
//!
//! A configurable out-of-order processor simulator — the controlled plant
//! of the ISCA 2016 MIMO-control paper.
//!
//! The paper evaluates on ESESC modeling an ARM Cortex-A15 with McPAT/CACTI
//! power models and SPEC CPU 2006 workloads. None of those are available
//! here, so this crate builds the closest synthetic equivalent (see
//! DESIGN.md §1): an interval-model core whose per-epoch dynamics expose
//! the same control surface —
//!
//! * **Inputs** (Table III): DVFS frequency (16 settings, 0.5–2.0 GHz in
//!   0.1 GHz steps), L2/L1 cache size by way-gating (4 settings), and ROB
//!   size (8 settings, 16–128 entries) — [`config`].
//! * **Outputs**: performance in BIPS and power in watts, observed every
//!   50 µs epoch — [`Observation`].
//! * **Dynamics**: cache warm-up after way-gating, DVFS transition stalls,
//!   phase changes, branch/interrupt non-determinism, and sensor noise —
//!   the effects the paper's unpredictability matrices capture.
//! * **Workloads**: a catalog of 28 synthetic applications carrying the
//!   SPEC CPU 2006 names, partitioned into the paper's training /
//!   production and responsive / non-responsive sets — [`workload`].
//!
//! # Example
//!
//! ```
//! use mimo_sim::{Plant, ProcessorBuilder};
//! use mimo_linalg::Vector;
//!
//! # fn main() -> Result<(), mimo_sim::SimError> {
//! let mut cpu = ProcessorBuilder::new().app("namd").seed(42).build()?;
//! // Run one epoch at 1.3 GHz, full cache, full ROB.
//! let y = cpu.apply(&Vector::from_slice(&[1.3, 8.0, 128.0]));
//! let (ips, power) = (y[0], y[1]);
//! assert!(ips > 0.0 && power > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod corem;
pub mod fault;
pub mod llc;
pub mod power;
pub mod processor;
pub mod workload;

mod error;

pub use config::{ActuatorGrid, InputSet, PlantConfig};
pub use error::SimError;
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec, FAULT_KIND_COUNT};
pub use llc::{LlcConfig, SharedLlc};
pub use processor::{Observation, Plant, Processor, ProcessorBuilder};

/// Convenient result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

/// Length of one control epoch in microseconds (Table III: the controller
/// is invoked every 50 µs).
pub const EPOCH_US: f64 = 50.0;
