//! Power model: DVFS voltage scaling, per-component dynamic and leakage
//! power, and actuation overheads.
//!
//! The paper uses McPAT (integrated in ESESC) and CACTI 6.0, with DVFS
//! pairs interpolated from published Cortex-A15 tables \[39\]. We reproduce
//! the same *structure*:
//!
//! * `P_dyn = α · C_eff(config, IPC) · V² · f` per component,
//! * `P_leak ∝ V · (active area)`, reduced by power-gating cache ways and
//!   ROB entries,
//! * a V–f operating table with voltage rising from 0.85 V at 0.5 GHz to
//!   1.25 V at 2.0 GHz.
//!
//! Constants are calibrated so the Table III operating range brackets the
//! paper's 2 W power target: ~0.4 W at the minimum configuration, ~2.8 W
//! at the maximum.

use crate::config::PlantConfig;

/// DVFS operating points `(GHz, V)` interpolated from published
/// Cortex-A15 voltage/frequency tables.
pub const DVFS_TABLE: [(f64, f64); 5] = [
    (0.5, 0.85),
    (1.0, 0.95),
    (1.3, 1.05),
    (1.6, 1.15),
    (2.0, 1.25),
];

/// Supply voltage for a frequency, piecewise-linearly interpolated from
/// [`DVFS_TABLE`] and clamped at the table ends.
pub fn voltage_for(freq_ghz: f64) -> f64 {
    let table = &DVFS_TABLE;
    if freq_ghz <= table[0].0 {
        return table[0].1;
    }
    for w in table.windows(2) {
        let (f0, v0) = w[0];
        let (f1, v1) = w[1];
        if freq_ghz <= f1 {
            return v0 + (v1 - v0) * (freq_ghz - f0) / (f1 - f0);
        }
    }
    table[table.len() - 1].1
}

/// Effective switched capacitance coefficients, in W / (V²·GHz) terms.
/// Split across components so gating each input visibly moves power.
mod ceff {
    /// Core front-end + execution, independent of activity.
    pub const CORE_BASE: f64 = 0.25;
    /// Core activity-dependent part, scaled by IPC/issue-width.
    pub const CORE_ACTIVITY: f64 = 0.34;
    /// L1 caches at full ways.
    pub const L1: f64 = 0.08;
    /// L2 cache at full ways.
    pub const L2: f64 = 0.06;
    /// ROB + scheduler at full entries (CAM-heavy, power-hungry).
    pub const ROB: f64 = 0.15;
}

/// Leakage power at nominal voltage (1.05 V), in watts, per component at
/// full size.
mod leak {
    pub const CORE: f64 = 0.16;
    pub const L1: f64 = 0.05;
    pub const L2: f64 = 0.10;
    pub const ROB: f64 = 0.12;
    /// Nominal voltage the leakage constants are quoted at.
    pub const V_NOM: f64 = 1.05;
}

/// Dynamic power in watts for a configuration running at the given IPC and
/// switching activity.
pub fn dynamic_power(config: &PlantConfig, ipc: f64, activity: f64) -> f64 {
    let v = voltage_for(config.freq_ghz);
    let f = config.freq_ghz;
    let util = (ipc / crate::corem::ISSUE_WIDTH).clamp(0.0, 1.0);
    let c_core = ceff::CORE_BASE + ceff::CORE_ACTIVITY * util;
    let c_l1 = ceff::L1 * config.l1_ways() as f64 / 4.0;
    let c_l2 = ceff::L2 * config.l2_ways as f64 / 8.0;
    let c_rob = ceff::ROB * config.rob_entries as f64 / 128.0;
    activity * (c_core + c_l1 + c_l2 + c_rob) * v * v * f
}

/// Leakage power in watts for a configuration (gated components leak
/// nothing; leakage scales linearly with voltage).
pub fn leakage_power(config: &PlantConfig) -> f64 {
    let v = voltage_for(config.freq_ghz) / leak::V_NOM;
    let p = leak::CORE
        + leak::L1 * config.l1_ways() as f64 / 4.0
        + leak::L2 * config.l2_ways as f64 / 8.0
        + leak::ROB * config.rob_entries as f64 / 128.0;
    p * v
}

/// Total power in watts.
pub fn total_power(config: &PlantConfig, ipc: f64, activity: f64) -> f64 {
    dynamic_power(config, ipc, activity) + leakage_power(config)
}

/// Transition costs of changing configuration between epochs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransitionCost {
    /// Stall time in microseconds (lost execution within the epoch).
    pub stall_us: f64,
    /// One-time energy overhead in microjoules.
    pub energy_uj: f64,
}

/// DVFS relock latency in microseconds (Table III: 5 µs).
pub const DVFS_LATENCY_US: f64 = 5.0;

/// Cache way power-gate + flush latency in microseconds per step.
pub const CACHE_GATE_LATENCY_US: f64 = 4.0;

/// ROB repartition latency in microseconds per step (cheap: drain only).
pub const ROB_GATE_LATENCY_US: f64 = 0.5;

/// Computes the transition cost from `from` to `to`.
///
/// Costs accumulate per changed actuator; multi-step jumps in cache/ROB pay
/// per step (ways are gated one at a time), while DVFS pays a single relock
/// regardless of distance — exactly the asymmetry behind the paper's input
/// weights (frequency has more settings but one fixed cost; cache steps are
/// individually expensive).
pub fn transition_cost(from: &PlantConfig, to: &PlantConfig) -> TransitionCost {
    let mut cost = TransitionCost::default();
    if (from.freq_ghz - to.freq_ghz).abs() > 1e-9 {
        cost.stall_us += DVFS_LATENCY_US;
        cost.energy_uj += 2.0;
    }
    if from.l2_ways != to.l2_ways {
        let steps = (from.l2_ways as i64 - to.l2_ways as i64).unsigned_abs() as f64 / 2.0;
        cost.stall_us += CACHE_GATE_LATENCY_US * steps;
        // Flushing dirty ways costs energy proportional to the ways moved.
        cost.energy_uj += 6.0 * steps;
    }
    if from.rob_entries != to.rob_entries {
        let steps = (from.rob_entries as i64 - to.rob_entries as i64).unsigned_abs() as f64 / 16.0;
        cost.stall_us += ROB_GATE_LATENCY_US * steps;
        cost.energy_uj += 0.5 * steps;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_table_interpolation() {
        assert!((voltage_for(0.5) - 0.85).abs() < 1e-12);
        assert!((voltage_for(2.0) - 1.25).abs() < 1e-12);
        assert!((voltage_for(1.3) - 1.05).abs() < 1e-12);
        // Midpoint of (1.0, 0.95)..(1.3, 1.05).
        assert!((voltage_for(1.15) - 1.00).abs() < 1e-9);
        // Clamped outside the table.
        assert_eq!(voltage_for(0.1), 0.85);
        assert_eq!(voltage_for(3.0), 1.25);
    }

    #[test]
    fn voltage_monotone_in_frequency() {
        let mut prev = 0.0;
        for i in 0..16 {
            let f = 0.5 + 0.1 * i as f64;
            let v = voltage_for(f);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn power_range_brackets_the_2w_target() {
        let min_cfg = PlantConfig {
            freq_ghz: 0.5,
            l2_ways: 2,
            rob_entries: 16,
        };
        let max_cfg = PlantConfig::max();
        let p_min = total_power(&min_cfg, 0.5, 0.6);
        let p_max = total_power(&max_cfg, 2.2, 1.05);
        assert!(p_min < 0.7, "min power {p_min:.2} W");
        assert!(p_max > 2.3, "max power {p_max:.2} W");
        assert!(p_max < 3.5, "max power {p_max:.2} W unreasonably high");
    }

    #[test]
    fn baseline_power_is_mid_range() {
        let p = total_power(&PlantConfig::baseline(), 1.5, 0.85);
        assert!((0.8..2.0).contains(&p), "baseline power {p:.2} W");
    }

    #[test]
    fn dynamic_power_superlinear_in_frequency() {
        // Doubling f also raises V, so power grows faster than 2x.
        let slow = PlantConfig {
            freq_ghz: 1.0,
            ..PlantConfig::max()
        };
        let fast = PlantConfig::max();
        let ratio = dynamic_power(&fast, 2.0, 1.0) / dynamic_power(&slow, 2.0, 1.0);
        assert!(ratio > 2.0 * 1.3, "V² scaling missing: ratio {ratio}");
    }

    #[test]
    fn gating_cache_cuts_both_power_terms() {
        let full = PlantConfig::max();
        let gated = PlantConfig { l2_ways: 2, ..full };
        assert!(dynamic_power(&gated, 1.5, 0.9) < dynamic_power(&full, 1.5, 0.9));
        assert!(leakage_power(&gated) < leakage_power(&full));
    }

    #[test]
    fn gating_rob_cuts_power() {
        let full = PlantConfig::max();
        let gated = PlantConfig {
            rob_entries: 16,
            ..full
        };
        let saved = total_power(&full, 1.5, 0.9) - total_power(&gated, 1.5, 0.9);
        assert!(saved > 0.05, "ROB gating saves {saved:.3} W");
    }

    #[test]
    fn higher_ipc_burns_more_power() {
        let cfg = PlantConfig::baseline();
        assert!(total_power(&cfg, 2.5, 0.9) > total_power(&cfg, 0.5, 0.9));
    }

    #[test]
    fn transition_costs_ranked_like_table_ii() {
        let base = PlantConfig::baseline();
        let freq_change = PlantConfig {
            freq_ghz: 1.4,
            ..base
        };
        let cache_change = PlantConfig { l2_ways: 4, ..base };
        let rob_change = PlantConfig {
            rob_entries: 64,
            ..base
        };
        let c_freq = transition_cost(&base, &freq_change);
        let c_cache = transition_cost(&base, &cache_change);
        let c_rob = transition_cost(&base, &rob_change);
        // Table II ordering: cache gating ≥ frequency > ROB resize.
        assert!(c_cache.stall_us + c_cache.energy_uj >= c_freq.stall_us);
        assert!(c_rob.stall_us < c_freq.stall_us);
        // No change, no cost.
        let none = transition_cost(&base, &base);
        assert_eq!(none, TransitionCost::default());
    }

    #[test]
    fn multi_step_cache_jumps_pay_per_step() {
        let base = PlantConfig::baseline(); // 6 ways
        let one = PlantConfig { l2_ways: 4, ..base };
        let three = PlantConfig { l2_ways: 2, ..base }; // 2 steps away
        let c1 = transition_cost(&base, &one);
        let c3 = transition_cost(&base, &three);
        assert!((c3.stall_us - 2.0 * c1.stall_us).abs() < 1e-9);
    }
}
