//! Interval performance model of the out-of-order core.
//!
//! Per epoch we compute cycles-per-instruction from first-order
//! interval-analysis components (Karkhanis & Smith style, the same
//! modeling tradition the paper cites as \[28\]):
//!
//! ```text
//! CPI = CPI_base(ILP, issue width, ROB)
//!     + CPI_L1   (L1-miss/L2-hit stalls, partially overlapped)
//!     + CPI_L2   (memory stalls, divided by the exposed MLP)
//!     + CPI_br   (branch-misprediction flushes)
//! ```
//!
//! Two architecture couplings make the control problem genuinely MIMO:
//!
//! * memory latency is wall-clock, so raising the *frequency* inflates the
//!   miss penalty in cycles — frequency helps compute-bound phases and is
//!   nearly useless for memory-bound ones;
//! * the *ROB size* gates both the exploitable ILP and the memory-level
//!   parallelism, so it interacts with both the cache and the frequency.

use crate::cache::{l1_mpki_steady, CacheState, L2_LATENCY_CYCLES, MEM_LATENCY_NS};
use crate::config::PlantConfig;
use crate::workload::Phase;

/// Machine issue width (Table III: 3-issue out of order).
pub const ISSUE_WIDTH: f64 = 3.0;

/// Pipeline refill penalty per branch mispredict, in cycles.
pub const BRANCH_PENALTY_CYCLES: f64 = 14.0;

/// Fraction of L2-hit latency that the out-of-order window cannot hide.
const L1_MISS_EXPOSURE: f64 = 0.35;

/// ROB size at which a phase's intrinsic ILP is fully exposed.
const ROB_KNEE: f64 = 96.0;

/// Effective ILP after the ROB window limit.
///
/// `rob_sens = 0` means the phase hits its intrinsic ILP with any window;
/// `rob_sens = 1` means ILP scales as `(rob / 96)^0.5` below the knee.
pub fn effective_ilp(phase: &Phase, rob_entries: usize) -> f64 {
    let window = (rob_entries as f64 / ROB_KNEE).min(1.0);
    let factor = window.powf(0.5 * phase.rob_sens * 2.0);
    (phase.ilp * ((1.0 - phase.rob_sens) + phase.rob_sens * factor)).max(0.05)
}

/// Memory-level parallelism exposed by a ROB of the given size.
///
/// Grows with the square root of the window, saturating at the phase's
/// intrinsic `mem_parallelism`.
pub fn effective_mlp(phase: &Phase, rob_entries: usize) -> f64 {
    let window = (rob_entries as f64 / 128.0).clamp(0.05, 1.0);
    (1.0 + (phase.mem_parallelism - 1.0) * window.sqrt()).max(1.0)
}

/// The per-component CPI breakdown for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiBreakdown {
    /// Issue/ILP-limited base CPI.
    pub base: f64,
    /// L1-miss (L2-hit) stall CPI.
    pub l1: f64,
    /// L2-miss (memory) stall CPI.
    pub l2: f64,
    /// Branch-flush CPI.
    pub branch: f64,
}

impl CpiBreakdown {
    /// Total CPI.
    pub fn total(&self) -> f64 {
        self.base + self.l1 + self.l2 + self.branch
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        1.0 / self.total()
    }
}

/// Computes the CPI breakdown for a phase under a configuration.
///
/// `cache` supplies the transient-aware L2 miss rate; `mpki_jitter` is a
/// multiplicative non-determinism factor (interrupts, input-dependent
/// behavior) applied to the miss traffic, nominally `1.0`.
pub fn cpi(
    phase: &Phase,
    config: &PlantConfig,
    cache: &CacheState,
    mpki_jitter: f64,
) -> CpiBreakdown {
    let ilp = effective_ilp(phase, config.rob_entries);
    let base = 1.0 / ilp.min(ISSUE_WIDTH);

    let l1_mpki = l1_mpki_steady(phase, config.l1_ways()) * mpki_jitter;
    let l1 = l1_mpki / 1000.0 * L2_LATENCY_CYCLES * L1_MISS_EXPOSURE;

    let l2_mpki = cache.effective_l2_mpki(phase) * mpki_jitter;
    let mem_latency_cycles = MEM_LATENCY_NS * config.freq_ghz;
    let mlp = effective_mlp(phase, config.rob_entries);
    let l2 = l2_mpki / 1000.0 * mem_latency_cycles / mlp;

    let branch = phase.branch_mpki / 1000.0 * BRANCH_PENALTY_CYCLES;

    CpiBreakdown {
        base,
        l1,
        l2,
        branch,
    }
}

/// Performance in billions of instructions per second for a phase under a
/// configuration (no transient stalls).
pub fn bips(phase: &Phase, config: &PlantConfig, cache: &CacheState, mpki_jitter: f64) -> f64 {
    cpi(phase, config, cache, mpki_jitter).ipc() * config.freq_ghz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::lookup;

    fn warm_cache(ways: usize) -> CacheState {
        CacheState::new(ways)
    }

    #[test]
    fn compute_bound_scales_with_frequency() {
        let p = lookup("namd").unwrap().phases()[0];
        let cache = warm_cache(8);
        let slow = PlantConfig {
            freq_ghz: 0.5,
            ..PlantConfig::max()
        };
        let fast = PlantConfig::max();
        let b_slow = bips(&p, &slow, &cache, 1.0);
        let b_fast = bips(&p, &fast, &cache, 1.0);
        // Near-linear scaling for compute-bound code: 4x freq → ≥3.2x perf.
        assert!(b_fast / b_slow > 3.2, "ratio {}", b_fast / b_slow);
    }

    #[test]
    fn memory_bound_barely_scales_with_frequency() {
        let p = lookup("lbm").unwrap().phases()[0];
        let cache = warm_cache(8);
        let slow = PlantConfig {
            freq_ghz: 0.5,
            ..PlantConfig::max()
        };
        let fast = PlantConfig::max();
        let ratio = bips(&p, &fast, &cache, 1.0) / bips(&p, &slow, &cache, 1.0);
        assert!(ratio < 2.1, "memory-bound freq scaling ratio {ratio}");
    }

    #[test]
    fn responsive_apps_can_reach_the_ips_target() {
        // §VII-B1 targets 2.5 BIPS; every responsive app must reach it at
        // some configuration (we check the max configuration, warm cache).
        for name in crate::workload::responsive_production_names() {
            let app = lookup(name).unwrap();
            let best = app
                .phases()
                .iter()
                .map(|p| bips(p, &PlantConfig::max(), &warm_cache(8), 1.0))
                .fold(0.0_f64, f64::max);
            assert!(best >= 2.4, "{name} peaks at {best:.2} BIPS");
        }
    }

    #[test]
    fn non_responsive_apps_cannot_reach_the_ips_target() {
        for name in crate::workload::NON_RESPONSIVE {
            let app = lookup(name).unwrap();
            // Even the best phase at the max configuration stays below 2.5.
            let best = app
                .phases()
                .iter()
                .map(|p| bips(p, &PlantConfig::max(), &warm_cache(8), 1.0))
                .fold(0.0_f64, f64::max);
            assert!(best < 2.45, "{name} reaches {best:.2} BIPS");
        }
    }

    #[test]
    fn training_apps_reach_the_target() {
        for name in crate::workload::TRAINING_SET {
            let app = lookup(name).unwrap();
            let best = app
                .phases()
                .iter()
                .map(|p| bips(p, &PlantConfig::max(), &warm_cache(8), 1.0))
                .fold(0.0_f64, f64::max);
            assert!(best >= 2.4, "{name} peaks at {best:.2} BIPS");
        }
    }

    #[test]
    fn cache_helps_cache_sensitive_phases() {
        let p = lookup("milc").unwrap().phases()[0];
        let small = PlantConfig {
            l2_ways: 2,
            ..PlantConfig::max()
        };
        let big = PlantConfig::max();
        let b_small = bips(&p, &small, &warm_cache(2), 1.0);
        let b_big = bips(&p, &big, &warm_cache(8), 1.0);
        assert!(b_big > 1.2 * b_small, "cache speedup {}", b_big / b_small);
    }

    #[test]
    fn cache_barely_helps_streamers() {
        let p = lookup("libquantum").unwrap().phases()[0];
        let small = PlantConfig {
            l2_ways: 2,
            ..PlantConfig::max()
        };
        let b_small = bips(&p, &small, &warm_cache(2), 1.0);
        let b_big = bips(&p, &PlantConfig::max(), &warm_cache(8), 1.0);
        assert!(
            b_big < 1.15 * b_small,
            "streamer speedup {}",
            b_big / b_small
        );
    }

    #[test]
    fn rob_helps_window_limited_phases() {
        let p = lookup("lbm").unwrap().phases()[0]; // high rob_sens + MLP
        let small_rob = PlantConfig {
            rob_entries: 16,
            ..PlantConfig::max()
        };
        let b_small = bips(&p, &small_rob, &warm_cache(8), 1.0);
        let b_big = bips(&p, &PlantConfig::max(), &warm_cache(8), 1.0);
        assert!(b_big > 1.3 * b_small, "ROB speedup {}", b_big / b_small);
    }

    #[test]
    fn ipc_never_exceeds_issue_width() {
        for app in crate::workload::catalog() {
            for p in app.phases() {
                let c = cpi(p, &PlantConfig::max(), &warm_cache(8), 1.0);
                assert!(c.ipc() <= ISSUE_WIDTH + 1e-12);
            }
        }
    }

    #[test]
    fn jitter_moves_miss_components_only() {
        let p = lookup("milc").unwrap().phases()[0];
        let cfg = PlantConfig::baseline();
        let cache = warm_cache(6);
        let lo = cpi(&p, &cfg, &cache, 0.8);
        let hi = cpi(&p, &cfg, &cache, 1.2);
        assert_eq!(lo.base, hi.base);
        assert_eq!(lo.branch, hi.branch);
        assert!(lo.l1 < hi.l1);
        assert!(lo.l2 < hi.l2);
    }

    #[test]
    fn effective_ilp_monotone_in_rob() {
        let p = Phase {
            rob_sens: 0.8,
            ..Phase::nominal()
        };
        let mut prev = 0.0;
        for rob in [16, 32, 48, 64, 96, 128] {
            let ilp = effective_ilp(&p, rob);
            assert!(ilp >= prev);
            prev = ilp;
        }
        assert!((effective_ilp(&p, 128) - p.ilp).abs() < 1e-9);
    }

    #[test]
    fn effective_mlp_bounded() {
        let p = Phase {
            mem_parallelism: 6.0,
            ..Phase::nominal()
        };
        assert!(effective_mlp(&p, 16) >= 1.0);
        assert!(effective_mlp(&p, 128) <= 6.0 + 1e-12);
        assert!(effective_mlp(&p, 128) > effective_mlp(&p, 16));
    }

    #[test]
    fn breakdown_total_is_sum() {
        let p = Phase::nominal();
        let c = cpi(&p, &PlantConfig::baseline(), &warm_cache(6), 1.0);
        let sum = c.base + c.l1 + c.l2 + c.branch;
        assert!((c.total() - sum).abs() < 1e-15);
        assert!((c.ipc() * c.total() - 1.0).abs() < 1e-12);
    }
}
