//! The controlled plant: a configurable processor running an application.
//!
//! [`Processor`] ties the workload, core, cache, and power models together
//! behind the paper's control interface: every 50 µs epoch the controller
//! supplies an actuation vector, and the plant returns the measured
//! outputs `[IPS (BIPS), power (W)]`. The plant injects everything the
//! paper's unpredictability matrices account for — program phase changes,
//! miss-rate jitter from interrupts and input-dependent behavior, and
//! sensor noise on both outputs.

use mimo_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::CacheState;
use crate::config::{InputSet, PlantConfig};
use crate::corem;
use crate::power::{self, TransitionCost};
use crate::workload::{lookup, AppProfile, Phase};
use crate::{Result, SimError, EPOCH_US};

/// Interface controllers use to drive a plant one epoch at a time.
///
/// Implemented by [`Processor`]; controller code is written against this
/// trait so tests can substitute analytic plants.
pub trait Plant {
    /// Number of actuated inputs.
    fn num_inputs(&self) -> usize;
    /// Number of observed outputs.
    fn num_outputs(&self) -> usize;
    /// Allowed values per input, ascending.
    fn input_grids(&self) -> Vec<Vec<f64>>;
    /// Applies an actuation for one epoch and returns the measured outputs.
    fn apply(&mut self, u: &Vector) -> Vector;
    /// Runs one epoch *holding the current configuration* and returns the
    /// measured outputs — the first reading a controller sees before it
    /// has issued any actuation.
    fn observe(&mut self) -> Vector;
    /// Applies an actuation for one epoch, writing the measured outputs
    /// into `out` without allocating. The default forwards to
    /// [`Plant::apply`] and always succeeds; hot-path plants override it.
    /// Implementations must be bit-identical to `apply` on success and
    /// must not allocate in steady state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadActuation`] when `u` or `out` has the wrong
    /// number of entries and [`SimError::NonFiniteActuation`] when an
    /// actuation entry is NaN or infinite. On error the plant does not
    /// advance and `out` is left untouched.
    ///
    /// # Panics
    ///
    /// The default implementation panics if `out.len() !=
    /// self.num_outputs()` (via [`Vector::copy_from`]).
    fn apply_into(&mut self, u: &Vector, out: &mut Vector) -> Result<()> {
        out.copy_from(&self.apply(u));
        Ok(())
    }
    /// Whether the last epoch crossed a program phase boundary.
    fn phase_changed(&self) -> bool;
    /// Restarts the plant from its initial state.
    fn reset(&mut self);
}

/// Mutable references step the referenced plant.
impl<P: Plant + ?Sized> Plant for &mut P {
    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }
    fn num_outputs(&self) -> usize {
        (**self).num_outputs()
    }
    fn input_grids(&self) -> Vec<Vec<f64>> {
        (**self).input_grids()
    }
    fn apply(&mut self, u: &Vector) -> Vector {
        (**self).apply(u)
    }
    fn observe(&mut self) -> Vector {
        (**self).observe()
    }
    fn apply_into(&mut self, u: &Vector, out: &mut Vector) -> Result<()> {
        (**self).apply_into(u, out)
    }
    fn phase_changed(&self) -> bool {
        (**self).phase_changed()
    }
    fn reset(&mut self) {
        (**self).reset();
    }
}

/// Boxed plants step the boxed plant.
impl<P: Plant + ?Sized> Plant for Box<P> {
    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }
    fn num_outputs(&self) -> usize {
        (**self).num_outputs()
    }
    fn input_grids(&self) -> Vec<Vec<f64>> {
        (**self).input_grids()
    }
    fn apply(&mut self, u: &Vector) -> Vector {
        (**self).apply(u)
    }
    fn observe(&mut self) -> Vector {
        (**self).observe()
    }
    fn apply_into(&mut self, u: &Vector, out: &mut Vector) -> Result<()> {
        (**self).apply_into(u, out)
    }
    fn phase_changed(&self) -> bool {
        (**self).phase_changed()
    }
    fn reset(&mut self) {
        (**self).reset();
    }
}

/// One epoch's measured outputs plus bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Measured performance in billions of instructions per second.
    pub ips_bips: f64,
    /// Measured power in watts.
    pub power_w: f64,
    /// Configuration actually in effect this epoch (post-quantization).
    pub config: PlantConfig,
    /// Whether a program phase boundary was crossed.
    pub phase_change: bool,
}

/// Cumulative run statistics for energy/delay metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunTotals {
    /// Total energy in joules.
    pub energy_j: f64,
    /// Total committed instructions, in billions.
    pub instructions_g: f64,
    /// Total wall-clock time in seconds.
    pub time_s: f64,
    /// Epochs executed.
    pub epochs: u64,
}

impl RunTotals {
    /// Energy × Delay^(k−1) for the executed work: `E`, `E×D`, `E×D²`, …
    ///
    /// Delay is normalized per billion instructions so runs of different
    /// lengths compare fairly.
    pub fn energy_delay_product(&self, k: u32) -> f64 {
        if self.instructions_g <= 0.0 {
            return f64::INFINITY;
        }
        let e = self.energy_j / self.instructions_g;
        let d = self.time_s / self.instructions_g;
        e * d.powi(k as i32 - 1)
    }

    /// Average IPS in BIPS over the whole run.
    pub fn avg_bips(&self) -> f64 {
        if self.time_s > 0.0 {
            self.instructions_g / self.time_s
        } else {
            0.0
        }
    }

    /// Average power in watts over the whole run.
    pub fn avg_power(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_j / self.time_s
        } else {
            0.0
        }
    }
}

/// Builder for [`Processor`].
///
/// # Example
///
/// ```
/// use mimo_sim::ProcessorBuilder;
///
/// # fn main() -> Result<(), mimo_sim::SimError> {
/// let cpu = ProcessorBuilder::new()
///     .app("astar")
///     .seed(1)
///     .sensor_noise(0.01, 0.015)
///     .build()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProcessorBuilder {
    app: String,
    seed: u64,
    input_set: InputSet,
    initial: PlantConfig,
    ips_noise: f64,
    power_noise: f64,
    process_noise: f64,
}

impl ProcessorBuilder {
    /// Starts a builder with the paper's defaults: the 3-input plant at the
    /// baseline configuration, running `namd`.
    pub fn new() -> Self {
        ProcessorBuilder {
            app: "namd".to_owned(),
            seed: 0,
            input_set: InputSet::FreqCacheRob,
            initial: PlantConfig::baseline(),
            ips_noise: 0.01,
            power_noise: 0.015,
            process_noise: 0.05,
        }
    }

    /// Selects the application by catalog name.
    pub fn app(mut self, name: &str) -> Self {
        self.app = name.to_owned();
        self
    }

    /// Seeds all stochastic behavior (deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses the actuated input set (2-input or 3-input plant).
    pub fn input_set(mut self, set: InputSet) -> Self {
        self.input_set = set;
        self
    }

    /// Sets the initial configuration.
    pub fn initial_config(mut self, cfg: PlantConfig) -> Self {
        self.initial = cfg;
        self
    }

    /// Sets the relative sensor-noise standard deviations for IPS and
    /// power readings.
    pub fn sensor_noise(mut self, ips: f64, power: f64) -> Self {
        self.ips_noise = ips;
        self.power_noise = power;
        self
    }

    /// Sets the relative process-noise level (miss-traffic jitter).
    pub fn process_noise(mut self, sigma: f64) -> Self {
        self.process_noise = sigma;
        self
    }

    /// Builds the processor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for an unknown application name and
    /// [`SimError::InvalidConfig`] for an off-grid initial configuration.
    pub fn build(self) -> Result<Processor> {
        let profile = lookup(&self.app).ok_or_else(|| SimError::UnknownApp {
            name: self.app.clone(),
        })?;
        self.initial.validate()?;
        Ok(Processor::from_parts(self, profile))
    }
}

impl Default for ProcessorBuilder {
    fn default() -> Self {
        ProcessorBuilder::new()
    }
}

/// The simulated processor plant.
#[derive(Debug, Clone)]
pub struct Processor {
    builder: ProcessorBuilder,
    profile: AppProfile,
    input_set: InputSet,
    config: PlantConfig,
    cache: CacheState,
    rng: StdRng,
    /// Index into the (cyclic) phase sequence.
    phase_idx: usize,
    /// Epochs remaining in the current (jittered) phase.
    phase_left: usize,
    /// First-order-smoothed effective phase parameters (the program does
    /// not switch behavior instantaneously at a phase boundary).
    eff: Phase,
    phase_changed: bool,
    totals: RunTotals,
    last: Option<Observation>,
    /// Shared-LLC miss-pressure multiplier installed by the chip runtime
    /// (see `mimo_sim::llc`). `1.0` — the default, and the value outside
    /// contention — multiplies the miss-traffic jitter bit-transparently,
    /// so plants without a contention model are unaffected.
    llc_penalty: f64,
}

/// Fraction of the gap to the target phase closed per epoch.
const PHASE_SMOOTHING: f64 = 0.12;

impl Processor {
    fn from_parts(builder: ProcessorBuilder, profile: AppProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(builder.seed);
        let phase_idx = 0;
        let first = profile.phases()[0];
        let phase_left = jittered_duration(first.duration_epochs, &mut rng);
        Processor {
            input_set: builder.input_set,
            config: builder.initial,
            cache: CacheState::new(builder.initial.l2_ways),
            rng,
            phase_idx,
            phase_left,
            eff: first,
            phase_changed: false,
            totals: RunTotals::default(),
            last: None,
            llc_penalty: 1.0,
            builder,
            profile,
        }
    }

    /// The application this plant runs.
    pub fn app_name(&self) -> &str {
        self.profile.name()
    }

    /// The currently applied configuration.
    pub fn config(&self) -> PlantConfig {
        self.config
    }

    /// The active input set.
    pub fn input_set(&self) -> InputSet {
        self.input_set
    }

    /// Cumulative run statistics.
    pub fn totals(&self) -> RunTotals {
        self.totals
    }

    /// The most recent observation, if any epoch has run.
    pub fn last_observation(&self) -> Option<Observation> {
        self.last
    }

    /// The shared-LLC miss-pressure multiplier currently applied.
    pub fn llc_penalty(&self) -> f64 {
        self.llc_penalty
    }

    /// Installs the shared-LLC miss-pressure multiplier for subsequent
    /// epochs. The chip runtime calls this at the retarget beat with the
    /// value `mimo_sim::llc::SharedLlc` computed from the whole chip's way
    /// allocations; `1.0` restores the uncontended plant bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or sub-unity multiplier — contention can
    /// only add miss pressure.
    pub fn set_llc_penalty(&mut self, penalty: f64) {
        assert!(
            penalty.is_finite() && penalty >= 1.0,
            "llc penalty {penalty} must be finite and >= 1"
        );
        self.llc_penalty = penalty;
    }

    /// Runs one epoch with an explicit configuration (used by profiling and
    /// identification flows that bypass actuation vectors).
    pub fn step_config(&mut self, target: PlantConfig) -> Observation {
        // --- Actuation and transition costs -----------------------------
        let cost: TransitionCost = power::transition_cost(&self.config, &target);
        if target.l2_ways != self.cache.ways() {
            self.cache.resize(target.l2_ways);
        }
        self.config = target;

        // --- Advance the program --------------------------------------
        self.phase_changed = false;
        if self.phase_left == 0 {
            self.phase_idx += 1;
            let next = *self.profile.phase(self.phase_idx);
            self.phase_left = jittered_duration(next.duration_epochs, &mut self.rng);
            self.phase_changed = true;
        } else {
            self.phase_left -= 1;
        }
        let target_phase = *self.profile.phase(self.phase_idx);
        self.eff = lerp_phase(&self.eff, &target_phase, PHASE_SMOOTHING);
        self.cache.tick();

        // --- Performance -----------------------------------------------
        // Miss-traffic jitter: log-normal-ish program noise plus rare
        // interrupt spikes.
        let z: f64 = standard_normal(&mut self.rng);
        let mut jitter = (self.builder.process_noise * z).exp();
        if self.rng.gen::<f64>() < 0.01 {
            jitter *= 1.5; // interrupt / page-fault burst
        }
        // Shared-LLC contention raises effective miss traffic; at the
        // default 1.0 this multiply is bit-transparent (x * 1.0 == x).
        jitter *= self.llc_penalty;
        let breakdown = corem::cpi(&self.eff, &self.config, &self.cache, jitter);
        let ipc = breakdown.ipc();
        let exec_us = (EPOCH_US - cost.stall_us).max(0.0);
        // instructions [billions] = IPC · f[Gcycles/s] · t[s].
        let instr_g = ipc * self.config.freq_ghz * exec_us * 1e-6;
        let true_ips = instr_g / (EPOCH_US * 1e-6); // BIPS averaged over the epoch

        // --- Power -------------------------------------------------------
        let run_power = power::total_power(&self.config, ipc, self.eff.activity);
        // During transition stalls the core clock-gates most dynamic power.
        let stall_power = power::leakage_power(&self.config)
            + 0.3 * power::dynamic_power(&self.config, 0.0, self.eff.activity);
        let mut true_power = (run_power * exec_us + stall_power * cost.stall_us) / EPOCH_US;
        true_power += cost.energy_uj * 1e-6 / (EPOCH_US * 1e-6);

        // --- Accounting ---------------------------------------------------
        self.totals.energy_j += true_power * EPOCH_US * 1e-6;
        self.totals.instructions_g += instr_g;
        self.totals.time_s += EPOCH_US * 1e-6;
        self.totals.epochs += 1;

        // --- Sensors -------------------------------------------------------
        let ips_meas = true_ips * (1.0 + self.builder.ips_noise * standard_normal(&mut self.rng));
        let power_meas =
            true_power * (1.0 + self.builder.power_noise * standard_normal(&mut self.rng));

        let obs = Observation {
            ips_bips: ips_meas.max(0.0),
            power_w: power_meas.max(0.0),
            config: self.config,
            phase_change: self.phase_changed,
        };
        self.last = Some(obs);
        obs
    }
}

impl Plant for Processor {
    fn num_inputs(&self) -> usize {
        self.input_set.len()
    }

    fn num_outputs(&self) -> usize {
        2
    }

    fn input_grids(&self) -> Vec<Vec<f64>> {
        self.input_set
            .grids()
            .iter()
            .map(|g| g.values().to_vec())
            .collect()
    }

    /// # Panics
    ///
    /// Panics if the actuation is rejected (wrong length or non-finite
    /// entries); fallible callers use [`Plant::apply_into`] instead.
    fn apply(&mut self, u: &Vector) -> Vector {
        let mut out = Vector::zeros(2);
        self.apply_into(u, &mut out)
            .expect("Processor::apply received an invalid actuation");
        out
    }

    fn observe(&mut self) -> Vector {
        // One epoch at the current configuration provides the first reading.
        let u = Vector::from_slice(&self.config.to_actuation(self.input_set));
        self.apply(&u)
    }

    fn apply_into(&mut self, u: &Vector, out: &mut Vector) -> Result<()> {
        if out.len() != 2 {
            return Err(SimError::BadActuation {
                got: out.len(),
                expected: 2,
            });
        }
        if let Some(channel) = u.iter().position(|v| !v.is_finite()) {
            return Err(SimError::NonFiniteActuation { channel });
        }
        let cfg = PlantConfig::from_actuation(u.as_slice(), self.input_set, &self.config)?;
        let obs = self.step_config(cfg);
        out[0] = obs.ips_bips;
        out[1] = obs.power_w;
        Ok(())
    }

    fn phase_changed(&self) -> bool {
        self.phase_changed
    }

    fn reset(&mut self) {
        *self = Processor::from_parts(self.builder.clone(), self.profile.clone());
    }
}

/// Box–Muller standard normal draw.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Jitters a nominal phase duration by ±15%.
fn jittered_duration(nominal: usize, rng: &mut StdRng) -> usize {
    let f = 1.0 + 0.15 * (rng.gen::<f64>() * 2.0 - 1.0);
    ((nominal as f64 * f) as usize).max(1)
}

/// First-order interpolation of phase parameters.
fn lerp_phase(from: &Phase, to: &Phase, alpha: f64) -> Phase {
    let l = |a: f64, b: f64| a + (b - a) * alpha;
    Phase {
        ilp: l(from.ilp, to.ilp),
        l2_mpki: l(from.l2_mpki, to.l2_mpki),
        l1_mpki: l(from.l1_mpki, to.l1_mpki),
        cache_sens: l(from.cache_sens, to.cache_sens),
        rob_sens: l(from.rob_sens, to.rob_sens),
        branch_mpki: l(from.branch_mpki, to.branch_mpki),
        mem_parallelism: l(from.mem_parallelism, to.mem_parallelism),
        activity: l(from.activity, to.activity),
        duration_epochs: to.duration_epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(name: &str, seed: u64) -> Processor {
        ProcessorBuilder::new()
            .app(name)
            .seed(seed)
            .sensor_noise(0.0, 0.0)
            .process_noise(0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_unknown_app() {
        assert!(matches!(
            ProcessorBuilder::new().app("crysis").build(),
            Err(SimError::UnknownApp { .. })
        ));
    }

    #[test]
    fn llc_penalty_raises_misses_and_default_is_transparent() {
        let run = |penalty: f64| {
            let mut p = quiet("mcf", 11); // memory-bound: misses dominate
            p.set_llc_penalty(penalty);
            let u = Vector::from_slice(&[1.3, 6.0, 48.0]);
            (0..50).map(|_| p.apply(&u)[0]).sum::<f64>()
        };
        let base = run(1.0);
        // Installing the neutral penalty is bit-identical to never touching
        // the plant (x * 1.0 == x).
        let untouched = {
            let mut p = quiet("mcf", 11);
            let u = Vector::from_slice(&[1.3, 6.0, 48.0]);
            (0..50).map(|_| p.apply(&u)[0]).sum::<f64>()
        };
        assert_eq!(base.to_bits(), untouched.to_bits());
        // Contention pressure lowers performance.
        assert!(run(1.3) < base);
    }

    #[test]
    #[should_panic(expected = "llc penalty")]
    fn llc_penalty_below_one_rejected() {
        quiet("mcf", 1).set_llc_penalty(0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = ProcessorBuilder::new()
                .app("astar")
                .seed(seed)
                .build()
                .unwrap();
            let u = Vector::from_slice(&[1.3, 6.0, 48.0]);
            (0..50).map(|_| p.apply(&u)[0]).sum::<f64>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn outputs_positive_and_bounded() {
        let mut p = ProcessorBuilder::new().app("milc").seed(9).build().unwrap();
        for i in 0..200 {
            let f = 0.5 + 0.1 * (i % 16) as f64;
            let y = p.apply(&Vector::from_slice(&[f, 8.0, 128.0]));
            assert!(y[0] > 0.0 && y[0] < 6.0, "IPS {y:?}");
            assert!(y[1] > 0.1 && y[1] < 4.0, "power {y:?}");
        }
    }

    #[test]
    fn frequency_raises_power_and_compute_ips() {
        let mut p = quiet("namd", 1);
        // Settle at low frequency.
        let mut lo = Vector::zeros(2);
        for _ in 0..50 {
            lo = p.apply(&Vector::from_slice(&[0.5, 8.0, 128.0]));
        }
        let mut hi = Vector::zeros(2);
        for _ in 0..50 {
            hi = p.apply(&Vector::from_slice(&[2.0, 8.0, 128.0]));
        }
        assert!(hi[0] > 2.0 * lo[0], "IPS should scale: {lo:?} → {hi:?}");
        assert!(hi[1] > 2.0 * lo[1], "power should scale: {lo:?} → {hi:?}");
    }

    #[test]
    fn responsive_app_reaches_targets_in_situ() {
        // End-to-end check of §VII-B1 feasibility: namd at high config
        // exceeds 2.5 BIPS with power under ~3 W.
        let mut p = quiet("namd", 2);
        let mut y = Vector::zeros(2);
        for _ in 0..100 {
            y = p.apply(&Vector::from_slice(&[2.0, 8.0, 128.0]));
        }
        assert!(y[0] > 2.5, "namd IPS {y:?}");
    }

    #[test]
    fn non_responsive_app_cannot_reach_targets_in_situ() {
        let mut p = quiet("mcf", 2);
        let mut best: f64 = 0.0;
        for _ in 0..300 {
            let y = p.apply(&Vector::from_slice(&[2.0, 8.0, 128.0]));
            best = best.max(y[0]);
        }
        assert!(best < 2.0, "mcf reached {best}");
    }

    #[test]
    fn dvfs_transition_stalls_one_epoch() {
        let mut p = quiet("gamess", 5);
        let u_lo = Vector::from_slice(&[1.0, 8.0, 128.0]);
        for _ in 0..50 {
            p.apply(&u_lo);
        }
        let settled = p.apply(&u_lo)[0];
        // Switch frequency: the transition epoch loses ~5µs of work relative
        // to the next settled epoch at the same new frequency.
        let u_hi = Vector::from_slice(&[1.1, 8.0, 128.0]);
        let transition = p.apply(&u_hi)[0];
        let mut after = 0.0;
        for _ in 0..30 {
            after = p.apply(&u_hi)[0];
        }
        assert!(
            transition < after,
            "transition {transition} vs settled {after}"
        );
        assert!(after > settled, "higher f should win eventually");
    }

    #[test]
    fn cache_growth_shows_warmup_transient() {
        let mut p = quiet("milc", 3);
        let small = Vector::from_slice(&[1.3, 2.0, 128.0]);
        for _ in 0..100 {
            p.apply(&small);
        }
        let big = Vector::from_slice(&[1.3, 8.0, 128.0]);
        let first = p.apply(&big)[0];
        let mut later = 0.0;
        for _ in 0..60 {
            later = p.apply(&big)[0];
        }
        assert!(later > first * 1.05, "warmup: first {first}, later {later}");
    }

    #[test]
    fn totals_accumulate_consistently() {
        let mut p = quiet("astar", 7);
        let u = Vector::from_slice(&[1.3, 6.0, 48.0]);
        for _ in 0..100 {
            p.apply(&u);
        }
        let t = p.totals();
        assert_eq!(t.epochs, 100);
        assert!((t.time_s - 100.0 * 50e-6).abs() < 1e-12);
        assert!(t.energy_j > 0.0);
        assert!(t.instructions_g > 0.0);
        // avg power sanity.
        assert!((0.3..3.0).contains(&t.avg_power()));
        let exd = t.energy_delay_product(2);
        assert!(exd.is_finite() && exd > 0.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut p = ProcessorBuilder::new().app("wrf").seed(11).build().unwrap();
        let u = Vector::from_slice(&[1.0, 4.0, 64.0]);
        let first: Vec<f64> = (0..20).map(|_| p.apply(&u)[0]).collect();
        p.reset();
        let second: Vec<f64> = (0..20).map(|_| p.apply(&u)[0]).collect();
        assert_eq!(first, second);
        assert_eq!(p.totals().epochs, 20);
    }

    #[test]
    fn phase_changes_are_flagged() {
        let mut p = quiet("gcc", 13); // short phases
        let u = Vector::from_slice(&[1.3, 6.0, 48.0]);
        let mut changes = 0;
        for _ in 0..4000 {
            p.apply(&u);
            if p.phase_changed() {
                changes += 1;
            }
        }
        assert!(changes >= 2, "saw {changes} phase changes");
    }

    #[test]
    fn plant_trait_metadata() {
        let p2 = ProcessorBuilder::new()
            .input_set(InputSet::FreqCache)
            .build()
            .unwrap();
        assert_eq!(p2.num_inputs(), 2);
        assert_eq!(p2.num_outputs(), 2);
        assert_eq!(p2.input_grids().len(), 2);
        assert_eq!(p2.input_grids()[0].len(), 16);
    }

    #[test]
    fn energy_delay_product_orders() {
        // E×D² penalizes slow runs more than E does.
        let fast = RunTotals {
            energy_j: 2.0,
            instructions_g: 1.0,
            time_s: 0.5,
            epochs: 1,
        };
        let slow = RunTotals {
            energy_j: 1.5,
            instructions_g: 1.0,
            time_s: 1.5,
            epochs: 1,
        };
        // Slow run has less energy, so it wins on E...
        assert!(slow.energy_delay_product(1) < fast.energy_delay_product(1));
        // ...but loses on E×D².
        assert!(slow.energy_delay_product(3) > fast.energy_delay_product(3));
    }
}
