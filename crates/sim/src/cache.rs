//! Cache hierarchy model: way-gating and warm-up dynamics.
//!
//! The paper resizes the L1 and L2 by power-gating ways together —
//! (L2, L1) associativity pairs (8,4), (6,3), (4,2), (2,1). Two effects
//! matter to the controller:
//!
//! 1. **Steady-state miss rates** grow as ways shrink. We model per-phase
//!    miss curves as a power law `mpki(w) = mpki_full · (w_full / w)^s`
//!    where `s` is the phase's cache sensitivity — streaming phases have
//!    `s ≈ 0.25` (caching barely helps), blocked kernels `s ≈ 2+`.
//! 2. **Transient warm-up** after enabling ways: newly powered ways are
//!    cold and refill over tens of microseconds. This is one of the main
//!    plant *dynamics* the identified state-space model must capture, and
//!    it is why cache actuation carries a high control-effort weight
//!    (§IV-B2).

use crate::workload::Phase;

/// Full (ungated) L2 associativity.
pub const L2_FULL_WAYS: usize = 8;

/// L2 hit latency in core cycles (Table III: 18 cycles).
pub const L2_LATENCY_CYCLES: f64 = 18.0;

/// Main-memory latency in nanoseconds. Table III gives 125 cycles at the
/// 1.3 GHz baseline clock; memory latency is wall-clock, so in cycles it
/// scales with frequency.
pub const MEM_LATENCY_NS: f64 = 125.0 / 1.3;

/// Fraction of an epoch's fill completed per epoch after a resize
/// (first-order warm-up with a ~6-epoch time constant).
const WARMUP_RATE: f64 = 0.16;

/// Extra misses while cold, as a multiple of the steady-state rate.
const COLD_MISS_FACTOR: f64 = 1.8;

/// Steady-state L2 misses per kilo-instruction for a phase at `ways`
/// active L2 ways.
///
/// # Panics
///
/// Panics if `ways` is zero.
pub fn l2_mpki_steady(phase: &Phase, ways: usize) -> f64 {
    assert!(ways > 0, "cache must keep at least one way");
    phase.l2_mpki * (L2_FULL_WAYS as f64 / ways as f64).powf(phase.cache_sens)
}

/// Steady-state L1-miss-L2-hit traffic per kilo-instruction at `l1_ways`
/// active L1 ways (full = 4). L1 miss curves are shallower than L2's.
///
/// # Panics
///
/// Panics if `l1_ways` is zero.
pub fn l1_mpki_steady(phase: &Phase, l1_ways: usize) -> f64 {
    assert!(l1_ways > 0, "L1 must keep at least one way");
    phase.l1_mpki * (4.0 / l1_ways as f64).powf(0.5 * phase.cache_sens)
}

/// Warm-up state of the gated caches.
///
/// `warmth = 1.0` means fully warm; after enabling ways it drops toward
/// the fraction of the cache that held data, then recovers first-order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheState {
    warmth: f64,
    ways: usize,
}

impl CacheState {
    /// A fully warm cache at the given L2 way count.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0);
        CacheState { warmth: 1.0, ways }
    }

    /// Current warmth in `[0, 1]`.
    pub fn warmth(&self) -> f64 {
        self.warmth
    }

    /// Current active L2 ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Applies a resize. Growing leaves the new ways cold (warmth falls to
    /// `old/new` of its prior value); shrinking keeps the surviving ways'
    /// contents but loses a little locality (small warmth penalty).
    pub fn resize(&mut self, new_ways: usize) {
        assert!(new_ways > 0);
        if new_ways > self.ways {
            self.warmth *= self.ways as f64 / new_ways as f64;
        } else if new_ways < self.ways {
            self.warmth = (self.warmth * 0.95).min(1.0);
        }
        self.ways = new_ways;
    }

    /// Advances one epoch of warm-up.
    pub fn tick(&mut self) {
        self.warmth += (1.0 - self.warmth) * WARMUP_RATE;
        self.warmth = self.warmth.min(1.0);
    }

    /// Effective L2 MPKI for `phase` right now, including the cold-miss
    /// transient.
    pub fn effective_l2_mpki(&self, phase: &Phase) -> f64 {
        let steady = l2_mpki_steady(phase, self.ways);
        steady * (1.0 + COLD_MISS_FACTOR * (1.0 - self.warmth))
    }
}

impl Default for CacheState {
    fn default() -> Self {
        CacheState::new(L2_FULL_WAYS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(sens: f64, mpki: f64) -> Phase {
        Phase {
            cache_sens: sens,
            l2_mpki: mpki,
            ..Phase::nominal()
        }
    }

    #[test]
    fn steady_mpki_grows_as_ways_shrink() {
        let p = phase(1.5, 2.0);
        let full = l2_mpki_steady(&p, 8);
        let half = l2_mpki_steady(&p, 4);
        let min = l2_mpki_steady(&p, 2);
        assert!(full < half && half < min);
        assert!((full - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_controls_growth() {
        let shallow = phase(0.25, 10.0);
        let steep = phase(2.5, 1.0);
        let shallow_ratio = l2_mpki_steady(&shallow, 2) / l2_mpki_steady(&shallow, 8);
        let steep_ratio = l2_mpki_steady(&steep, 2) / l2_mpki_steady(&steep, 8);
        assert!(
            shallow_ratio < 1.6,
            "streaming barely cares: {shallow_ratio}"
        );
        assert!(
            steep_ratio > 10.0,
            "blocked kernel collapses: {steep_ratio}"
        );
    }

    #[test]
    fn l1_curve_is_shallower() {
        let p = phase(2.0, 2.0);
        let l2_ratio = l2_mpki_steady(&p, 2) / l2_mpki_steady(&p, 8);
        let l1_ratio = l1_mpki_steady(&p, 1) / l1_mpki_steady(&p, 4);
        assert!(l1_ratio < l2_ratio);
    }

    #[test]
    fn growing_cools_the_cache() {
        let mut c = CacheState::new(4);
        assert_eq!(c.warmth(), 1.0);
        c.resize(8);
        assert!((c.warmth() - 0.5).abs() < 1e-12);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn shrinking_keeps_most_warmth() {
        let mut c = CacheState::new(8);
        c.resize(4);
        assert!(c.warmth() > 0.9);
    }

    #[test]
    fn warmup_recovers_first_order() {
        let mut c = CacheState::new(4);
        c.resize(8);
        let w0 = c.warmth();
        for _ in 0..10 {
            c.tick();
        }
        let w10 = c.warmth();
        assert!(w10 > w0);
        for _ in 0..100 {
            c.tick();
        }
        assert!(c.warmth() > 0.999);
    }

    #[test]
    fn cold_cache_misses_more() {
        let p = phase(1.0, 3.0);
        let mut c = CacheState::new(4);
        c.resize(8);
        let cold = c.effective_l2_mpki(&p);
        for _ in 0..200 {
            c.tick();
        }
        let warm = c.effective_l2_mpki(&p);
        assert!(cold > warm * 1.5, "cold {cold} vs warm {warm}");
        assert!((warm - l2_mpki_steady(&p, 8)).abs() < 1e-3);
    }

    #[test]
    fn noop_resize_keeps_warmth() {
        let mut c = CacheState::new(8);
        c.resize(8);
        assert_eq!(c.warmth(), 1.0);
    }

    #[test]
    fn memory_latency_constant_is_wall_clock() {
        // 125 cycles at 1.3 GHz ≈ 96 ns.
        assert!((MEM_LATENCY_NS - 96.15).abs() < 0.1);
    }
}
