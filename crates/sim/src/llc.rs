//! Shared last-level-cache contention between the cores of a chip.
//!
//! The per-core plant models a *private* way-gated L2: each core's miss
//! curve depends only on its own granted ways. Real chips share the LLC —
//! ways handed to one core are ways its neighbors cannot fill, so their
//! effective miss traffic rises (the THEAS observation). [`SharedLlc`]
//! closes that loop at the chip level: once per epoch it reads every
//! core's applied way allocation (in core order), compares the summed
//! demand against a fixed chip-wide way budget, and produces one
//! miss-pressure multiplier per core. The chip runtime installs each
//! multiplier into the core's plant, where it scales the miss-traffic
//! jitter fed to the CPI model — raising only the L1/L2 miss components,
//! never the base CPI.
//!
//! Determinism contract: `update` is pure in its inputs (no RNG, no
//! iteration-order freedom — the reduction runs in core order), so the
//! model is bit-identical at any worker or shard count as long as it is
//! evaluated at the chip's arbitrate beat. When the summed demand fits the
//! budget every penalty is exactly `1.0`, and a penalty of `1.0`
//! multiplies the jitter bit-transparently — an uncontended chip
//! reproduces the no-LLC-model run bit for bit.

use crate::cache::L2_FULL_WAYS;
use crate::error::SimError;

/// Configuration of the chip-wide shared-LLC contention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcConfig {
    /// Total LLC ways the chip can serve at once. Summed per-core demand
    /// beyond this budget creates contention.
    pub total_ways: usize,
    /// Strength of the coupling: the miss-pressure multiplier grows as
    /// `1 + sensitivity * overflow * neighbor_share`. `0.0` disables the
    /// coupling (penalties stay exactly `1.0`).
    pub sensitivity: f64,
}

impl LlcConfig {
    /// The default provisioning for an `n_cores` chip: three quarters of
    /// the full per-core demand (`6` of [`L2_FULL_WAYS`]` = 8` ways per
    /// core), so contention appears exactly when most cores chase the
    /// upper half of the way grid at once.
    #[must_use]
    pub fn for_cores(n_cores: usize) -> Self {
        LlcConfig {
            total_ways: (3 * L2_FULL_WAYS / 4) * n_cores,
            sensitivity: 1.0,
        }
    }

    /// Sets the chip-wide way budget (builder style).
    #[must_use]
    pub fn total_ways(mut self, ways: usize) -> Self {
        self.total_ways = ways;
        self
    }

    /// Sets the contention sensitivity (builder style).
    #[must_use]
    pub fn sensitivity(mut self, sensitivity: f64) -> Self {
        self.sensitivity = sensitivity;
        self
    }

    /// Checks the configuration for an `n_cores` chip.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadLlcConfig`] when the budget cannot grant
    /// every core at least one way, or the sensitivity is negative or
    /// non-finite.
    pub fn validate(&self, n_cores: usize) -> Result<(), SimError> {
        if self.total_ways < n_cores {
            return Err(SimError::BadLlcConfig {
                what: format!(
                    "total_ways = {} cannot give each of {n_cores} cores one way",
                    self.total_ways
                ),
            });
        }
        if !self.sensitivity.is_finite() || self.sensitivity < 0.0 {
            return Err(SimError::BadLlcConfig {
                what: format!("sensitivity = {} must be finite and >= 0", self.sensitivity),
            });
        }
        Ok(())
    }
}

/// The chip-level contention state: one miss-pressure multiplier per core,
/// refreshed once per epoch from the applied way allocations.
#[derive(Debug, Clone)]
pub struct SharedLlc {
    cfg: LlcConfig,
    penalties: Vec<f64>,
}

impl SharedLlc {
    /// Creates the model for `n_cores` cores, all penalties at `1.0`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadLlcConfig`] when `cfg` fails
    /// [`LlcConfig::validate`] for this core count.
    pub fn new(cfg: LlcConfig, n_cores: usize) -> Result<Self, SimError> {
        cfg.validate(n_cores)?;
        Ok(SharedLlc {
            cfg,
            penalties: vec![1.0; n_cores],
        })
    }

    /// The model's configuration.
    #[must_use]
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// Number of cores sharing the LLC.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.penalties.len()
    }

    /// Recomputes every core's penalty from this epoch's applied way
    /// allocations (indexed by core). Reductions run in core order.
    ///
    /// When the summed demand fits the budget, every penalty is exactly
    /// `1.0`. Above the budget, core `i`'s penalty is
    /// `1 + sensitivity * overflow * (others_i / total)` — it grows with
    /// the *neighbors'* share of the pressure, so ways granted to one core
    /// raise the others' miss traffic more than its own.
    ///
    /// # Panics
    ///
    /// Panics if `applied_ways` does not have one entry per core.
    pub fn update(&mut self, applied_ways: &[f64]) {
        assert_eq!(
            applied_ways.len(),
            self.penalties.len(),
            "way-vector length"
        );
        let budget = self.cfg.total_ways as f64;
        let total: f64 = applied_ways.iter().sum();
        if total <= budget || total <= 0.0 {
            self.penalties.fill(1.0);
            return;
        }
        let overflow = (total - budget) / budget;
        for (p, &ways) in self.penalties.iter_mut().zip(applied_ways) {
            let others = total - ways;
            *p = 1.0 + self.cfg.sensitivity * overflow * (others / total);
        }
    }

    /// The current miss-pressure multiplier for `core`.
    #[must_use]
    pub fn penalty(&self, core: usize) -> f64 {
        self.penalties[core]
    }

    /// All per-core multipliers, indexed by core.
    #[must_use]
    pub fn penalties(&self) -> &[f64] {
        &self.penalties
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_budget_is_exactly_one() {
        let mut llc = SharedLlc::new(LlcConfig::for_cores(4), 4).unwrap();
        llc.update(&[6.0, 6.0, 6.0, 6.0]); // 24 == budget
        assert!(llc
            .penalties()
            .iter()
            .all(|p| p.to_bits() == 1.0f64.to_bits()));
        llc.update(&[2.0, 2.0, 2.0, 2.0]);
        assert!(llc
            .penalties()
            .iter()
            .all(|p| p.to_bits() == 1.0f64.to_bits()));
    }

    #[test]
    fn over_budget_penalizes_everyone() {
        let mut llc = SharedLlc::new(LlcConfig::for_cores(4), 4).unwrap();
        llc.update(&[8.0; 4]); // 32 ways vs 24 budget
        for i in 0..4 {
            assert!(llc.penalty(i) > 1.0, "core {i}");
        }
        // Symmetric demand → symmetric penalty.
        assert_eq!(llc.penalty(0).to_bits(), llc.penalty(3).to_bits());
    }

    #[test]
    fn neighbors_grab_hurts_more_than_own() {
        // Core 0 holds 2 ways, cores 1-3 grab 8 each: core 0 suffers the
        // most (largest neighbor share), the grabbers the least.
        let mut llc = SharedLlc::new(LlcConfig::for_cores(4), 4).unwrap();
        llc.update(&[2.0, 8.0, 8.0, 8.0]);
        assert!(llc.penalty(0) > llc.penalty(1));
        assert!(llc.penalty(1) > 1.0);
    }

    #[test]
    fn update_is_deterministic() {
        let mut a = SharedLlc::new(LlcConfig::for_cores(3), 3).unwrap();
        let mut b = a.clone();
        let ways = [8.0, 6.0, 8.0];
        a.update(&ways);
        b.update(&ways);
        for i in 0..3 {
            assert_eq!(a.penalty(i).to_bits(), b.penalty(i).to_bits());
        }
    }

    #[test]
    fn zero_sensitivity_disables_coupling() {
        let cfg = LlcConfig::for_cores(2).sensitivity(0.0);
        let mut llc = SharedLlc::new(cfg, 2).unwrap();
        llc.update(&[8.0, 8.0]);
        assert_eq!(llc.penalty(0).to_bits(), 1.0f64.to_bits());
        assert_eq!(llc.penalty(1).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(LlcConfig::for_cores(4).total_ways(3).validate(4).is_err());
        assert!(LlcConfig::for_cores(4)
            .sensitivity(-1.0)
            .validate(4)
            .is_err());
        assert!(LlcConfig::for_cores(4)
            .sensitivity(f64::NAN)
            .validate(4)
            .is_err());
        assert!(LlcConfig::for_cores(4).validate(4).is_ok());
    }
}
