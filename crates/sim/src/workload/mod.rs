//! Synthetic workloads standing in for SPEC CPU 2006.
//!
//! The paper runs all SPEC CPU 2006 applications except `zeusmp` (28 apps),
//! split into a training set {sjeng, gobmk, leslie3d, namd} and a
//! production set, and further into *responsive* applications (that can
//! reach the 2.5 BIPS tracking target) and *non-responsive* memory-bound
//! ones (that cannot, no matter the configuration).
//!
//! We have no SPEC binaries or traces, so each application is modeled as a
//! cyclic sequence of [`Phase`]s whose parameters (intrinsic ILP, cache
//! miss intensity and sensitivity, ROB/MLP sensitivity, branchiness,
//! switching activity) drive the interval core model. Parameters are tuned
//! so the paper's responsive / non-responsive partition emerges from the
//! microarchitecture model rather than being hard-coded: a memory-bound
//! app cannot reach 2.5 BIPS because its memory stalls dominate at any
//! frequency or cache size.

mod catalog;

pub use catalog::{catalog, catalog_names, lookup};

/// One execution phase of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Intrinsic instruction-level parallelism: the IPC the phase would
    /// sustain with infinite resources (capped by issue width at runtime).
    pub ilp: f64,
    /// L2 misses per kilo-instruction with the full (8-way) L2.
    pub l2_mpki: f64,
    /// L1 misses that hit in L2, per kilo-instruction, with the full L1.
    pub l1_mpki: f64,
    /// Exponent controlling how fast misses grow as ways are gated:
    /// `mpki(w) = mpki_full * (w_full / w)^cache_sens`.
    pub cache_sens: f64,
    /// How strongly the phase's ILP and memory-level parallelism depend on
    /// the ROB size (0 = insensitive, 1 = strongly window-limited).
    pub rob_sens: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Memory-level parallelism the phase can expose with a full ROB
    /// (outstanding misses that overlap).
    pub mem_parallelism: f64,
    /// Dynamic switching-activity factor for the power model (≈0.5 quiet,
    /// ≈1.1 hot loops).
    pub activity: f64,
    /// Nominal phase length in 50 µs epochs before moving to the next
    /// phase.
    pub duration_epochs: usize,
}

impl Phase {
    /// A neutral mid-intensity phase, useful as a default in tests.
    pub fn nominal() -> Self {
        Phase {
            ilp: 1.8,
            l2_mpki: 1.0,
            l1_mpki: 12.0,
            cache_sens: 1.0,
            rob_sens: 0.4,
            branch_mpki: 4.0,
            mem_parallelism: 3.0,
            activity: 0.8,
            duration_epochs: 2000,
        }
    }

    /// Sanity-checks that every parameter is in its physical range.
    pub fn is_valid(&self) -> bool {
        self.ilp > 0.0
            && self.ilp <= 4.0
            && self.l2_mpki >= 0.0
            && self.l1_mpki >= 0.0
            && self.cache_sens >= 0.0
            && (0.0..=1.0).contains(&self.rob_sens)
            && self.branch_mpki >= 0.0
            && self.mem_parallelism >= 1.0
            && self.activity > 0.0
            && self.duration_epochs > 0
    }
}

/// Workload class, mirroring SPEC's integer/floating-point split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// SPECint-like.
    Integer,
    /// SPECfp-like.
    FloatingPoint,
}

/// A synthetic application: a named, cyclic phase sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    name: &'static str,
    class: AppClass,
    phases: Vec<Phase>,
}

impl AppProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase is out of range.
    pub fn new(name: &'static str, class: AppClass, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "application needs at least one phase");
        assert!(
            phases.iter().all(Phase::is_valid),
            "invalid phase parameters for {name}"
        );
        AppProfile {
            name,
            class,
            phases,
        }
    }

    /// Application name (SPEC CPU 2006 naming).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Integer or floating point.
    pub fn class(&self) -> AppClass {
        self.class
    }

    /// The phase sequence (cycled at runtime).
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Phase at cyclic index `i`.
    pub fn phase(&self, i: usize) -> &Phase {
        &self.phases[i % self.phases.len()]
    }
}

/// The training set used for system identification and heuristic tuning
/// (§VII-A): two integer and two floating-point applications.
pub const TRAINING_SET: [&str; 4] = ["sjeng", "gobmk", "leslie3d", "namd"];

/// The validation applications used for the uncertainty analysis
/// (§VI-A2): one compute-intensive and one memory-intensive.
pub const VALIDATION_SET: [&str; 2] = ["h264ref", "tonto"];

/// The applications the paper reports as unable to reach the 2.5 BIPS
/// target (§VIII-D).
pub const NON_RESPONSIVE: [&str; 14] = [
    "bzip2",
    "gcc",
    "hmmer",
    "h264ref",
    "libquantum",
    "mcf",
    "omnetpp",
    "perlbench",
    "xalancbmk",
    "bwaves",
    "dealII",
    "GemsFDTD",
    "lbm",
    "soplex",
];

/// Returns `true` if `name` belongs to the training set.
pub fn is_training(name: &str) -> bool {
    TRAINING_SET.contains(&name)
}

/// Returns `true` if `name` is in the paper's non-responsive list.
pub fn is_non_responsive(name: &str) -> bool {
    NON_RESPONSIVE.contains(&name)
}

/// Names of the production set (catalog minus training), in catalog order.
pub fn production_names() -> Vec<&'static str> {
    catalog_names()
        .into_iter()
        .filter(|n| !is_training(n))
        .collect()
}

/// Names of the responsive production applications.
pub fn responsive_production_names() -> Vec<&'static str> {
    production_names()
        .into_iter()
        .filter(|n| !is_non_responsive(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_28_apps() {
        assert_eq!(catalog().len(), 28);
    }

    #[test]
    fn zeusmp_is_excluded() {
        assert!(lookup("zeusmp").is_none());
    }

    #[test]
    fn training_set_resolves() {
        for name in TRAINING_SET {
            assert!(lookup(name).is_some(), "{name} missing from catalog");
        }
    }

    #[test]
    fn non_responsive_resolves() {
        for name in NON_RESPONSIVE {
            assert!(lookup(name).is_some(), "{name} missing from catalog");
        }
    }

    #[test]
    fn training_and_non_responsive_are_disjoint() {
        for name in TRAINING_SET {
            assert!(!is_non_responsive(name), "{name} in both sets");
        }
    }

    #[test]
    fn production_set_has_24_apps() {
        assert_eq!(production_names().len(), 24);
    }

    #[test]
    fn responsive_production_has_10_apps() {
        // 24 production − 14 non-responsive = 10.
        assert_eq!(responsive_production_names().len(), 10);
    }

    #[test]
    fn all_phases_valid() {
        for app in catalog() {
            assert!(!app.phases().is_empty());
            for p in app.phases() {
                assert!(p.is_valid(), "invalid phase in {}", app.name());
            }
        }
    }

    #[test]
    fn phase_indexing_is_cyclic() {
        let app = lookup("namd").unwrap();
        let n = app.phases().len();
        assert_eq!(app.phase(0), app.phase(n));
    }

    #[test]
    fn class_split_matches_spec() {
        let ints = catalog()
            .iter()
            .filter(|a| a.class() == AppClass::Integer)
            .count();
        let fps = catalog()
            .iter()
            .filter(|a| a.class() == AppClass::FloatingPoint)
            .count();
        assert_eq!(ints, 12); // SPECint 2006
        assert_eq!(fps, 16); // SPECfp 2006 minus zeusmp
    }

    #[test]
    fn nominal_phase_is_valid() {
        assert!(Phase::nominal().is_valid());
    }
}
