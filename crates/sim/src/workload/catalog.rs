//! The 28-application catalog.
//!
//! Parameter choices follow the broad characterization of SPEC CPU 2006 in
//! the literature: `mcf`/`lbm`/`libquantum` are memory-streaming with high
//! L2 MPKI, `gcc`/`perlbench`/`xalancbmk` are branchy pointer-chasers,
//! `namd`/`gamess`/`gromacs`/`povray` are compute-dense floating point,
//! `astar`/`milc`/`sphinx3`/`cactusADM`/`leslie3d` are cache-sensitive.
//! Absolute values are calibrated so that (a) the paper's non-responsive
//! set cannot reach 2.5 BIPS at any configuration and (b) the responsive
//! set can, at high-but-feasible settings.

use super::{AppClass, AppProfile, Phase};

/// Compute-dense phase: low miss rates, ILP-limited.
fn compute(ilp: f64, branch_mpki: f64, activity: f64, dur: usize) -> Phase {
    Phase {
        ilp,
        l2_mpki: 0.9,
        l1_mpki: 6.0,
        cache_sens: 1.2,
        rob_sens: 0.55,
        branch_mpki,
        mem_parallelism: 2.0,
        activity,
        duration_epochs: dur,
    }
}

/// Cache-sensitive phase: moderate misses that grow steeply when ways are
/// gated.
fn cache_sensitive(ilp: f64, l2_mpki: f64, sens: f64, dur: usize) -> Phase {
    Phase {
        ilp,
        l2_mpki,
        l1_mpki: 14.0,
        cache_sens: sens,
        rob_sens: 0.5,
        branch_mpki: 4.0,
        mem_parallelism: 3.0,
        activity: 0.85,
        duration_epochs: dur,
    }
}

/// Memory-streaming phase: high L2 MPKI that caching barely helps.
fn memory_bound(ilp: f64, l2_mpki: f64, mlp: f64, dur: usize) -> Phase {
    Phase {
        ilp,
        l2_mpki,
        l1_mpki: 20.0,
        cache_sens: 0.15,
        rob_sens: 0.7,
        branch_mpki: 3.0,
        mem_parallelism: mlp,
        activity: 0.6,
        duration_epochs: dur,
    }
}

/// Dependency-chain-limited phase: clean caches but intrinsically low ILP.
fn low_ilp(ilp: f64, branch_mpki: f64, dur: usize) -> Phase {
    Phase {
        ilp,
        l2_mpki: 1.5,
        l1_mpki: 9.0,
        cache_sens: 1.1,
        rob_sens: 0.3,
        branch_mpki,
        mem_parallelism: 1.5,
        activity: 0.7,
        duration_epochs: dur,
    }
}

/// Builds the full 28-application catalog.
pub fn catalog() -> Vec<AppProfile> {
    use AppClass::{FloatingPoint as Fp, Integer as Int};
    vec![
        // ---- SPECint 2006 (12) -------------------------------------------
        // astar: path-finding; cache-sensitive, moderately branchy. Responsive.
        AppProfile::new(
            "astar",
            Int,
            vec![
                cache_sensitive(2.2, 1.2, 2.0, 2200),
                compute(2.0, 6.0, 0.8, 1400),
            ],
        ),
        // bzip2: compression; moderate ILP, working set exceeds L2. Non-responsive.
        AppProfile::new(
            "bzip2",
            Int,
            vec![low_ilp(1.25, 6.5, 1800), memory_bound(1.5, 5.0, 2.5, 1200)],
        ),
        // gcc: compiler; branchy pointer chasing, bursty misses. Non-responsive.
        AppProfile::new(
            "gcc",
            Int,
            vec![
                low_ilp(1.2, 8.0, 900),
                memory_bound(1.4, 7.0, 2.0, 700),
                low_ilp(1.1, 9.0, 1100),
            ],
        ),
        // gobmk: Go engine; branch-dominated, modest cache needs. TRAINING.
        AppProfile::new(
            "gobmk",
            Int,
            vec![
                compute(1.9, 9.0, 0.8, 1600),
                cache_sensitive(1.8, 0.9, 1.2, 1000),
            ],
        ),
        // h264ref: video encode; decent ILP but low ceiling. Non-responsive (validation app).
        AppProfile::new(
            "h264ref",
            Int,
            vec![low_ilp(1.3, 3.5, 2000), memory_bound(1.5, 4.5, 3.0, 900)],
        ),
        // hmmer: profile HMM search; long dependence chains. Non-responsive.
        AppProfile::new("hmmer", Int, vec![low_ilp(1.28, 2.0, 3000)]),
        // libquantum: streaming over a huge vector. Non-responsive.
        AppProfile::new("libquantum", Int, vec![memory_bound(1.8, 22.0, 5.0, 2600)]),
        // mcf: pointer-chasing sparse network solver. Non-responsive.
        AppProfile::new(
            "mcf",
            Int,
            vec![
                memory_bound(1.2, 28.0, 2.0, 2100),
                memory_bound(1.3, 18.0, 2.5, 1500),
            ],
        ),
        // omnetpp: discrete event simulation; heap-heavy. Non-responsive.
        AppProfile::new("omnetpp", Int, vec![memory_bound(1.3, 12.0, 2.0, 2400)]),
        // perlbench: interpreter; branchy, icache/dcache pressure. Non-responsive.
        AppProfile::new(
            "perlbench",
            Int,
            vec![low_ilp(1.3, 7.5, 1300), cache_sensitive(1.4, 3.0, 1.4, 900)],
        ),
        // sjeng: chess search; branchy compute. TRAINING.
        AppProfile::new(
            "sjeng",
            Int,
            vec![compute(2.0, 8.0, 0.85, 1900), low_ilp(1.6, 7.0, 800)],
        ),
        // xalancbmk: XML transform; pointer-heavy. Non-responsive.
        AppProfile::new(
            "xalancbmk",
            Int,
            vec![memory_bound(1.4, 9.0, 2.2, 1400), low_ilp(1.25, 6.0, 1000)],
        ),
        // ---- SPECfp 2006 minus zeusmp (16) -------------------------------
        // bwaves: blast-wave CFD; streaming dense algebra. Non-responsive.
        AppProfile::new("bwaves", Fp, vec![memory_bound(1.7, 15.0, 4.5, 2800)]),
        // cactusADM: numerical relativity; cache-sensitive stencils. Responsive.
        AppProfile::new(
            "cactusADM",
            Fp,
            vec![
                cache_sensitive(2.3, 1.4, 2.2, 2500),
                compute(2.1, 1.5, 0.95, 1200),
            ],
        ),
        // calculix: FEM; compute-dense with solver bursts. Responsive.
        AppProfile::new(
            "calculix",
            Fp,
            vec![
                compute(2.5, 2.0, 1.0, 2000),
                cache_sensitive(2.0, 1.1, 1.5, 900),
            ],
        ),
        // dealII: adaptive FEM; allocator-bound ceilings. Non-responsive.
        // (Figure 9 calls out its sensitivity to L2 misses despite few accesses.)
        AppProfile::new(
            "dealII",
            Fp,
            vec![
                low_ilp(1.35, 3.0, 1500),
                cache_sensitive(1.5, 4.0, 2.4, 800),
            ],
        ),
        // gamess: quantum chemistry; very compute-dense. Responsive.
        AppProfile::new("gamess", Fp, vec![compute(2.7, 1.2, 1.05, 3200)]),
        // GemsFDTD: FDTD field solver; streaming stencils. Non-responsive.
        AppProfile::new("GemsFDTD", Fp, vec![memory_bound(1.6, 14.0, 4.0, 2600)]),
        // gromacs: molecular dynamics; compute-dense inner loops. Responsive.
        AppProfile::new(
            "gromacs",
            Fp,
            vec![compute(2.4, 1.8, 1.0, 2400), compute(2.1, 2.2, 0.9, 1000)],
        ),
        // lbm: lattice Boltzmann; the canonical streamer. Non-responsive.
        AppProfile::new("lbm", Fp, vec![memory_bound(1.9, 24.0, 3.0, 3000)]),
        // leslie3d: CFD; cache-sensitive stencils. TRAINING.
        AppProfile::new(
            "leslie3d",
            Fp,
            vec![
                cache_sensitive(2.2, 1.8, 1.9, 2100),
                memory_bound(1.8, 6.0, 3.5, 700),
            ],
        ),
        // milc: lattice QCD; cache-sensitive with streaming spells. Responsive.
        AppProfile::new(
            "milc",
            Fp,
            vec![
                cache_sensitive(2.3, 1.6, 2.1, 1800),
                compute(2.0, 1.4, 0.9, 800),
                cache_sensitive(2.1, 2.2, 1.8, 1200),
            ],
        ),
        // namd: molecular dynamics; famously compute-dense. TRAINING.
        AppProfile::new(
            "namd",
            Fp,
            vec![compute(2.6, 1.0, 1.05, 2600), compute(2.3, 1.4, 0.95, 1200)],
        ),
        // povray: ray tracing; compute/branchy mix, tiny data. Responsive.
        AppProfile::new(
            "povray",
            Fp,
            vec![compute(2.5, 5.0, 1.0, 2200), compute(2.2, 6.5, 0.9, 1000)],
        ),
        // soplex: LP simplex; sparse memory-bound pivoting. Non-responsive.
        AppProfile::new(
            "soplex",
            Fp,
            vec![memory_bound(1.4, 10.0, 2.5, 1700), low_ilp(1.3, 4.0, 900)],
        ),
        // sphinx3: speech recognition; cache-sensitive scoring. Responsive.
        AppProfile::new(
            "sphinx3",
            Fp,
            vec![
                cache_sensitive(2.2, 1.9, 2.0, 2000),
                compute(2.0, 3.0, 0.85, 900),
            ],
        ),
        // tonto: quantum chemistry; compute with cache spells. Responsive (validation app).
        AppProfile::new(
            "tonto",
            Fp,
            vec![
                compute(2.4, 2.5, 0.95, 1800),
                cache_sensitive(2.0, 1.3, 1.6, 1000),
            ],
        ),
        // wrf: weather model; mixed compute/stencil. Responsive.
        AppProfile::new(
            "wrf",
            Fp,
            vec![
                compute(2.3, 2.0, 0.95, 1500),
                cache_sensitive(2.1, 1.5, 1.7, 1300),
            ],
        ),
    ]
}

/// Names of every catalog application, in catalog order.
pub fn catalog_names() -> Vec<&'static str> {
    catalog().iter().map(AppProfile::name).collect()
}

/// Looks an application up by name.
pub fn lookup(name: &str) -> Option<AppProfile> {
    catalog().into_iter().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{is_non_responsive, is_training};

    #[test]
    fn names_are_unique() {
        let names = catalog_names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn lookup_finds_every_app() {
        for name in catalog_names() {
            assert!(lookup(name).is_some());
        }
        assert!(lookup("nonexistent").is_none());
    }

    #[test]
    fn training_apps_are_not_memory_streamers() {
        // Training apps must be responsive so the 2.5 BIPS / 2 W targets
        // derived from them are meaningful.
        for app in catalog() {
            if is_training(app.name()) {
                let worst_mpki = app
                    .phases()
                    .iter()
                    .map(|p| p.l2_mpki)
                    .fold(0.0_f64, f64::max);
                assert!(
                    worst_mpki < 8.0,
                    "{} too memory-bound to train on",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn non_responsive_apps_have_limiting_phases() {
        // Every non-responsive app must have either heavy memory traffic or
        // a low ILP ceiling in all phases (otherwise it could reach 2.5 BIPS).
        for app in catalog() {
            if is_non_responsive(app.name()) {
                for p in app.phases() {
                    let limited = p.l2_mpki >= 3.0 || p.ilp <= 1.6;
                    assert!(limited, "{} has an unconstrained phase", app.name());
                }
            }
        }
    }

    #[test]
    fn responsive_apps_have_a_fast_phase() {
        for app in catalog() {
            if !is_non_responsive(app.name()) {
                let best_ilp = app.phases().iter().map(|p| p.ilp).fold(0.0_f64, f64::max);
                assert!(
                    best_ilp >= 1.8,
                    "{} cannot reach the IPS target",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn durations_give_phase_changes_within_runs() {
        // Multi-phase apps should change phase within a 10k-epoch run.
        for app in catalog() {
            if app.phases().len() > 1 {
                let first = app.phases()[0].duration_epochs;
                assert!(first < 10_000, "{} first phase too long", app.name());
            }
        }
    }
}
