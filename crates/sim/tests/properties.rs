//! Property-based tests for the simulator's physical invariants.

use mimo_linalg::Vector;
use mimo_sim::cache::CacheState;
use mimo_sim::workload::{catalog, Phase};
use mimo_sim::{corem, power, InputSet, Plant, PlantConfig, ProcessorBuilder};
use proptest::prelude::*;

/// Strategy: a configuration on the actuator grids.
fn any_config() -> impl Strategy<Value = PlantConfig> {
    (0usize..16, 0usize..4, 1usize..=8).prop_map(|(f, c, r)| PlantConfig {
        freq_ghz: 0.5 + 0.1 * f as f64,
        l2_ways: [2, 4, 6, 8][c],
        rob_entries: 16 * r,
    })
}

/// Strategy: a physically valid phase.
fn any_phase() -> impl Strategy<Value = Phase> {
    (
        0.5..3.0f64,  // ilp
        0.0..30.0f64, // l2_mpki
        0.0..25.0f64, // l1_mpki
        0.0..2.5f64,  // cache_sens
        0.0..1.0f64,  // rob_sens
        0.0..12.0f64, // branch_mpki
        1.0..6.0f64,  // mem_parallelism
        0.3..1.2f64,  // activity
    )
        .prop_map(|(ilp, l2, l1, cs, rs, br, mlp, act)| Phase {
            ilp,
            l2_mpki: l2,
            l1_mpki: l1,
            cache_sens: cs,
            rob_sens: rs,
            branch_mpki: br,
            mem_parallelism: mlp,
            activity: act,
            duration_epochs: 1000,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ipc_bounded_by_issue_width(phase in any_phase(), cfg in any_config()) {
        let cache = CacheState::new(cfg.l2_ways);
        let c = corem::cpi(&phase, &cfg, &cache, 1.0);
        prop_assert!(c.ipc() > 0.0);
        prop_assert!(c.ipc() <= corem::ISSUE_WIDTH + 1e-12);
    }

    #[test]
    fn power_positive_and_bounded(cfg in any_config(), ipc in 0.0..3.0f64, act in 0.3..1.2f64) {
        let p = power::total_power(&cfg, ipc, act);
        prop_assert!(p > 0.0);
        prop_assert!(p < 5.0, "power {p} W out of physical range");
        // Leakage alone never exceeds total.
        prop_assert!(power::leakage_power(&cfg) <= p);
    }

    #[test]
    fn more_frequency_never_hurts_performance(phase in any_phase(), cfg in any_config()) {
        prop_assume!(cfg.freq_ghz < 1.95);
        let cache = CacheState::new(cfg.l2_ways);
        let faster = PlantConfig { freq_ghz: cfg.freq_ghz + 0.1, ..cfg };
        let b0 = corem::bips(&phase, &cfg, &cache, 1.0);
        let b1 = corem::bips(&phase, &faster, &cache, 1.0);
        prop_assert!(b1 >= b0 - 1e-9, "raising f lowered BIPS: {b0} → {b1}");
    }

    #[test]
    fn more_cache_never_hurts_steady_state_performance(phase in any_phase(), cfg in any_config()) {
        prop_assume!(cfg.l2_ways < 8);
        let bigger = PlantConfig { l2_ways: cfg.l2_ways + 2, ..cfg };
        let b0 = corem::bips(&phase, &cfg, &CacheState::new(cfg.l2_ways), 1.0);
        let b1 = corem::bips(&phase, &bigger, &CacheState::new(bigger.l2_ways), 1.0);
        prop_assert!(b1 >= b0 - 1e-9);
    }

    #[test]
    fn transition_costs_symmetric_and_triangle(a in any_config(), b in any_config()) {
        let ab = power::transition_cost(&a, &b);
        let ba = power::transition_cost(&b, &a);
        prop_assert!((ab.stall_us - ba.stall_us).abs() < 1e-9);
        prop_assert!(ab.stall_us >= 0.0 && ab.energy_uj >= 0.0);
        // No change → no cost.
        let aa = power::transition_cost(&a, &a);
        prop_assert_eq!(aa, power::TransitionCost::default());
    }

    #[test]
    fn cache_warmth_stays_in_unit_interval(resizes in proptest::collection::vec(0usize..4, 1..20)) {
        let mut c = CacheState::new(8);
        for r in resizes {
            c.resize([2, 4, 6, 8][r]);
            c.tick();
            prop_assert!((0.0..=1.0).contains(&c.warmth()), "warmth {}", c.warmth());
        }
    }

    #[test]
    fn plant_outputs_always_physical(seed in 0u64..50, app_idx in 0usize..28, steps in proptest::collection::vec((0usize..16, 0usize..4), 1..40)) {
        let apps = catalog();
        let name = apps[app_idx].name();
        let mut plant = ProcessorBuilder::new()
            .app(name)
            .seed(seed)
            .input_set(InputSet::FreqCache)
            .build()
            .unwrap();
        for (f, c) in steps {
            let u = Vector::from_slice(&[0.5 + 0.1 * f as f64, [2.0, 4.0, 6.0, 8.0][c]]);
            let y = plant.apply(&u);
            prop_assert!(y.all_finite());
            prop_assert!(y[0] >= 0.0 && y[0] < 8.0, "IPS {}", y[0]);
            prop_assert!(y[1] > 0.0 && y[1] < 5.0, "power {}", y[1]);
        }
        let t = plant.totals();
        prop_assert!(t.energy_j > 0.0 && t.instructions_g > 0.0);
    }

    #[test]
    fn run_totals_are_additive(seed in 0u64..20) {
        let mut p1 = ProcessorBuilder::new().app("astar").seed(seed).build().unwrap();
        let u = Vector::from_slice(&[1.3, 6.0, 48.0]);
        for _ in 0..50 { p1.apply(&u); }
        let half = p1.totals();
        for _ in 0..50 { p1.apply(&u); }
        let full = p1.totals();
        prop_assert!(full.energy_j > half.energy_j);
        prop_assert!(full.instructions_g > half.instructions_g);
        prop_assert_eq!(full.epochs, 100);
    }
}
