//! Criterion benchmarks: runtime cost of the controller pieces and the
//! per-figure experiment kernels.
//!
//! The paper's overhead claim (§VI-C): the controller "performs four
//! floating-point vector-matrix multiplies" per 50 µs epoch and "stores
//! less than 100 floating-point numbers" — `lqg_step` measures our
//! equivalent; the other benches cover the design-time costs (DARE,
//! identification) and the simulator substrate, plus one scaled-down
//! kernel per figure experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mimo_core::dare::solve_dare;
use mimo_core::design::DesignFlow;
use mimo_core::governor::{fast_governor, Governor, MimoGovernor};
use mimo_core::optimizer::{Metric, Optimizer, MAX_TRIES};
use mimo_exp::setup;
use mimo_linalg::{eigen, Matrix, Vector};
use mimo_sim::{InputSet, Plant, ProcessorBuilder};
use mimo_sysid::arx::{ArxModel, ArxOrders};

fn bench_linalg(c: &mut Criterion) {
    let a = Matrix::from_fn(8, 8, |i, j| {
        if i == j {
            2.0
        } else {
            0.1 * ((i + j) % 5) as f64
        }
    });
    c.bench_function("linalg/lu_solve_8x8", |b| {
        let rhs = Matrix::identity(8);
        b.iter(|| black_box(&a).solve(black_box(&rhs)).unwrap())
    });
    c.bench_function("linalg/eigenvalues_8x8", |b| {
        b.iter(|| eigen::eigenvalues(black_box(&a)).unwrap())
    });
}

fn bench_dare(c: &mut Criterion) {
    // The augmented design system of the 2-input controller is 8x8.
    let a = Matrix::from_fn(8, 8, |i, j| {
        if i == j {
            0.9
        } else if j == i + 1 {
            0.2
        } else {
            0.0
        }
    });
    let b_m = Matrix::from_fn(8, 2, |i, j| if i % 2 == j { 0.5 } else { 0.1 });
    let q = Matrix::identity(8);
    let r = Matrix::diag(&[1.0, 2.0]);
    c.bench_function("control/dare_8x8", |b| {
        b.iter(|| solve_dare(black_box(&a), black_box(&b_m), &q, &r).unwrap())
    });
}

fn bench_lqg_step(c: &mut Criterion) {
    // §VI-C overhead claim: one controller invocation per 50 µs epoch.
    let design = setup::design_mimo(InputSet::FreqCache, 1).expect("design");
    let mut ctrl = design.controller;
    ctrl.set_reference(&Vector::from_slice(&[2.8, 1.9]));
    let y = Vector::from_slice(&[2.3, 1.7]);
    c.bench_function("control/lqg_step", |b| b.iter(|| ctrl.step(black_box(&y))));
    // The allocation-free path the epoch engine actually drives: same
    // arithmetic, every temporary in the scratch workspace.
    let mut out = Vector::zeros(2);
    c.bench_function("control/lqg_step_into", |b| {
        b.iter(|| {
            ctrl.step_into(black_box(&y), &mut out);
            black_box(out[0])
        })
    });
    // The stack-allocated controller (the path the fleet actually steps
    // after `fast_governor`): bit-identical arithmetic, monomorphized over
    // the 2-input architecture's fixed shape.
    let mut fixed = setup::design_mimo(InputSet::FreqCache, 1)
        .expect("design")
        .controller
        .into_static::<2, 2, 4, 8>()
        .expect("two-input architecture is 2-in/2-out/4-state");
    fixed.set_reference(&Vector::from_slice(&[2.8, 1.9]));
    c.bench_function("control/lqg_step_into_static", |b| {
        b.iter(|| {
            fixed.step_into(black_box(&y), &mut out);
            black_box(out[0])
        })
    });
    // Retargeting with an unchanged reference (the fleet arbiter's common
    // case) must cost a compare, not a steady-state resolve.
    let targets = Vector::from_slice(&[2.8, 1.9]);
    c.bench_function("control/set_reference_unchanged", |b| {
        b.iter(|| ctrl.set_reference(black_box(&targets)))
    });
}

/// The shared epoch engine against the same governor/plant pair the
/// hand-rolled `fig/tracking_200_epochs` kernel drives: the difference is
/// the `decide_into`/`apply_into` hot path vs the allocating `decide`/
/// `apply` calls.
fn bench_engine(c: &mut Criterion) {
    use mimo_core::engine::EpochLoop;
    let design = setup::design_mimo(InputSet::FreqCache, 5).expect("design");
    c.bench_function("engine/tracking_200_epochs", |b| {
        b.iter(|| {
            let gov = MimoGovernor::new(design.controller.clone());
            let plant = setup::plant("astar", InputSet::FreqCache, 6);
            let mut lp = EpochLoop::new(gov, plant);
            lp.set_targets(&Vector::from_slice(&[2.8, 1.9]));
            lp.seed_outputs(&Vector::from_slice(&[1.0, 1.0]));
            for _ in 0..200 {
                lp.step();
            }
            black_box(lp.outputs()[0])
        })
    });
}

fn bench_sim_epoch(c: &mut Criterion) {
    let mut cpu = ProcessorBuilder::new()
        .app("astar")
        .seed(3)
        .build()
        .unwrap();
    let u = Vector::from_slice(&[1.3, 6.0, 48.0]);
    c.bench_function("sim/processor_epoch", |b| {
        b.iter(|| cpu.apply(black_box(&u)))
    });
}

fn bench_sysid_fit(c: &mut Criterion) {
    // 2-in 2-out ARX fit over 2000 samples (one identification run).
    let mut u = Vec::new();
    let mut y = Vec::new();
    let mut state = [0.0_f64; 2];
    for t in 0..2000usize {
        let ut = Vector::from_slice(&[
            ((t * 31) % 11) as f64 / 5.0 - 1.0,
            ((t * 17) % 7) as f64 / 3.0 - 1.0,
        ]);
        let yt = Vector::from_slice(&[
            0.6 * state[0] + 0.4 * ut[0] + 0.1 * ut[1],
            0.5 * state[1] + 0.2 * ut[0] + 0.5 * ut[1],
        ]);
        state = [yt[0], yt[1]];
        u.push(ut);
        y.push(yt);
    }
    let orders = ArxOrders {
        na: 1,
        nb: 1,
        direct_feedthrough: false,
    };
    c.bench_function("sysid/arx_fit_2000", |b| {
        b.iter(|| ArxModel::fit(black_box(&u), black_box(&y), orders).unwrap())
    });
}

/// One scaled-down kernel per paper experiment (the figure binaries run
/// the full versions; these track the cost of each experiment's inner
/// loop).
fn bench_figures(c: &mut Criterion) {
    // Figure 6/8/11/12 kernel: a tracking run.
    let design = setup::design_mimo(InputSet::FreqCache, 5).expect("design");
    c.bench_function("fig/tracking_200_epochs", |b| {
        b.iter(|| {
            let mut gov = MimoGovernor::new(design.controller.clone());
            gov.set_targets(&Vector::from_slice(&[2.8, 1.9]));
            let mut plant = setup::plant("astar", InputSet::FreqCache, 6);
            let mut y = Vector::from_slice(&[1.0, 1.0]);
            for _ in 0..200 {
                let u = gov.decide(&y, plant.phase_changed());
                y = plant.apply(&u);
            }
            black_box(y)
        })
    });
    // Figure 7 kernel: identification + realization at dimension 4.
    c.bench_function("fig/identify_dim4", |b| {
        b.iter(|| {
            let mut plant = ProcessorBuilder::new()
                .app("namd")
                .seed(7)
                .input_set(InputSet::FreqCache)
                .build()
                .unwrap();
            let mut flow = DesignFlow::two_input();
            flow.segment_epochs = 250;
            black_box(flow.run(&mut plant).unwrap().model.state_dim())
        })
    });
    // Figures 9/10 kernel: one optimizer search step cycle.
    c.bench_function("fig/optimizer_search", |b| {
        b.iter(|| {
            let mut opt = Optimizer::new(Metric::EnergyDelay, 2.0, 1.0, MAX_TRIES);
            let mut ips = 2.0;
            let mut p = 1.0;
            while let Some(t) = opt.observe(ips, p) {
                ips = t[0].min(3.0);
                p = t[1].clamp(0.3, 2.5);
            }
            black_box(opt.targets())
        })
    });
}

/// Fleet-runtime cost: one chip-budgeted multi-core epoch sweep, single-
/// and multi-worker, plus the arbiter alone.
fn bench_fleet(c: &mut Criterion) {
    let design = setup::design_mimo(InputSet::FreqCache, 9).expect("design");
    for workers in [1usize, 2] {
        // Default path: `fast_governor` picks static storage for this shape.
        c.bench_function(&format!("fleet/16_cores_50_epochs_w{workers}"), |b| {
            b.iter(|| {
                let cfg = mimo_fleet::FleetConfig::new(16)
                    .workers(workers)
                    .epochs(50)
                    .seed(11);
                let runner =
                    mimo_fleet::FleetRunner::with_shared_controller(cfg, &design.controller)
                        .unwrap();
                black_box(runner.run().unwrap().digest())
            })
        });
    }
    // The dynamic path pinned, for measuring the static-storage gap (the
    // science is bit-identical, only the step cost differs).
    c.bench_function("fleet/16_cores_50_epochs_w1_dynamic", |b| {
        b.iter(|| {
            let cfg = mimo_fleet::FleetConfig::new(16)
                .workers(1)
                .epochs(50)
                .seed(11);
            let runner =
                mimo_fleet::FleetRunner::with_shared_controller_dynamic(cfg, &design.controller)
                    .unwrap();
            black_box(runner.run().unwrap().digest())
        })
    });
    c.bench_function("fleet/arbitrate_64_cores", |b| {
        let mut arb = mimo_fleet::BudgetArbiter::new(
            76.8,
            mimo_fleet::ArbitrationPolicy::Proportional,
            [3.0, 1.9],
            vec![1.0; 64],
        );
        let obs: Vec<mimo_fleet::CoreObs> = (0..64)
            .map(|i| mimo_fleet::CoreObs {
                ips: 2.0 + 0.01 * i as f64,
                power: 1.0 + 0.01 * i as f64,
            })
            .collect();
        b.iter(|| black_box(arb.arbitrate(black_box(&obs))))
    });
}

/// Cluster-runtime cost: a 4-chip × 4-core hierarchy stepped through two
/// exchange windows, barrier-free within each window, at one and several
/// shards — plus a lone chip's serial epoch beat with LLC coupling on.
fn bench_cluster(c: &mut Criterion) {
    let design = setup::design_mimo(InputSet::FreqCache, 9).expect("design");
    for shards in [1usize, 4] {
        c.bench_function(&format!("cluster/4x4_50_epochs_s{shards}"), |b| {
            b.iter(|| {
                let cfg = mimo_fleet::ClusterConfig::new(4, 4)
                    .epochs(50)
                    .exchange_period(25)
                    .shards(shards)
                    .llc_contention(mimo_sim::LlcConfig::for_cores(4).total_ways(16))
                    .seed(11);
                let runner =
                    mimo_fleet::ClusterRunner::with_shared_controller(cfg, &design.controller)
                        .unwrap();
                black_box(runner.run().unwrap().digest())
            })
        });
    }
    c.bench_function("cluster/chip_step_4_cores_llc", |b| {
        b.iter(|| {
            let cfg = mimo_fleet::FleetConfig::new(4)
                .epochs(50)
                .seed(11)
                .llc_contention(mimo_sim::LlcConfig::for_cores(4).total_ways(16));
            let mut factory =
                |_: usize, _: &mimo_fleet::CoreSpec| fast_governor(design.controller.clone());
            let mut chip = mimo_fleet::Chip::build(0, cfg, &mut factory).unwrap();
            for _ in 0..50 {
                chip.step_epoch();
            }
            black_box(chip.into_results().0.digest())
        })
    });
}

criterion_group!(
    benches,
    bench_linalg,
    bench_dare,
    bench_lqg_step,
    bench_engine,
    bench_sim_epoch,
    bench_sysid_fit,
    bench_figures,
    bench_fleet,
    bench_cluster
);
criterion_main!(benches);
