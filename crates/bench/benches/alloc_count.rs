//! Per-epoch heap-allocation comparison: the allocating controller step
//! vs the scratch-workspace path the epoch engine drives.
//!
//! Not a timing benchmark — a counting `#[global_allocator]` reports
//! exactly how many allocations each hot-path variant performs per epoch,
//! so the zero-allocation claim is a printed, checkable number next to
//! the Criterion timings. Runs under `cargo bench` (any extra harness
//! flags such as `--test` are ignored).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mimo_core::engine::EpochLoop;
use mimo_core::governor::MimoGovernor;
use mimo_core::telemetry::{TelemetryConfig, TelemetrySink};
use mimo_exp::setup;
use mimo_linalg::Vector;
use mimo_sim::fault::{FaultInjector, FaultPlan};
use mimo_sim::InputSet;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count<F: FnMut()>(epochs: u64, mut f: F) -> f64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..epochs {
        f();
    }
    (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / epochs as f64
}

fn main() {
    const EPOCHS: u64 = 1000;
    let design = setup::design_mimo(InputSet::FreqCache, 1).expect("design");

    let mut ctrl = design.controller.clone();
    ctrl.set_reference(&Vector::from_slice(&[2.8, 1.9]));
    let y = Vector::from_slice(&[2.3, 1.7]);
    let mut out = Vector::zeros(2);
    ctrl.step_into(&y, &mut out); // warm
    let step_allocs = count(EPOCHS, || {
        let _ = ctrl.step(&y);
    });
    let step_into_allocs = count(EPOCHS, || ctrl.step_into(&y, &mut out));

    // The stack-allocated controller the fleet steps after `fast_governor`.
    let mut fixed = design
        .controller
        .clone()
        .into_static::<2, 2, 4, 8>()
        .expect("two-input architecture is 2-in/2-out/4-state");
    fixed.set_reference(&Vector::from_slice(&[2.8, 1.9]));
    fixed.step_into(&y, &mut out); // warm
    let static_step_allocs = count(EPOCHS, || fixed.step_into(&y, &mut out));

    let gov = MimoGovernor::new(design.controller.clone());
    let plant = setup::plant("astar", InputSet::FreqCache, 6);
    let mut lp = EpochLoop::new(gov, plant);
    lp.set_targets(&Vector::from_slice(&[2.8, 1.9]));
    lp.prime();
    for _ in 0..300 {
        lp.step(); // warm: grid statics, phase state, cache resizes
    }
    let engine_allocs = count(EPOCHS, || {
        lp.step();
    });

    // Same engine loop with the plant wrapped in an aggressive fault
    // injector: epochs fault, degrade, and quarantine, and the error path
    // must stay exactly as allocation-free as the healthy one.
    let gov = MimoGovernor::new(design.controller.clone());
    let plant = setup::plant("milc", InputSet::FreqCache, 6);
    let injector = FaultInjector::new(plant, FaultPlan::transient(0.3, 3, 0xFA11));
    let mut lp = EpochLoop::new(gov, injector);
    lp.set_targets(&Vector::from_slice(&[2.8, 1.9]));
    lp.prime();
    for _ in 0..300 {
        lp.step(); // warm: also fills the injector's active-fault list
    }
    let faulting_allocs = count(EPOCHS, || {
        lp.step();
    });
    let faulted = lp.fault_epochs();

    // The traced variant: a full ring-buffer telemetry sink observes every
    // epoch. After the warm-up fills the ring, steady-state epochs only
    // overwrite slots and bump fixed-size counters — still zero allocs.
    let gov = MimoGovernor::new(design.controller.clone());
    let plant = setup::plant("astar", InputSet::FreqCache, 6);
    let sink = TelemetrySink::new(&TelemetryConfig::trace(128));
    let mut lp = EpochLoop::new(gov, plant).with_observer(sink);
    lp.set_targets(&Vector::from_slice(&[2.8, 1.9]));
    lp.prime();
    for _ in 0..300 {
        lp.step(); // warm: also fills the trace ring to capacity
    }
    let observed_allocs = count(EPOCHS, || {
        lp.step();
    });
    let traced = lp.observer().trace.len();

    println!("allocations per epoch over {EPOCHS} epochs:");
    println!("  lqg step (allocating API)   {step_allocs:.3}");
    println!("  lqg step_into (scratch)     {step_into_allocs:.3}");
    println!("  lqg step_into (static)      {static_step_allocs:.3}");
    println!("  engine epoch (gov + plant)  {engine_allocs:.3}");
    println!("  faulting engine epoch       {faulting_allocs:.3}  ({faulted} epochs faulted)");
    println!("  observed engine epoch       {observed_allocs:.3}  (ring holds {traced} records)");
    assert_eq!(
        step_into_allocs, 0.0,
        "scratch step must be allocation-free"
    );
    assert_eq!(
        static_step_allocs, 0.0,
        "static step must be allocation-free"
    );
    assert_eq!(
        engine_allocs, 0.0,
        "steady-state engine epoch must be allocation-free"
    );
    assert_eq!(
        faulting_allocs, 0.0,
        "faulting engine epoch must be allocation-free"
    );
    assert!(faulted > 100, "fault process should have fired: {faulted}");
    assert_eq!(
        observed_allocs, 0.0,
        "observed (telemetry-sink) engine epoch must be allocation-free"
    );
    assert_eq!(traced, 128, "trace ring must have filled to capacity");
}
