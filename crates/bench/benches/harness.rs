//! Criterion benchmarks for the experiment-harness machinery itself: the
//! memoized design cache (cold synthesis vs warm `Arc` hit) and the
//! index-ordered `par_map` grid scheduler (serial vs multi-worker on a
//! simulator-shaped cell).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mimo_exp::cache::DesignCache;
use mimo_exp::par::par_map;
use mimo_exp::setup;
use mimo_sim::{InputSet, Plant};

fn bench_design_cache(c: &mut Criterion) {
    // Cold: the full Figure 3 flow (excitation + ARX + DARE + RSA).
    c.bench_function("harness/design_cold", |b| {
        b.iter(|| setup::design_mimo(InputSet::FreqCache, black_box(2016)).unwrap())
    });
    // Warm: one map probe returning the shared Arc.
    let cache = DesignCache::new();
    cache.design_mimo(InputSet::FreqCache, 2016).unwrap();
    c.bench_function("harness/design_cache_warm_hit", |b| {
        b.iter(|| {
            cache
                .design_mimo(InputSet::FreqCache, black_box(2016))
                .unwrap()
        })
    });
}

fn bench_par_map(c: &mut Criterion) {
    // A simulator-shaped cell: step a plant a few hundred epochs.
    let cell = |seed: u64| {
        let mut plant = setup::plant("astar", InputSet::FreqCache, seed);
        let mut acc = 0.0;
        for _ in 0..200 {
            let out = plant.apply(&mimo_linalg::Vector::from_slice(&[1.0, 4.0]));
            acc += out[0];
        }
        acc
    };
    let seeds: Vec<u64> = (0..8).collect();
    c.bench_function("harness/par_map_8cells_serial", |b| {
        b.iter(|| par_map(1, seeds.clone(), |_, s| cell(black_box(s))))
    });
    c.bench_function("harness/par_map_8cells_4jobs", |b| {
        b.iter(|| par_map(4, seeds.clone(), |_, s| cell(black_box(s))))
    });
}

criterion_group!(benches, bench_design_cache, bench_par_map);
criterion_main!(benches);
