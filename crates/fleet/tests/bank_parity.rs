//! Property-based bit-parity of banked vs per-cell governor stepping.
//!
//! For every controller shape the fleet deploys on the static fast path —
//! SISO `(1,1,2)`, the 2-state test plant `(2,2,2)`, the two-input
//! frequency/cache architecture `(2,2,4)`, and the three-knob
//! architecture `(3,2,5)` — a [`GovernorBank`] stepping N enrolled slots
//! must reproduce N standalone [`fast_governor`] instances **to the bit**
//! at every epoch, under randomized slot counts, measurement sequences,
//! mid-run retargets, non-finite measurement failures, and bank
//! evictions. The per-slot comparison includes the error path: a screened
//! slot must report the exact `ControlError` the standalone governor
//! reports, and its state must stay untouched (proved by the following
//! epochs still matching).

use proptest::prelude::*;

use mimo_core::engine::EpochCause;
use mimo_core::governor::{fast_governor, Governor};
use mimo_core::lqg::{LqgController, LqgDesign};
use mimo_core::StateSpace;
use mimo_fleet::GovernorBank;
use mimo_linalg::{Matrix, Vector};
use mimo_sysid::scale::ChannelScaler;

/// A fine uniform actuation grid on `[-1, 1]`.
fn grid() -> Vec<f64> {
    (0..201).map(|i| -1.0 + 0.01 * i as f64).collect()
}

fn scaler(channels: usize, lo: f64, hi: f64) -> ChannelScaler {
    ChannelScaler::from_ranges(&vec![(lo, hi); channels])
}

/// Hand-built stable design of an arbitrary shape: `nu` inputs, `ny`
/// outputs, `nx` model states. The dynamics are mildly coupled and
/// well inside the unit circle so the DARE solves converge.
fn controller(nu: usize, ny: usize, nx: usize) -> LqgController {
    let a = Matrix::from_fn(nx, nx, |r, c| {
        if r == c {
            0.78 - 0.07 * r as f64
        } else if c == r + 1 {
            0.08
        } else {
            0.0
        }
    });
    let b = Matrix::from_fn(nx, nu, |r, c| 0.3 + 0.1 * ((r + 2 * c) % 3) as f64);
    let c_mat = Matrix::from_fn(ny, nx, |r, c| if c == r { 1.0 } else { 0.04 });
    let d = Matrix::zeros(ny, nu);
    let model = StateSpace::new(a, b, c_mat, d).expect("consistent dims");
    LqgDesign {
        process_noise: Matrix::identity(nx).scale(1e-4),
        measurement_noise: Matrix::identity(ny).scale(1e-4),
        output_weights: vec![1.0; ny],
        input_weights: vec![0.1; nu],
        integral_weight: 0.05,
        input_scaler: scaler(nu, -1.0, 1.0),
        output_scaler: scaler(ny, -5.0, 5.0),
        input_grids: vec![grid(); nu],
        model,
    }
    .build()
    .expect("stable hand-built design")
}

/// Deterministic, lightly chaotic measurement in physical output units.
fn measurement(ny: usize, pos: usize, epoch: usize, wobble: f64) -> Vector {
    Vector::from_fn(ny, |c| {
        let x = epoch as f64 * 0.171 + pos as f64 * 1.3 + c as f64 * 0.7 + wobble;
        0.4 * x.sin() + 0.2 * (2.9 * x).cos()
    })
}

/// Randomized scenario knobs shared by all four shape properties.
#[derive(Debug, Clone)]
struct Scenario {
    n_slots: usize,
    epochs: usize,
    wobble: f64,
    /// Epoch at which every live slot is retargeted.
    retarget_epoch: Option<usize>,
    /// `(pos, epoch)` of a NaN measurement fed to one slot.
    nan_fail: Option<(usize, usize)>,
    /// `(pos, epoch)` at which one slot is evicted from the bank.
    evict: Option<(usize, usize)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        1..6usize,
        8..40usize,
        -0.5..0.5f64,
        (0..2usize, 0..40usize),
        (0..3usize, 0..6usize, 0..40usize),
        (0..3usize, 0..6usize, 0..40usize),
    )
        .prop_map(
            |(n_slots, epochs, wobble, (rt_on, rt_e), (nf_on, nf_p, nf_e), (ev_on, ev_p, ev_e))| {
                Scenario {
                    n_slots,
                    epochs,
                    wobble,
                    retarget_epoch: (rt_on == 1).then_some(rt_e % epochs),
                    nan_fail: (nf_on > 0).then_some((nf_p % n_slots, nf_e % epochs)),
                    evict: (ev_on > 0).then_some((ev_p % n_slots, ev_e % epochs)),
                }
            },
        )
}

/// Drives a bank and a twin row of standalone fast governors through the
/// scenario, asserting bit-identical decisions (or identical errors) at
/// every live slot of every epoch.
fn assert_bank_matches_governors<
    const NU: usize,
    const NY: usize,
    const NX: usize,
    const NZ: usize,
>(
    proto: &LqgController,
    sc: &Scenario,
) {
    let static_proto = proto
        .clone()
        .into_static::<NU, NY, NX, NZ>()
        .expect("shape matches const dims");
    let mut bank: GovernorBank<NU, NY, NX, NZ> = GovernorBank::new(&static_proto);
    let base = Vector::from_fn(NY, |c| 0.6 - 0.2 * c as f64);
    let alt = Vector::from_fn(NY, |c| -0.3 + 0.15 * c as f64);

    // `slots[pos]` mirrors the fleet runner's band-local bookkeeping.
    let mut slots: Vec<Option<usize>> = Vec::with_capacity(sc.n_slots);
    let mut solos: Vec<Box<dyn Governor + Send>> = Vec::with_capacity(sc.n_slots);
    for pos in 0..sc.n_slots {
        let slot = bank.enroll(pos);
        bank.set_target(slot, &base);
        slots.push(Some(slot));
        let mut solo = fast_governor(proto.clone());
        solo.set_targets(&base);
        solos.push(solo);
    }

    let mut u = Vector::zeros(NU);
    for epoch in 0..sc.epochs {
        for (pos, &entry) in slots.iter().enumerate() {
            let Some(slot) = entry else { continue };
            let mut y = measurement(NY, pos, epoch, sc.wobble);
            if sc.nan_fail == Some((pos, epoch)) {
                y[0] = f64::NAN;
            }
            bank.load_measurement(slot, y.as_slice());
        }
        bank.step_all();
        for pos in 0..sc.n_slots {
            let Some(slot) = slots[pos] else { continue };
            let mut y = measurement(NY, pos, epoch, sc.wobble);
            if sc.nan_fail == Some((pos, epoch)) {
                y[0] = f64::NAN;
            }
            let solo = solos[pos].decide_into(&y, false, &mut u);
            match (bank.decision(slot), solo) {
                (Ok(banked), Ok(())) => {
                    for k in 0..NU {
                        assert_eq!(
                            banked[k].to_bits(),
                            u[k].to_bits(),
                            "epoch {epoch} pos {pos} channel {k}: banked {} vs solo {}",
                            banked[k],
                            u[k]
                        );
                    }
                }
                (Err(EpochCause::Governor(be)), Err(se)) => {
                    assert_eq!(be, se, "epoch {epoch} pos {pos}: error kinds diverged");
                }
                (b, s) => panic!("epoch {epoch} pos {pos}: banked {b:?} vs solo {s:?}"),
            }
        }
        if sc.retarget_epoch == Some(epoch) {
            for pos in 0..sc.n_slots {
                let Some(slot) = slots[pos] else { continue };
                bank.set_target(slot, &alt);
                solos[pos].set_targets(&alt);
            }
        }
        if let Some((pos, at)) = sc.evict {
            if at == epoch {
                if let Some(slot) = slots[pos].take() {
                    // The moved core id is the band-local position it was
                    // enrolled under — exactly the runner's remap.
                    if let Some(moved) = bank.evict(slot) {
                        slots[moved] = Some(slot);
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn siso_bank_matches_governors(sc in scenario()) {
        assert_bank_matches_governors::<1, 1, 2, 4>(&controller(1, 1, 2), &sc);
    }

    #[test]
    fn two_state_bank_matches_governors(sc in scenario()) {
        assert_bank_matches_governors::<2, 2, 2, 6>(&controller(2, 2, 2), &sc);
    }

    #[test]
    fn freq_cache_shape_bank_matches_governors(sc in scenario()) {
        assert_bank_matches_governors::<2, 2, 4, 8>(&controller(2, 2, 4), &sc);
    }

    #[test]
    fn three_knob_shape_bank_matches_governors(sc in scenario()) {
        assert_bank_matches_governors::<3, 2, 5, 10>(&controller(3, 2, 5), &sc);
    }
}

/// A slot that fails screening, recovers, is later evicted, while its
/// neighbours keep stepping — the full quarantine → eviction → re-latch
/// choreography in one deterministic pin.
#[test]
fn failure_then_eviction_keeps_survivors_bit_exact() {
    let sc = Scenario {
        n_slots: 4,
        epochs: 30,
        wobble: 0.1,
        retarget_epoch: Some(12),
        nan_fail: Some((2, 6)),
        evict: Some((2, 9)),
    };
    assert_bank_matches_governors::<2, 2, 4, 8>(&controller(2, 2, 4), &sc);
}
