//! Proof that the banked steady-state epoch path performs zero heap
//! allocations.
//!
//! Mirrors `mimo-core`'s `alloc_free` suite for the fleet's
//! structure-of-arrays path: a counting `#[global_allocator]` wraps the
//! system allocator, the bank is warmed up (including one screened
//! failure so the restore stack owns its capacity), and then full
//! load → step → decide epochs — with unchanged-reference retargets and
//! occasional screened measurements — must not move the counter.
//!
//! Everything runs from ONE `#[test]` function: the counter is
//! process-global, so concurrent tests in the same binary would pollute
//! the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mimo_core::lqg::{LqgController, LqgDesign};
use mimo_core::StateSpace;
use mimo_fleet::GovernorBank;
use mimo_linalg::{Matrix, Vector};
use mimo_sysid::scale::ChannelScaler;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Asserts `window` performs zero allocations. The counter is
/// process-global and the libtest harness occasionally allocates on its
/// own threads mid-window, so a non-zero count is retried: a hot path
/// that truly allocates does so on every attempt, while harness noise
/// (rare to begin with) vanishes across three independent windows.
fn assert_alloc_free(label: &str, mut window: impl FnMut()) {
    let mut deltas = Vec::new();
    for _ in 0..3 {
        let before = allocations();
        window();
        let delta = allocations() - before;
        if delta == 0 {
            return;
        }
        deltas.push(delta);
    }
    panic!("{label} allocated on every attempt: {deltas:?}");
}

fn controller() -> LqgController {
    let model = StateSpace::new(
        Matrix::diag(&[0.7, 0.6]),
        Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.6]]),
        Matrix::identity(2),
        Matrix::zeros(2, 2),
    )
    .unwrap();
    let grid: Vec<f64> = (0..201).map(|i| -1.0 + 0.01 * i as f64).collect();
    LqgDesign {
        process_noise: Matrix::identity(2).scale(1e-4),
        measurement_noise: Matrix::identity(2).scale(1e-4),
        output_weights: vec![1.0, 1.0],
        input_weights: vec![0.1, 0.1],
        integral_weight: 0.05,
        input_scaler: ChannelScaler::from_ranges(&[(-1.0, 1.0), (-1.0, 1.0)]),
        output_scaler: ChannelScaler::from_ranges(&[(-5.0, 5.0), (-5.0, 5.0)]),
        input_grids: vec![grid.clone(), grid],
        model,
    }
    .build()
    .unwrap()
}

fn y_of(slot: usize, epoch: usize) -> [f64; 2] {
    let x = epoch as f64 * 0.171 + slot as f64 * 1.3;
    [0.4 * x.sin(), 0.2 * (2.9 * x).cos()]
}

#[test]
fn banked_epoch_hot_path_is_allocation_free() {
    let proto = controller()
        .into_static::<2, 2, 2, 6>()
        .expect("shape matches");
    let mut bank: GovernorBank<2, 2, 2, 6> = GovernorBank::new(&proto);
    let n = 16;
    let base = Vector::from_slice(&[0.6, 0.4]);
    for core in 0..n {
        let slot = bank.enroll(core);
        bank.set_target(slot, &base);
    }

    // Warm-up: steady epochs, plus one screened failure so the restore
    // stack owns its capacity before the measurement window.
    for epoch in 0..8 {
        for slot in 0..n {
            let mut y = y_of(slot, epoch);
            if epoch == 3 && slot == 5 {
                y[0] = f64::NAN;
            }
            bank.load_measurement(slot, &y);
        }
        bank.step_all();
        for slot in 0..n {
            let _ = bank.decision(slot);
        }
    }

    // The steady-state window: full epochs, unchanged-reference
    // retargets, and a screened failure mid-window — all allocation-free.
    assert_alloc_free("banked epochs", || {
        for epoch in 8..40 {
            for slot in 0..n {
                let mut y = y_of(slot, epoch);
                if epoch == 20 && slot == 11 {
                    y[0] = f64::NAN;
                }
                bank.load_measurement(slot, &y);
            }
            bank.step_all();
            for slot in 0..n {
                let out = bank.decision(slot);
                if epoch == 20 && slot == 11 {
                    assert!(out.is_err(), "screened slot must report the failure");
                } else {
                    assert!(out.is_ok());
                }
            }
            for slot in 0..n {
                bank.set_target(slot, &base);
            }
        }
    });
}
