//! The cluster runtime: many chips, sharded, no global epoch barrier.
//!
//! [`ClusterRunner`] steps a [`ClusterConfig`]-shaped fleet of
//! [`Chip`]s. Chips are dealt to shard worker threads in
//! contiguous runs; each shard steps its chips through whole
//! *exchange windows* ([`ClusterConfig::exchange_period`] chip epochs)
//! back to back, so cores on different chips never synchronize
//! epoch-by-epoch. Shards rendezvous only at window boundaries, where the
//! last-arriving shard feeds every chip's published
//! [`ChipSummary`](crate::ChipSummary) to the
//! [`ClusterArbiter`] (merging in chip order) and
//! the fresh per-chip power caps are installed before the next window.
//!
//! Because each chip's science is a pure function of its own seed and its
//! cap schedule, and the cap schedule is a pure function of the summaries
//! merged in chip order, the resulting [`ClusterStats`] are bit-identical
//! at any shard count — and a cluster of one chip reproduces a single-chip
//! [`FleetRunner`](crate::FleetRunner) run exactly.

use std::time::Instant;

use mimo_core::governor::Governor;
use mimo_core::lqg::LqgController;
use mimo_core::telemetry::TelemetryConfig;
use mimo_sim::fault::FaultSpec;
use mimo_sim::llc::LlcConfig;
use mimo_sim::InputSet;

use crate::arbiter::{ArbitrationPolicy, ClusterArbiter, MIN_TARGET_FRACTION};
use crate::chip::Chip;
use crate::config::{CoreSpec, FleetConfig};
use crate::error::{FleetError, Result};
use crate::shard::run_sharded;
use crate::stats::ClusterStats;
use crate::telemetry::ClusterTelemetry;

/// Configuration of a [`ClusterRunner`]: a homogeneous grid of chips plus
/// the cluster-level budget policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of chips in the cluster.
    pub n_chips: usize,
    /// Cores on every chip.
    pub cores_per_chip: usize,
    /// Shard worker threads stepping whole chips. `0` means one per
    /// available hardware thread, capped at `n_chips`.
    pub shards: usize,
    /// Chip epochs each chip runs (50 µs each).
    pub epochs: usize,
    /// Chip epochs between cluster budget exchanges. Within a window the
    /// chips run completely barrier-free.
    pub exchange_period: usize,
    /// Datacenter-level power cap divided across chips, watts.
    pub cluster_power_cap_w: f64,
    /// How the cluster arbiter splits the cap across chips.
    pub policy: ArbitrationPolicy,
    /// How each chip's own arbiter splits its cap across cores.
    pub chip_policy: ArbitrationPolicy,
    /// Input set every per-core controller actuates.
    pub input_set: InputSet,
    /// Nominal per-core `[IPS (BIPS), power (W)]` targets.
    pub base_targets: [f64; 2],
    /// Base seed. Chip 0 derives exactly the base seed, so a one-chip
    /// cluster reuses a single-chip fleet's per-core seeds verbatim.
    pub seed: u64,
    /// Shared-LLC contention coupling, applied per chip (each chip gets
    /// its own independent [`SharedLlc`](mimo_sim::SharedLlc)).
    pub llc: Option<LlcConfig>,
    /// Workload mix every chip cycles through for its cores (same
    /// semantics as [`FleetConfig::apps`]; empty = responsive production
    /// set). Per-core seeds still derive from each chip's own seed, so
    /// chips run the same mix on distinct random streams.
    pub apps: Vec<String>,
    /// Explicit per-core assignments, applied to **every** chip verbatim
    /// (same semantics as [`FleetConfig::cores`] within a chip). Note an
    /// explicit [`CoreSpec::seed`] repeats on each chip; leave `cores`
    /// empty and use [`ClusterConfig::apps`] when chips should run
    /// distinct random streams.
    pub cores: Vec<CoreSpec>,
    /// Per-epoch transient fault probability on every core of every chip
    /// (same semantics as [`FleetConfig::fault_rate`]; each chip's
    /// injector draws from its own chip-seeded stream). `0.0` (the
    /// default) keeps runs bit-identical to a fault-free cluster.
    pub fault_rate: f64,
    /// Scheduled faults, as `(chip, core, fault window)` triples. Chips
    /// and cores not listed receive no scheduled faults.
    pub core_faults: Vec<(usize, usize, FaultSpec)>,
    /// Per-core telemetry, applied to every chip.
    pub telemetry: TelemetryConfig,
    /// Banked structure-of-arrays stepping on every chip (same semantics
    /// as [`FleetConfig::banked`]; applies to shared-controller clusters).
    pub banked: bool,
}

/// Seed stride between chips (an odd 64-bit constant, so the map from
/// chip index to seed-space offset is a bijection).
const CHIP_SEED_STRIDE: u64 = 0xA54F_F53A_5F1D_36F1;

impl ClusterConfig {
    /// A cluster of `n_chips` × `cores_per_chip` with the single-chip
    /// defaults on every chip and a cluster cap equal to the sum of the
    /// per-chip nominal caps (1.2 W/core).
    pub fn new(n_chips: usize, cores_per_chip: usize) -> Self {
        ClusterConfig {
            n_chips,
            cores_per_chip,
            shards: 1,
            epochs: 1000,
            exchange_period: 25,
            cluster_power_cap_w: 1.2 * (n_chips * cores_per_chip) as f64,
            policy: ArbitrationPolicy::Proportional,
            chip_policy: ArbitrationPolicy::Proportional,
            input_set: InputSet::FreqCache,
            base_targets: [3.0, 1.9],
            seed: 1,
            llc: None,
            apps: Vec::new(),
            cores: Vec::new(),
            fault_rate: 0.0,
            core_faults: Vec::new(),
            telemetry: TelemetryConfig::off(),
            banked: true,
        }
    }

    /// Enables or disables banked stepping on every chip (builder style;
    /// on by default).
    pub fn banked(mut self, banked: bool) -> Self {
        self.banked = banked;
        self
    }

    /// Sets the shard count (builder style).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the chip epoch count (builder style).
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the exchange period (builder style).
    pub fn exchange_period(mut self, period: usize) -> Self {
        self.exchange_period = period;
        self
    }

    /// Sets the power cap this topology's arbiter divides — for a
    /// cluster, the datacenter-level cap in watts (builder style). Shares
    /// its name with [`FleetConfig::power_cap`], the same knob one level
    /// down, so one spec shape drives both.
    pub fn power_cap(mut self, watts: f64) -> Self {
        self.cluster_power_cap_w = watts;
        self
    }

    /// Alias of [`ClusterConfig::power_cap`] under the topology-specific
    /// name (builder style).
    pub fn cluster_power_cap(self, watts: f64) -> Self {
        self.power_cap(watts)
    }

    /// Sets the cluster-level arbitration policy (builder style).
    pub fn policy(mut self, policy: ArbitrationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-chip arbitration policy (builder style).
    pub fn chip_policy(mut self, policy: ArbitrationPolicy) -> Self {
        self.chip_policy = policy;
        self
    }

    /// Sets the input set (builder style).
    pub fn input_set(mut self, input_set: InputSet) -> Self {
        self.input_set = input_set;
        self
    }

    /// Sets the nominal per-core targets (builder style).
    pub fn base_targets(mut self, targets: [f64; 2]) -> Self {
        self.base_targets = targets;
        self
    }

    /// Sets the base seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables shared-LLC contention on every chip (builder style).
    pub fn llc_contention(mut self, llc: LlcConfig) -> Self {
        self.llc = Some(llc);
        self
    }

    /// Sets the workload mix for every chip (builder style). Same name
    /// and semantics as [`FleetConfig::apps`].
    pub fn apps<S: Into<String>>(mut self, apps: Vec<S>) -> Self {
        self.apps = apps.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the transient fault rate on every chip (builder style). Same
    /// name and semantics as [`FleetConfig::fault_rate`].
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Sets explicit per-core assignments applied to every chip (builder
    /// style). Same name and semantics as [`FleetConfig::cores`].
    pub fn cores(mut self, cores: Vec<CoreSpec>) -> Self {
        self.cores = cores;
        self
    }

    /// Schedules a fault on one core of one chip (builder style; may be
    /// called repeatedly to stack faults). Same verb as
    /// [`FleetConfig::core_fault`], with a leading chip index because the
    /// cluster addresses cores two levels deep.
    pub fn core_fault(mut self, chip: usize, core: usize, spec: FaultSpec) -> Self {
        self.core_faults.push((chip, core, spec));
        self
    }

    /// Alias of [`ClusterConfig::core_fault`] under its original name
    /// (builder style).
    pub fn chip_core_fault(self, chip: usize, core: usize, spec: FaultSpec) -> Self {
        self.core_fault(chip, core, spec)
    }

    /// Attaches per-core telemetry to every chip (builder style).
    pub fn observer(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for a zero-sized cluster, a
    /// zero exchange period, an explicit shard count exceeding the chip
    /// count, or a per-chip configuration the fleet layer rejects.
    pub fn validate(&self) -> Result<()> {
        if self.n_chips == 0 {
            return Err(FleetError::InvalidConfig {
                what: "n_chips must be at least 1".into(),
            });
        }
        if self.exchange_period == 0 {
            return Err(FleetError::InvalidConfig {
                what: "exchange_period must be at least 1 chip epoch".into(),
            });
        }
        if self.shards > self.n_chips {
            return Err(FleetError::InvalidConfig {
                what: format!(
                    "shards = {} exceeds n_chips = {}; use shards(0) for auto",
                    self.shards, self.n_chips
                ),
            });
        }
        let not_positive = |x: f64| x <= 0.0 || x.is_nan();
        if not_positive(self.cluster_power_cap_w) {
            return Err(FleetError::InvalidConfig {
                what: format!(
                    "cluster_power_cap_w = {} must be positive",
                    self.cluster_power_cap_w
                ),
            });
        }
        if let Some((chip, core, _)) = self
            .core_faults
            .iter()
            .find(|(chip, core, _)| *chip >= self.n_chips || *core >= self.cores_per_chip)
        {
            return Err(FleetError::InvalidConfig {
                what: format!(
                    "core_faults targets chip {chip} core {core}, but the cluster is \
                     {} chips x {} cores",
                    self.n_chips, self.cores_per_chip
                ),
            });
        }
        // Everything per-chip (core count, targets, LLC shape) is checked
        // by the fleet-config layer all chips share.
        self.chip_config(0).validate()
    }

    /// The effective shard count: explicit, or one per hardware thread,
    /// never more than there are chips.
    pub fn effective_shards(&self) -> usize {
        let requested = if self.shards == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.shards
        };
        requested.clamp(1, self.n_chips.max(1))
    }

    /// The base seed of chip `chip`. Identity for chip 0, and a bijection
    /// in the chip index, so per-chip seed streams never collide.
    pub fn chip_seed(&self, chip: usize) -> u64 {
        self.seed
            .wrapping_add((chip as u64).wrapping_mul(CHIP_SEED_STRIDE))
    }

    /// The fleet configuration of chip `chip`: single-chip defaults with
    /// this cluster's policy/targets/LLC and the chip-derived seed. The
    /// nominal per-chip power cap is the single-chip default (1.2 W/core);
    /// the cluster arbiter retunes the *actual* cap at every exchange.
    pub fn chip_config(&self, chip: usize) -> FleetConfig {
        let mut cfg = FleetConfig::new(self.cores_per_chip)
            .epochs(self.epochs)
            .policy(self.chip_policy)
            .input_set(self.input_set)
            .base_targets(self.base_targets)
            .seed(self.chip_seed(chip))
            .apps(self.apps.clone())
            .cores(self.cores.clone())
            .fault_rate(self.fault_rate)
            .observer(self.telemetry.clone())
            .banked(self.banked);
        cfg.llc = self.llc;
        for &(c, core, spec) in &self.core_faults {
            if c == chip {
                cfg = cfg.core_fault(core, spec);
            }
        }
        cfg
    }

    /// The per-chip floor the cluster arbiter never cuts below: every core
    /// pinned at the chip arbiter's own minimum power reference.
    pub fn chip_floor_w(&self) -> f64 {
        self.cores_per_chip as f64 * MIN_TARGET_FRACTION * self.base_targets[1]
    }
}

/// The single-chip lift: a one-chip cluster running the fleet's exact
/// configuration, so one spec shape drives both topologies.
///
/// Every shared knob carries over verbatim — core count, epochs, input
/// set, targets, seed (chip 0 reuses the base seed, so per-core seeds are
/// identical), policy (installed as the chip-level policy), workload mix,
/// explicit cores, fault plan (lifted to chip 0), transient rate, LLC,
/// and telemetry. The fleet's power cap becomes the cluster cap; with one
/// chip the cluster arbiter grants `min(cap, nominal)` clamped to the
/// floor at each exchange, so caps at or below the nominal 1.2 W/core
/// budget behave exactly as they did one level down. The fleet's
/// `workers` knob has no counterpart (a one-chip cluster is one shard);
/// shard the chip's cores via the fleet runner when intra-chip
/// parallelism matters.
impl From<FleetConfig> for ClusterConfig {
    fn from(fleet: FleetConfig) -> Self {
        let mut cfg = ClusterConfig::new(1, fleet.n_cores)
            .epochs(fleet.epochs)
            .power_cap(fleet.chip_power_cap_w)
            .chip_policy(fleet.policy)
            .input_set(fleet.input_set)
            .base_targets(fleet.base_targets)
            .seed(fleet.seed)
            .apps(fleet.apps)
            .cores(fleet.cores)
            .fault_rate(fleet.fault_rate)
            .observer(fleet.telemetry)
            .banked(fleet.banked);
        cfg.llc = fleet.llc;
        for (core, spec) in fleet.core_faults {
            cfg = cfg.core_fault(0, core, spec);
        }
        cfg
    }
}

/// Steps a cluster of chips to completion, sharded across worker threads.
pub struct ClusterRunner {
    cfg: ClusterConfig,
    chips: Vec<Chip>,
    arbiter: ClusterArbiter,
}

impl ClusterRunner {
    /// Builds every chip of the cluster. The factory is called once per
    /// core as `factory(chip, core, spec)`, in chip order then core order,
    /// so governor construction is deterministic and may memoize.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for a bad cluster shape and
    /// propagates per-chip construction failures.
    pub fn new<F>(cfg: ClusterConfig, mut factory: F) -> Result<Self>
    where
        F: FnMut(usize, usize, &CoreSpec) -> Box<dyn Governor + Send>,
    {
        cfg.validate()?;
        let mut chips = Vec::with_capacity(cfg.n_chips);
        for chip in 0..cfg.n_chips {
            let chip_cfg = cfg.chip_config(chip);
            let mut per_core = |core: usize, spec: &CoreSpec| factory(chip, core, spec);
            chips.push(Chip::build(chip, chip_cfg, &mut per_core)?);
        }
        Self::assemble(cfg, chips)
    }

    /// The arbiter-construction tail shared by every build path.
    fn assemble(cfg: ClusterConfig, chips: Vec<Chip>) -> Result<Self> {
        let nominal: Vec<f64> = chips.iter().map(|c| 1.2 * c.n_cores() as f64).collect();
        let floors = vec![cfg.chip_floor_w(); cfg.n_chips];
        let priorities = vec![1.0; cfg.n_chips];
        let arbiter = ClusterArbiter::new(
            cfg.cluster_power_cap_w,
            cfg.policy,
            nominal,
            floors,
            priorities,
        );
        Ok(ClusterRunner {
            cfg,
            chips,
            arbiter,
        })
    }

    /// Builds a cluster whose every core runs a clone of one synthesized
    /// LQG controller — the deployment model of the `cluster_scale`
    /// experiment. Storage is chosen by
    /// [`mimo_core::governor::fast_governor`], exactly as the single-chip
    /// [`FleetRunner::with_shared_controller`](crate::FleetRunner::with_shared_controller)
    /// does.
    ///
    /// When the controller's shape is banked-capable (and
    /// [`ClusterConfig::banked`] is on), every chip additionally enrolls
    /// its cores in a [`GovernorBank`](crate::bank::GovernorBank) and
    /// steps them as one structure-of-arrays batch — bit-identical
    /// decisions, identical digests, less wall-clock.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterRunner::new`].
    pub fn with_shared_controller(cfg: ClusterConfig, ctrl: &LqgController) -> Result<Self> {
        cfg.validate()?;
        let mut chips = Vec::with_capacity(cfg.n_chips);
        for chip in 0..cfg.n_chips {
            chips.push(Chip::build_banked(chip, cfg.chip_config(chip), ctrl)?);
        }
        Self::assemble(cfg, chips)
    }

    /// The configuration this runner was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Runs the cluster and returns the statistics.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` mirrors
    /// [`FleetRunner::run`](crate::FleetRunner::run) for API symmetry.
    pub fn run(self) -> Result<ClusterStats> {
        self.run_traced().map(|(stats, _)| stats)
    }

    /// Runs the cluster and returns statistics plus drained telemetry
    /// (empty unless the config enables it).
    ///
    /// # Errors
    ///
    /// Currently infallible after construction.
    pub fn run_traced(mut self) -> Result<(ClusterStats, ClusterTelemetry)> {
        let shards = self.cfg.effective_shards();
        let started = Instant::now();
        let outcome = run_sharded(
            &mut self.chips,
            &mut self.arbiter,
            self.cfg.epochs,
            self.cfg.exchange_period,
            shards,
        );
        let wall_s = started.elapsed().as_secs_f64();
        let mut per_chip = Vec::with_capacity(self.chips.len());
        let mut per_chip_tele = Vec::with_capacity(self.chips.len());
        for chip in self.chips {
            let (stats, tele) = chip.into_results();
            per_chip.push(stats);
            per_chip_tele.push(crate::telemetry::FleetTelemetry::from_cores(tele));
        }
        let stats = ClusterStats::assemble(
            self.cfg.cluster_power_cap_w,
            shards,
            self.cfg.epochs,
            self.cfg.exchange_period,
            outcome.exchanges,
            outcome.rebudget_moves,
            outcome.peak_window_power_w,
            per_chip,
            wall_s,
        );
        Ok((stats, ClusterTelemetry::from_chips(per_chip_tele)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FleetRunner;
    use mimo_core::governor::FixedGovernor;
    use mimo_linalg::Vector;
    use mimo_sim::llc::LlcConfig;

    fn fixed() -> Box<dyn Governor + Send> {
        Box::new(FixedGovernor::new(Vector::from_slice(&[1.3, 6.0])))
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(ClusterConfig::new(0, 4).validate().is_err());
        assert!(ClusterConfig::new(2, 0).validate().is_err());
        assert!(ClusterConfig::new(2, 4)
            .exchange_period(0)
            .validate()
            .is_err());
        assert!(ClusterConfig::new(2, 4).shards(3).validate().is_err());
        assert!(ClusterConfig::new(2, 4).shards(2).validate().is_ok());
        assert!(ClusterConfig::new(2, 4).shards(0).validate().is_ok());
        assert!(ClusterConfig::new(1, 1).validate().is_ok());
    }

    #[test]
    fn chip_zero_seed_is_the_base_seed() {
        let cfg = ClusterConfig::new(4, 2).seed(7);
        assert_eq!(cfg.chip_seed(0), 7);
        // And distinct per chip.
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(cfg.chip_seed(i), cfg.chip_seed(j));
            }
        }
        // Chip 0's fleet config matches the plain single-chip config.
        let chip0 = cfg.chip_config(0);
        let plain = FleetConfig::new(2).epochs(1000).seed(7);
        assert_eq!(chip0, plain);
    }

    #[test]
    fn one_chip_cluster_matches_fleet_runner_bit_for_bit() {
        let ccfg = ClusterConfig::new(1, 4)
            .epochs(150)
            .exchange_period(25)
            .seed(7);
        let (cstats, _) = ClusterRunner::new(ccfg, |_, _, _| fixed())
            .unwrap()
            .run_traced()
            .unwrap();
        let fstats = FleetRunner::new(
            FleetConfig::new(4).workers(2).epochs(150).seed(7),
            |_, _| fixed(),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(cstats.n_chips, 1);
        assert_eq!(cstats.per_chip[0], fstats);
        assert_eq!(cstats.per_chip[0].digest(), fstats.digest());
        // 150 epochs at period 25 → 6 windows → 5 exchanges, none of which
        // can move a lone chip off its nominal cap.
        assert_eq!(cstats.exchanges, 5);
        assert_eq!(cstats.rebudget_moves, 0);
    }

    #[test]
    fn cluster_stats_are_shard_invariant() {
        let mk = |shards| {
            ClusterConfig::new(4, 2)
                .epochs(60)
                .exchange_period(10)
                .shards(shards)
                .llc_contention(LlcConfig::for_cores(2).total_ways(2))
                .seed(11)
        };
        let base = ClusterRunner::new(mk(1), |_, _, _| fixed())
            .unwrap()
            .run()
            .unwrap();
        for shards in [2, 4] {
            let other = ClusterRunner::new(mk(shards), |_, _, _| fixed())
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(base, other, "shards = {shards}");
            assert_eq!(base.digest(), other.digest(), "shards = {shards}");
        }
    }

    #[test]
    fn fleet_config_lifts_to_a_one_chip_cluster() {
        use mimo_sim::fault::{FaultKind, FaultSpec};
        let spec = FaultSpec {
            kind: FaultKind::NanMeasurement { channel: 0 },
            start_epoch: 10,
            duration: 5,
        };
        let fleet = FleetConfig::new(4)
            .epochs(150)
            .seed(7)
            .power_cap(4.0)
            .policy(ArbitrationPolicy::Uniform)
            .apps(vec!["astar"])
            .fault_rate(0.01)
            .core_fault(2, spec);
        let cluster = ClusterConfig::from(fleet.clone());
        assert_eq!(cluster.n_chips, 1);
        assert_eq!(cluster.cores_per_chip, 4);
        assert_eq!(cluster.cluster_power_cap_w, 4.0);
        assert_eq!(cluster.chip_policy, ArbitrationPolicy::Uniform);
        assert_eq!(cluster.fault_rate, 0.01);
        assert_eq!(cluster.core_faults, vec![(0, 2, spec)]);
        cluster.validate().unwrap();
        // The lifted chip reproduces the fleet's own config, knob for
        // knob, apart from the worker count (sharding lives one level
        // up) and the power cap (which lifts to the cluster arbiter;
        // the chip keeps its nominal budget and the arbiter grants
        // `min(cap, nominal)` at each exchange).
        let chip0 = cluster.chip_config(0);
        let nominal_cap = chip0.chip_power_cap_w;
        assert_eq!(chip0, fleet.clone().workers(1).power_cap(nominal_cap));
    }

    #[test]
    fn lifted_cluster_reproduces_the_fleet_run_bit_for_bit() {
        let fleet = FleetConfig::new(4).workers(2).epochs(150).seed(7);
        let fstats = FleetRunner::new(fleet.clone(), |_, _| fixed())
            .unwrap()
            .run()
            .unwrap();
        let cstats = ClusterRunner::new(ClusterConfig::from(fleet), |_, _, _| fixed())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(cstats.per_chip[0], fstats);
        assert_eq!(cstats.per_chip[0].digest(), fstats.digest());
    }

    #[test]
    fn tight_cluster_cap_throttles_chips() {
        // Cap the cluster at half the nominal sum: the arbiter must cut
        // every chip below nominal and the chips must still track.
        let cfg = ClusterConfig::new(2, 2)
            .epochs(50)
            .exchange_period(10)
            .cluster_power_cap(0.5 * 1.2 * 4.0)
            .seed(3);
        let stats = ClusterRunner::new(cfg, |_, _, _| fixed())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stats.exchanges, 4);
        assert!(stats.rebudget_moves >= 1);
        // Each chip's configured cap reflects the cluster grant, not the
        // nominal 2.4 W.
        for chip in &stats.per_chip {
            assert!(chip.chip_cap_w <= 2.4);
        }
        assert!(stats.peak_window_power_w > 0.0);
    }
}
