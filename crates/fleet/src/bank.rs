//! Batched governor banks: structure-of-arrays stepping for fleets.
//!
//! Every healthy core of a chip runs a *clone* of the same synthesized
//! controller, so the per-core state is the only thing that differs — the
//! gains, model matrices, scalers, actuator grids, and steady-state solve
//! artifacts are shared bit-exact copies. A [`GovernorBank`] exploits
//! that: it holds one copy of the shared read-only artifacts and lays the
//! per-core state out as contiguous structure-of-arrays vectors
//! (core-major per field), then steps the whole bank phase-major with the
//! batch kernels from [`mimo_linalg::stack`]. The shared matrices stay
//! hot in cache across the entire bank instead of being re-fetched
//! per-core from each cell's scattered governor allocation.
//!
//! # Bit parity
//!
//! The batch kernels run the *identical* scalar kernel per core in slot
//! order, and every per-channel stage (`integrate_tracking_error`,
//! `assemble_augmented_state`, clamp/quantize/slew) calls the same free
//! functions `LqgController::step_into` is built from — so each core sees
//! exactly the floating-point operation sequence it would have seen on the
//! per-cell path. Cores are mutually independent, so interleaving them
//! across phases cannot change any core's values: golden fleet/cluster
//! digests hold bit-exactly.
//!
//! # Screening and fault semantics
//!
//! The per-cell path screens the measurement *before* the controller
//! steps ([`mimo_core::governor::screen_measurement`]) and leaves the
//! governor state untouched on a non-finite measurement. The bank
//! replicates that: [`GovernorBank::load_measurement`] screens at load
//! time, snapshots the failing slot's evolving state, lets the batch step
//! run (NaNs stay confined to that slot's own lanes), and restores the
//! snapshot at the end of [`GovernorBank::step_all`]. The slot's
//! [`GovernorBank::decision`] then reports the same
//! [`EpochCause::Governor`] error the per-cell governor would have
//! returned. Downstream plant faults do *not* roll back controller state
//! on the per-cell path (only the loop's `u`/`y` buffers are restored),
//! and likewise leave bank state advanced.
//!
//! Quarantined cores are evicted ([`GovernorBank::evict`],
//! swap-remove) back to the per-cell path, where the PR 3 heuristic
//! fallback machinery takes over.

use mimo_core::engine::EpochCause;
use mimo_core::lqg::{
    apply_du_clamped, assemble_augmented_state, integrate_tracking_error, negate,
    quantize_with_slew, LqgController, SteadyStateSolver,
};
use mimo_core::storage::StaticStore;
use mimo_core::ControlError;
use mimo_linalg::stack::{add_assign_batch, copy_batch, sub_into_batch};
use mimo_linalg::{SMatrix, SVector, Vector};
use mimo_sysid::scale::ChannelScaler;

/// A bank of identical-shape LQG governors stepped as one
/// structure-of-arrays batch.
///
/// Create one per chip from the shared prototype controller
/// ([`GovernorBank::new`]), [`enroll`](GovernorBank::enroll) each core,
/// then per epoch: [`load_measurement`](GovernorBank::load_measurement)
/// for every slot, one [`step_all`](GovernorBank::step_all), and read
/// each slot's [`decision`](GovernorBank::decision).
#[derive(Debug, Clone)]
pub struct GovernorBank<const NU: usize, const NY: usize, const NX: usize, const NZ: usize> {
    // Shared read-only artifacts (bit-exact copies from the prototype).
    f: SMatrix<NU, NZ>,
    l: SMatrix<NX, NY>,
    a: SMatrix<NX, NX>,
    b: SMatrix<NX, NU>,
    c: SMatrix<NY, NX>,
    d: SMatrix<NY, NU>,
    input_scaler: ChannelScaler,
    output_scaler: ChannelScaler,
    input_grids: Vec<Vec<f64>>,
    solver: SteadyStateSolver,
    // Enrollment template: the prototype's exported runtime state.
    tpl_xhat: SVector<NX>,
    tpl_u_prev: SVector<NU>,
    tpl_q_int: SVector<NY>,
    tpl_y_ref: SVector<NY>,
    tpl_x_ss: SVector<NX>,
    tpl_u_ss: SVector<NU>,
    // Per-slot evolving state (SoA, core-major per field).
    cores: Vec<usize>,
    xhat: Vec<SVector<NX>>,
    u_prev: Vec<SVector<NU>>,
    q_int: Vec<SVector<NY>>,
    y_ref: Vec<SVector<NY>>,
    x_ss: Vec<SVector<NX>>,
    u_ss: Vec<SVector<NU>>,
    // Per-slot scratch (SoA), reused every epoch — 0 allocs at steady state.
    y_phys: Vec<SVector<NY>>,
    y_norm: Vec<SVector<NY>>,
    y_pred: Vec<SVector<NY>>,
    d_u: Vec<SVector<NY>>,
    innov: Vec<SVector<NY>>,
    corr: Vec<SVector<NX>>,
    a_x: Vec<SVector<NX>>,
    b_u: Vec<SVector<NX>>,
    z: Vec<SVector<NZ>>,
    du: Vec<SVector<NU>>,
    u_raw: Vec<SVector<NU>>,
    u_phys_raw: Vec<SVector<NU>>,
    u_prev_phys: Vec<SVector<NU>>,
    u_out: Vec<SVector<NU>>,
    // Screening: per-slot failed channel, and saved state for restore.
    screen_fail: Vec<Option<usize>>,
    saved: Vec<(usize, SVector<NX>, SVector<NU>, SVector<NY>)>,
}

impl<const NU: usize, const NY: usize, const NX: usize, const NZ: usize>
    GovernorBank<NU, NY, NX, NZ>
{
    /// Builds an empty bank from the shared prototype controller.
    ///
    /// Copies the runtime gain/model matrices, the scalers, the actuator
    /// grids, the cached steady-state solver, and the prototype's current
    /// runtime state (the enrollment template) — all bit-exact.
    pub fn new(proto: &LqgController<StaticStore<NU, NY, NX, NZ>>) -> Self {
        let m = proto.runtime_matrices();
        let design = proto.design();
        let st = proto.export_state();
        GovernorBank {
            f: *m.f,
            l: *m.l,
            a: *m.a,
            b: *m.b,
            c: *m.c,
            d: *m.d,
            input_scaler: design.input_scaler.clone(),
            output_scaler: design.output_scaler.clone(),
            input_grids: design.input_grids.clone(),
            solver: proto.steady_state_solver().clone(),
            tpl_xhat: SVector::from_slice(st.xhat.as_slice()),
            tpl_u_prev: SVector::from_slice(st.u_prev.as_slice()),
            tpl_q_int: SVector::from_slice(st.q_int.as_slice()),
            tpl_y_ref: SVector::from_slice(st.y_ref_norm.as_slice()),
            tpl_x_ss: SVector::from_slice(st.x_ss.as_slice()),
            tpl_u_ss: SVector::from_slice(st.u_ss.as_slice()),
            cores: Vec::new(),
            xhat: Vec::new(),
            u_prev: Vec::new(),
            q_int: Vec::new(),
            y_ref: Vec::new(),
            x_ss: Vec::new(),
            u_ss: Vec::new(),
            y_phys: Vec::new(),
            y_norm: Vec::new(),
            y_pred: Vec::new(),
            d_u: Vec::new(),
            innov: Vec::new(),
            corr: Vec::new(),
            a_x: Vec::new(),
            b_u: Vec::new(),
            z: Vec::new(),
            du: Vec::new(),
            u_raw: Vec::new(),
            u_phys_raw: Vec::new(),
            u_prev_phys: Vec::new(),
            u_out: Vec::new(),
            screen_fail: Vec::new(),
            saved: Vec::new(),
        }
    }

    /// Enrolls a core, initializing its slot from the prototype state.
    /// Returns the slot index (stable until an [`evict`](Self::evict)
    /// swap-removes past it).
    pub fn enroll(&mut self, core: usize) -> usize {
        let slot = self.cores.len();
        self.cores.push(core);
        self.xhat.push(self.tpl_xhat);
        self.u_prev.push(self.tpl_u_prev);
        self.q_int.push(self.tpl_q_int);
        self.y_ref.push(self.tpl_y_ref);
        self.x_ss.push(self.tpl_x_ss);
        self.u_ss.push(self.tpl_u_ss);
        self.y_phys.push(SVector::zeros());
        self.y_norm.push(SVector::zeros());
        self.y_pred.push(SVector::zeros());
        self.d_u.push(SVector::zeros());
        self.innov.push(SVector::zeros());
        self.corr.push(SVector::zeros());
        self.a_x.push(SVector::zeros());
        self.b_u.push(SVector::zeros());
        self.z.push(SVector::zeros());
        self.du.push(SVector::zeros());
        self.u_raw.push(SVector::zeros());
        self.u_phys_raw.push(SVector::zeros());
        self.u_prev_phys.push(SVector::zeros());
        self.u_out.push(SVector::zeros());
        self.screen_fail.push(None);
        slot
    }

    /// Sets a slot's physical output targets — the bank-side twin of
    /// [`LqgController::set_reference`]: allocation-free normalize with
    /// bit-level change detection, re-resolving the steady-state operating
    /// point only when the normalized reference actually moved.
    pub fn set_target(&mut self, slot: usize, y0_physical: &Vector) {
        assert_eq!(y0_physical.len(), NY, "reference dimension mismatch");
        let offsets = self.output_scaler.offsets();
        let spans = self.output_scaler.spans();
        let y_ref = self.y_ref[slot].as_mut_slice();
        let mut changed = false;
        for ch in 0..NY {
            let v = (y0_physical[ch] - offsets[ch]) / spans[ch];
            if v.to_bits() != y_ref[ch].to_bits() {
                y_ref[ch] = v;
                changed = true;
            }
        }
        if changed {
            self.solver.resolve(
                self.y_ref[slot].as_slice(),
                self.u_ss[slot].as_mut_slice(),
                self.x_ss[slot].as_mut_slice(),
            );
        }
    }

    /// Loads a slot's physical measurement for the next
    /// [`step_all`](Self::step_all), screening it exactly like
    /// [`mimo_core::governor::screen_measurement`]: on the first
    /// non-finite channel the slot is marked failed and its evolving state
    /// snapshotted for restore (the per-cell path would not have stepped
    /// the governor at all).
    pub fn load_measurement(&mut self, slot: usize, y_physical: &[f64]) {
        assert_eq!(y_physical.len(), NY, "measurement dimension mismatch");
        self.y_phys[slot].as_mut_slice().copy_from_slice(y_physical);
        match y_physical.iter().position(|v| !v.is_finite()) {
            Some(channel) => {
                self.screen_fail[slot] = Some(channel);
                self.saved
                    .push((slot, self.xhat[slot], self.u_prev[slot], self.q_int[slot]));
            }
            None => self.screen_fail[slot] = None,
        }
    }

    /// Steps every enrolled slot one epoch, phase-major: each stage runs
    /// across the whole bank before the next begins, with the batched
    /// mat-vecs sharing one traversal of each gain/model matrix. Per-slot
    /// floating-point op order is identical to
    /// [`LqgController::step_into`]. Screen-failed slots are restored to
    /// their pre-step state afterwards.
    pub fn step_all(&mut self) {
        // Normalize the measurements (per-slot; scaler is slice-based).
        for (y_norm, y_phys) in self.y_norm.iter_mut().zip(&self.y_phys) {
            self.output_scaler
                .normalize_slices(y_phys.as_slice(), y_norm.as_mut_slice());
        }

        // Estimator update with the input applied last epoch — the exact
        // stage order of `update_kalman`, batched.
        self.c.mul_vec_batch_into(&self.xhat, &mut self.y_pred);
        self.d.mul_vec_batch_into(&self.u_prev, &mut self.d_u);
        add_assign_batch(&mut self.y_pred, &self.d_u);
        sub_into_batch(&self.y_norm, &self.y_pred, &mut self.innov);
        self.l.mul_vec_batch_into(&self.innov, &mut self.corr);
        self.a.mul_vec_batch_into(&self.xhat, &mut self.a_x);
        self.b.mul_vec_batch_into(&self.u_prev, &mut self.b_u);
        add_assign_batch(&mut self.a_x, &self.b_u);
        add_assign_batch(&mut self.a_x, &self.corr);
        copy_batch(&mut self.xhat, &self.a_x);

        // Integrate the tracking error, assemble z = [x̃; ũ₋₁; q].
        for slot in 0..self.cores.len() {
            integrate_tracking_error(
                self.q_int[slot].as_mut_slice(),
                self.y_norm[slot].as_slice(),
                self.y_ref[slot].as_slice(),
            );
            assemble_augmented_state(
                self.z[slot].as_mut_slice(),
                self.xhat[slot].as_slice(),
                self.x_ss[slot].as_slice(),
                self.u_prev[slot].as_slice(),
                self.u_ss[slot].as_slice(),
                self.q_int[slot].as_slice(),
            );
        }

        // Δu = −F z, batched over the bank.
        self.f.mul_vec_batch_into(&self.z, &mut self.du);

        // Clamp, quantize, slew-limit, and feed the quantized input back.
        for slot in 0..self.cores.len() {
            negate(self.du[slot].as_mut_slice());
            apply_du_clamped(
                self.u_raw[slot].as_mut_slice(),
                self.u_prev[slot].as_slice(),
                self.du[slot].as_slice(),
            );
            self.input_scaler.denormalize_slices(
                self.u_raw[slot].as_slice(),
                self.u_phys_raw[slot].as_mut_slice(),
            );
            self.input_scaler.denormalize_slices(
                self.u_prev[slot].as_slice(),
                self.u_prev_phys[slot].as_mut_slice(),
            );
            quantize_with_slew(
                &self.input_grids,
                self.u_phys_raw[slot].as_slice(),
                self.u_prev_phys[slot].as_slice(),
                self.u_out[slot].as_mut_slice(),
            );
            self.input_scaler.normalize_slices(
                self.u_out[slot].as_slice(),
                self.u_prev[slot].as_mut_slice(),
            );
        }

        // Screen-failed slots: the per-cell governor would not have
        // stepped at all, so restore the evolving state it owns.
        while let Some((slot, xhat, u_prev, q_int)) = self.saved.pop() {
            self.xhat[slot] = xhat;
            self.u_prev[slot] = u_prev;
            self.q_int[slot] = q_int;
        }
    }

    /// A slot's decision from the last [`step_all`](Self::step_all): the
    /// physical quantized actuation, or the same
    /// [`EpochCause::Governor`] screening error the per-cell governor
    /// would have returned.
    pub fn decision(&self, slot: usize) -> Result<&[f64], EpochCause> {
        match self.screen_fail[slot] {
            Some(channel) => Err(EpochCause::Governor(ControlError::NonFiniteMeasurement {
                channel,
            })),
            None => Ok(self.u_out[slot].as_slice()),
        }
    }

    /// Evicts a slot (quarantined core falling back to the per-cell
    /// path) by swap-remove. Returns the core index that *moved into*
    /// this slot, if any, so the caller can remap its core → slot table.
    pub fn evict(&mut self, slot: usize) -> Option<usize> {
        self.cores.swap_remove(slot);
        self.xhat.swap_remove(slot);
        self.u_prev.swap_remove(slot);
        self.q_int.swap_remove(slot);
        self.y_ref.swap_remove(slot);
        self.x_ss.swap_remove(slot);
        self.u_ss.swap_remove(slot);
        self.y_phys.swap_remove(slot);
        self.y_norm.swap_remove(slot);
        self.y_pred.swap_remove(slot);
        self.d_u.swap_remove(slot);
        self.innov.swap_remove(slot);
        self.corr.swap_remove(slot);
        self.a_x.swap_remove(slot);
        self.b_u.swap_remove(slot);
        self.z.swap_remove(slot);
        self.du.swap_remove(slot);
        self.u_raw.swap_remove(slot);
        self.u_phys_raw.swap_remove(slot);
        self.u_prev_phys.swap_remove(slot);
        self.u_out.swap_remove(slot);
        self.screen_fail.swap_remove(slot);
        self.cores.get(slot).copied()
    }

    /// Number of enrolled slots.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the bank has no enrolled slots.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The core index enrolled at `slot`.
    pub fn core_at(&self, slot: usize) -> usize {
        self.cores[slot]
    }
}

/// Shape-dispatched bank over the four deployed static controller shapes
/// (the same set [`mimo_core::governor::fast_governor`] monomorphizes).
/// Any other shape gets no bank — those cores stay on the per-cell
/// dynamic path.
// One `BankKind` exists per band, so the size spread between variants is
// irrelevant; boxing the large ones would put an indirection on the hot
// per-epoch dispatch path for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum BankKind {
    /// 2-in/2-out, 4 states: the cache+frequency architecture (§VI).
    FreqCache(GovernorBank<2, 2, 4, 8>),
    /// 3-in/2-out, 5 states: the three-knob architecture (§VI-C).
    ThreeKnob(GovernorBank<3, 2, 5, 10>),
    /// 1-in/1-out, 2 states: decoupled SISO loops.
    Siso(GovernorBank<1, 1, 2, 4>),
    /// 2-in/2-out, 2 states: the unit-test plant.
    Test2(GovernorBank<2, 2, 2, 6>),
}

macro_rules! bank_dispatch {
    ($self:expr, $b:ident => $body:expr) => {
        match $self {
            BankKind::FreqCache($b) => $body,
            BankKind::ThreeKnob($b) => $body,
            BankKind::Siso($b) => $body,
            BankKind::Test2($b) => $body,
        }
    };
}

impl BankKind {
    /// Builds a bank for the controller's shape, re-homing a clone into
    /// static storage exactly like `fast_governor` does (bit-exact).
    /// Returns `None` for shapes outside the deployed set.
    pub(crate) fn try_new(ctrl: &LqgController) -> Option<BankKind> {
        let shape = (
            ctrl.num_inputs(),
            ctrl.num_outputs(),
            ctrl.model().state_dim(),
        );
        // NZ = NX + NU + NY, spelled out (stable Rust cannot compute it).
        match shape {
            (2, 2, 4) => ctrl
                .clone()
                .into_static::<2, 2, 4, 8>()
                .ok()
                .map(|c| BankKind::FreqCache(GovernorBank::new(&c))),
            (3, 2, 5) => ctrl
                .clone()
                .into_static::<3, 2, 5, 10>()
                .ok()
                .map(|c| BankKind::ThreeKnob(GovernorBank::new(&c))),
            (1, 1, 2) => ctrl
                .clone()
                .into_static::<1, 1, 2, 4>()
                .ok()
                .map(|c| BankKind::Siso(GovernorBank::new(&c))),
            (2, 2, 2) => ctrl
                .clone()
                .into_static::<2, 2, 2, 6>()
                .ok()
                .map(|c| BankKind::Test2(GovernorBank::new(&c))),
            _ => None,
        }
    }

    pub(crate) fn enroll(&mut self, core: usize) -> usize {
        bank_dispatch!(self, b => b.enroll(core))
    }

    pub(crate) fn set_target(&mut self, slot: usize, y0_physical: &Vector) {
        bank_dispatch!(self, b => b.set_target(slot, y0_physical))
    }

    pub(crate) fn load_measurement(&mut self, slot: usize, y_physical: &[f64]) {
        bank_dispatch!(self, b => b.load_measurement(slot, y_physical))
    }

    pub(crate) fn step_all(&mut self) {
        bank_dispatch!(self, b => b.step_all())
    }

    pub(crate) fn decision(&self, slot: usize) -> Result<&[f64], EpochCause> {
        bank_dispatch!(self, b => b.decision(slot))
    }

    pub(crate) fn evict(&mut self, slot: usize) -> Option<usize> {
        bank_dispatch!(self, b => b.evict(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_core::lqg::LqgDesign;
    use mimo_core::StateSpace;
    use mimo_linalg::Matrix;
    use mimo_sysid::scale::ChannelScaler;

    /// The 2-in/2-out 2-state unit-test plant used across the test suite.
    fn test_controller() -> LqgController {
        let model = StateSpace::new(
            Matrix::diag(&[0.7, 0.6]),
            Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.6]]),
            Matrix::identity(2),
            Matrix::zeros(2, 2),
        )
        .unwrap();
        let grid: Vec<f64> = (0..201).map(|i| -1.0 + 0.01 * i as f64).collect();
        LqgDesign {
            process_noise: Matrix::identity(2).scale(1e-4),
            measurement_noise: Matrix::identity(2).scale(1e-4),
            output_weights: vec![1.0, 1.0],
            input_weights: vec![0.1, 0.1],
            integral_weight: 0.05,
            input_scaler: ChannelScaler::from_ranges(&[(-1.0, 1.0), (-1.0, 1.0)]),
            output_scaler: ChannelScaler::from_ranges(&[(-5.0, 5.0), (-5.0, 5.0)]),
            input_grids: vec![grid.clone(), grid],
            model,
        }
        .build()
        .unwrap()
    }

    fn y_seq(slot: usize, epoch: usize) -> Vector {
        Vector::from_slice(&[
            0.3 + 0.05 * slot as f64 + 0.01 * (epoch % 7) as f64,
            -0.2 + 0.03 * slot as f64 - 0.02 * (epoch % 5) as f64,
        ])
    }

    /// Every slot of a bank must match a standalone per-cell controller
    /// bit-for-bit: same decisions, same exported state.
    #[test]
    fn bank_matches_per_cell_controllers_bit_for_bit() {
        let proto = test_controller();
        let static_proto = proto.clone().into_static::<2, 2, 2, 6>().unwrap();
        let mut bank = GovernorBank::new(&static_proto);

        let n = 5;
        let mut solos: Vec<_> = (0..n)
            .map(|_| proto.clone().into_static::<2, 2, 2, 6>().unwrap())
            .collect();
        for (core, solo) in solos.iter_mut().enumerate() {
            let slot = bank.enroll(core);
            assert_eq!(slot, core);
            let target = Vector::from_slice(&[0.4 + 0.1 * core as f64, 0.1]);
            bank.set_target(slot, &target);
            solo.set_reference(&target);
        }

        let mut u_solo = Vector::zeros(2);
        for epoch in 0..50 {
            for slot in 0..n {
                bank.load_measurement(slot, y_seq(slot, epoch).as_slice());
            }
            // Retarget mid-run (bit-equal targets must also be a no-op on
            // both paths, exercised by re-sending the same target).
            if epoch == 20 {
                for (slot, solo) in solos.iter_mut().enumerate() {
                    let t = Vector::from_slice(&[0.2, 0.05 * slot as f64]);
                    bank.set_target(slot, &t);
                    solo.set_reference(&t);
                }
            }
            bank.step_all();
            for (slot, solo) in solos.iter_mut().enumerate() {
                solo.step_into(&y_seq(slot, epoch), &mut u_solo);
                let banked = bank.decision(slot).expect("finite measurement");
                for ch in 0..2 {
                    assert_eq!(
                        banked[ch].to_bits(),
                        u_solo[ch].to_bits(),
                        "slot {slot} epoch {epoch} channel {ch}"
                    );
                }
            }
        }
        // Final state parity, every field, every bit.
        for (slot, solo) in solos.iter().enumerate() {
            let st = solo.export_state();
            bit_eq(bank.xhat[slot].as_slice(), st.xhat.as_slice());
            bit_eq(bank.u_prev[slot].as_slice(), st.u_prev.as_slice());
            bit_eq(bank.q_int[slot].as_slice(), st.q_int.as_slice());
            bit_eq(bank.y_ref[slot].as_slice(), st.y_ref_norm.as_slice());
            bit_eq(bank.x_ss[slot].as_slice(), st.x_ss.as_slice());
            bit_eq(bank.u_ss[slot].as_slice(), st.u_ss.as_slice());
        }
    }

    fn bit_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// A non-finite measurement must fail the slot with the per-cell
    /// screening error, leave its state untouched, and not perturb the
    /// other slots.
    #[test]
    fn screen_failure_restores_state_and_isolates_slots() {
        let proto = test_controller();
        let static_proto = proto.clone().into_static::<2, 2, 2, 6>().unwrap();
        let mut bank = GovernorBank::new(&static_proto);
        let mut solo = proto.clone().into_static::<2, 2, 2, 6>().unwrap();
        let target = Vector::from_slice(&[0.4, 0.1]);
        for core in 0..2 {
            bank.enroll(core);
            bank.set_target(core, &target);
        }
        solo.set_reference(&target);

        let mut u_solo = Vector::zeros(2);
        for epoch in 0..10 {
            bank.load_measurement(0, y_seq(0, epoch).as_slice());
            if epoch == 4 {
                bank.load_measurement(1, &[f64::NAN, 0.0]);
            } else {
                bank.load_measurement(1, y_seq(0, epoch).as_slice());
            }
            bank.step_all();
            // Slot 0 always sees a finite y and must track its solo twin
            // bit-for-bit through the neighboring slot's failure.
            solo.step_into(&y_seq(0, epoch), &mut u_solo);
            let healthy = bank.decision(0).unwrap();
            bit_eq(healthy, u_solo.as_slice());
            if epoch == 4 {
                // Slot 1 reports the per-cell screening error.
                match bank.decision(1) {
                    Err(EpochCause::Governor(ControlError::NonFiniteMeasurement { channel })) => {
                        assert_eq!(channel, 0)
                    }
                    other => panic!("expected screening error, got {other:?}"),
                }
            }
        }
        // Slot 1 skipped one update; its state must differ from slot 0.
        assert_ne!(
            bank.xhat[0].as_slice()[0].to_bits(),
            bank.xhat[1].as_slice()[0].to_bits()
        );
        // No NaN anywhere in slot 1's state (restore worked).
        assert!(bank.xhat[1].as_slice().iter().all(|v| v.is_finite()));
        assert!(bank.u_prev[1].as_slice().iter().all(|v| v.is_finite()));
        assert!(bank.q_int[1].as_slice().iter().all(|v| v.is_finite()));
    }

    /// Evicting a slot swap-removes it and reports the moved core so the
    /// caller can remap; the surviving slots keep stepping bit-exactly.
    #[test]
    fn evict_swap_removes_and_remaps() {
        let proto = test_controller();
        let static_proto = proto.clone().into_static::<2, 2, 2, 6>().unwrap();
        let mut bank = GovernorBank::new(&static_proto);
        for core in 10..14 {
            bank.enroll(core);
        }
        assert_eq!(bank.len(), 4);
        // Evict slot 1 (core 11): core 13 moves into slot 1.
        assert_eq!(bank.evict(1), Some(13));
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.core_at(0), 10);
        assert_eq!(bank.core_at(1), 13);
        assert_eq!(bank.core_at(2), 12);
        // Evicting the tail reports no move.
        assert_eq!(bank.evict(2), None);
        assert_eq!(bank.len(), 2);
    }

    /// `BankKind::try_new` banks exactly the deployed shapes.
    #[test]
    fn bank_kind_dispatches_deployed_shapes() {
        let ctrl = test_controller();
        let kind = BankKind::try_new(&ctrl).expect("2-2-2 is a deployed shape");
        assert!(matches!(kind, BankKind::Test2(_)));
    }
}
