//! The single-chip fleet runtime: lock-step epoch scheduling across worker
//! threads.
//!
//! Every core owns a plant and a governor. The cores are partitioned into
//! contiguous **bands** (one per worker), and each 50 µs epoch proceeds in
//! three beats driven by the shared persistent [`WorkerPool`](crate::pool)
//! — no per-run thread spawns, no per-epoch barriers:
//!
//! 1. **Step** — a pool batch advances every band: the governor consumes
//!    the previous epoch's measurement and emits an actuation, the plant
//!    applies it, and the measured `[IPS, power]` lands in the band's
//!    observation log. Fleets built from one shared controller step each
//!    band's healthy cores through a structure-of-arrays
//!    [`GovernorBank`](crate::GovernorBank) (bit-identical to per-cell
//!    stepping); quarantined cores are evicted to the per-cell path.
//! 2. **Arbitrate** — the submitting thread gathers the band logs in core
//!    order, runs the [`BudgetArbiter`] over the full table to produce
//!    next epoch's per-core `[IPS, power]` references — and, when the
//!    config enables shared-LLC contention, refreshes the per-core
//!    miss-pressure penalties from the core-ordered way allocations.
//! 3. **Retarget** — a second pool batch installs every band's new
//!    references (and LLC penalties) into its governors and plants.
//!
//! Determinism: core seeds derive from the base seed and core index only,
//! the observation table is indexed by core, and the arbiter reduces in
//! core order — so results are bit-identical no matter how many workers
//! stepped the cores. The single-worker case runs the same code path
//! serially inline.
//!
//! For multi-chip fleets, see [`ClusterRunner`](crate::ClusterRunner):
//! whole chips become the unit of parallelism ([`Chip`](crate::Chip) steps
//! a chip's beat serially) and this per-epoch barrier disappears.

use std::sync::Mutex;
use std::time::Instant;

use mimo_core::governor::{fast_governor, Governor, MimoGovernor};
use mimo_core::lqg::LqgController;
use mimo_linalg::Vector;
use mimo_sim::llc::SharedLlc;

use crate::arbiter::{BudgetArbiter, CoreObs};
use crate::bank::BankKind;
use crate::chip::{build_cells, CoreCell};
use crate::config::{CoreSpec, FleetConfig};
use crate::error::Result;
use crate::stats::{CoreStats, FleetStats};
use crate::telemetry::{CoreTelemetry, FleetTelemetry};

/// One worker's contiguous slice of the fleet, plus its governor bank.
struct Band<'a> {
    cells: &'a mut [CoreCell],
    /// Batched SoA governor for this band's healthy cores; `None` when the
    /// fleet has no shared controller prototype or banking is disabled.
    bank: Option<BankKind>,
    /// Band-local cell position → bank slot; `None` once evicted.
    slots: Vec<Option<usize>>,
    /// Per-epoch observation log in band-local cell order:
    /// `(obs, quarantine latch, applied L2 ways)`.
    log: Vec<(CoreObs, bool, f64)>,
}

/// Runs a fleet of independently governed cores under one chip budget.
pub struct FleetRunner {
    cfg: FleetConfig,
    cells: Vec<CoreCell>,
    /// The shared controller prototype, kept so the run can build per-band
    /// [`GovernorBank`](crate::GovernorBank)s; `None` for heterogeneous
    /// (factory-built) or deliberately dynamic fleets, which always step
    /// per-cell.
    proto: Option<LqgController>,
}

impl FleetRunner {
    /// Builds the fleet, creating each core's governor through `factory`
    /// (called with the core index and resolved spec).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`](crate::FleetError::InvalidConfig) for a bad configuration or a
    /// governor whose input count does not match the plant, and
    /// [`FleetError::Sim`](crate::FleetError::Sim) if a plant fails to build.
    pub fn new<F>(cfg: FleetConfig, mut factory: F) -> Result<Self>
    where
        F: FnMut(usize, &CoreSpec) -> Box<dyn Governor + Send>,
    {
        let cells = build_cells(&cfg, &mut factory)?;
        Ok(FleetRunner {
            cfg,
            cells,
            proto: None,
        })
    }

    /// Builds the fleet with every core running a clone of one synthesized
    /// MIMO controller — the paper's deployment model, where a single
    /// offline design is replicated across homogeneous cores.
    ///
    /// Each per-core clone is wrapped by
    /// [`mimo_core::governor::fast_governor`], so controllers whose shape
    /// matches a reference architecture step on stack-allocated fixed-size
    /// kernels. When [`FleetConfig::banked`] is on (the default) and the
    /// shape matches, each worker's cores additionally step as one
    /// structure-of-arrays [`GovernorBank`](crate::GovernorBank) batch.
    /// Both fast paths are bit-identical to the dynamic per-cell one — the
    /// fleet digests do not move.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetRunner::new`].
    pub fn with_shared_controller(cfg: FleetConfig, ctrl: &LqgController) -> Result<Self> {
        let mut runner = FleetRunner::new(cfg, |_, _| fast_governor(ctrl.clone()))?;
        runner.proto = Some(ctrl.clone());
        Ok(runner)
    }

    /// Like [`FleetRunner::with_shared_controller`], but pins every core to
    /// the dynamic heap-backed storage. Exists for benchmarking the
    /// static-vs-dynamic gap; science results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetRunner::new`].
    pub fn with_shared_controller_dynamic(cfg: FleetConfig, ctrl: &LqgController) -> Result<Self> {
        FleetRunner::new(cfg, |_, _| Box::new(MimoGovernor::new(ctrl.clone())))
    }

    /// Number of cores in the fleet.
    pub fn n_cores(&self) -> usize {
        self.cells.len()
    }

    /// Runs the configured number of epochs and returns fleet statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`](crate::FleetError::InvalidConfig) if the configuration fails
    /// [`FleetConfig::validate`] (re-checked here so mutations after
    /// [`FleetRunner::new`] cannot slip through).
    pub fn run(self) -> Result<FleetStats> {
        self.run_traced().map(|(stats, _)| stats)
    }

    /// Like [`FleetRunner::run`], but also returns the run's
    /// [`FleetTelemetry`] — populated per-core when the config enabled
    /// telemetry via [`FleetConfig::observer`], empty otherwise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetRunner::run`].
    pub fn run_traced(mut self) -> Result<(FleetStats, FleetTelemetry)> {
        self.cfg.validate()?;
        let epochs = self.cfg.epochs;
        let n = self.cells.len();
        let workers = self.cfg.effective_workers();
        let chunk = n.div_ceil(workers);
        let base = Vector::from_slice(&self.cfg.base_targets);
        let priorities: Vec<f64> = self.cells.iter().map(|c| c.spec.priority).collect();
        let llc = match self.cfg.llc {
            Some(lcfg) => Some(SharedLlc::new(lcfg, n)?),
            None => None,
        };
        let contended = llc.is_some();
        let mut obs = vec![
            CoreObs {
                ips: 0.0,
                power: 0.0
            };
            n
        ];
        let mut arbiter = BudgetArbiter::new(
            self.cfg.chip_power_cap_w,
            self.cfg.policy,
            self.cfg.base_targets,
            priorities,
        );
        // Quarantine latch per core; once set, the arbiter pins that core
        // at the floor budget and redistributes the rest.
        let mut quarantined = vec![false; n];
        // Applied L2 ways per core, refreshed each epoch — only read when
        // the contention model is on.
        let mut ways = vec![0.0; n];
        let mut llc = llc;
        let mut targets = vec![base.clone(); n];
        // chunks_mut may produce fewer bands than requested workers when
        // n is small; the stats record the actual band count.
        let parties = if n == 0 { 1 } else { n.div_ceil(chunk) };
        let banked = self.cfg.banked;
        let proto = self.proto.as_ref();

        let started = Instant::now();
        {
            let bands: Vec<Mutex<Band>> = self
                .cells
                .chunks_mut(chunk)
                .map(|cells| {
                    let mut bank = if banked {
                        proto.and_then(BankKind::try_new)
                    } else {
                        None
                    };
                    let mut slots = vec![None; cells.len()];
                    if let Some(bank) = bank.as_mut() {
                        // Slots are keyed by band-local cell position so an
                        // eviction's swap-remove remap stays band-internal.
                        for (pos, entry) in slots.iter_mut().enumerate() {
                            let slot = bank.enroll(pos);
                            bank.set_target(slot, &base);
                            *entry = Some(slot);
                        }
                    }
                    let log = Vec::with_capacity(cells.len());
                    Mutex::new(Band {
                        cells,
                        bank,
                        slots,
                        log,
                    })
                })
                .collect();
            let pool = crate::pool::global();
            for _ in 0..epochs {
                // Beat 1: one pool batch steps every band — the bank
                // advances the healthy cores as one SoA batch, fresh
                // quarantines install the fallback governor and evict the
                // core from its band's bank.
                pool.run_bounded(bands.len(), workers, &|bi| {
                    let mut band = bands[bi].lock().unwrap();
                    let Band {
                        cells,
                        bank,
                        slots,
                        log,
                    } = &mut *band;
                    log.clear();
                    if let Some(bank) = bank.as_mut() {
                        for (pos, cell) in cells.iter().enumerate() {
                            if let Some(slot) = slots[pos] {
                                bank.load_measurement(slot, cell.lp.outputs().as_slice());
                            }
                        }
                        bank.step_all();
                    }
                    for (pos, cell) in cells.iter_mut().enumerate() {
                        let (obs, quarantined_now) = match (&*bank, slots[pos]) {
                            (Some(bank), Some(slot)) => cell.step_banked(bank.decision(slot)),
                            _ => cell.step(),
                        };
                        if quarantined_now {
                            cell.handle_quarantine();
                            if let (Some(bank), Some(slot)) = (bank.as_mut(), slots[pos].take()) {
                                if let Some(moved) = bank.evict(slot) {
                                    slots[moved] = Some(slot);
                                }
                            }
                        }
                        // Report the live latch: a core the fallback
                        // rescues regains budget; a permanently faulted
                        // one re-latches and stays pinned at the floor.
                        let ways = if contended {
                            cell.applied_l2_ways()
                        } else {
                            0.0
                        };
                        log.push((obs, cell.lp.is_quarantined(), ways));
                    }
                });
                // Beat 2: the submitting thread gathers the band logs into
                // the core-indexed table, arbitrates over it, and refreshes
                // the contention penalties in core order.
                for band in &bands {
                    let band = band.lock().unwrap();
                    for (cell, &(o, q, w)) in band.cells.iter().zip(&band.log) {
                        obs[cell.idx] = o;
                        quarantined[cell.idx] = q;
                        if contended {
                            ways[cell.idx] = w;
                        }
                    }
                }
                targets = arbiter.arbitrate_with_quarantine(&obs, &quarantined);
                if let Some(llc) = &mut llc {
                    llc.update(&ways);
                }
                // Beat 3: a second pool batch installs the new references.
                let targets = &targets;
                let llc = llc.as_ref();
                pool.run_bounded(bands.len(), workers, &|bi| {
                    let mut band = bands[bi].lock().unwrap();
                    let Band {
                        cells, bank, slots, ..
                    } = &mut *band;
                    for (pos, cell) in cells.iter_mut().enumerate() {
                        let target = &targets[cell.idx];
                        if let (Some(bank), Some(slot)) = (bank.as_mut(), slots[pos]) {
                            // The cell's boxed governor is stale while the
                            // bank steps for it; retarget the bank slot and
                            // the cell's error-tracking reference only.
                            cell.target.copy_from(target);
                            bank.set_target(slot, target);
                        } else {
                            cell.retarget(target);
                        }
                        if let Some(llc) = llc {
                            cell.set_llc_penalty(llc.penalty(cell.idx));
                        }
                    }
                });
            }
        }
        let wall_s = started.elapsed().as_secs_f64();
        let mut per_core: Vec<CoreStats> = Vec::with_capacity(self.cells.len());
        let mut per_core_telemetry: Vec<CoreTelemetry> = Vec::new();
        for cell in self.cells {
            let (stats, telemetry) = cell.into_results();
            per_core.push(stats);
            if let Some(t) = telemetry {
                per_core_telemetry.push(t);
            }
        }
        let telemetry = FleetTelemetry::from_cores(per_core_telemetry);
        let stats = FleetStats::assemble(&self.cfg, parties, epochs, &arbiter, per_core, wall_s);
        Ok((stats, telemetry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbitrationPolicy;
    use crate::error::FleetError;
    use mimo_core::governor::FixedGovernor;
    use mimo_sim::llc::LlcConfig;

    fn fixed_factory() -> impl FnMut(usize, &CoreSpec) -> Box<dyn Governor + Send> {
        |_, _| Box::new(FixedGovernor::new(Vector::from_slice(&[1.3, 6.0])))
    }

    fn small(workers: usize) -> FleetConfig {
        FleetConfig::new(4)
            .workers(workers)
            .epochs(80)
            .policy(ArbitrationPolicy::Proportional)
            .seed(7)
    }

    #[test]
    fn identical_stats_regardless_of_worker_count() {
        let one = FleetRunner::new(small(1), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        let two = FleetRunner::new(small(2), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        let four = FleetRunner::new(small(4), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(one, two);
        assert_eq!(one, four);
        assert_eq!(one.digest(), two.digest());
        assert_eq!(one.digest(), four.digest());
    }

    #[test]
    fn contended_fleet_is_deterministic_across_worker_counts() {
        // 1 way/core of budget vs the 6 ways/core the governor holds:
        // sustained contention, still bit-identical at any worker count.
        let tight = LlcConfig::for_cores(4).total_ways(4);
        let run = |workers| {
            FleetRunner::new(small(workers).llc_contention(tight), fixed_factory())
                .unwrap()
                .run()
                .unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four);
        assert_eq!(one.digest(), four.digest());
        // And the contention must actually bite.
        let plain = FleetRunner::new(small(1), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_ne!(one.digest(), plain.digest());
    }

    #[test]
    fn stats_cover_all_cores_and_accumulate_energy() {
        let stats = FleetRunner::new(small(2), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stats.n_cores, 4);
        assert_eq!(stats.per_core.len(), 4);
        assert_eq!(stats.epochs, 80);
        assert!(stats.energy_j > 0.0);
        assert!(stats.instructions_g > 0.0);
        assert!(stats.avg_chip_power_w > 0.0);
        assert!(stats.peak_chip_power_w >= stats.avg_chip_power_w);
        for (i, c) in stats.per_core.iter().enumerate() {
            assert_eq!(c.core, i);
            assert!(c.avg_power_w > 0.0, "{c:?}");
        }
    }

    #[test]
    fn different_seed_changes_results() {
        let a = FleetRunner::new(small(1), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        let b = FleetRunner::new(small(1).seed(8), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_ne!(a, b);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn governor_plant_input_mismatch_rejected() {
        let cfg = small(1); // FreqCache → 2 inputs
        let err = FleetRunner::new(cfg, |_, _| {
            Box::new(FixedGovernor::new(Vector::from_slice(&[1.3, 6.0, 48.0])))
        });
        assert!(matches!(err, Err(FleetError::InvalidConfig { .. })));
    }

    #[test]
    fn traced_run_matches_untraced_digest_and_fills_telemetry() {
        use mimo_core::telemetry::TelemetryConfig;
        let plain = FleetRunner::new(small(2), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        let (traced, telemetry) = FleetRunner::new(
            small(2).observer(TelemetryConfig::trace(32)),
            fixed_factory(),
        )
        .unwrap()
        .run_traced()
        .unwrap();
        // Observing must not perturb the control pipeline.
        assert_eq!(plain, traced);
        assert_eq!(plain.digest(), traced.digest());
        assert!(telemetry.is_enabled());
        assert_eq!(telemetry.per_core.len(), 4);
        assert_eq!(telemetry.metrics.epochs, 4 * 80);
        for (i, core) in telemetry.per_core.iter().enumerate() {
            assert_eq!(core.core, i);
            assert_eq!(core.metrics.epochs, 80);
            assert_eq!(core.trace.len(), 32);
            // Ring keeps the newest records.
            assert_eq!(core.trace.last().unwrap().epoch, 79);
            assert_eq!(core.summary.unwrap().epochs, 80);
        }
        // Untraced runs return an empty (disabled) telemetry.
        let (_, empty) = FleetRunner::new(small(1), fixed_factory())
            .unwrap()
            .run_traced()
            .unwrap();
        assert!(!empty.is_enabled());
    }

    #[test]
    fn telemetry_is_identical_across_worker_counts() {
        use mimo_core::telemetry::TelemetryConfig;
        let traced = |workers: usize| {
            FleetRunner::new(
                small(workers).observer(TelemetryConfig::trace(16)),
                fixed_factory(),
            )
            .unwrap()
            .run_traced()
            .unwrap()
            .1
        };
        let one = traced(1);
        let four = traced(4);
        // Merged metrics reduce in core order, so the fleet view is
        // bit-identical no matter how many workers stepped the cores.
        assert_eq!(one.metrics, four.metrics);
        for (a, b) in one.per_core.iter().zip(&four.per_core) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.quarantine, b.quarantine);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        one.write_jsonl(&mut a).unwrap();
        four.write_jsonl(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_epochs_returns_zeroed_stats() {
        let stats = FleetRunner::new(small(1).epochs(0), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stats.epochs, 0);
        assert_eq!(stats.cap_violation_epochs, 0);
        assert_eq!(stats.energy_j, 0.0);
        assert_eq!(stats.agg_ips_err_pct, 0.0);
    }
}
