//! The single-chip fleet runtime: lock-step epoch scheduling across worker
//! threads.
//!
//! Every core owns a plant and a governor. Each 50 µs epoch proceeds in
//! three beats:
//!
//! 1. **Step** — workers advance their cores: the governor consumes the
//!    previous epoch's measurement and emits an actuation, the plant
//!    applies it, and the measured `[IPS, power]` lands in a shared,
//!    core-indexed observation table.
//! 2. **Arbitrate** — after a barrier, one worker (the barrier leader)
//!    runs the [`BudgetArbiter`] over the full table, producing next
//!    epoch's per-core `[IPS, power]` references — and, when the config
//!    enables shared-LLC contention, refreshes the per-core miss-pressure
//!    penalties from the core-ordered way allocations.
//! 3. **Retarget** — after a second barrier, every worker installs its
//!    cores' new references (and LLC penalties) into their governors and
//!    plants.
//!
//! Determinism: core seeds derive from the base seed and core index only,
//! the observation table is indexed by core, and the arbiter reduces in
//! core order — so results are bit-identical no matter how many workers
//! stepped the cores. The single-worker case runs the same code path with
//! a one-party barrier.
//!
//! For multi-chip fleets, see [`ClusterRunner`](crate::ClusterRunner):
//! whole chips become the unit of parallelism ([`Chip`](crate::Chip) steps
//! a chip's beat serially) and this per-epoch barrier disappears.

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use mimo_core::governor::{fast_governor, Governor, MimoGovernor};
use mimo_core::lqg::LqgController;
use mimo_linalg::Vector;
use mimo_sim::llc::SharedLlc;

use crate::arbiter::{BudgetArbiter, CoreObs};
use crate::chip::{build_cells, CoreCell};
use crate::config::{CoreSpec, FleetConfig};
use crate::error::Result;
use crate::stats::{CoreStats, FleetStats};
use crate::telemetry::{CoreTelemetry, FleetTelemetry};

/// State exchanged between workers once per epoch.
struct Shared {
    obs: Vec<CoreObs>,
    targets: Vec<Vector>,
    arbiter: BudgetArbiter,
    /// Quarantine latch per core; once set, the arbiter pins that core at
    /// the floor budget and redistributes the rest.
    quarantined: Vec<bool>,
    /// Applied L2 ways per core, refreshed each epoch — only read when the
    /// contention model is on.
    ways: Vec<f64>,
    /// The shared-LLC contention model; `None` leaves the hot loop
    /// bit-identical to the pre-contention runtime.
    llc: Option<SharedLlc>,
}

/// Runs a fleet of independently governed cores under one chip budget.
pub struct FleetRunner {
    cfg: FleetConfig,
    cells: Vec<CoreCell>,
}

impl FleetRunner {
    /// Builds the fleet, creating each core's governor through `factory`
    /// (called with the core index and resolved spec).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`](crate::FleetError::InvalidConfig) for a bad configuration or a
    /// governor whose input count does not match the plant, and
    /// [`FleetError::Sim`](crate::FleetError::Sim) if a plant fails to build.
    pub fn new<F>(cfg: FleetConfig, mut factory: F) -> Result<Self>
    where
        F: FnMut(usize, &CoreSpec) -> Box<dyn Governor + Send>,
    {
        let cells = build_cells(&cfg, &mut factory)?;
        Ok(FleetRunner { cfg, cells })
    }

    /// Builds the fleet with every core running a clone of one synthesized
    /// MIMO controller — the paper's deployment model, where a single
    /// offline design is replicated across homogeneous cores.
    ///
    /// Each per-core clone is wrapped by
    /// [`mimo_core::governor::fast_governor`], so controllers whose shape
    /// matches a reference architecture step on stack-allocated fixed-size
    /// kernels. The static path is bit-identical to the dynamic one — the
    /// fleet digests do not move.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetRunner::new`].
    pub fn with_shared_controller(cfg: FleetConfig, ctrl: &LqgController) -> Result<Self> {
        FleetRunner::new(cfg, |_, _| fast_governor(ctrl.clone()))
    }

    /// Like [`FleetRunner::with_shared_controller`], but pins every core to
    /// the dynamic heap-backed storage. Exists for benchmarking the
    /// static-vs-dynamic gap; science results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetRunner::new`].
    pub fn with_shared_controller_dynamic(cfg: FleetConfig, ctrl: &LqgController) -> Result<Self> {
        FleetRunner::new(cfg, |_, _| Box::new(MimoGovernor::new(ctrl.clone())))
    }

    /// Number of cores in the fleet.
    pub fn n_cores(&self) -> usize {
        self.cells.len()
    }

    /// Runs the configured number of epochs and returns fleet statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`](crate::FleetError::InvalidConfig) if the configuration fails
    /// [`FleetConfig::validate`] (re-checked here so mutations after
    /// [`FleetRunner::new`] cannot slip through).
    pub fn run(self) -> Result<FleetStats> {
        self.run_traced().map(|(stats, _)| stats)
    }

    /// Like [`FleetRunner::run`], but also returns the run's
    /// [`FleetTelemetry`] — populated per-core when the config enabled
    /// telemetry via [`FleetConfig::observer`], empty otherwise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetRunner::run`].
    pub fn run_traced(mut self) -> Result<(FleetStats, FleetTelemetry)> {
        self.cfg.validate()?;
        let epochs = self.cfg.epochs;
        let n = self.cells.len();
        let workers = self.cfg.effective_workers();
        let chunk = n.div_ceil(workers);
        let base = Vector::from_slice(&self.cfg.base_targets);
        let priorities: Vec<f64> = self.cells.iter().map(|c| c.spec.priority).collect();
        let llc = match self.cfg.llc {
            Some(lcfg) => Some(SharedLlc::new(lcfg, n)?),
            None => None,
        };
        let contended = llc.is_some();
        let shared = Mutex::new(Shared {
            obs: vec![
                CoreObs {
                    ips: 0.0,
                    power: 0.0
                };
                n
            ],
            targets: vec![base.clone(); n],
            arbiter: BudgetArbiter::new(
                self.cfg.chip_power_cap_w,
                self.cfg.policy,
                self.cfg.base_targets,
                priorities,
            ),
            quarantined: vec![false; n],
            ways: vec![0.0; n],
            llc,
        });
        // chunks_mut may produce fewer chunks than requested workers when
        // n is small; the barrier must match the actual party count.
        let parties = if n == 0 { 1 } else { n.div_ceil(chunk) };
        let barrier = Barrier::new(parties);

        let started = Instant::now();
        std::thread::scope(|scope| {
            for band in self.cells.chunks_mut(chunk) {
                let shared = &shared;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut local: Vec<(CoreObs, bool, f64)> = Vec::with_capacity(band.len());
                    for _ in 0..epochs {
                        // Beat 1: step this worker's cores; react to fresh
                        // quarantines by installing the fallback governor.
                        local.clear();
                        for cell in band.iter_mut() {
                            let (obs, quarantined_now) = cell.step();
                            if quarantined_now {
                                cell.handle_quarantine();
                            }
                            // Report the live latch: a core the fallback
                            // rescues regains budget; a permanently faulted
                            // one re-latches and stays pinned at the floor.
                            let ways = if contended {
                                cell.applied_l2_ways()
                            } else {
                                0.0
                            };
                            local.push((obs, cell.lp.is_quarantined(), ways));
                        }
                        {
                            let mut s = shared.lock().unwrap();
                            for (cell, &(o, q, w)) in band.iter().zip(&local) {
                                s.obs[cell.idx] = o;
                                s.quarantined[cell.idx] = q;
                                if contended {
                                    s.ways[cell.idx] = w;
                                }
                            }
                        }
                        // Beat 2: leader arbitrates over the full table and
                        // refreshes the contention penalties in core order.
                        if barrier.wait().is_leader() {
                            let mut s = shared.lock().unwrap();
                            let obs = std::mem::take(&mut s.obs);
                            let quarantined = std::mem::take(&mut s.quarantined);
                            s.targets = s.arbiter.arbitrate_with_quarantine(&obs, &quarantined);
                            s.obs = obs;
                            s.quarantined = quarantined;
                            let ways = std::mem::take(&mut s.ways);
                            if let Some(llc) = &mut s.llc {
                                llc.update(&ways);
                            }
                            s.ways = ways;
                        }
                        // Beat 3: everyone installs the new references.
                        barrier.wait();
                        {
                            let s = shared.lock().unwrap();
                            for cell in band.iter_mut() {
                                cell.retarget(&s.targets[cell.idx]);
                                if let Some(llc) = &s.llc {
                                    cell.set_llc_penalty(llc.penalty(cell.idx));
                                }
                            }
                        }
                    }
                });
            }
        });
        let wall_s = started.elapsed().as_secs_f64();

        let arbiter = shared.into_inner().unwrap().arbiter;
        let mut per_core: Vec<CoreStats> = Vec::with_capacity(self.cells.len());
        let mut per_core_telemetry: Vec<CoreTelemetry> = Vec::new();
        for cell in self.cells {
            let (stats, telemetry) = cell.into_results();
            per_core.push(stats);
            if let Some(t) = telemetry {
                per_core_telemetry.push(t);
            }
        }
        let telemetry = FleetTelemetry::from_cores(per_core_telemetry);
        let stats = FleetStats::assemble(&self.cfg, parties, epochs, &arbiter, per_core, wall_s);
        Ok((stats, telemetry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbitrationPolicy;
    use crate::error::FleetError;
    use mimo_core::governor::FixedGovernor;
    use mimo_sim::llc::LlcConfig;

    fn fixed_factory() -> impl FnMut(usize, &CoreSpec) -> Box<dyn Governor + Send> {
        |_, _| Box::new(FixedGovernor::new(Vector::from_slice(&[1.3, 6.0])))
    }

    fn small(workers: usize) -> FleetConfig {
        FleetConfig::new(4)
            .workers(workers)
            .epochs(80)
            .policy(ArbitrationPolicy::Proportional)
            .seed(7)
    }

    #[test]
    fn identical_stats_regardless_of_worker_count() {
        let one = FleetRunner::new(small(1), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        let two = FleetRunner::new(small(2), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        let four = FleetRunner::new(small(4), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(one, two);
        assert_eq!(one, four);
        assert_eq!(one.digest(), two.digest());
        assert_eq!(one.digest(), four.digest());
    }

    #[test]
    fn contended_fleet_is_deterministic_across_worker_counts() {
        // 1 way/core of budget vs the 6 ways/core the governor holds:
        // sustained contention, still bit-identical at any worker count.
        let tight = LlcConfig::for_cores(4).total_ways(4);
        let run = |workers| {
            FleetRunner::new(small(workers).llc_contention(tight), fixed_factory())
                .unwrap()
                .run()
                .unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four);
        assert_eq!(one.digest(), four.digest());
        // And the contention must actually bite.
        let plain = FleetRunner::new(small(1), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_ne!(one.digest(), plain.digest());
    }

    #[test]
    fn stats_cover_all_cores_and_accumulate_energy() {
        let stats = FleetRunner::new(small(2), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stats.n_cores, 4);
        assert_eq!(stats.per_core.len(), 4);
        assert_eq!(stats.epochs, 80);
        assert!(stats.energy_j > 0.0);
        assert!(stats.instructions_g > 0.0);
        assert!(stats.avg_chip_power_w > 0.0);
        assert!(stats.peak_chip_power_w >= stats.avg_chip_power_w);
        for (i, c) in stats.per_core.iter().enumerate() {
            assert_eq!(c.core, i);
            assert!(c.avg_power_w > 0.0, "{c:?}");
        }
    }

    #[test]
    fn different_seed_changes_results() {
        let a = FleetRunner::new(small(1), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        let b = FleetRunner::new(small(1).seed(8), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_ne!(a, b);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn governor_plant_input_mismatch_rejected() {
        let cfg = small(1); // FreqCache → 2 inputs
        let err = FleetRunner::new(cfg, |_, _| {
            Box::new(FixedGovernor::new(Vector::from_slice(&[1.3, 6.0, 48.0])))
        });
        assert!(matches!(err, Err(FleetError::InvalidConfig { .. })));
    }

    #[test]
    fn traced_run_matches_untraced_digest_and_fills_telemetry() {
        use mimo_core::telemetry::TelemetryConfig;
        let plain = FleetRunner::new(small(2), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        let (traced, telemetry) = FleetRunner::new(
            small(2).observer(TelemetryConfig::trace(32)),
            fixed_factory(),
        )
        .unwrap()
        .run_traced()
        .unwrap();
        // Observing must not perturb the control pipeline.
        assert_eq!(plain, traced);
        assert_eq!(plain.digest(), traced.digest());
        assert!(telemetry.is_enabled());
        assert_eq!(telemetry.per_core.len(), 4);
        assert_eq!(telemetry.metrics.epochs, 4 * 80);
        for (i, core) in telemetry.per_core.iter().enumerate() {
            assert_eq!(core.core, i);
            assert_eq!(core.metrics.epochs, 80);
            assert_eq!(core.trace.len(), 32);
            // Ring keeps the newest records.
            assert_eq!(core.trace.last().unwrap().epoch, 79);
            assert_eq!(core.summary.unwrap().epochs, 80);
        }
        // Untraced runs return an empty (disabled) telemetry.
        let (_, empty) = FleetRunner::new(small(1), fixed_factory())
            .unwrap()
            .run_traced()
            .unwrap();
        assert!(!empty.is_enabled());
    }

    #[test]
    fn telemetry_is_identical_across_worker_counts() {
        use mimo_core::telemetry::TelemetryConfig;
        let traced = |workers: usize| {
            FleetRunner::new(
                small(workers).observer(TelemetryConfig::trace(16)),
                fixed_factory(),
            )
            .unwrap()
            .run_traced()
            .unwrap()
            .1
        };
        let one = traced(1);
        let four = traced(4);
        // Merged metrics reduce in core order, so the fleet view is
        // bit-identical no matter how many workers stepped the cores.
        assert_eq!(one.metrics, four.metrics);
        for (a, b) in one.per_core.iter().zip(&four.per_core) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.quarantine, b.quarantine);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        one.write_jsonl(&mut a).unwrap();
        four.write_jsonl(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_epochs_returns_zeroed_stats() {
        let stats = FleetRunner::new(small(1).epochs(0), fixed_factory())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stats.epochs, 0);
        assert_eq!(stats.cap_violation_epochs, 0);
        assert_eq!(stats.energy_j, 0.0);
        assert_eq!(stats.agg_ips_err_pct, 0.0);
    }
}
