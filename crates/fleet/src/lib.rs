//! Many-core fleet runtime: per-core MIMO control under a chip power budget.
//!
//! The paper designs one MIMO LQG controller per core. This crate scales
//! that to a fleet: N independent plants, each tracking `[IPS, power]`
//! references with its own governor, stepped in lock-step 50 µs epochs
//! across a worker-thread pool, with a chip-level [`BudgetArbiter`] that
//! redistributes each core's references every epoch so the summed power
//! respects a chip cap — the decentralized coordination sketched in the
//! paper's §VII discussion of multicore deployment.
//!
//! Determinism is a design invariant: per-core seeds derive only from the
//! base seed and the core index, and arbitration reduces core-indexed
//! observations in core order, so a run's [`FleetStats`] are bit-identical
//! no matter how many worker threads step the fleet.
//!
//! # Example
//!
//! ```
//! use mimo_fleet::{ArbitrationPolicy, FleetConfig, FleetRunner};
//! use mimo_core::governor::FixedGovernor;
//! use mimo_linalg::Vector;
//!
//! let cfg = FleetConfig::new(4)
//!     .workers(2)
//!     .epochs(100)
//!     .policy(ArbitrationPolicy::Proportional);
//! let fleet = FleetRunner::new(cfg, |_, _| {
//!     Box::new(FixedGovernor::new(Vector::from_slice(&[1.3, 6.0])))
//! })
//! .unwrap();
//! let stats = fleet.run().unwrap();
//! assert_eq!(stats.n_cores, 4);
//! ```
//!
//! To watch a run, enable telemetry in the config and use
//! [`FleetRunner::run_traced`]: every core carries its own ring-buffer
//! [`TelemetrySink`](mimo_core::telemetry::TelemetrySink), and the
//! returned [`FleetTelemetry`] holds each core's recent epoch records,
//! quarantine events, and merged metrics — with JSONL/CSV export that
//! drains strictly outside the hot loop.
//!
//! # Scaling past one chip
//!
//! Above the chip sits the two-level hierarchy of [`ClusterRunner`]: a
//! [`Cluster`](ClusterConfig) of [`Chip`]s, each chip keeping its own
//! lock-step beat while whole chips are sharded across worker threads with
//! **no global per-epoch barrier**. A [`ClusterArbiter`] re-divides the
//! datacenter power cap across chips only every
//! [`exchange_period`](ClusterConfig::exchange_period) chip epochs, from
//! each chip's last published [`ChipSummary`] — so chips drift
//! independently between exchanges, yet [`ClusterStats`] stay bit-identical
//! at any shard count, and a cluster of one chip reproduces a single-chip
//! fleet's golden digests exactly.

#![warn(missing_docs)]

pub mod arbiter;
pub mod bank;
pub mod chip;
pub mod cluster;
pub mod config;
pub mod error;
pub mod pool;
pub mod runner;
mod shard;
pub mod stats;
pub mod telemetry;

pub use arbiter::{ArbitrationPolicy, BudgetArbiter, ClusterArbiter, CoreObs};
pub use bank::GovernorBank;
pub use chip::Chip;
pub use cluster::{ClusterConfig, ClusterRunner};
pub use config::{default_fleet_apps, CoreSpec, FleetConfig};
pub use error::{FleetError, Result};
pub use pool::WorkerPool;
pub use runner::FleetRunner;
pub use stats::{ChipSummary, ClusterStats, CoreStats, FleetStats};
pub use telemetry::{ClusterTelemetry, CoreTelemetry, FleetTelemetry};
