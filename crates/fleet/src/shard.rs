//! Chip sharding: whole chips on worker threads, rendezvous only at
//! exchange windows.
//!
//! Unlike the single-chip [`FleetRunner`](crate::FleetRunner), which
//! barriers its workers twice per epoch, the cluster shards synchronize
//! only every [`exchange_period`](crate::ClusterConfig::exchange_period)
//! chip epochs. Each shard owns a contiguous run of chips and steps each
//! of them through the whole window back to back — the hot loop takes no
//! locks at all. At the window boundary every shard deposits its chips'
//! published [`ChipSummary`](crate::ChipSummary) snapshots under one
//! mutex; whichever shard arrives *last* reduces the summaries in chip
//! order, asks the [`ClusterArbiter`](crate::ClusterArbiter) for fresh
//! per-chip caps, and wakes the others. Arrival order therefore affects
//! only who performs the reduction, never its operand order — which is
//! what keeps [`ClusterStats`](crate::ClusterStats) bit-identical at any
//! shard count.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::arbiter::ClusterArbiter;
use crate::chip::Chip;
use crate::stats::ChipSummary;

/// What the sharded run hands back to the cluster runner.
pub(crate) struct ShardOutcome {
    /// Budget exchanges performed (windows minus the final one).
    pub exchanges: u64,
    /// Exchanges that moved at least one chip cap bitwise.
    pub rebudget_moves: u64,
    /// Largest window-mean cluster power observed at any window boundary,
    /// watts (chip-order sum of per-chip window means).
    pub peak_window_power_w: f64,
}

/// Shared state of one window rendezvous.
struct Exchange {
    /// Summary slots, indexed by chip; all `Some` once every shard has
    /// deposited.
    summaries: Vec<Option<ChipSummary>>,
    /// Current per-chip caps, refreshed by the last-arriving shard.
    caps: Vec<f64>,
    /// Chips deposited so far this window.
    arrived: usize,
    /// Windows fully completed — the generation counter shards wait on.
    window: usize,
    peak_window_power_w: f64,
}

/// Runs `chips` for `epochs` chip epochs, sharded `shards` ways, with a
/// budget exchange every `period` epochs. Chips are dealt to shards in
/// contiguous chunks; the caller passes `shards >= 1` and
/// `chips.len() >= 1`.
pub(crate) fn run_sharded(
    chips: &mut [Chip],
    arbiter: &mut ClusterArbiter,
    epochs: usize,
    period: usize,
    shards: usize,
) -> ShardOutcome {
    let n_chips = chips.len();
    // Divide the cap once before epoch 0 so every chip starts under a
    // cluster-granted budget (for a lone chip this is exactly the nominal
    // single-chip cap — bit-for-bit).
    let caps = arbiter.bootstrap();
    for chip in chips.iter_mut() {
        chip.set_power_cap(caps[chip.index()]);
    }
    // Window plan: full `period`-epoch windows plus a possibly-shorter
    // tail. Shards must agree on the count, so it derives from config only.
    let n_windows = epochs
        .div_ceil(period.max(1))
        .max(if epochs == 0 { 0 } else { 1 });
    if n_windows == 0 {
        return ShardOutcome {
            exchanges: 0,
            rebudget_moves: 0,
            peak_window_power_w: 0.0,
        };
    }

    let state = Mutex::new(Exchange {
        summaries: vec![None; n_chips],
        caps,
        arrived: 0,
        window: 0,
        peak_window_power_w: 0.0,
    });
    let ready = Condvar::new();
    let arbiter_cell = Mutex::new(arbiter);

    // Contiguous deal: ceil(n/shards) chips per shard, so chip order is
    // preserved within and across shards.
    let chunk = n_chips.div_ceil(shards);
    std::thread::scope(|scope| {
        for shard_chips in chips.chunks_mut(chunk) {
            let state = &state;
            let ready = &ready;
            let arbiter_cell = &arbiter_cell;
            scope.spawn(move || {
                for window in 0..n_windows {
                    let win_epochs = (epochs - window * period).min(period);
                    for chip in shard_chips.iter_mut() {
                        // Per-chip wall clock covers stepping only; the
                        // rendezvous wait below is the shard's overhead.
                        let t0 = Instant::now();
                        for _ in 0..win_epochs {
                            chip.step_epoch();
                        }
                        chip.add_wall(t0.elapsed().as_secs_f64());
                    }
                    // Rendezvous: deposit, and let the last arriver run
                    // the exchange.
                    let mut st = state.lock().expect("exchange mutex poisoned");
                    for chip in shard_chips.iter_mut() {
                        st.summaries[chip.index()] = Some(chip.publish());
                    }
                    st.arrived += shard_chips.len();
                    if st.arrived == n_chips {
                        let summaries: Vec<ChipSummary> = st
                            .summaries
                            .iter_mut()
                            .map(|slot| slot.take().expect("summary slot empty"))
                            .collect();
                        // Chip-order reduction: the window's cluster power
                        // is the sum of per-chip window means.
                        let window_power: f64 = summaries.iter().map(|s| s.avg_power_w).sum();
                        if window_power > st.peak_window_power_w {
                            st.peak_window_power_w = window_power;
                        }
                        if window + 1 < n_windows {
                            let mut arb = arbiter_cell.lock().expect("arbiter mutex poisoned");
                            st.caps = arb.rebudget(&summaries);
                        }
                        st.arrived = 0;
                        st.window += 1;
                        ready.notify_all();
                    } else {
                        while st.window <= window {
                            st = ready.wait(st).expect("exchange condvar poisoned");
                        }
                    }
                    // Install the fresh caps before the next window.
                    if window + 1 < n_windows {
                        for chip in shard_chips.iter_mut() {
                            chip.set_power_cap(st.caps[chip.index()]);
                        }
                    }
                }
            });
        }
    });

    let st = state.into_inner().expect("exchange mutex poisoned");
    let arb = arbiter_cell.into_inner().expect("arbiter mutex poisoned");
    ShardOutcome {
        exchanges: arb.exchanges(),
        rebudget_moves: arb.rebudget_moves(),
        peak_window_power_w: st.peak_window_power_w,
    }
}
