//! Chip sharding: whole chips on pool workers, rendezvous only at
//! exchange windows.
//!
//! Unlike the single-chip [`FleetRunner`](crate::FleetRunner), which
//! synchronizes its workers twice per epoch, the cluster shards
//! synchronize only every
//! [`exchange_period`](crate::ClusterConfig::exchange_period) chip epochs.
//! Each window is one batch on the shared persistent
//! [`WorkerPool`](crate::pool): every shard owns a contiguous run of chips
//! and steps each of them through the whole window back to back — the hot
//! loop takes no locks beyond the uncontended per-shard mutex. Between
//! batches the submitting thread gathers the chips' published
//! [`ChipSummary`](crate::ChipSummary) snapshots in chip order, asks the
//! [`ClusterArbiter`](crate::ClusterArbiter) for fresh per-chip caps, and
//! installs them. The reduction always runs on one thread in chip order —
//! which is what keeps [`ClusterStats`](crate::ClusterStats) bit-identical
//! at any shard count.

use std::sync::Mutex;
use std::time::Instant;

use crate::arbiter::ClusterArbiter;
use crate::chip::Chip;
use crate::stats::ChipSummary;

/// What the sharded run hands back to the cluster runner.
pub(crate) struct ShardOutcome {
    /// Budget exchanges performed (windows minus the final one).
    pub exchanges: u64,
    /// Exchanges that moved at least one chip cap bitwise.
    pub rebudget_moves: u64,
    /// Largest window-mean cluster power observed at any window boundary,
    /// watts (chip-order sum of per-chip window means).
    pub peak_window_power_w: f64,
}

/// Runs `chips` for `epochs` chip epochs, sharded `shards` ways, with a
/// budget exchange every `period` epochs. Chips are dealt to shards in
/// contiguous chunks; the caller passes `shards >= 1` and
/// `chips.len() >= 1`.
pub(crate) fn run_sharded(
    chips: &mut [Chip],
    arbiter: &mut ClusterArbiter,
    epochs: usize,
    period: usize,
    shards: usize,
) -> ShardOutcome {
    let n_chips = chips.len();
    // Divide the cap once before epoch 0 so every chip starts under a
    // cluster-granted budget (for a lone chip this is exactly the nominal
    // single-chip cap — bit-for-bit).
    let caps = arbiter.bootstrap();
    for chip in chips.iter_mut() {
        chip.set_power_cap(caps[chip.index()]);
    }
    // Window plan: full `period`-epoch windows plus a possibly-shorter
    // tail. Derived from config only, so it cannot depend on timing.
    let n_windows = epochs
        .div_ceil(period.max(1))
        .max(if epochs == 0 { 0 } else { 1 });
    if n_windows == 0 {
        return ShardOutcome {
            exchanges: 0,
            rebudget_moves: 0,
            peak_window_power_w: 0.0,
        };
    }

    // Contiguous deal: ceil(n/shards) chips per shard, so chip order is
    // preserved within and across shards.
    let chunk = n_chips.div_ceil(shards);
    let shard_chips: Vec<Mutex<&mut [Chip]>> = chips.chunks_mut(chunk).map(Mutex::new).collect();
    let pool = crate::pool::global();
    let mut peak_window_power_w = 0.0f64;
    let mut summaries: Vec<ChipSummary> = Vec::with_capacity(n_chips);
    for window in 0..n_windows {
        let win_epochs = (epochs - window * period).min(period);
        // One pool batch per window: each shard steps its chips through
        // the whole window back to back.
        pool.run_bounded(shard_chips.len(), shards, &|si| {
            let mut shard = shard_chips[si].lock().expect("shard mutex poisoned");
            for chip in shard.iter_mut() {
                // Per-chip wall clock covers stepping only; the gather
                // below is the cluster's overhead.
                let t0 = Instant::now();
                for _ in 0..win_epochs {
                    chip.step_epoch();
                }
                chip.add_wall(t0.elapsed().as_secs_f64());
            }
        });
        // Exchange on the submitting thread: gather summaries in chip
        // order (shards hold contiguous runs, so shard-major iteration is
        // chip order) and reduce.
        summaries.clear();
        for shard in &shard_chips {
            let mut shard = shard.lock().expect("shard mutex poisoned");
            for chip in shard.iter_mut() {
                summaries.push(chip.publish());
            }
        }
        // Chip-order reduction: the window's cluster power is the sum of
        // per-chip window means.
        let window_power: f64 = summaries.iter().map(|s| s.avg_power_w).sum();
        if window_power > peak_window_power_w {
            peak_window_power_w = window_power;
        }
        // Install the fresh caps before the next window.
        if window + 1 < n_windows {
            let caps = arbiter.rebudget(&summaries);
            for shard in &shard_chips {
                let mut shard = shard.lock().expect("shard mutex poisoned");
                for chip in shard.iter_mut() {
                    chip.set_power_cap(caps[chip.index()]);
                }
            }
        }
    }

    ShardOutcome {
        exchanges: arbiter.exchanges(),
        rebudget_moves: arbiter.rebudget_moves(),
        peak_window_power_w,
    }
}
