//! One chip: the per-core cells plus the chip-local lock-step beat.
//!
//! A [`Chip`] owns N `CoreCell`s, a [`BudgetArbiter`], and (optionally)
//! a [`SharedLlc`] contention model. [`Chip::step_epoch`] advances the
//! whole chip one epoch *serially*, in exactly the beat the worker-pool
//! [`FleetRunner`](crate::FleetRunner) executes — step every core in core
//! order, arbitrate over the core-indexed observation table, retarget —
//! so a chip stepped by the cluster runtime reproduces a single-chip
//! fleet's results bit for bit. Chips are the unit of sharding: the
//! cluster runtime steps whole chips on worker threads with no cross-chip
//! barrier, which is why the chip beat needs no locks at all.

use mimo_core::engine::{fleet_warmup, EpochLoop, StepOutcome, TrackingErrorAccumulator};
use mimo_core::governor::Governor;
use mimo_core::heuristic::{HeuristicTracker, SensitivityRanking};
use mimo_core::telemetry::TelemetrySink;
use mimo_linalg::Vector;
use mimo_sim::fault::{FaultInjector, FaultPlan};
use mimo_sim::llc::SharedLlc;
use mimo_sim::{Plant, Processor, ProcessorBuilder};

use crate::arbiter::{BudgetArbiter, CoreObs};
use crate::bank::BankKind;
use crate::config::{CoreSpec, FleetConfig};
use crate::error::{FleetError, Result};
use crate::stats::{ChipSummary, CoreStats, FleetStats};
use crate::telemetry::CoreTelemetry;

/// Epoch length of each random transient fault injected by
/// [`FleetConfig::fault_rate`].
pub(crate) const TRANSIENT_FAULT_EPOCHS: u64 = 3;

/// One core: a shared epoch engine around the plant/governor pair, plus
/// accumulated error statistics.
pub(crate) struct CoreCell {
    pub(crate) idx: usize,
    pub(crate) spec: CoreSpec,
    /// The observer slot is `Option<TelemetrySink>`: `None` (untraced
    /// fleets) reports statically disabled, so the hot loop skips record
    /// capture entirely and stays bit-and-allocation identical to the
    /// pre-telemetry runtime.
    pub(crate) lp:
        EpochLoop<Box<dyn Governor + Send>, FaultInjector<Processor>, Option<TelemetrySink>>,
    /// Reference active during the current epoch (set by arbitration at
    /// the end of the previous one).
    pub(crate) target: Vector,
    pub(crate) errs: TrackingErrorAccumulator,
    /// Whether the heuristic fallback governor has replaced the original
    /// (done once, on the first quarantine).
    pub(crate) fallback_installed: bool,
}

impl CoreCell {
    /// Runs one epoch and returns the measurement for the arbiter plus
    /// whether this epoch crossed into quarantine.
    pub(crate) fn step(&mut self) -> (CoreObs, bool) {
        let outcome = self.lp.step();
        self.after_step(outcome)
    }

    /// Runs one epoch whose governor decision came from a
    /// [`GovernorBank`](crate::bank::GovernorBank) slot instead of the
    /// cell's own (stale while enrolled) governor. Same observation and
    /// quarantine reporting as [`CoreCell::step`].
    pub(crate) fn step_banked(
        &mut self,
        decision: std::result::Result<&[f64], mimo_core::engine::EpochCause>,
    ) -> (CoreObs, bool) {
        let outcome = self.lp.step_decided(decision);
        self.after_step(outcome)
    }

    /// Shared epilogue of the per-cell and banked steps.
    fn after_step(&mut self, outcome: StepOutcome) -> (CoreObs, bool) {
        // On faulted epochs the engine substitutes the last healthy
        // measurement, so the observation table stays finite.
        let y = self.lp.outputs();
        let obs = CoreObs {
            ips: y[0],
            power: y[1],
        };
        self.errs.record(y, &self.target);
        (obs, matches!(outcome, StepOutcome::Quarantined(_)))
    }

    /// Reacts to a quarantine verdict: the first time around, swap the
    /// failing governor for the rule-based heuristic fallback (which
    /// carries no internal model state to corrupt) and clear the engine's
    /// failure latch so the fallback gets a chance. If the fallback itself
    /// quarantines — a plant fault no governor can mask — the core simply
    /// stays latched and the arbiter keeps it pinned at the floor budget.
    pub(crate) fn handle_quarantine(&mut self) {
        if self.fallback_installed {
            return;
        }
        let grids = self.lp.input_grids().to_vec();
        let ranking = SensitivityRanking::frequency_first(grids.len());
        let fallback = HeuristicTracker::new(grids, ranking, self.target.clone());
        *self.lp.governor_mut() = Box::new(fallback);
        self.lp.set_targets(&self.target);
        self.lp.reset_health();
        self.fallback_installed = true;
    }

    /// Installs the arbiter's new reference for the next epoch.
    pub(crate) fn retarget(&mut self, target: &Vector) {
        self.target.copy_from(target);
        self.lp.set_targets(target);
    }

    /// The L2 way allocation physically in effect this epoch
    /// (post-quantization, post-actuator-faults) — what the shared-LLC
    /// model charges against the chip's way budget.
    pub(crate) fn applied_l2_ways(&self) -> f64 {
        self.lp.plant().inner().config().l2_ways as f64
    }

    /// Installs the shared-LLC miss-pressure multiplier for the next epoch.
    pub(crate) fn set_llc_penalty(&mut self, penalty: f64) {
        self.lp.plant_mut().inner_mut().set_llc_penalty(penalty);
    }

    /// Drains the core after the run: statistics always, telemetry when a
    /// sink was attached.
    pub(crate) fn into_results(mut self) -> (CoreStats, Option<CoreTelemetry>) {
        let avg_ips_err_pct = self.errs.avg_pct(0);
        let avg_power_err_pct = self.errs.avg_pct(1);
        let fault_epochs = self.lp.fault_epochs();
        let quarantine_epoch = self.lp.quarantine_epoch();
        self.lp.finish();
        let (_, plant, sink) = self.lp.into_parts();
        let telemetry = sink.map(|sink| CoreTelemetry {
            core: self.idx,
            trace: sink.trace.to_vec(),
            metrics: sink.metrics,
            quarantine: sink.quarantine,
            summary: sink.summary,
            injected_faults: *plant.injected_by_kind(),
        });
        let totals = plant.inner().totals();
        let stats = CoreStats {
            core: self.idx,
            app: self.spec.app,
            seed: self.spec.seed,
            avg_ips_err_pct,
            avg_power_err_pct,
            avg_power_w: totals.avg_power(),
            energy_j: totals.energy_j,
            instructions_g: totals.instructions_g,
            fault_epochs,
            quarantined: quarantine_epoch.is_some(),
            quarantine_epoch,
        };
        (stats, telemetry)
    }
}

/// Builds every core cell of one fleet/chip configuration. Shared by the
/// worker-pool [`FleetRunner`](crate::FleetRunner) and the cluster's
/// [`Chip`] so both runtimes construct bit-identical plants and governors.
pub(crate) fn build_cells<F>(cfg: &FleetConfig, factory: &mut F) -> Result<Vec<CoreCell>>
where
    F: FnMut(usize, &CoreSpec) -> Box<dyn Governor + Send>,
{
    cfg.validate()?;
    let warmup = fleet_warmup(cfg.epochs);
    let base = Vector::from_slice(&cfg.base_targets);
    let mut cells = Vec::with_capacity(cfg.n_cores);
    for (idx, spec) in cfg.core_specs().into_iter().enumerate() {
        let plant = ProcessorBuilder::new()
            .app(&spec.app)
            .seed(spec.seed)
            .input_set(cfg.input_set)
            .build()?;
        let gov = factory(idx, &spec);
        if gov.num_inputs() != plant.num_inputs() {
            return Err(FleetError::InvalidConfig {
                what: format!(
                    "core {idx}: governor actuates {} inputs, plant has {}",
                    gov.num_inputs(),
                    plant.num_inputs()
                ),
            });
        }
        // Every plant is wrapped in a fault injector; with no faults
        // configured the wrapper is transparent (no RNG draws), so
        // fault-free fleets remain bit-identical to the bare runtime.
        // The transient seed derives from the core's own seed, keeping
        // the fault sequence independent of the worker count.
        let mut plan = if cfg.fault_rate > 0.0 {
            FaultPlan::transient(
                cfg.fault_rate,
                TRANSIENT_FAULT_EPOCHS,
                spec.seed.rotate_left(17) ^ 0xFA01_7B0C_5EED_F417,
            )
        } else {
            FaultPlan::none()
        };
        for (core, fspec) in &cfg.core_faults {
            if *core == idx {
                plan = plan.with_fault(*fspec);
            }
        }
        // A `None` sink is a statically-disabled observer; traced
        // fleets give every core its own sink so no telemetry state is
        // shared across worker threads.
        let sink = if cfg.telemetry.enabled {
            Some(TelemetrySink::new(&cfg.telemetry))
        } else {
            None
        };
        let mut lp = EpochLoop::new(gov, FaultInjector::new(plant, plan)).with_observer(sink);
        lp.set_core(idx);
        lp.set_targets(&base);
        cells.push(CoreCell {
            idx,
            spec,
            lp,
            target: base.clone(),
            errs: TrackingErrorAccumulator::new(2, warmup),
            fallback_installed: false,
        });
    }
    Ok(cells)
}

/// One chip of the cluster: cells, the chip arbiter, and the optional
/// shared-LLC model, stepped serially by [`Chip::step_epoch`].
pub struct Chip {
    index: usize,
    cfg: FleetConfig,
    cells: Vec<CoreCell>,
    /// Batched structure-of-arrays stepping for the healthy cores sharing
    /// the chip's controller shape (`None` for factory-built chips, for
    /// shapes outside the deployed set, or when the config disables it).
    bank: Option<BankKind>,
    /// Core index → bank slot; `None` once a core is evicted to the
    /// per-cell path (quarantine/heuristic fallback) or never enrolled.
    bank_slots: Vec<Option<usize>>,
    arbiter: BudgetArbiter,
    llc: Option<SharedLlc>,
    obs: Vec<CoreObs>,
    quarantined: Vec<bool>,
    ways: Vec<f64>,
    epochs_run: usize,
    /// Cluster-window accumulators, drained by [`Chip::publish`]. These
    /// feed only the cluster layer — never the per-core science — so the
    /// extra arithmetic cannot perturb single-chip results.
    win_power_sum: f64,
    win_ips_sum: f64,
    win_epochs: u64,
    /// Cumulative stepping wall-clock charged by the shard loop
    /// (excludes rendezvous waits).
    wall_s: f64,
}

impl Chip {
    /// Builds chip `index` from a per-chip fleet configuration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetRunner::new`](crate::FleetRunner::new),
    /// plus [`FleetError::Sim`] for an unusable LLC-contention config.
    pub fn build<F>(index: usize, cfg: FleetConfig, factory: &mut F) -> Result<Self>
    where
        F: FnMut(usize, &CoreSpec) -> Box<dyn Governor + Send>,
    {
        Self::build_with_bank(index, cfg, factory, None)
    }

    /// Builds chip `index` around a shared controller, enrolling every
    /// core into a [`GovernorBank`](crate::bank::GovernorBank) when the
    /// controller's shape is banked-capable and the config allows it.
    /// Each cell still carries its own (per-cell-path-identical) governor
    /// so eviction back to per-cell stepping needs no resynthesis; the
    /// banked decisions are bit-identical, so results match
    /// [`Chip::build`] with a `fast_governor` factory exactly.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Chip::build`].
    pub fn build_banked(
        index: usize,
        cfg: FleetConfig,
        ctrl: &mimo_core::LqgController,
    ) -> Result<Self> {
        let bank = if cfg.banked {
            BankKind::try_new(ctrl)
        } else {
            None
        };
        Self::build_with_bank(
            index,
            cfg,
            &mut |_, _| mimo_core::governor::fast_governor(ctrl.clone()),
            bank,
        )
    }

    fn build_with_bank<F>(
        index: usize,
        cfg: FleetConfig,
        factory: &mut F,
        mut bank: Option<BankKind>,
    ) -> Result<Self>
    where
        F: FnMut(usize, &CoreSpec) -> Box<dyn Governor + Send>,
    {
        let cells = build_cells(&cfg, factory)?;
        let n = cells.len();
        // Enroll every core, replaying `build_cells`' base retarget on the
        // bank side so slot state starts bit-identical to each cell's own
        // governor.
        let mut bank_slots = vec![None; n];
        if let Some(bank) = &mut bank {
            let base = Vector::from_slice(&cfg.base_targets);
            for cell in &cells {
                let slot = bank.enroll(cell.idx);
                bank.set_target(slot, &base);
                bank_slots[cell.idx] = Some(slot);
            }
        }
        let priorities: Vec<f64> = cells.iter().map(|c| c.spec.priority).collect();
        let arbiter = BudgetArbiter::new(
            cfg.chip_power_cap_w,
            cfg.policy,
            cfg.base_targets,
            priorities,
        );
        let llc = match cfg.llc {
            Some(lcfg) => Some(SharedLlc::new(lcfg, n)?),
            None => None,
        };
        Ok(Chip {
            index,
            cells,
            bank,
            bank_slots,
            arbiter,
            llc,
            obs: vec![
                CoreObs {
                    ips: 0.0,
                    power: 0.0
                };
                n
            ],
            quarantined: vec![false; n],
            ways: vec![0.0; n],
            epochs_run: 0,
            win_power_sum: 0.0,
            win_ips_sum: 0.0,
            win_epochs: 0,
            wall_s: 0.0,
            cfg,
        })
    }

    /// This chip's index within the cluster.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of cores on the chip.
    pub fn n_cores(&self) -> usize {
        self.cells.len()
    }

    /// Chip epochs stepped so far.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Advances the whole chip one epoch: step every core in core order,
    /// arbitrate over the core-indexed table, refresh the shared-LLC
    /// penalties, retarget. The floating-point operation sequence is
    /// exactly the worker-pool fleet's beat, so a one-chip cluster is
    /// bit-identical to a [`FleetRunner`](crate::FleetRunner) run.
    pub fn step_epoch(&mut self) {
        // Banked pre-pass: decide for every enrolled core in one
        // structure-of-arrays batch. Cores are mutually independent, so
        // deciding before the plant applications is bit-identical to the
        // per-cell interleaving.
        if let Some(bank) = &mut self.bank {
            for cell in &self.cells {
                if let Some(slot) = self.bank_slots[cell.idx] {
                    bank.load_measurement(slot, cell.lp.outputs().as_slice());
                }
            }
            bank.step_all();
        }
        for cell in &mut self.cells {
            let (obs, quarantined_now) = match (&self.bank, self.bank_slots[cell.idx]) {
                (Some(bank), Some(slot)) => cell.step_banked(bank.decision(slot)),
                _ => cell.step(),
            };
            if quarantined_now {
                cell.handle_quarantine();
                // Evict from the bank back to the per-cell path (the
                // heuristic fallback owns the core from here on).
                if let (Some(bank), Some(slot)) =
                    (self.bank.as_mut(), self.bank_slots[cell.idx].take())
                {
                    if let Some(moved) = bank.evict(slot) {
                        self.bank_slots[moved] = Some(slot);
                    }
                }
            }
            // Report the live latch: a core the fallback rescues regains
            // budget; a permanently faulted one stays pinned at the floor.
            self.obs[cell.idx] = obs;
            self.quarantined[cell.idx] = cell.lp.is_quarantined();
            if self.llc.is_some() {
                self.ways[cell.idx] = cell.applied_l2_ways();
            }
        }
        let targets = self
            .arbiter
            .arbitrate_with_quarantine(&self.obs, &self.quarantined);
        if let Some(llc) = &mut self.llc {
            llc.update(&self.ways);
        }
        // Cluster-window bookkeeping, on dedicated accumulators.
        self.win_power_sum += self.arbiter.last_chip_power_w();
        self.win_ips_sum += self.obs.iter().map(|o| o.ips).sum::<f64>();
        self.win_epochs += 1;
        for (cell, target) in self.cells.iter_mut().zip(&targets) {
            match (self.bank.as_mut(), self.bank_slots[cell.idx]) {
                (Some(bank), Some(slot)) => {
                    // The bank owns the controller runtime while the core
                    // is enrolled; skip the stale boxed governor.
                    cell.target.copy_from(target);
                    bank.set_target(slot, target);
                }
                _ => cell.retarget(target),
            }
        }
        if let Some(llc) = &self.llc {
            for cell in &mut self.cells {
                cell.set_llc_penalty(llc.penalty(cell.idx));
            }
        }
        self.epochs_run += 1;
    }

    /// Drains the window accumulators into the `Copy` snapshot the cluster
    /// arbiter consumes at an epoch exchange.
    pub fn publish(&mut self) -> ChipSummary {
        let epochs = self.win_epochs;
        let summary = ChipSummary {
            chip: self.index,
            n_cores: self.cells.len(),
            window_epochs: epochs,
            avg_power_w: if epochs == 0 {
                0.0
            } else {
                self.win_power_sum / epochs as f64
            },
            avg_ips: if epochs == 0 {
                0.0
            } else {
                self.win_ips_sum / epochs as f64
            },
            quarantined_cores: self.quarantined.iter().filter(|&&q| q).count(),
        };
        self.win_power_sum = 0.0;
        self.win_ips_sum = 0.0;
        self.win_epochs = 0;
        summary
    }

    /// Installs the cluster arbiter's fresh power cap for this chip. The
    /// chip's reported `chip_cap_w` tracks the live grant, so drained
    /// statistics show the cap the chip actually ended the run under.
    pub fn set_power_cap(&mut self, cap_w: f64) {
        self.arbiter.set_cap(cap_w);
        self.cfg.chip_power_cap_w = cap_w;
    }

    /// Charges stepping wall-clock to this chip (rendezvous waits are the
    /// shard's, not the chip's).
    pub(crate) fn add_wall(&mut self, seconds: f64) {
        self.wall_s += seconds;
    }

    /// Drains the chip into per-chip fleet statistics plus any per-core
    /// telemetry, assembling them exactly as the worker-pool runner does.
    pub fn into_results(self) -> (FleetStats, Vec<CoreTelemetry>) {
        let mut per_core: Vec<CoreStats> = Vec::with_capacity(self.cells.len());
        let mut telemetry: Vec<CoreTelemetry> = Vec::new();
        for cell in self.cells {
            let (stats, tele) = cell.into_results();
            per_core.push(stats);
            if let Some(t) = tele {
                telemetry.push(t);
            }
        }
        let stats = FleetStats::assemble(
            &self.cfg,
            1,
            self.epochs_run,
            &self.arbiter,
            per_core,
            self.wall_s,
        );
        (stats, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbitrationPolicy;
    use crate::runner::FleetRunner;
    use mimo_core::governor::FixedGovernor;
    use mimo_sim::llc::LlcConfig;

    fn fixed() -> Box<dyn Governor + Send> {
        Box::new(FixedGovernor::new(Vector::from_slice(&[1.3, 6.0])))
    }

    fn cfg() -> FleetConfig {
        FleetConfig::new(4)
            .epochs(120)
            .policy(ArbitrationPolicy::Proportional)
            .seed(7)
    }

    #[test]
    fn serial_chip_matches_fleet_runner_bit_for_bit() {
        let mut chip = Chip::build(0, cfg(), &mut |_, _| fixed()).unwrap();
        for _ in 0..120 {
            chip.step_epoch();
        }
        let (chip_stats, _) = chip.into_results();
        let fleet_stats = FleetRunner::new(cfg().workers(3), |_, _| fixed())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(chip_stats, fleet_stats);
        assert_eq!(chip_stats.digest(), fleet_stats.digest());
    }

    #[test]
    fn publish_drains_the_window() {
        let mut chip = Chip::build(2, cfg(), &mut |_, _| fixed()).unwrap();
        for _ in 0..10 {
            chip.step_epoch();
        }
        let s = chip.publish();
        assert_eq!(s.chip, 2);
        assert_eq!(s.window_epochs, 10);
        assert!(s.avg_power_w > 0.0);
        assert!(s.avg_ips > 0.0);
        assert_eq!(s.quarantined_cores, 0);
        // Drained: a second publish with no stepping reports empty.
        let empty = chip.publish();
        assert_eq!(empty.window_epochs, 0);
        assert_eq!(empty.avg_power_w, 0.0);
    }

    #[test]
    fn uncontended_llc_keeps_results_bit_identical() {
        // Budget = full demand: penalties stay exactly 1.0 and the model
        // must be invisible in the results.
        let roomy = LlcConfig::for_cores(4).total_ways(8 * 4);
        let mut with = Chip::build(0, cfg().llc_contention(roomy), &mut |_, _| fixed()).unwrap();
        let mut without = Chip::build(0, cfg(), &mut |_, _| fixed()).unwrap();
        for _ in 0..120 {
            with.step_epoch();
            without.step_epoch();
        }
        let (a, _) = with.into_results();
        let (b, _) = without.into_results();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn contended_llc_changes_results() {
        // Starve the chip: 1 way per core of budget while the fixed
        // governor holds 6 ways per core → sustained contention.
        let tight = LlcConfig::for_cores(4).total_ways(4);
        let mut with = Chip::build(0, cfg().llc_contention(tight), &mut |_, _| fixed()).unwrap();
        let mut without = Chip::build(0, cfg(), &mut |_, _| fixed()).unwrap();
        for _ in 0..120 {
            with.step_epoch();
            without.step_epoch();
        }
        let (a, _) = with.into_results();
        let (b, _) = without.into_results();
        assert_ne!(a.digest(), b.digest());
        // Contention wastes work: fewer instructions for the same epochs.
        assert!(a.instructions_g < b.instructions_g);
    }
}
