//! Fleet-level error type.

use mimo_sim::SimError;

/// Errors raised while building or running a fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A [`crate::FleetConfig`] field is out of range or inconsistent.
    InvalidConfig {
        /// What is wrong.
        what: String,
    },
    /// Building one of the per-core plants failed.
    Sim(SimError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::InvalidConfig { what } => write!(f, "invalid fleet config: {what}"),
            FleetError::Sim(e) => write!(f, "plant construction failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Sim(e) => Some(e),
            FleetError::InvalidConfig { .. } => None,
        }
    }
}

impl From<SimError> for FleetError {
    fn from(e: SimError) -> Self {
        FleetError::Sim(e)
    }
}

/// Convenient result alias for fleet operations.
pub type Result<T> = std::result::Result<T, FleetError>;
