//! Chip-level power-budget arbitration.
//!
//! The paper's controller governs one core; §VII sketches the decentralized
//! extension — per-core MIMO controllers coordinated by a chip-level
//! authority (the shape ControlPULP realizes in PMU firmware). The
//! [`BudgetArbiter`] is that authority: each epoch it aggregates the cores'
//! measured power, compares the total against the chip cap, and hands every
//! core a fresh `[IPS, power]` reference that its local LQG loop then
//! tracks. Arbitration operates purely on targets — the per-core
//! controllers remain untouched, which is what makes the scheme
//! decentralized.

use mimo_linalg::Vector;
use serde::Serialize;

use crate::stats::ChipSummary;

/// How the chip cap is split across cores each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Every core gets `cap / n` regardless of demand.
    Uniform,
    /// Budgets proportional to each core's measured power draw — cores
    /// that demonstrably use power keep it, idle cores donate headroom.
    Proportional,
    /// Budgets proportional to static per-core priority weights.
    PriorityWeighted,
}

impl ArbitrationPolicy {
    /// Stable label used in CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            ArbitrationPolicy::Uniform => "uniform",
            ArbitrationPolicy::Proportional => "proportional",
            ArbitrationPolicy::PriorityWeighted => "priority",
        }
    }
}

/// One core's observation consumed by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoreObs {
    /// Measured performance, BIPS.
    pub ips: f64,
    /// Measured power, watts.
    pub power: f64,
}

/// The chip-level budget arbiter.
#[derive(Debug, Clone)]
pub struct BudgetArbiter {
    cap_w: f64,
    policy: ArbitrationPolicy,
    base_targets: [f64; 2],
    priorities: Vec<f64>,
    /// Epochs in which measured chip power exceeded the cap.
    violations: u64,
    epochs: u64,
    power_sum: f64,
    peak_power: f64,
    /// Chip power total of the most recent arbitration (pure store of an
    /// already-computed value — recording it changes no floating point).
    last_power: f64,
    /// Per-core grants issued below the nominal power target (one per
    /// throttled core per epoch).
    throttle_events: u64,
}

/// Floor on the per-core power target as a fraction of the nominal target;
/// keeps throttled cores controllable (a zero-power reference would ask
/// the LQG loop for an unreachable point and wind up its integrator).
pub(crate) const MIN_TARGET_FRACTION: f64 = 0.2;

impl BudgetArbiter {
    /// Creates an arbiter for `priorities.len()` cores under `cap_w`.
    pub fn new(
        cap_w: f64,
        policy: ArbitrationPolicy,
        base_targets: [f64; 2],
        priorities: Vec<f64>,
    ) -> Self {
        assert!(!priorities.is_empty(), "arbiter needs at least one core");
        assert!(cap_w > 0.0, "cap must be positive");
        BudgetArbiter {
            cap_w,
            policy,
            base_targets,
            priorities,
            violations: 0,
            epochs: 0,
            power_sum: 0.0,
            peak_power: 0.0,
            last_power: 0.0,
            throttle_events: 0,
        }
    }

    /// Number of cores arbitrated.
    pub fn n_cores(&self) -> usize {
        self.priorities.len()
    }

    /// The chip cap in watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Replaces the chip cap — how the cluster arbiter retunes a chip at
    /// an epoch exchange. Takes effect from the next arbitration.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive cap.
    pub fn set_cap(&mut self, cap_w: f64) {
        assert!(
            cap_w.is_finite() && cap_w > 0.0,
            "cap {cap_w} must be finite and positive"
        );
        self.cap_w = cap_w;
    }

    /// Measured chip power total of the most recent arbitration epoch.
    pub fn last_chip_power_w(&self) -> f64 {
        self.last_power
    }

    /// Epochs observed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Epochs in which the measured chip power exceeded the cap.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Total per-core power grants issued below the nominal target — one
    /// event per throttled core per epoch. Counted by pure comparison on
    /// the granted targets, so enabling the counter changes no
    /// floating-point results.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// Mean measured chip power over all observed epochs.
    pub fn avg_chip_power_w(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.power_sum / self.epochs as f64
        }
    }

    /// Highest measured chip power in any epoch.
    pub fn peak_chip_power_w(&self) -> f64 {
        self.peak_power
    }

    /// Consumes this epoch's per-core observations (indexed by core) and
    /// returns each core's next `[IPS, power]` targets.
    ///
    /// Deterministic: inputs are indexed by core and every reduction runs
    /// in core order, so the result is identical no matter how many worker
    /// threads produced the observations.
    pub fn arbitrate(&mut self, observed: &[CoreObs]) -> Vec<Vector> {
        self.arbitrate_with_quarantine(observed, &[])
    }

    /// Like [`BudgetArbiter::arbitrate`], but pins every quarantined core
    /// (marked `true` in `quarantined`, indexed by core; an empty slice
    /// means none) at the floor power target and redistributes the freed
    /// budget across the healthy cores per the policy. With no quarantined
    /// cores this evaluates the exact floating-point operations of the
    /// unmasked path, keeping fault-free runs bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `observed` (or a non-empty `quarantined`) does not have
    /// one entry per core.
    pub fn arbitrate_with_quarantine(
        &mut self,
        observed: &[CoreObs],
        quarantined: &[bool],
    ) -> Vec<Vector> {
        assert_eq!(observed.len(), self.n_cores(), "observation count");
        assert!(
            quarantined.is_empty() || quarantined.len() == self.n_cores(),
            "quarantine mask length"
        );
        let n = self.n_cores() as f64;
        let [base_ips, base_power] = self.base_targets;
        let floor = MIN_TARGET_FRACTION * base_power;
        let is_q = |i: usize| quarantined.get(i).copied().unwrap_or(false);
        let n_quarantined = (0..self.n_cores()).filter(|&i| is_q(i)).count();

        // A quarantined core's sensor is exactly what failed, so its entry
        // in the observation table is a stale last-good reading. Chip power
        // accounting substitutes the pinned floor target for those cores;
        // with nothing quarantined this is the plain sum, bit for bit.
        let total: f64 = if n_quarantined == 0 {
            observed.iter().map(|o| o.power).sum()
        } else {
            observed
                .iter()
                .enumerate()
                .map(|(i, o)| if is_q(i) { floor } else { o.power })
                .sum()
        };
        self.epochs += 1;
        self.power_sum += total;
        self.last_power = total;
        if total > self.peak_power {
            self.peak_power = total;
        }
        if total > self.cap_w {
            self.violations += 1;
        }

        let mut throttled = 0u64;
        if n_quarantined == 0 {
            let weight_sum: f64 = self.priorities.iter().sum();
            let targets: Vec<Vector> = observed
                .iter()
                .enumerate()
                .map(|(i, obs)| {
                    let budget = match self.policy {
                        ArbitrationPolicy::Uniform => self.cap_w / n,
                        ArbitrationPolicy::Proportional => {
                            if total > 0.0 {
                                self.cap_w * obs.power / total
                            } else {
                                self.cap_w / n
                            }
                        }
                        ArbitrationPolicy::PriorityWeighted => {
                            self.cap_w * self.priorities[i] / weight_sum
                        }
                    };
                    // A core never asks for more than its nominal target; under
                    // pressure it is throttled toward (but not below) the floor.
                    let p_target = budget.clamp(floor, base_power);
                    if p_target < base_power {
                        throttled += 1;
                    }
                    // Performance references scale with the granted power share
                    // so the local loop chases a consistent (IPS, P) pair.
                    let ips_target = base_ips * (p_target / base_power);
                    Vector::from_slice(&[ips_target, p_target])
                })
                .collect();
            self.throttle_events += throttled;
            return targets;
        }

        // Degraded mode: quarantined cores are pinned at the floor (their
        // fallback governors should coast, not chase an aggressive target)
        // and the budget they free up is shared among the healthy cores.
        let healthy_n = self.n_cores() - n_quarantined;
        let healthy_cap = (self.cap_w - n_quarantined as f64 * floor).max(0.0);
        let healthy_total: f64 = observed
            .iter()
            .enumerate()
            .filter(|&(i, _)| !is_q(i))
            .map(|(_, o)| o.power)
            .sum();
        let healthy_weight_sum: f64 = self
            .priorities
            .iter()
            .enumerate()
            .filter(|&(i, _)| !is_q(i))
            .map(|(_, &w)| w)
            .sum();
        let targets: Vec<Vector> = observed
            .iter()
            .enumerate()
            .map(|(i, obs)| {
                let p_target = if is_q(i) || healthy_n == 0 {
                    floor
                } else {
                    let budget = match self.policy {
                        ArbitrationPolicy::Uniform => healthy_cap / healthy_n as f64,
                        ArbitrationPolicy::Proportional => {
                            if healthy_total > 0.0 {
                                healthy_cap * obs.power / healthy_total
                            } else {
                                healthy_cap / healthy_n as f64
                            }
                        }
                        ArbitrationPolicy::PriorityWeighted => {
                            healthy_cap * self.priorities[i] / healthy_weight_sum
                        }
                    };
                    budget.clamp(floor, base_power)
                };
                if p_target < base_power {
                    throttled += 1;
                }
                let ips_target = base_ips * (p_target / base_power);
                Vector::from_slice(&[ips_target, p_target])
            })
            .collect();
        self.throttle_events += throttled;
        targets
    }
}

/// The cluster-level budget arbiter: re-divides a datacenter power cap
/// across chips at every epoch exchange.
///
/// Where the [`BudgetArbiter`] hands *cores* `[IPS, power]` references
/// every epoch, the `ClusterArbiter` hands *chips* power caps every K
/// epochs, from each chip's last published [`ChipSummary`]. The same
/// [`ArbitrationPolicy`] vocabulary applies — uniform, proportional to
/// measured chip power, or priority-weighted — and the same two guard
/// rails: a chip never receives more than its nominal cap, and never less
/// than its floor (its core count times the per-core floor target), except
/// when the cluster cap itself cannot cover the summed floors, in which
/// case every floor is scaled proportionally so no chip ever sees a
/// negative or zero budget.
///
/// Determinism: `rebudget` reduces the chip-indexed summaries in chip
/// order and is pure in its inputs, so cluster results are bit-identical
/// at any shard count.
#[derive(Debug, Clone)]
pub struct ClusterArbiter {
    cap_w: f64,
    policy: ArbitrationPolicy,
    /// Per-chip nominal caps (the cap each chip was configured with).
    nominal: Vec<f64>,
    /// Per-chip floors: `n_cores * MIN_TARGET_FRACTION * base_power`,
    /// matching what the chip's own arbiter pins a fully-quarantined chip
    /// to.
    floors: Vec<f64>,
    priorities: Vec<f64>,
    /// Most recently granted caps, indexed by chip.
    caps: Vec<f64>,
    exchanges: u64,
    /// Exchanges in which at least one chip's cap moved (bitwise).
    rebudget_moves: u64,
}

impl ClusterArbiter {
    /// Creates an arbiter over `nominal.len()` chips under `cap_w`.
    ///
    /// # Panics
    ///
    /// Panics on empty/mismatched per-chip vectors, a non-positive cap, or
    /// a floor above its chip's nominal cap.
    pub fn new(
        cap_w: f64,
        policy: ArbitrationPolicy,
        nominal: Vec<f64>,
        floors: Vec<f64>,
        priorities: Vec<f64>,
    ) -> Self {
        assert!(
            !nominal.is_empty(),
            "cluster arbiter needs at least one chip"
        );
        assert_eq!(nominal.len(), floors.len(), "floor count");
        assert_eq!(nominal.len(), priorities.len(), "priority count");
        assert!(cap_w.is_finite() && cap_w > 0.0, "cap must be positive");
        for (i, (&f, &n)) in floors.iter().zip(&nominal).enumerate() {
            assert!(f > 0.0 && f <= n, "chip {i}: floor {f} vs nominal {n}");
        }
        let caps = nominal.clone();
        ClusterArbiter {
            cap_w,
            policy,
            nominal,
            floors,
            priorities,
            caps,
            exchanges: 0,
            rebudget_moves: 0,
        }
    }

    /// Number of chips arbitrated.
    pub fn n_chips(&self) -> usize {
        self.nominal.len()
    }

    /// The cluster power cap in watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// The most recently granted per-chip caps, indexed by chip.
    pub fn caps(&self) -> &[f64] {
        &self.caps
    }

    /// Epoch exchanges processed so far (bootstrap excluded).
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Exchanges in which at least one chip's cap changed bit-wise — the
    /// count of times the cluster actually moved budget between chips.
    pub fn rebudget_moves(&self) -> u64 {
        self.rebudget_moves
    }

    /// Divides the cluster cap before any epoch has run (no summaries
    /// exist yet): all chips healthy, zero measured power, so every policy
    /// degrades to the uniform split. Does not count as an exchange.
    pub fn bootstrap(&mut self) -> Vec<f64> {
        let blank: Vec<ChipSummary> = (0..self.n_chips())
            .map(|chip| ChipSummary {
                chip,
                n_cores: 1,
                window_epochs: 0,
                avg_power_w: 0.0,
                avg_ips: 0.0,
                quarantined_cores: 0,
            })
            .collect();
        self.caps = self.compute(&blank);
        self.caps.clone()
    }

    /// Consumes the chips' window summaries (indexed by chip) and returns
    /// each chip's next power cap. Reductions run in chip order.
    ///
    /// A chip whose every core is quarantined is pinned at its floor and
    /// its headroom is redistributed to the healthy chips; when the
    /// cluster cap is below the sum of floors, every floor scales
    /// proportionally instead (no chip budget ever reaches zero).
    ///
    /// # Panics
    ///
    /// Panics if `summaries` does not have one entry per chip.
    pub fn rebudget(&mut self, summaries: &[ChipSummary]) -> Vec<f64> {
        let caps = self.compute(summaries);
        self.exchanges += 1;
        if caps
            .iter()
            .zip(&self.caps)
            .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            self.rebudget_moves += 1;
        }
        self.caps = caps;
        self.caps.clone()
    }

    fn compute(&self, summaries: &[ChipSummary]) -> Vec<f64> {
        assert_eq!(summaries.len(), self.n_chips(), "summary count");
        let n = self.n_chips();
        let floor_sum: f64 = self.floors.iter().sum();
        if self.cap_w < floor_sum {
            // Proportional floor scaling: every chip below its floor, none
            // negative, and the grants still sum to the cluster cap.
            return self
                .floors
                .iter()
                .map(|&f| self.cap_w * f / floor_sum)
                .collect();
        }
        let dead = |i: usize| {
            summaries[i].n_cores > 0 && summaries[i].quarantined_cores == summaries[i].n_cores
        };
        let dead_floor: f64 = (0..n).filter(|&i| dead(i)).map(|i| self.floors[i]).sum();
        let healthy: Vec<usize> = (0..n).filter(|&i| !dead(i)).collect();
        if healthy.is_empty() {
            // Every chip fully quarantined: pin the whole cluster at floors.
            return self.floors.clone();
        }
        let avail = self.cap_w - dead_floor;
        if let [only] = healthy[..] {
            // Single eligible chip: grant the whole remainder directly.
            // (Clamping `avail` itself — rather than `avail * w / w_sum`,
            // which is not bit-exactly `avail` in IEEE arithmetic — is what
            // lets a one-chip cluster reproduce the configured chip cap bit
            // for bit.)
            return (0..n)
                .map(|i| {
                    if i == only {
                        avail.clamp(self.floors[i], self.nominal[i])
                    } else {
                        self.floors[i]
                    }
                })
                .collect();
        }
        let weight = |i: usize| match self.policy {
            ArbitrationPolicy::Uniform => 1.0,
            ArbitrationPolicy::Proportional => summaries[i].avg_power_w,
            ArbitrationPolicy::PriorityWeighted => self.priorities[i],
        };
        let mut weight_sum: f64 = healthy.iter().map(|&i| weight(i)).sum();
        let uniform = weight_sum <= 0.0; // zero-power proportional window
        if uniform {
            weight_sum = healthy.len() as f64;
        }
        (0..n)
            .map(|i| {
                if dead(i) {
                    self.floors[i]
                } else {
                    let w = if uniform { 1.0 } else { weight(i) };
                    let budget = avail * w / weight_sum;
                    budget.clamp(self.floors[i], self.nominal[i])
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(powers: &[f64]) -> Vec<CoreObs> {
        powers
            .iter()
            .map(|&p| CoreObs { ips: 2.0, power: p })
            .collect()
    }

    #[test]
    fn uniform_splits_evenly() {
        let mut arb = BudgetArbiter::new(4.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 4]);
        let t = arb.arbitrate(&obs(&[2.0, 0.5, 0.5, 0.5]));
        for target in &t {
            assert!((target[1] - 1.0).abs() < 1e-12, "{target:?}");
        }
    }

    #[test]
    fn proportional_follows_demand() {
        let mut arb = BudgetArbiter::new(
            2.0,
            ArbitrationPolicy::Proportional,
            [3.0, 1.9],
            vec![1.0; 2],
        );
        let t = arb.arbitrate(&obs(&[1.5, 0.5]));
        // 3:1 demand ratio → 1.5 W vs 0.5 W budgets.
        assert!((t[0][1] - 1.5).abs() < 1e-12, "{:?}", t[0]);
        assert!((t[1][1] - 0.5).abs() < 1e-12, "{:?}", t[1]);
        // IPS targets scale with the granted power share.
        assert!(t[0][0] > t[1][0]);
    }

    #[test]
    fn priority_weights_split_budget() {
        let mut arb = BudgetArbiter::new(
            3.0,
            ArbitrationPolicy::PriorityWeighted,
            [3.0, 1.9],
            vec![2.0, 1.0],
        );
        let t = arb.arbitrate(&obs(&[1.0, 1.0]));
        assert!((t[0][1] - 1.9).abs() < 1e-12, "capped at base: {:?}", t[0]);
        assert!((t[1][1] - 1.0).abs() < 1e-12, "{:?}", t[1]);
    }

    #[test]
    fn targets_never_exceed_base_or_fall_below_floor() {
        let mut arb =
            BudgetArbiter::new(100.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        // Huge cap: clamp at base targets.
        let t = arb.arbitrate(&obs(&[1.0, 1.0]));
        assert_eq!(t[0].as_slice(), &[3.0, 1.9]);
        // Tiny cap: floor at 20% of base.
        let mut tight =
            BudgetArbiter::new(0.01, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        let t = tight.arbitrate(&obs(&[1.0, 1.0]));
        assert!((t[0][1] - 0.2 * 1.9).abs() < 1e-12);
    }

    #[test]
    fn violations_and_aggregates_track() {
        let mut arb = BudgetArbiter::new(2.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        arb.arbitrate(&obs(&[0.5, 0.5])); // 1.0 W, under
        arb.arbitrate(&obs(&[1.5, 1.5])); // 3.0 W, over
        assert_eq!(arb.epochs(), 2);
        assert_eq!(arb.violations(), 1);
        assert!((arb.avg_chip_power_w() - 2.0).abs() < 1e-12);
        assert!((arb.peak_chip_power_w() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn throttle_events_count_below_nominal_grants() {
        // Huge cap: every grant clamps at the base target, no throttling.
        let mut roomy =
            BudgetArbiter::new(100.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        roomy.arbitrate(&obs(&[1.0, 1.0]));
        assert_eq!(roomy.throttle_events(), 0);
        // Tight cap: both cores throttled, every epoch.
        let mut tight =
            BudgetArbiter::new(1.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        tight.arbitrate(&obs(&[1.0, 1.0]));
        tight.arbitrate(&obs(&[1.0, 1.0]));
        assert_eq!(tight.throttle_events(), 4);
        // Quarantined cores pinned at the floor count as throttled too.
        let mut q = BudgetArbiter::new(100.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        q.arbitrate_with_quarantine(&obs(&[1.0, 1.0]), &[true, false]);
        assert_eq!(q.throttle_events(), 1);
    }

    #[test]
    fn quarantine_pins_floor_and_redistributes() {
        let mut arb = BudgetArbiter::new(4.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 4]);
        let t = arb.arbitrate_with_quarantine(&obs(&[1.0; 4]), &[true, false, false, false]);
        let floor = 0.2 * 1.9;
        assert!((t[0][1] - floor).abs() < 1e-12, "{:?}", t[0]);
        // The freed budget flows to the three healthy cores.
        let share = ((4.0 - floor) / 3.0).clamp(floor, 1.9);
        for target in &t[1..] {
            assert!((target[1] - share).abs() < 1e-12, "{target:?}");
        }
        // Quarantined IPS reference scales down with the power floor.
        assert!(t[0][0] < t[1][0]);
    }

    #[test]
    fn all_false_mask_is_bit_identical_to_unmasked() {
        let powers = [1.7, 0.3, 0.9, 1.1];
        for policy in [
            ArbitrationPolicy::Uniform,
            ArbitrationPolicy::Proportional,
            ArbitrationPolicy::PriorityWeighted,
        ] {
            let pri = vec![2.0, 1.0, 1.0, 0.5];
            let mut a = BudgetArbiter::new(3.3, policy, [3.0, 1.9], pri.clone());
            let mut b = BudgetArbiter::new(3.3, policy, [3.0, 1.9], pri);
            let ta = a.arbitrate(&obs(&powers));
            let tb = b.arbitrate_with_quarantine(&obs(&powers), &[false; 4]);
            for (x, y) in ta.iter().zip(&tb) {
                assert_eq!(x[0].to_bits(), y[0].to_bits(), "{policy:?}");
                assert_eq!(x[1].to_bits(), y[1].to_bits(), "{policy:?}");
            }
        }
    }

    #[test]
    fn fully_quarantined_fleet_pins_everyone_at_floor() {
        let mut arb = BudgetArbiter::new(
            2.0,
            ArbitrationPolicy::Proportional,
            [3.0, 1.9],
            vec![1.0; 2],
        );
        let t = arb.arbitrate_with_quarantine(&obs(&[1.0, 1.0]), &[true, true]);
        for target in &t {
            assert!((target[1] - 0.2 * 1.9).abs() < 1e-12, "{target:?}");
        }
    }

    #[test]
    fn zero_power_proportional_degrades_to_uniform() {
        let mut arb = BudgetArbiter::new(
            1.0,
            ArbitrationPolicy::Proportional,
            [3.0, 1.9],
            vec![1.0; 2],
        );
        let t = arb.arbitrate(&obs(&[0.0, 0.0]));
        assert!((t[0][1] - t[1][1]).abs() < 1e-12);
    }

    #[test]
    fn set_cap_retunes_subsequent_arbitrations() {
        let mut arb = BudgetArbiter::new(4.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 4]);
        let before = arb.arbitrate(&obs(&[1.0; 4]));
        arb.set_cap(2.0);
        let after = arb.arbitrate(&obs(&[1.0; 4]));
        assert!((before[0][1] - 1.0).abs() < 1e-12);
        assert!((after[0][1] - 0.5).abs() < 1e-12);
        assert!((arb.last_chip_power_w() - 4.0).abs() < 1e-12);
    }

    // --- ClusterArbiter -------------------------------------------------

    /// 4-core chips with the default targets: floor = 4 · 0.2 · 1.9.
    fn summaries(avg_powers: &[f64]) -> Vec<ChipSummary> {
        avg_powers
            .iter()
            .enumerate()
            .map(|(chip, &p)| ChipSummary {
                chip,
                n_cores: 4,
                window_epochs: 25,
                avg_power_w: p,
                avg_ips: 8.0,
                quarantined_cores: 0,
            })
            .collect()
    }

    fn cluster(cap: f64, policy: ArbitrationPolicy, chips: usize) -> ClusterArbiter {
        let floor: f64 = 4.0 * 0.2 * 1.9;
        ClusterArbiter::new(
            cap,
            policy,
            vec![4.8; chips],
            vec![floor; chips],
            vec![1.0; chips],
        )
    }

    #[test]
    fn cluster_uniform_splits_and_clamps_to_nominal() {
        let mut arb = cluster(19.2, ArbitrationPolicy::Uniform, 4);
        let caps = arb.rebudget(&summaries(&[3.0, 1.0, 1.0, 1.0]));
        for &c in &caps {
            assert!((c - 4.8).abs() < 1e-12, "{caps:?}");
        }
        assert_eq!(arb.exchanges(), 1);
    }

    #[test]
    fn cluster_proportional_follows_chip_demand() {
        let mut arb = cluster(8.0, ArbitrationPolicy::Proportional, 2);
        let caps = arb.rebudget(&summaries(&[3.0, 1.0]));
        // 3:1 demand split of 8 W → 6 W vs 2 W, clamped to nominal 4.8.
        assert!((caps[0] - 4.8).abs() < 1e-12, "{caps:?}");
        assert!((caps[1] - 2.0).abs() < 1e-12, "{caps:?}");
        assert_eq!(arb.rebudget_moves(), 1);
    }

    #[test]
    fn single_chip_cluster_grants_the_exact_cap() {
        // Bit-exactness, not approximation: this is what lets a one-chip
        // cluster reproduce the single-chip golden digests.
        for policy in [
            ArbitrationPolicy::Uniform,
            ArbitrationPolicy::Proportional,
            ArbitrationPolicy::PriorityWeighted,
        ] {
            let mut arb = cluster(4.8, policy, 1);
            let caps = arb.rebudget(&summaries(&[3.7]));
            assert_eq!(caps[0].to_bits(), 4.8f64.to_bits(), "{policy:?}");
            let boot = cluster(4.8, policy, 1).bootstrap();
            assert_eq!(boot[0].to_bits(), 4.8f64.to_bits(), "{policy:?}");
        }
    }

    #[test]
    fn dead_chip_pinned_at_floor_and_budget_redistributed() {
        let mut arb = cluster(12.0, ArbitrationPolicy::Uniform, 3);
        let mut s = summaries(&[2.0, 2.0, 2.0]);
        s[1].quarantined_cores = 4; // every core on chip 1 quarantined
        let caps = arb.rebudget(&s);
        let floor: f64 = 4.0 * 0.2 * 1.9;
        assert_eq!(caps[1].to_bits(), floor.to_bits());
        // The freed budget flows to the healthy chips (capped at nominal).
        let share = ((12.0 - floor) / 2.0).clamp(floor, 4.8);
        assert!((caps[0] - share).abs() < 1e-12, "{caps:?}");
        assert!((caps[2] - share).abs() < 1e-12, "{caps:?}");
        // Partial quarantine is NOT dead: the chip's own arbiter handles it.
        let mut partial = summaries(&[2.0, 2.0, 2.0]);
        partial[1].quarantined_cores = 3;
        let caps = arb.rebudget(&partial);
        assert!(caps[1] > floor, "{caps:?}");
    }

    #[test]
    fn all_chips_dead_pins_every_floor() {
        let mut arb = cluster(12.0, ArbitrationPolicy::Proportional, 2);
        let mut s = summaries(&[2.0, 2.0]);
        s[0].quarantined_cores = 4;
        s[1].quarantined_cores = 4;
        let caps = arb.rebudget(&s);
        let floor: f64 = 4.0 * 0.2 * 1.9;
        assert_eq!(caps[0].to_bits(), floor.to_bits());
        assert_eq!(caps[1].to_bits(), floor.to_bits());
    }

    #[test]
    fn cap_below_floor_sum_scales_floors_proportionally() {
        // 3 chips, floor 1.52 each, floor sum 4.56 — cap 2.28 is half.
        let mut arb = cluster(2.28, ArbitrationPolicy::Proportional, 3);
        let caps = arb.rebudget(&summaries(&[2.0, 0.1, 9.0]));
        let floor: f64 = 4.0 * 0.2 * 1.9;
        for &c in &caps {
            assert!(c > 0.0, "no negative or zero grants: {caps:?}");
            assert!((c - 0.5 * floor).abs() < 1e-12, "{caps:?}");
        }
        // Grants still sum to the cluster cap.
        assert!((caps.iter().sum::<f64>() - 2.28).abs() < 1e-12);
    }

    #[test]
    fn zero_power_window_degrades_to_uniform() {
        let mut arb = cluster(4.0, ArbitrationPolicy::Proportional, 2);
        let caps = arb.rebudget(&summaries(&[0.0, 0.0]));
        assert_eq!(caps[0].to_bits(), caps[1].to_bits());
        assert!(caps[0] >= 4.0 * 0.2 * 1.9);
    }

    #[test]
    fn unmoved_exchange_does_not_count_as_a_move() {
        let mut arb = cluster(19.2, ArbitrationPolicy::Uniform, 4);
        arb.bootstrap();
        arb.rebudget(&summaries(&[1.0; 4]));
        arb.rebudget(&summaries(&[1.0; 4]));
        assert_eq!(arb.exchanges(), 2);
        // Uniform split of an ample cap clamps at nominal every time — the
        // caps never move.
        assert_eq!(arb.rebudget_moves(), 0);
    }
}
