//! Chip-level power-budget arbitration.
//!
//! The paper's controller governs one core; §VII sketches the decentralized
//! extension — per-core MIMO controllers coordinated by a chip-level
//! authority (the shape ControlPULP realizes in PMU firmware). The
//! [`BudgetArbiter`] is that authority: each epoch it aggregates the cores'
//! measured power, compares the total against the chip cap, and hands every
//! core a fresh `[IPS, power]` reference that its local LQG loop then
//! tracks. Arbitration operates purely on targets — the per-core
//! controllers remain untouched, which is what makes the scheme
//! decentralized.

use mimo_linalg::Vector;
use serde::Serialize;

/// How the chip cap is split across cores each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Every core gets `cap / n` regardless of demand.
    Uniform,
    /// Budgets proportional to each core's measured power draw — cores
    /// that demonstrably use power keep it, idle cores donate headroom.
    Proportional,
    /// Budgets proportional to static per-core priority weights.
    PriorityWeighted,
}

impl ArbitrationPolicy {
    /// Stable label used in CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            ArbitrationPolicy::Uniform => "uniform",
            ArbitrationPolicy::Proportional => "proportional",
            ArbitrationPolicy::PriorityWeighted => "priority",
        }
    }
}

/// One core's observation consumed by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoreObs {
    /// Measured performance, BIPS.
    pub ips: f64,
    /// Measured power, watts.
    pub power: f64,
}

/// The chip-level budget arbiter.
#[derive(Debug, Clone)]
pub struct BudgetArbiter {
    cap_w: f64,
    policy: ArbitrationPolicy,
    base_targets: [f64; 2],
    priorities: Vec<f64>,
    /// Epochs in which measured chip power exceeded the cap.
    violations: u64,
    epochs: u64,
    power_sum: f64,
    peak_power: f64,
    /// Per-core grants issued below the nominal power target (one per
    /// throttled core per epoch).
    throttle_events: u64,
}

/// Floor on the per-core power target as a fraction of the nominal target;
/// keeps throttled cores controllable (a zero-power reference would ask
/// the LQG loop for an unreachable point and wind up its integrator).
const MIN_TARGET_FRACTION: f64 = 0.2;

impl BudgetArbiter {
    /// Creates an arbiter for `priorities.len()` cores under `cap_w`.
    pub fn new(
        cap_w: f64,
        policy: ArbitrationPolicy,
        base_targets: [f64; 2],
        priorities: Vec<f64>,
    ) -> Self {
        assert!(!priorities.is_empty(), "arbiter needs at least one core");
        assert!(cap_w > 0.0, "cap must be positive");
        BudgetArbiter {
            cap_w,
            policy,
            base_targets,
            priorities,
            violations: 0,
            epochs: 0,
            power_sum: 0.0,
            peak_power: 0.0,
            throttle_events: 0,
        }
    }

    /// Number of cores arbitrated.
    pub fn n_cores(&self) -> usize {
        self.priorities.len()
    }

    /// The chip cap in watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Epochs observed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Epochs in which the measured chip power exceeded the cap.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Total per-core power grants issued below the nominal target — one
    /// event per throttled core per epoch. Counted by pure comparison on
    /// the granted targets, so enabling the counter changes no
    /// floating-point results.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// Mean measured chip power over all observed epochs.
    pub fn avg_chip_power_w(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.power_sum / self.epochs as f64
        }
    }

    /// Highest measured chip power in any epoch.
    pub fn peak_chip_power_w(&self) -> f64 {
        self.peak_power
    }

    /// Consumes this epoch's per-core observations (indexed by core) and
    /// returns each core's next `[IPS, power]` targets.
    ///
    /// Deterministic: inputs are indexed by core and every reduction runs
    /// in core order, so the result is identical no matter how many worker
    /// threads produced the observations.
    pub fn arbitrate(&mut self, observed: &[CoreObs]) -> Vec<Vector> {
        self.arbitrate_with_quarantine(observed, &[])
    }

    /// Like [`BudgetArbiter::arbitrate`], but pins every quarantined core
    /// (marked `true` in `quarantined`, indexed by core; an empty slice
    /// means none) at the floor power target and redistributes the freed
    /// budget across the healthy cores per the policy. With no quarantined
    /// cores this evaluates the exact floating-point operations of the
    /// unmasked path, keeping fault-free runs bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `observed` (or a non-empty `quarantined`) does not have
    /// one entry per core.
    pub fn arbitrate_with_quarantine(
        &mut self,
        observed: &[CoreObs],
        quarantined: &[bool],
    ) -> Vec<Vector> {
        assert_eq!(observed.len(), self.n_cores(), "observation count");
        assert!(
            quarantined.is_empty() || quarantined.len() == self.n_cores(),
            "quarantine mask length"
        );
        let n = self.n_cores() as f64;
        let [base_ips, base_power] = self.base_targets;
        let floor = MIN_TARGET_FRACTION * base_power;
        let is_q = |i: usize| quarantined.get(i).copied().unwrap_or(false);
        let n_quarantined = (0..self.n_cores()).filter(|&i| is_q(i)).count();

        // A quarantined core's sensor is exactly what failed, so its entry
        // in the observation table is a stale last-good reading. Chip power
        // accounting substitutes the pinned floor target for those cores;
        // with nothing quarantined this is the plain sum, bit for bit.
        let total: f64 = if n_quarantined == 0 {
            observed.iter().map(|o| o.power).sum()
        } else {
            observed
                .iter()
                .enumerate()
                .map(|(i, o)| if is_q(i) { floor } else { o.power })
                .sum()
        };
        self.epochs += 1;
        self.power_sum += total;
        if total > self.peak_power {
            self.peak_power = total;
        }
        if total > self.cap_w {
            self.violations += 1;
        }

        let mut throttled = 0u64;
        if n_quarantined == 0 {
            let weight_sum: f64 = self.priorities.iter().sum();
            let targets: Vec<Vector> = observed
                .iter()
                .enumerate()
                .map(|(i, obs)| {
                    let budget = match self.policy {
                        ArbitrationPolicy::Uniform => self.cap_w / n,
                        ArbitrationPolicy::Proportional => {
                            if total > 0.0 {
                                self.cap_w * obs.power / total
                            } else {
                                self.cap_w / n
                            }
                        }
                        ArbitrationPolicy::PriorityWeighted => {
                            self.cap_w * self.priorities[i] / weight_sum
                        }
                    };
                    // A core never asks for more than its nominal target; under
                    // pressure it is throttled toward (but not below) the floor.
                    let p_target = budget.clamp(floor, base_power);
                    if p_target < base_power {
                        throttled += 1;
                    }
                    // Performance references scale with the granted power share
                    // so the local loop chases a consistent (IPS, P) pair.
                    let ips_target = base_ips * (p_target / base_power);
                    Vector::from_slice(&[ips_target, p_target])
                })
                .collect();
            self.throttle_events += throttled;
            return targets;
        }

        // Degraded mode: quarantined cores are pinned at the floor (their
        // fallback governors should coast, not chase an aggressive target)
        // and the budget they free up is shared among the healthy cores.
        let healthy_n = self.n_cores() - n_quarantined;
        let healthy_cap = (self.cap_w - n_quarantined as f64 * floor).max(0.0);
        let healthy_total: f64 = observed
            .iter()
            .enumerate()
            .filter(|&(i, _)| !is_q(i))
            .map(|(_, o)| o.power)
            .sum();
        let healthy_weight_sum: f64 = self
            .priorities
            .iter()
            .enumerate()
            .filter(|&(i, _)| !is_q(i))
            .map(|(_, &w)| w)
            .sum();
        let targets: Vec<Vector> = observed
            .iter()
            .enumerate()
            .map(|(i, obs)| {
                let p_target = if is_q(i) || healthy_n == 0 {
                    floor
                } else {
                    let budget = match self.policy {
                        ArbitrationPolicy::Uniform => healthy_cap / healthy_n as f64,
                        ArbitrationPolicy::Proportional => {
                            if healthy_total > 0.0 {
                                healthy_cap * obs.power / healthy_total
                            } else {
                                healthy_cap / healthy_n as f64
                            }
                        }
                        ArbitrationPolicy::PriorityWeighted => {
                            healthy_cap * self.priorities[i] / healthy_weight_sum
                        }
                    };
                    budget.clamp(floor, base_power)
                };
                if p_target < base_power {
                    throttled += 1;
                }
                let ips_target = base_ips * (p_target / base_power);
                Vector::from_slice(&[ips_target, p_target])
            })
            .collect();
        self.throttle_events += throttled;
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(powers: &[f64]) -> Vec<CoreObs> {
        powers
            .iter()
            .map(|&p| CoreObs { ips: 2.0, power: p })
            .collect()
    }

    #[test]
    fn uniform_splits_evenly() {
        let mut arb = BudgetArbiter::new(4.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 4]);
        let t = arb.arbitrate(&obs(&[2.0, 0.5, 0.5, 0.5]));
        for target in &t {
            assert!((target[1] - 1.0).abs() < 1e-12, "{target:?}");
        }
    }

    #[test]
    fn proportional_follows_demand() {
        let mut arb = BudgetArbiter::new(
            2.0,
            ArbitrationPolicy::Proportional,
            [3.0, 1.9],
            vec![1.0; 2],
        );
        let t = arb.arbitrate(&obs(&[1.5, 0.5]));
        // 3:1 demand ratio → 1.5 W vs 0.5 W budgets.
        assert!((t[0][1] - 1.5).abs() < 1e-12, "{:?}", t[0]);
        assert!((t[1][1] - 0.5).abs() < 1e-12, "{:?}", t[1]);
        // IPS targets scale with the granted power share.
        assert!(t[0][0] > t[1][0]);
    }

    #[test]
    fn priority_weights_split_budget() {
        let mut arb = BudgetArbiter::new(
            3.0,
            ArbitrationPolicy::PriorityWeighted,
            [3.0, 1.9],
            vec![2.0, 1.0],
        );
        let t = arb.arbitrate(&obs(&[1.0, 1.0]));
        assert!((t[0][1] - 1.9).abs() < 1e-12, "capped at base: {:?}", t[0]);
        assert!((t[1][1] - 1.0).abs() < 1e-12, "{:?}", t[1]);
    }

    #[test]
    fn targets_never_exceed_base_or_fall_below_floor() {
        let mut arb =
            BudgetArbiter::new(100.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        // Huge cap: clamp at base targets.
        let t = arb.arbitrate(&obs(&[1.0, 1.0]));
        assert_eq!(t[0].as_slice(), &[3.0, 1.9]);
        // Tiny cap: floor at 20% of base.
        let mut tight =
            BudgetArbiter::new(0.01, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        let t = tight.arbitrate(&obs(&[1.0, 1.0]));
        assert!((t[0][1] - 0.2 * 1.9).abs() < 1e-12);
    }

    #[test]
    fn violations_and_aggregates_track() {
        let mut arb = BudgetArbiter::new(2.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        arb.arbitrate(&obs(&[0.5, 0.5])); // 1.0 W, under
        arb.arbitrate(&obs(&[1.5, 1.5])); // 3.0 W, over
        assert_eq!(arb.epochs(), 2);
        assert_eq!(arb.violations(), 1);
        assert!((arb.avg_chip_power_w() - 2.0).abs() < 1e-12);
        assert!((arb.peak_chip_power_w() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn throttle_events_count_below_nominal_grants() {
        // Huge cap: every grant clamps at the base target, no throttling.
        let mut roomy =
            BudgetArbiter::new(100.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        roomy.arbitrate(&obs(&[1.0, 1.0]));
        assert_eq!(roomy.throttle_events(), 0);
        // Tight cap: both cores throttled, every epoch.
        let mut tight =
            BudgetArbiter::new(1.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        tight.arbitrate(&obs(&[1.0, 1.0]));
        tight.arbitrate(&obs(&[1.0, 1.0]));
        assert_eq!(tight.throttle_events(), 4);
        // Quarantined cores pinned at the floor count as throttled too.
        let mut q = BudgetArbiter::new(100.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 2]);
        q.arbitrate_with_quarantine(&obs(&[1.0, 1.0]), &[true, false]);
        assert_eq!(q.throttle_events(), 1);
    }

    #[test]
    fn quarantine_pins_floor_and_redistributes() {
        let mut arb = BudgetArbiter::new(4.0, ArbitrationPolicy::Uniform, [3.0, 1.9], vec![1.0; 4]);
        let t = arb.arbitrate_with_quarantine(&obs(&[1.0; 4]), &[true, false, false, false]);
        let floor = 0.2 * 1.9;
        assert!((t[0][1] - floor).abs() < 1e-12, "{:?}", t[0]);
        // The freed budget flows to the three healthy cores.
        let share = ((4.0 - floor) / 3.0).clamp(floor, 1.9);
        for target in &t[1..] {
            assert!((target[1] - share).abs() < 1e-12, "{target:?}");
        }
        // Quarantined IPS reference scales down with the power floor.
        assert!(t[0][0] < t[1][0]);
    }

    #[test]
    fn all_false_mask_is_bit_identical_to_unmasked() {
        let powers = [1.7, 0.3, 0.9, 1.1];
        for policy in [
            ArbitrationPolicy::Uniform,
            ArbitrationPolicy::Proportional,
            ArbitrationPolicy::PriorityWeighted,
        ] {
            let pri = vec![2.0, 1.0, 1.0, 0.5];
            let mut a = BudgetArbiter::new(3.3, policy, [3.0, 1.9], pri.clone());
            let mut b = BudgetArbiter::new(3.3, policy, [3.0, 1.9], pri);
            let ta = a.arbitrate(&obs(&powers));
            let tb = b.arbitrate_with_quarantine(&obs(&powers), &[false; 4]);
            for (x, y) in ta.iter().zip(&tb) {
                assert_eq!(x[0].to_bits(), y[0].to_bits(), "{policy:?}");
                assert_eq!(x[1].to_bits(), y[1].to_bits(), "{policy:?}");
            }
        }
    }

    #[test]
    fn fully_quarantined_fleet_pins_everyone_at_floor() {
        let mut arb = BudgetArbiter::new(
            2.0,
            ArbitrationPolicy::Proportional,
            [3.0, 1.9],
            vec![1.0; 2],
        );
        let t = arb.arbitrate_with_quarantine(&obs(&[1.0, 1.0]), &[true, true]);
        for target in &t {
            assert!((target[1] - 0.2 * 1.9).abs() < 1e-12, "{target:?}");
        }
    }

    #[test]
    fn zero_power_proportional_degrades_to_uniform() {
        let mut arb = BudgetArbiter::new(
            1.0,
            ArbitrationPolicy::Proportional,
            [3.0, 1.9],
            vec![1.0; 2],
        );
        let t = arb.arbitrate(&obs(&[0.0, 0.0]));
        assert!((t[0][1] - t[1][1]).abs() < 1e-12);
    }
}
