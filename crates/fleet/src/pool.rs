//! The shared persistent worker pool.
//!
//! The fleet runner, the cluster shard loop, and the experiment harness
//! all used to spawn a fresh `std::thread::scope` per run — thread
//! creation and teardown on every `mimo-exp` cell and every cluster
//! window. This module replaces those with one process-wide pool
//! ([`global`]) created on first use and reused for every batch
//! thereafter.
//!
//! # Execution model
//!
//! [`WorkerPool::run`] submits a batch of `n_tasks` index-addressed tasks
//! and **participates**: the calling thread claims and executes tasks
//! alongside the helper threads, so a pool with zero helpers (a
//! single-hardware-thread host) degrades to a plain serial loop with no
//! handoff at all. `run` returns only when every task has completed,
//! which is what makes the lifetime erasure sound: the task closure may
//! borrow the caller's stack freely.
//!
//! # Nested use cannot deadlock
//!
//! Any `run` issued from a thread that is already executing pool work —
//! a helper, or a caller mid-participation — executes the whole batch
//! serially inline on that thread (tracked by a thread-local flag).
//! Nested submissions therefore never wait on pool capacity, so no cycle
//! of waits can form: the spec runner re-running inside a `--jobs` cell,
//! or a banked fleet stepping inside a sharded cluster, is always safe.
//!
//! # Determinism
//!
//! The pool assigns task *indices*, not data: callers index into their
//! own core-ordered tables, and every runtime using the pool reduces
//! results in core/chip order after `run` returns — so which thread ran
//! which index can never reach the science.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// A lifetime-erased pointer to the batch's task closure. Sound to send
/// across threads because [`WorkerPool::run`] does not return until every
/// task has completed (even when a task panics), so the pointee outlives
/// every dereference.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `run` keeps it alive until the batch fully drains (see above).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One in-flight batch of index-addressed tasks.
struct Batch {
    task: TaskPtr,
    n_tasks: usize,
    /// Next index to hand out.
    cursor: usize,
    /// Tasks finished (success or panic).
    completed: usize,
    /// Threads currently executing a task of this batch.
    active: usize,
    /// Concurrency bound including the participating caller
    /// ([`WorkerPool::run_bounded`]).
    max_active: usize,
    /// Whether any task panicked; the submitting caller re-raises.
    panicked: bool,
}

struct State {
    batch: Option<Batch>,
}

/// A persistent pool of helper threads executing index-addressed task
/// batches (see the module docs). Pools are `'static` by construction —
/// helpers live for the process — so create dedicated pools only in
/// tests ([`WorkerPool::with_threads`]); production code shares
/// [`global`].
pub struct WorkerPool {
    state: Mutex<State>,
    /// Helpers wait here for a batch.
    work: Condvar,
    /// Callers wait here for batch completion / the batch slot.
    done: Condvar,
    n_helpers: usize,
}

thread_local! {
    /// Set while this thread executes pool work (helper task or caller
    /// participation); nested `run` calls then execute serially inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with the in-worker flag set, restoring it afterwards (also on
/// unwind, via the guard).
fn with_worker_flag<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_WORKER.with(|w| w.set(self.0));
        }
    }
    let prev = IN_WORKER.with(|w| w.replace(true));
    let _reset = Reset(prev);
    f()
}

impl WorkerPool {
    /// Builds a pool with exactly `helpers` helper threads, leaked to
    /// `'static` (helpers run for the process). Zero helpers is valid:
    /// every batch then runs serially on the submitting thread.
    pub fn with_threads(helpers: usize) -> &'static WorkerPool {
        let pool: &'static WorkerPool = Box::leak(Box::new(WorkerPool {
            state: Mutex::new(State { batch: None }),
            work: Condvar::new(),
            done: Condvar::new(),
            n_helpers: helpers,
        }));
        for i in 0..helpers {
            std::thread::Builder::new()
                .name(format!("mimo-pool-{i}"))
                .spawn(move || pool.helper_loop())
                .expect("spawn pool helper");
        }
        pool
    }

    /// Submits `n_tasks` index-addressed tasks and participates until all
    /// complete. Nested calls from pool-executing threads run serially
    /// inline (see the module docs).
    ///
    /// # Panics
    ///
    /// Re-raises on the calling thread if any task panicked.
    pub fn run(&self, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        self.run_bounded(n_tasks, usize::MAX, f);
    }

    /// Like [`WorkerPool::run`], but with at most `max_workers` threads
    /// (including the participating caller) executing concurrently — the
    /// harness's `--jobs` bound.
    ///
    /// # Panics
    ///
    /// Re-raises on the calling thread if any task panicked.
    pub fn run_bounded(&self, n_tasks: usize, max_workers: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        if IN_WORKER.with(|w| w.get()) || max_workers <= 1 || self.n_helpers == 0 {
            // Serial inline: nested submission, an explicit 1-worker
            // bound, or a helperless pool. No locks, no waits — this is
            // what makes nesting structurally deadlock-free.
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        // SAFETY: lifetime erasure only — this function does not return
        // until the batch has fully drained, so `f` outlives every use.
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync + '_)) };
        let task = TaskPtr(erased);
        let mut st = self.state.lock().unwrap();
        // One batch in flight at a time; queued submitters wait for the
        // slot. Helpers never wait on this condition, so the slot always
        // frees up.
        while st.batch.is_some() {
            st = self.done.wait(st).unwrap();
        }
        st.batch = Some(Batch {
            task,
            n_tasks,
            cursor: 0,
            completed: 0,
            active: 0,
            max_active: max_workers,
            panicked: false,
        });
        drop(st);
        self.work.notify_all();

        // Participate: claim tasks like any helper would.
        self.drain_batch(erased);

        // Wait for stragglers, then clear the slot and hand it on.
        let mut st = self.state.lock().unwrap();
        while st.batch.as_ref().is_some_and(|b| b.completed < b.n_tasks) {
            st = self.done.wait(st).unwrap();
        }
        let panicked = st.batch.take().is_some_and(|b| b.panicked);
        drop(st);
        self.done.notify_all();
        if panicked {
            panic!("a pool task panicked");
        }
    }

    /// Claims and executes tasks of the current batch until none remain
    /// claimable. The pointer guard keeps a caller from draining a
    /// *different* submitter's batch.
    fn drain_batch(&self, expect: *const (dyn Fn(usize) + Sync)) {
        loop {
            let claimed = {
                let mut st = self.state.lock().unwrap();
                match &mut st.batch {
                    Some(b)
                        if std::ptr::eq(b.task.0, expect)
                            && b.cursor < b.n_tasks
                            && b.active < b.max_active =>
                    {
                        let i = b.cursor;
                        b.cursor += 1;
                        b.active += 1;
                        Some((i, b.task))
                    }
                    _ => None,
                }
            };
            let Some((i, task)) = claimed else { return };
            self.execute(i, task);
        }
    }

    /// Runs one claimed task and retires it, flagging panics and waking
    /// the submitter when the batch drains.
    fn execute(&self, i: usize, task: TaskPtr) {
        // SAFETY: the batch is in flight (we hold an active claim), so
        // the pointee is alive; see `TaskPtr`.
        let f = unsafe { &*task.0 };
        let result = catch_unwind(AssertUnwindSafe(|| with_worker_flag(|| f(i))));
        let mut st = self.state.lock().unwrap();
        if let Some(b) = &mut st.batch {
            b.active -= 1;
            b.completed += 1;
            if result.is_err() {
                b.panicked = true;
            }
            if b.completed == b.n_tasks {
                drop(st);
                self.done.notify_all();
            }
        }
    }

    /// The helper thread body: wait for a batch, claim and run tasks,
    /// repeat forever.
    fn helper_loop(&self) {
        loop {
            let (i, task) = {
                let mut st = self.state.lock().unwrap();
                loop {
                    match &mut st.batch {
                        Some(b) if b.cursor < b.n_tasks && b.active < b.max_active => {
                            let i = b.cursor;
                            b.cursor += 1;
                            b.active += 1;
                            break (i, b.task);
                        }
                        _ => st = self.work.wait(st).unwrap(),
                    }
                }
            };
            self.execute(i, task);
        }
    }

    /// Number of helper threads (the caller adds one more executor).
    pub fn helpers(&self) -> usize {
        self.n_helpers
    }
}

/// The process-wide shared pool: one helper per available hardware thread
/// beyond the caller's, created on first use and reused by every fleet
/// run, cluster window, and harness cell thereafter.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<&'static WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        WorkerPool::with_threads(hw.saturating_sub(1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::with_threads(3);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn zero_helper_pool_runs_serially() {
        let pool = WorkerPool::with_threads(0);
        let sum = AtomicUsize::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 45);
    }

    #[test]
    fn nested_runs_cannot_deadlock() {
        // A 2-helper pool with every outer task submitting an inner batch:
        // without the in-worker inline rule this wedges instantly, since
        // the single batch slot is held by the outer run.
        let pool = WorkerPool::with_threads(2);
        let count = AtomicUsize::new(0);
        pool.run(8, &|_| {
            pool.run(8, &|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn bounded_run_caps_concurrency() {
        let pool = WorkerPool::with_threads(4);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run_bounded(32, 2, &|_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn sequential_batches_reuse_the_pool() {
        let pool = WorkerPool::with_threads(2);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.run(round % 7 + 1, &|i| {
                sum.fetch_add(i + 1, Ordering::SeqCst);
            });
            let n = round % 7 + 1;
            assert_eq!(sum.load(Ordering::SeqCst), n * (n + 1) / 2);
        }
    }

    #[test]
    fn concurrent_submitters_queue_for_the_slot() {
        let pool = WorkerPool::with_threads(2);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        pool.run(4, &|_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn task_panic_propagates_to_the_submitter() {
        let pool = WorkerPool::with_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let sum = AtomicUsize::new(0);
        pool.run(4, &|i| {
            sum.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 6);
    }
}
