//! Per-core and fleet-aggregate run statistics.

use serde::Serialize;

/// One core's accumulated statistics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CoreStats {
    /// Core index within the fleet.
    pub core: usize,
    /// Application the core ran.
    pub app: String,
    /// Plant seed.
    pub seed: u64,
    /// Mean |IPS − target| / target over the run, percent, against the
    /// arbitrated (per-epoch) reference.
    pub avg_ips_err_pct: f64,
    /// Mean |power − target| / target over the run, percent.
    pub avg_power_err_pct: f64,
    /// Mean measured power, watts.
    pub avg_power_w: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Instructions executed, billions.
    pub instructions_g: f64,
    /// Epochs on which this core's pipeline faulted (the engine substituted
    /// last-good values).
    pub fault_epochs: u64,
    /// Whether the core ever crossed the quarantine threshold.
    pub quarantined: bool,
    /// Epoch at which the core first quarantined, if it ever did.
    pub quarantine_epoch: Option<u64>,
}

/// Whole-fleet statistics for one run.
///
/// Everything except the two wall-clock fields (`wall_s`,
/// `epochs_per_sec`) is a pure function of the configuration and seeds,
/// and therefore bit-identical across worker counts; `PartialEq` compares
/// only the deterministic fields so runs can be checked for reproducibility
/// directly.
#[derive(Debug, Clone, Serialize)]
pub struct FleetStats {
    /// Cores in the fleet.
    pub n_cores: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Epochs run.
    pub epochs: usize,
    /// Arbitration policy label.
    pub policy: String,
    /// Chip power cap, watts.
    pub chip_cap_w: f64,
    /// Epochs in which measured chip power exceeded the cap.
    pub cap_violation_epochs: u64,
    /// Same as a percentage of all epochs.
    pub cap_violation_pct: f64,
    /// Mean measured chip power, watts.
    pub avg_chip_power_w: f64,
    /// Peak measured chip power in any epoch, watts.
    pub peak_chip_power_w: f64,
    /// Mean of the per-core IPS tracking errors, percent.
    pub agg_ips_err_pct: f64,
    /// Mean of the per-core power tracking errors, percent.
    pub agg_power_err_pct: f64,
    /// Total fleet energy, joules.
    pub energy_j: f64,
    /// Total instructions, billions.
    pub instructions_g: f64,
    /// Cores that crossed the quarantine threshold during the run.
    pub quarantined_cores: usize,
    /// Total faulted epochs summed across cores.
    pub fault_epochs: u64,
    /// Arbiter grants issued below the nominal power target (one per
    /// throttled core per epoch).
    pub throttle_events: u64,
    /// Wall-clock duration of the epoch loop, seconds (not deterministic).
    pub wall_s: f64,
    /// Fleet epochs per second of wall clock (not deterministic).
    pub epochs_per_sec: f64,
    /// Per-core breakdown.
    pub per_core: Vec<CoreStats>,
}

impl PartialEq for FleetStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything but wall_s / epochs_per_sec — and workers, which is
        // *allowed* to differ between runs that must agree.
        self.n_cores == other.n_cores
            && self.epochs == other.epochs
            && self.policy == other.policy
            && self.chip_cap_w == other.chip_cap_w
            && self.cap_violation_epochs == other.cap_violation_epochs
            && self.avg_chip_power_w == other.avg_chip_power_w
            && self.peak_chip_power_w == other.peak_chip_power_w
            && self.agg_ips_err_pct == other.agg_ips_err_pct
            && self.agg_power_err_pct == other.agg_power_err_pct
            && self.energy_j == other.energy_j
            && self.instructions_g == other.instructions_g
            && self.quarantined_cores == other.quarantined_cores
            && self.fault_epochs == other.fault_epochs
            && self.throttle_events == other.throttle_events
            && self.per_core == other.per_core
    }
}

impl FleetStats {
    /// Order-independent digest of the deterministic fields (exact f64 bit
    /// patterns), for compact reproducibility checks in CSV output.
    ///
    /// The quarantine/fault/throttle bookkeeping is deliberately excluded:
    /// the digest pins golden values recorded before those counters
    /// existed, and fault-free runs must keep reproducing them bit for
    /// bit. `PartialEq` does compare those fields.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.n_cores as u64);
        mix(self.epochs as u64);
        mix(self.cap_violation_epochs);
        mix(self.avg_chip_power_w.to_bits());
        mix(self.peak_chip_power_w.to_bits());
        mix(self.energy_j.to_bits());
        mix(self.instructions_g.to_bits());
        for c in &self.per_core {
            mix(c.avg_ips_err_pct.to_bits());
            mix(c.avg_power_err_pct.to_bits());
            mix(c.energy_j.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetStats {
        FleetStats {
            n_cores: 2,
            workers: 1,
            epochs: 10,
            policy: "uniform".into(),
            chip_cap_w: 2.4,
            cap_violation_epochs: 1,
            cap_violation_pct: 10.0,
            avg_chip_power_w: 2.0,
            peak_chip_power_w: 2.5,
            agg_ips_err_pct: 8.0,
            agg_power_err_pct: 4.0,
            energy_j: 0.001,
            instructions_g: 0.02,
            quarantined_cores: 0,
            fault_epochs: 0,
            throttle_events: 0,
            wall_s: 0.5,
            epochs_per_sec: 20.0,
            per_core: vec![CoreStats {
                core: 0,
                app: "astar".into(),
                seed: 3,
                avg_ips_err_pct: 8.0,
                avg_power_err_pct: 4.0,
                avg_power_w: 1.0,
                energy_j: 0.0005,
                instructions_g: 0.01,
                fault_epochs: 0,
                quarantined: false,
                quarantine_epoch: None,
            }],
        }
    }

    #[test]
    fn equality_ignores_timing_and_workers() {
        let a = sample();
        let mut b = sample();
        b.wall_s = 99.0;
        b.epochs_per_sec = 1.0;
        b.workers = 8;
        assert_eq!(a, b);
        let mut c = sample();
        c.energy_j += 1e-9;
        assert_ne!(a, c);
    }

    #[test]
    fn digest_tracks_deterministic_fields_only() {
        let a = sample();
        let mut b = sample();
        b.wall_s = 42.0;
        b.workers = 3;
        assert_eq!(a.digest(), b.digest());
        let mut c = sample();
        c.per_core[0].avg_ips_err_pct += 0.25;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn digest_is_stable_across_quarantine_bookkeeping() {
        // The digest pins the pre-fault golden values; quarantine fields
        // are compared by PartialEq but deliberately NOT mixed into the
        // digest, so fault-free digests from older pins keep matching.
        let a = sample();
        let mut b = sample();
        b.quarantined_cores = 1;
        b.fault_epochs = 12;
        b.throttle_events = 7;
        b.per_core[0].quarantined = true;
        b.per_core[0].quarantine_epoch = Some(40);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a, b);
    }

    #[test]
    fn serializes_to_json_object() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"per_core\":[{"), "{json}");
        assert!(json.contains("\"app\":\"astar\""), "{json}");
    }
}
