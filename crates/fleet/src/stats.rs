//! Per-core, fleet-aggregate, and cluster-aggregate run statistics.

use mimo_core::digest::Fnv1a;
use serde::Serialize;

use crate::arbiter::BudgetArbiter;
use crate::config::FleetConfig;

/// One chip's published window summary — the only state that crosses the
/// chip boundary at an epoch exchange.
///
/// `Copy` on purpose: a shard hands the cluster arbiter a snapshot, never
/// a reference into live chip state, so the exchange cannot observe a chip
/// mid-epoch and determinism cannot leak through aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChipSummary {
    /// Chip index within the cluster.
    pub chip: usize,
    /// Cores on the chip.
    pub n_cores: usize,
    /// Epochs covered by this window (usually the exchange period; the
    /// final window may be shorter).
    pub window_epochs: u64,
    /// Mean measured chip power over the window, watts.
    pub avg_power_w: f64,
    /// Mean aggregate chip IPS over the window, BIPS.
    pub avg_ips: f64,
    /// Cores currently latched in quarantine.
    pub quarantined_cores: usize,
}

/// One core's accumulated statistics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CoreStats {
    /// Core index within the fleet.
    pub core: usize,
    /// Application the core ran.
    pub app: String,
    /// Plant seed.
    pub seed: u64,
    /// Mean |IPS − target| / target over the run, percent, against the
    /// arbitrated (per-epoch) reference.
    pub avg_ips_err_pct: f64,
    /// Mean |power − target| / target over the run, percent.
    pub avg_power_err_pct: f64,
    /// Mean measured power, watts.
    pub avg_power_w: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Instructions executed, billions.
    pub instructions_g: f64,
    /// Epochs on which this core's pipeline faulted (the engine substituted
    /// last-good values).
    pub fault_epochs: u64,
    /// Whether the core ever crossed the quarantine threshold.
    pub quarantined: bool,
    /// Epoch at which the core first quarantined, if it ever did.
    pub quarantine_epoch: Option<u64>,
}

/// Whole-fleet statistics for one run.
///
/// Everything except the two wall-clock fields (`wall_s`,
/// `epochs_per_sec`) is a pure function of the configuration and seeds,
/// and therefore bit-identical across worker counts; `PartialEq` compares
/// only the deterministic fields so runs can be checked for reproducibility
/// directly.
#[derive(Debug, Clone, Serialize)]
pub struct FleetStats {
    /// Cores in the fleet.
    pub n_cores: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Epochs run.
    pub epochs: usize,
    /// Arbitration policy label.
    pub policy: String,
    /// Chip power cap, watts.
    pub chip_cap_w: f64,
    /// Epochs in which measured chip power exceeded the cap.
    pub cap_violation_epochs: u64,
    /// Same as a percentage of all epochs.
    pub cap_violation_pct: f64,
    /// Mean measured chip power, watts.
    pub avg_chip_power_w: f64,
    /// Peak measured chip power in any epoch, watts.
    pub peak_chip_power_w: f64,
    /// Mean of the per-core IPS tracking errors, percent.
    pub agg_ips_err_pct: f64,
    /// Mean of the per-core power tracking errors, percent.
    pub agg_power_err_pct: f64,
    /// Total fleet energy, joules.
    pub energy_j: f64,
    /// Total instructions, billions.
    pub instructions_g: f64,
    /// Cores that crossed the quarantine threshold during the run.
    pub quarantined_cores: usize,
    /// Total faulted epochs summed across cores.
    pub fault_epochs: u64,
    /// Arbiter grants issued below the nominal power target (one per
    /// throttled core per epoch).
    pub throttle_events: u64,
    /// Wall-clock duration of the epoch loop, seconds (not deterministic).
    pub wall_s: f64,
    /// Fleet epochs per second of wall clock (not deterministic).
    pub epochs_per_sec: f64,
    /// Per-core breakdown.
    pub per_core: Vec<CoreStats>,
}

impl PartialEq for FleetStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything but wall_s / epochs_per_sec — and workers, which is
        // *allowed* to differ between runs that must agree.
        self.n_cores == other.n_cores
            && self.epochs == other.epochs
            && self.policy == other.policy
            && self.chip_cap_w == other.chip_cap_w
            && self.cap_violation_epochs == other.cap_violation_epochs
            && self.avg_chip_power_w == other.avg_chip_power_w
            && self.peak_chip_power_w == other.peak_chip_power_w
            && self.agg_ips_err_pct == other.agg_ips_err_pct
            && self.agg_power_err_pct == other.agg_power_err_pct
            && self.energy_j == other.energy_j
            && self.instructions_g == other.instructions_g
            && self.quarantined_cores == other.quarantined_cores
            && self.fault_epochs == other.fault_epochs
            && self.throttle_events == other.throttle_events
            && self.per_core == other.per_core
    }
}

impl FleetStats {
    /// Order-independent digest of the deterministic fields (exact f64 bit
    /// patterns), for compact reproducibility checks in CSV output.
    ///
    /// The quarantine/fault/throttle bookkeeping is deliberately excluded:
    /// the digest pins golden values recorded before those counters
    /// existed, and fault-free runs must keep reproducing them bit for
    /// bit. `PartialEq` does compare those fields.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.n_cores as u64);
        h.write_u64(self.epochs as u64);
        h.write_u64(self.cap_violation_epochs);
        h.write_f64(self.avg_chip_power_w);
        h.write_f64(self.peak_chip_power_w);
        h.write_f64(self.energy_j);
        h.write_f64(self.instructions_g);
        for c in &self.per_core {
            h.write_f64(c.avg_ips_err_pct);
            h.write_f64(c.avg_power_err_pct);
            h.write_f64(c.energy_j);
        }
        h.finish()
    }

    /// Assembles whole-fleet statistics from the drained per-core stats and
    /// the arbiter's chip-level accumulators.
    ///
    /// This is the *single* assembly path — the worker-pool runner and the
    /// cluster's per-chip drain both call it, so a chip's `FleetStats` is
    /// bitwise the same arithmetic as a single-chip fleet's.
    pub(crate) fn assemble(
        cfg: &FleetConfig,
        workers: usize,
        epochs: usize,
        arbiter: &BudgetArbiter,
        per_core: Vec<CoreStats>,
        wall_s: f64,
    ) -> FleetStats {
        let nf = per_core.len().max(1) as f64;
        FleetStats {
            n_cores: cfg.n_cores,
            workers,
            epochs,
            policy: cfg.policy.label().to_string(),
            chip_cap_w: cfg.chip_power_cap_w,
            cap_violation_epochs: arbiter.violations(),
            cap_violation_pct: if epochs == 0 {
                0.0
            } else {
                100.0 * arbiter.violations() as f64 / epochs as f64
            },
            avg_chip_power_w: arbiter.avg_chip_power_w(),
            peak_chip_power_w: arbiter.peak_chip_power_w(),
            agg_ips_err_pct: per_core.iter().map(|c| c.avg_ips_err_pct).sum::<f64>() / nf,
            agg_power_err_pct: per_core.iter().map(|c| c.avg_power_err_pct).sum::<f64>() / nf,
            energy_j: per_core.iter().map(|c| c.energy_j).sum(),
            instructions_g: per_core.iter().map(|c| c.instructions_g).sum(),
            quarantined_cores: per_core.iter().filter(|c| c.quarantined).count(),
            fault_epochs: per_core.iter().map(|c| c.fault_epochs).sum(),
            throttle_events: arbiter.throttle_events(),
            wall_s,
            epochs_per_sec: if wall_s > 0.0 {
                epochs as f64 / wall_s
            } else {
                0.0
            },
            per_core,
        }
    }
}

/// Whole-cluster statistics for one hierarchical run.
///
/// As with [`FleetStats`], everything except the shard count and the
/// wall-clock fields is a pure function of the configuration and seeds —
/// bit-identical at any shard count — and `PartialEq` compares only those
/// deterministic fields.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterStats {
    /// Chips in the cluster.
    pub n_chips: usize,
    /// Total cores across all chips.
    pub total_cores: usize,
    /// Shard (worker-thread) count used. Not deterministic-relevant.
    pub shards: usize,
    /// Chip epochs each chip ran.
    pub epochs: usize,
    /// Chip epochs between cluster budget exchanges.
    pub exchange_period: usize,
    /// Budget exchanges the cluster arbiter performed.
    pub exchanges: u64,
    /// Exchanges that actually moved at least one chip cap.
    pub rebudget_moves: u64,
    /// Datacenter-level power cap, watts.
    pub cluster_cap_w: f64,
    /// Sum of per-chip mean powers (chip order), watts.
    pub avg_cluster_power_w: f64,
    /// Largest window-mean cluster power seen at any exchange, watts.
    pub peak_window_power_w: f64,
    /// Mean of the per-chip aggregate IPS tracking errors, percent.
    pub agg_ips_err_pct: f64,
    /// Mean of the per-chip aggregate power tracking errors, percent.
    pub agg_power_err_pct: f64,
    /// Total cluster energy, joules.
    pub energy_j: f64,
    /// Total instructions, billions.
    pub instructions_g: f64,
    /// Cores quarantined anywhere in the cluster.
    pub quarantined_cores: usize,
    /// Faulted epochs summed across every core of every chip.
    pub fault_epochs: u64,
    /// Wall-clock duration of the cluster run, seconds (not deterministic).
    pub wall_s: f64,
    /// Cluster chip-epochs per second of wall clock (not deterministic).
    pub epochs_per_sec: f64,
    /// Per-chip breakdown, in chip order.
    pub per_chip: Vec<FleetStats>,
}

impl PartialEq for ClusterStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything but shards / wall_s / epochs_per_sec (and, inside each
        // chip, FleetStats' own non-deterministic fields).
        self.n_chips == other.n_chips
            && self.total_cores == other.total_cores
            && self.epochs == other.epochs
            && self.exchange_period == other.exchange_period
            && self.exchanges == other.exchanges
            && self.rebudget_moves == other.rebudget_moves
            && self.cluster_cap_w == other.cluster_cap_w
            && self.avg_cluster_power_w == other.avg_cluster_power_w
            && self.peak_window_power_w == other.peak_window_power_w
            && self.agg_ips_err_pct == other.agg_ips_err_pct
            && self.agg_power_err_pct == other.agg_power_err_pct
            && self.energy_j == other.energy_j
            && self.instructions_g == other.instructions_g
            && self.quarantined_cores == other.quarantined_cores
            && self.fault_epochs == other.fault_epochs
            && self.per_chip == other.per_chip
    }
}

impl ClusterStats {
    /// Order-independent digest of the deterministic cluster fields plus
    /// every chip's own [`FleetStats::digest`], for compact shard-count
    /// invariance checks in CSV output.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.n_chips as u64);
        h.write_u64(self.total_cores as u64);
        h.write_u64(self.epochs as u64);
        h.write_u64(self.exchange_period as u64);
        h.write_u64(self.exchanges);
        h.write_u64(self.rebudget_moves);
        h.write_f64(self.avg_cluster_power_w);
        h.write_f64(self.peak_window_power_w);
        h.write_f64(self.energy_j);
        h.write_f64(self.instructions_g);
        for chip in &self.per_chip {
            h.write_u64(chip.digest());
        }
        h.finish()
    }

    /// Assembles cluster statistics from the drained per-chip stats (in
    /// chip order) and the exchange bookkeeping.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        cluster_cap_w: f64,
        shards: usize,
        epochs: usize,
        exchange_period: usize,
        exchanges: u64,
        rebudget_moves: u64,
        peak_window_power_w: f64,
        per_chip: Vec<FleetStats>,
        wall_s: f64,
    ) -> ClusterStats {
        let nc = per_chip.len().max(1) as f64;
        ClusterStats {
            n_chips: per_chip.len(),
            total_cores: per_chip.iter().map(|c| c.n_cores).sum(),
            shards,
            epochs,
            exchange_period,
            exchanges,
            rebudget_moves,
            cluster_cap_w,
            avg_cluster_power_w: per_chip.iter().map(|c| c.avg_chip_power_w).sum(),
            peak_window_power_w,
            agg_ips_err_pct: per_chip.iter().map(|c| c.agg_ips_err_pct).sum::<f64>() / nc,
            agg_power_err_pct: per_chip.iter().map(|c| c.agg_power_err_pct).sum::<f64>() / nc,
            energy_j: per_chip.iter().map(|c| c.energy_j).sum(),
            instructions_g: per_chip.iter().map(|c| c.instructions_g).sum(),
            quarantined_cores: per_chip.iter().map(|c| c.quarantined_cores).sum(),
            fault_epochs: per_chip.iter().map(|c| c.fault_epochs).sum(),
            wall_s,
            epochs_per_sec: if wall_s > 0.0 {
                (epochs * per_chip.len()) as f64 / wall_s
            } else {
                0.0
            },
            per_chip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetStats {
        FleetStats {
            n_cores: 2,
            workers: 1,
            epochs: 10,
            policy: "uniform".into(),
            chip_cap_w: 2.4,
            cap_violation_epochs: 1,
            cap_violation_pct: 10.0,
            avg_chip_power_w: 2.0,
            peak_chip_power_w: 2.5,
            agg_ips_err_pct: 8.0,
            agg_power_err_pct: 4.0,
            energy_j: 0.001,
            instructions_g: 0.02,
            quarantined_cores: 0,
            fault_epochs: 0,
            throttle_events: 0,
            wall_s: 0.5,
            epochs_per_sec: 20.0,
            per_core: vec![CoreStats {
                core: 0,
                app: "astar".into(),
                seed: 3,
                avg_ips_err_pct: 8.0,
                avg_power_err_pct: 4.0,
                avg_power_w: 1.0,
                energy_j: 0.0005,
                instructions_g: 0.01,
                fault_epochs: 0,
                quarantined: false,
                quarantine_epoch: None,
            }],
        }
    }

    #[test]
    fn equality_ignores_timing_and_workers() {
        let a = sample();
        let mut b = sample();
        b.wall_s = 99.0;
        b.epochs_per_sec = 1.0;
        b.workers = 8;
        assert_eq!(a, b);
        let mut c = sample();
        c.energy_j += 1e-9;
        assert_ne!(a, c);
    }

    #[test]
    fn digest_tracks_deterministic_fields_only() {
        let a = sample();
        let mut b = sample();
        b.wall_s = 42.0;
        b.workers = 3;
        assert_eq!(a.digest(), b.digest());
        let mut c = sample();
        c.per_core[0].avg_ips_err_pct += 0.25;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn digest_is_stable_across_quarantine_bookkeeping() {
        // The digest pins the pre-fault golden values; quarantine fields
        // are compared by PartialEq but deliberately NOT mixed into the
        // digest, so fault-free digests from older pins keep matching.
        let a = sample();
        let mut b = sample();
        b.quarantined_cores = 1;
        b.fault_epochs = 12;
        b.throttle_events = 7;
        b.per_core[0].quarantined = true;
        b.per_core[0].quarantine_epoch = Some(40);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a, b);
    }

    #[test]
    fn serializes_to_json_object() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"per_core\":[{"), "{json}");
        assert!(json.contains("\"app\":\"astar\""), "{json}");
    }

    fn cluster_sample() -> ClusterStats {
        ClusterStats::assemble(9.6, 2, 10, 5, 2, 1, 4.1, vec![sample(), sample()], 0.25)
    }

    #[test]
    fn cluster_equality_ignores_shards_and_timing() {
        let a = cluster_sample();
        let mut b = cluster_sample();
        b.shards = 8;
        b.wall_s = 99.0;
        b.epochs_per_sec = 1.0;
        b.per_chip[0].workers = 7;
        b.per_chip[0].wall_s = 3.0;
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let mut c = cluster_sample();
        c.per_chip[1].energy_j += 1e-9;
        assert_ne!(a, c);
    }

    #[test]
    fn cluster_assemble_sums_in_chip_order() {
        let s = cluster_sample();
        assert_eq!(s.n_chips, 2);
        assert_eq!(s.total_cores, 4);
        assert_eq!(s.avg_cluster_power_w, 4.0);
        assert_eq!(s.energy_j, 0.002);
        assert_eq!(s.agg_ips_err_pct, 8.0);
        let mut h = Fnv1a::new();
        h.write_u64(2);
        h.write_u64(4);
        h.write_u64(10);
        h.write_u64(5);
        h.write_u64(2);
        h.write_u64(1);
        h.write_f64(4.0);
        h.write_f64(4.1);
        h.write_f64(0.002);
        h.write_f64(0.04);
        h.write_u64(sample().digest());
        h.write_u64(sample().digest());
        assert_eq!(s.digest(), h.finish());
    }
}
