//! Fleet-level telemetry: per-core sink results plus the merged view.
//!
//! Every core in a traced fleet run carries its own
//! [`TelemetrySink`](mimo_core::telemetry::TelemetrySink), so the hot loop
//! never shares telemetry state across threads. When the run ends the
//! runner drains each core's sink into a [`CoreTelemetry`] and merges the
//! per-core [`Metrics`] — in core order, so the result is bit-identical no
//! matter how many workers stepped the fleet.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use mimo_core::telemetry::{record_to_json, EpochRecord, Metrics, QuarantineEvent, RunSummary};
use mimo_sim::fault::FAULT_KIND_COUNT;

/// Per-kind labels for the injected-fault counters, indexed like
/// [`mimo_sim::fault::FaultKind::index`].
const FAULT_KIND_LABELS: [&str; FAULT_KIND_COUNT] = [
    "stuck_sensor",
    "nan_measurement",
    "actuator_stuck_at",
    "power_spike",
];

/// One core's drained telemetry after a fleet run.
#[derive(Debug, Clone)]
pub struct CoreTelemetry {
    /// Core index within the fleet.
    pub core: usize,
    /// The ring trace's surviving records, oldest → newest.
    pub trace: Vec<EpochRecord>,
    /// The core's aggregated counters and histograms.
    pub metrics: Metrics,
    /// First quarantine latch on this core, if any.
    pub quarantine: Option<QuarantineEvent>,
    /// End-of-run summary from the core's engine.
    pub summary: Option<RunSummary>,
    /// Fault-injector corruption counts, bucketed by
    /// [`mimo_sim::fault::FaultKind::index`].
    pub injected_faults: [u64; FAULT_KIND_COUNT],
}

/// Whole-fleet telemetry for one run: the merged metrics plus every core's
/// drained sink. Returned by `FleetRunner::run_traced`; empty (and
/// disabled) when the config leaves telemetry off.
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    /// All per-core metrics merged in core order (worker-count
    /// independent).
    pub metrics: Metrics,
    /// Per-core breakdowns, indexed by core.
    pub per_core: Vec<CoreTelemetry>,
}

impl FleetTelemetry {
    /// Merges per-core telemetry into the fleet view. Merge order is the
    /// core order of `per_core`, which makes the reduction deterministic.
    pub fn from_cores(per_core: Vec<CoreTelemetry>) -> Self {
        let mut metrics = Metrics::new();
        for core in &per_core {
            metrics.merge(&core.metrics);
        }
        FleetTelemetry { metrics, per_core }
    }

    /// Whether any core produced telemetry (false for untraced runs).
    pub fn is_enabled(&self) -> bool {
        !self.per_core.is_empty()
    }

    /// Quarantine events across the fleet, in core order.
    pub fn quarantines(&self) -> Vec<QuarantineEvent> {
        self.per_core.iter().filter_map(|c| c.quarantine).collect()
    }

    /// Writes the trace as JSON Lines. Per core (in core order): one
    /// `"epoch"` line per surviving trace record, a `"quarantine"` line if
    /// the core latched, and a closing `"core_end"` summary line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut line = String::new();
        for core in &self.per_core {
            for rec in &core.trace {
                line.clear();
                record_to_json(rec, &mut line);
                line.push('\n');
                w.write_all(line.as_bytes())?;
            }
            if let Some(q) = &core.quarantine {
                line.clear();
                let _ = write!(
                    line,
                    "{{\"type\":\"quarantine\",\"core\":{},\"epoch\":{},\"cause\":\"{}\"",
                    core.core,
                    q.epoch,
                    q.cause.as_str()
                );
                if let Some(channel) = q.channel {
                    let _ = write!(line, ",\"channel\":{channel}");
                }
                line.push_str("}\n");
                w.write_all(line.as_bytes())?;
            }
            line.clear();
            let _ = write!(
                line,
                "{{\"type\":\"core_end\",\"core\":{},\"epochs\":{},\"fault_epochs\":{},\
                 \"quarantined\":{},\"trace_len\":{}",
                core.core,
                core.metrics.epochs,
                core.metrics.fault_epochs,
                core.quarantine.is_some(),
                core.trace.len()
            );
            if core.injected_faults.iter().any(|&c| c > 0) {
                line.push_str(",\"injected_faults\":{");
                let mut first = true;
                for (label, &count) in FAULT_KIND_LABELS.iter().zip(&core.injected_faults) {
                    if count > 0 {
                        if !first {
                            line.push(',');
                        }
                        let _ = write!(line, "\"{label}\":{count}");
                        first = false;
                    }
                }
                line.push('}');
            }
            line.push_str("}\n");
            w.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    /// Writes the JSONL trace to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_jsonl<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf)?;
        fs::write(path, buf)
    }
}

/// Whole-cluster telemetry: one drained [`FleetTelemetry`] per chip, in
/// chip order, plus the cluster-wide merged metrics. Returned by
/// `ClusterRunner::run_traced`; empty when the config leaves telemetry off.
#[derive(Debug, Clone, Default)]
pub struct ClusterTelemetry {
    /// Every chip's metrics merged in chip order (shard-count independent).
    pub metrics: Metrics,
    /// Per-chip telemetry, indexed by chip.
    pub per_chip: Vec<FleetTelemetry>,
}

impl ClusterTelemetry {
    /// Merges per-chip telemetry into the cluster view, in chip order.
    pub fn from_chips(per_chip: Vec<FleetTelemetry>) -> Self {
        let mut metrics = Metrics::new();
        for chip in &per_chip {
            metrics.merge(&chip.metrics);
        }
        ClusterTelemetry { metrics, per_chip }
    }

    /// Whether any chip produced telemetry (false for untraced runs).
    pub fn is_enabled(&self) -> bool {
        self.per_chip.iter().any(FleetTelemetry::is_enabled)
    }

    /// Writes every chip's trace as JSON Lines, separated by a
    /// `"chip_end"` marker line carrying the chip index.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (chip, tele) in self.per_chip.iter().enumerate() {
            tele.write_jsonl(w)?;
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"type\":\"chip_end\",\"chip\":{chip},\"cores\":{},\"epochs\":{}}}",
                tele.per_core.len(),
                tele.metrics.epochs
            );
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_core::telemetry::{CauseCode, Health};
    use mimo_linalg::Vector;

    fn core_tele(core: usize, epochs: u64) -> CoreTelemetry {
        let mut metrics = Metrics::new();
        let u = Vector::from_slice(&[1.3, 6.0]);
        let y = Vector::from_slice(&[2.5, 1.875]);
        let mut trace = Vec::new();
        for e in 0..epochs {
            let rec = EpochRecord::capture(e, Some(core), &u, &y, Health::Healthy, None);
            metrics.record(&rec);
            trace.push(rec);
        }
        CoreTelemetry {
            core,
            trace,
            metrics,
            quarantine: None,
            summary: None,
            injected_faults: [0; FAULT_KIND_COUNT],
        }
    }

    #[test]
    fn merge_runs_in_core_order_and_sums_epochs() {
        let fleet = FleetTelemetry::from_cores(vec![core_tele(0, 3), core_tele(1, 5)]);
        assert!(fleet.is_enabled());
        assert_eq!(fleet.metrics.epochs, 8);
        assert_eq!(fleet.per_core.len(), 2);
        assert!(fleet.quarantines().is_empty());
        assert!(!FleetTelemetry::default().is_enabled());
    }

    #[test]
    fn jsonl_emits_epoch_quarantine_and_core_end_lines() {
        let mut core = core_tele(2, 2);
        core.quarantine = Some(QuarantineEvent {
            epoch: 1,
            core: Some(2),
            cause: CauseCode::NonFiniteMeasurement,
            channel: Some(0),
        });
        core.injected_faults[1] = 4;
        let fleet = FleetTelemetry::from_cores(vec![core]);
        let mut out = Vec::new();
        fleet.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"type\":\"epoch\",\"core\":2,\"epoch\":0"));
        assert_eq!(
            lines[2],
            "{\"type\":\"quarantine\",\"core\":2,\"epoch\":1,\
             \"cause\":\"non_finite_measurement\",\"channel\":0}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"core_end\",\"core\":2,\"epochs\":2,\"fault_epochs\":0,\
             \"quarantined\":true,\"trace_len\":2,\
             \"injected_faults\":{\"nan_measurement\":4}}"
        );
    }

    #[test]
    fn cluster_telemetry_merges_chips_in_order() {
        let chip0 = FleetTelemetry::from_cores(vec![core_tele(0, 3)]);
        let chip1 = FleetTelemetry::from_cores(vec![core_tele(0, 5), core_tele(1, 2)]);
        let cluster = ClusterTelemetry::from_chips(vec![chip0, chip1]);
        assert!(cluster.is_enabled());
        assert_eq!(cluster.metrics.epochs, 10);
        let mut out = Vec::new();
        cluster.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("{\"type\":\"chip_end\",\"chip\":0,\"cores\":1,\"epochs\":3}"));
        assert!(text.contains("{\"type\":\"chip_end\",\"chip\":1,\"cores\":2,\"epochs\":7}"));
        assert!(!ClusterTelemetry::default().is_enabled());
    }
}
