//! Fleet configuration: how many cores, which applications, what budget.

use mimo_core::telemetry::TelemetryConfig;
use mimo_sim::fault::FaultSpec;
use mimo_sim::llc::LlcConfig;
use mimo_sim::workload::{catalog_names, is_non_responsive, is_training};
use mimo_sim::InputSet;

use crate::arbiter::ArbitrationPolicy;
use crate::error::{FleetError, Result};

/// One core's identity within the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    /// Catalog application this core runs.
    pub app: String,
    /// Seed for the core's plant (all stochastic behavior).
    pub seed: u64,
    /// Arbitration weight under
    /// [`ArbitrationPolicy::PriorityWeighted`]; higher keeps more of the
    /// chip budget.
    pub priority: f64,
}

/// Configuration of a [`crate::FleetRunner`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of cores (plants) in the fleet.
    pub n_cores: usize,
    /// Worker threads stepping the cores. `0` means one per available
    /// hardware thread, capped at `n_cores`.
    pub workers: usize,
    /// Epochs to run (50 µs each).
    pub epochs: usize,
    /// Input set every per-core controller actuates.
    pub input_set: InputSet,
    /// Chip-level power cap in watts, shared by all cores.
    pub chip_power_cap_w: f64,
    /// How the arbiter splits the cap across cores.
    pub policy: ArbitrationPolicy,
    /// Nominal per-core `[IPS (BIPS), power (W)]` targets before
    /// arbitration scales them to the budget.
    pub base_targets: [f64; 2],
    /// Base seed; per-core seeds derive from it deterministically so
    /// results never depend on the worker count.
    pub seed: u64,
    /// Explicit per-core assignments. When shorter than `n_cores` (or
    /// empty), remaining cores draw responsive production apps round-robin.
    pub cores: Vec<CoreSpec>,
    /// Per-epoch probability of a random transient fault on each core's
    /// plant interface. `0.0` (the default) disables the transient process
    /// entirely, keeping runs bit-identical to a fault-free fleet.
    pub fault_rate: f64,
    /// Scheduled faults, as `(core index, fault window)` pairs. Cores not
    /// listed receive no scheduled faults.
    pub core_faults: Vec<(usize, FaultSpec)>,
    /// Workload mix: applications the fleet cycles through round-robin
    /// for cores without an explicit [`CoreSpec`]. Empty (the default)
    /// means the responsive production set ([`default_fleet_apps`]). Seeds
    /// and priorities still derive per core, so changing only the mix
    /// keeps every other knob identical.
    pub apps: Vec<String>,
    /// Per-core telemetry: when enabled, every core carries its own
    /// [`TelemetrySink`](mimo_core::telemetry::TelemetrySink) and the run
    /// returns a populated [`FleetTelemetry`](crate::FleetTelemetry).
    /// Off by default — the cores then run the statically-disabled
    /// [`NullObserver`](mimo_core::telemetry::NullObserver)-equivalent
    /// path (a `None` sink), preserving golden digests and the
    /// allocation-free guarantee.
    pub telemetry: TelemetryConfig,
    /// Shared-LLC contention coupling. `None` (the default) runs every
    /// core's cache in isolation, exactly as before the model existed;
    /// `Some` charges each core's applied L2 ways against a chip-wide way
    /// budget and raises neighbors' effective miss pressure when the chip
    /// oversubscribes it (see [`mimo_sim::llc`]).
    pub llc: Option<LlcConfig>,
    /// Batched structure-of-arrays stepping for shared-controller runs
    /// (`true` by default). When a run is built around one shared
    /// controller of a banked-capable shape, healthy cores step through a
    /// [`GovernorBank`](crate::bank::GovernorBank) — bit-identical to the
    /// per-cell path, so this knob only ever changes wall-clock. `false`
    /// forces every core onto the per-cell path (the determinism CI uses
    /// this to cross-check the two paths byte-for-byte).
    pub banked: bool,
}

impl FleetConfig {
    /// A fleet of `n_cores` with the defaults used by the `fleet_scale`
    /// experiment: two-input plants, a chip cap sized at 1.2 W/core, the
    /// proportional policy, and the paper's aggressive tracking targets.
    pub fn new(n_cores: usize) -> Self {
        FleetConfig {
            n_cores,
            workers: 1,
            epochs: 1000,
            input_set: InputSet::FreqCache,
            chip_power_cap_w: 1.2 * n_cores as f64,
            policy: ArbitrationPolicy::Proportional,
            base_targets: [3.0, 1.9],
            seed: 1,
            cores: Vec::new(),
            apps: Vec::new(),
            fault_rate: 0.0,
            core_faults: Vec::new(),
            telemetry: TelemetryConfig::off(),
            llc: None,
            banked: true,
        }
    }

    /// Enables or disables banked structure-of-arrays stepping for
    /// shared-controller runs (builder style; on by default).
    pub fn banked(mut self, banked: bool) -> Self {
        self.banked = banked;
        self
    }

    /// Sets the worker count (builder style).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the epoch count (builder style).
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the arbitration policy (builder style).
    pub fn policy(mut self, policy: ArbitrationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the power cap this topology's arbiter divides — for a fleet,
    /// the chip-level cap in watts (builder style). Shares its name with
    /// [`ClusterConfig::power_cap`](crate::ClusterConfig::power_cap), the
    /// same knob one level up, so one spec shape drives both.
    pub fn power_cap(mut self, watts: f64) -> Self {
        self.chip_power_cap_w = watts;
        self
    }

    /// Alias of [`FleetConfig::power_cap`] under the topology-specific
    /// name (builder style).
    pub fn chip_power_cap(self, watts: f64) -> Self {
        self.power_cap(watts)
    }

    /// Sets the input set every per-core controller actuates (builder
    /// style).
    pub fn input_set(mut self, input_set: InputSet) -> Self {
        self.input_set = input_set;
        self
    }

    /// Sets the nominal per-core `[IPS, power]` targets (builder style).
    pub fn base_targets(mut self, targets: [f64; 2]) -> Self {
        self.base_targets = targets;
        self
    }

    /// Sets explicit per-core assignments (builder style). Entries beyond
    /// `n_cores` are ignored; missing cores draw defaults.
    pub fn cores(mut self, cores: Vec<CoreSpec>) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the workload mix (builder style): cores without an explicit
    /// [`CoreSpec`] cycle through `apps` round-robin instead of the
    /// default responsive production set. Same name and semantics as
    /// [`ClusterConfig::apps`](crate::ClusterConfig::apps).
    pub fn apps<S: Into<String>>(mut self, apps: Vec<S>) -> Self {
        self.apps = apps.into_iter().map(Into::into).collect();
        self
    }

    /// Attaches per-core telemetry (builder style): each core gets its own
    /// sink built from `telemetry`, and the run's
    /// [`FleetTelemetry`](crate::FleetTelemetry) carries the drained
    /// traces and merged metrics.
    pub fn observer(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the base seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables shared-LLC contention coupling (builder style).
    pub fn llc_contention(mut self, llc: LlcConfig) -> Self {
        self.llc = Some(llc);
        self
    }

    /// Sets the transient fault rate (builder style).
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Schedules a fault on one core (builder style; may be called
    /// repeatedly to stack faults). The cluster-level counterpart is
    /// [`ClusterConfig::core_fault`](crate::ClusterConfig::core_fault),
    /// which takes an extra leading chip index.
    pub fn core_fault(mut self, core: usize, spec: FaultSpec) -> Self {
        self.core_faults.push((core, spec));
        self
    }

    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for a zero-sized fleet, a
    /// non-positive power cap, or non-positive targets/priorities.
    pub fn validate(&self) -> Result<()> {
        if self.n_cores == 0 {
            return Err(FleetError::InvalidConfig {
                what: "n_cores must be at least 1".into(),
            });
        }
        // `<= 0.0 || is_nan` rather than `!(x > 0.0)`: NaN must be rejected
        // too, and clippy flags negated partial-order comparisons.
        let not_positive = |x: f64| x <= 0.0 || x.is_nan();
        if not_positive(self.chip_power_cap_w) {
            return Err(FleetError::InvalidConfig {
                what: format!(
                    "chip_power_cap_w = {} must be positive",
                    self.chip_power_cap_w
                ),
            });
        }
        if self.base_targets.iter().any(|&t| not_positive(t)) {
            return Err(FleetError::InvalidConfig {
                what: format!("base_targets {:?} must be positive", self.base_targets),
            });
        }
        if self.cores.iter().any(|c| not_positive(c.priority)) {
            return Err(FleetError::InvalidConfig {
                what: "core priorities must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.fault_rate) {
            return Err(FleetError::InvalidConfig {
                what: format!(
                    "fault_rate = {} must be a probability in [0, 1]",
                    self.fault_rate
                ),
            });
        }
        if let Some((core, _)) = self
            .core_faults
            .iter()
            .find(|(core, _)| *core >= self.n_cores)
        {
            return Err(FleetError::InvalidConfig {
                what: format!(
                    "core_faults targets core {core}, but the fleet has {} cores",
                    self.n_cores
                ),
            });
        }
        // An explicit worker count beyond the core count is a config
        // mistake, not something to silently clamp (`workers == 0` still
        // means "auto", which is clamped to the core count).
        if self.workers > self.n_cores {
            return Err(FleetError::InvalidConfig {
                what: format!(
                    "workers = {} exceeds n_cores = {}; use workers(0) for auto",
                    self.workers, self.n_cores
                ),
            });
        }
        let catalog = catalog_names();
        if let Some(app) = self.apps.iter().find(|a| !catalog.contains(&a.as_str())) {
            return Err(FleetError::InvalidConfig {
                what: format!("apps names unknown workload {app:?} (see the catalog)"),
            });
        }
        if let Some(llc) = &self.llc {
            llc.validate(self.n_cores)?;
        }
        Ok(())
    }

    /// The effective worker count: explicit, or one per hardware thread,
    /// never more than there are cores.
    pub fn effective_workers(&self) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        requested.clamp(1, self.n_cores.max(1))
    }

    /// Resolves the full per-core spec list: explicit entries first, then
    /// the workload mix (the [`FleetConfig::apps`] list, or responsive
    /// production applications — the cores that can actually chase the
    /// aggressive IPS target) round-robin, each with a seed derived from
    /// the base seed and the core index only.
    pub fn core_specs(&self) -> Vec<CoreSpec> {
        let default_apps: Vec<String> = if self.apps.is_empty() {
            default_fleet_apps().iter().map(|s| s.to_string()).collect()
        } else {
            self.apps.clone()
        };
        (0..self.n_cores)
            .map(|i| {
                self.cores.get(i).cloned().unwrap_or_else(|| CoreSpec {
                    app: default_apps[i % default_apps.len()].to_string(),
                    // Same derivation regardless of worker count or
                    // scheduling: core identity fixes the random stream.
                    seed: self
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                    priority: 1.0,
                })
            })
            .collect()
    }
}

/// Applications a default fleet cycles through: the responsive production
/// set (non-training, can reach the tracking target), in catalog order.
pub fn default_fleet_apps() -> Vec<&'static str> {
    catalog_names()
        .into_iter()
        .filter(|n| !is_training(n) && !is_non_responsive(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        for n in [1, 4, 16, 64] {
            FleetConfig::new(n).validate().unwrap();
        }
    }

    #[test]
    fn zero_cores_rejected() {
        assert!(matches!(
            FleetConfig::new(0).validate(),
            Err(FleetError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn negative_cap_rejected() {
        let cfg = FleetConfig::new(4).chip_power_cap(-1.0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn specs_are_per_core_deterministic_and_distinct() {
        let cfg = FleetConfig::new(16);
        let a = cfg.core_specs();
        let b = cfg.core_specs();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        // Seeds all distinct.
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i].seed, a[j].seed, "cores {i} and {j}");
            }
        }
        // Different base seed shifts every core seed.
        let c = cfg.clone().seed(99).core_specs();
        assert!(a.iter().zip(&c).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn explicit_cores_take_precedence() {
        let cfg = FleetConfig::new(3).cores(vec![CoreSpec {
            app: "mcf".into(),
            seed: 7,
            priority: 2.0,
        }]);
        let specs = cfg.core_specs();
        assert_eq!(specs[0].app, "mcf");
        assert_eq!(specs[0].seed, 7);
        assert_eq!(specs.len(), 3);
    }

    #[test]
    fn effective_workers_clamps_auto_but_validate_rejects_explicit_excess() {
        // Auto (`workers == 0`) clamps to the core count …
        assert!(FleetConfig::new(64).workers(0).effective_workers() >= 1);
        assert!(FleetConfig::new(2).workers(0).effective_workers() <= 2);
        assert_eq!(FleetConfig::new(4).workers(2).effective_workers(), 2);
        // … but an explicit over-subscription is a loud error now.
        let err = FleetConfig::new(4).workers(16).validate().unwrap_err();
        assert!(
            err.to_string().contains("workers = 16 exceeds n_cores = 4"),
            "{err}"
        );
        assert!(FleetConfig::new(4).workers(4).validate().is_ok());
    }

    #[test]
    fn llc_config_is_validated() {
        use mimo_sim::llc::LlcConfig;
        // Fewer ways than cores cannot grant everyone one way.
        let starved = LlcConfig::for_cores(4).total_ways(2);
        assert!(FleetConfig::new(4)
            .llc_contention(starved)
            .validate()
            .is_err());
        let ok = LlcConfig::for_cores(4);
        assert!(FleetConfig::new(4).llc_contention(ok).validate().is_ok());
    }

    #[test]
    fn fault_rate_must_be_a_probability() {
        assert!(FleetConfig::new(2).fault_rate(0.5).validate().is_ok());
        assert!(FleetConfig::new(2).fault_rate(-0.1).validate().is_err());
        assert!(FleetConfig::new(2).fault_rate(1.5).validate().is_err());
        assert!(FleetConfig::new(2).fault_rate(f64::NAN).validate().is_err());
    }

    #[test]
    fn core_fault_indices_are_checked() {
        let spec = FaultSpec {
            kind: mimo_sim::fault::FaultKind::NanMeasurement { channel: 0 },
            start_epoch: 0,
            duration: 1,
        };
        assert!(FleetConfig::new(2).core_fault(1, spec).validate().is_ok());
        assert!(FleetConfig::new(2).core_fault(5, spec).validate().is_err());
    }

    #[test]
    fn apps_mix_drives_default_cores_round_robin() {
        let cfg = FleetConfig::new(5).apps(vec!["astar", "milc"]);
        cfg.validate().unwrap();
        let specs = cfg.core_specs();
        let apps: Vec<&str> = specs.iter().map(|s| s.app.as_str()).collect();
        assert_eq!(apps, ["astar", "milc", "astar", "milc", "astar"]);
        // Seeds keep the default derivation: only the mix changed.
        let default_seeds: Vec<u64> = FleetConfig::new(5)
            .core_specs()
            .iter()
            .map(|s| s.seed)
            .collect();
        assert!(specs.iter().zip(&default_seeds).all(|(s, &d)| s.seed == d));
        // Explicit cores still win over the mix.
        let cfg = cfg.cores(vec![CoreSpec {
            app: "mcf".into(),
            seed: 7,
            priority: 1.0,
        }]);
        assert_eq!(cfg.core_specs()[0].app, "mcf");
    }

    #[test]
    fn unknown_app_in_mix_is_rejected() {
        let err = FleetConfig::new(2)
            .apps(vec!["astar", "no-such-app"])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("no-such-app"), "{err}");
    }

    #[test]
    fn power_cap_and_chip_power_cap_are_the_same_knob() {
        let a = FleetConfig::new(4).power_cap(3.3);
        let b = FleetConfig::new(4).chip_power_cap(3.3);
        assert_eq!(a, b);
        assert_eq!(a.chip_power_cap_w, 3.3);
    }

    #[test]
    fn default_apps_are_responsive_production() {
        let apps = default_fleet_apps();
        assert_eq!(apps.len(), 10);
        assert!(apps.iter().all(|a| !is_non_responsive(a)));
    }
}
