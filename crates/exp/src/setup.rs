//! Shared construction of plants and the four architectures (Table IV).

use mimo_core::decoupled::{design_decoupled, DecoupledGovernor};
use mimo_core::design::{DesignFlow, ValidatedDesign};
use mimo_core::governor::{FixedGovernor, MimoGovernor};
use mimo_core::heuristic::{profile_sensitivity, SensitivityRanking};
use mimo_core::optimizer::Metric;
use mimo_core::weights::WeightSet;
use mimo_core::Result;
use mimo_linalg::Vector;
use mimo_sim::workload::{TRAINING_SET, VALIDATION_SET};
use mimo_sim::{InputSet, PlantConfig, Processor, ProcessorBuilder};

/// Builds a plant for an application with the given input set.
///
/// # Panics
///
/// Panics if `app` is not in the catalog (experiment code uses the fixed
/// catalog names).
pub fn plant(app: &str, input_set: InputSet, seed: u64) -> Processor {
    try_plant(app, input_set, seed).expect("catalog app")
}

/// Fallible [`plant`]: grid cells use this so one bad workload name
/// reports (with the app attached) instead of aborting the whole sweep.
///
/// # Errors
///
/// Returns [`mimo_core::ControlError::ValidationFailed`] naming the app
/// when it is not in the catalog.
pub fn try_plant(app: &str, input_set: InputSet, seed: u64) -> Result<Processor> {
    ProcessorBuilder::new()
        .app(app)
        .seed(seed)
        .input_set(input_set)
        .build()
        .map_err(|e| mimo_core::ControlError::ValidationFailed {
            what: format!("plant '{app}': {e}"),
        })
}

/// The four training plants of §VII-A.
pub fn training_plants(input_set: InputSet, seed: u64) -> Vec<Processor> {
    TRAINING_SET
        .iter()
        .enumerate()
        .map(|(k, name)| plant(name, input_set, seed + k as u64))
        .collect()
}

/// The two validation plants of §VI-A2.
pub fn validation_plants(input_set: InputSet, seed: u64) -> Vec<Processor> {
    VALIDATION_SET
        .iter()
        .enumerate()
        .map(|(k, name)| plant(name, input_set, seed + 100 + k as u64))
        .collect()
}

/// Runs the full Figure 3 flow on the training/validation sets and returns
/// the deployed MIMO design.
///
/// # Errors
///
/// Propagates identification/synthesis/RSA failures.
pub fn design_mimo(input_set: InputSet, seed: u64) -> Result<ValidatedDesign> {
    design_mimo_with(input_set, seed, None)
}

/// Like [`design_mimo`] with an explicit weight set (Table V studies).
///
/// # Errors
///
/// Propagates identification/synthesis/RSA failures.
pub fn design_mimo_with(
    input_set: InputSet,
    seed: u64,
    weights: Option<WeightSet>,
) -> Result<ValidatedDesign> {
    let mut flow = match input_set {
        InputSet::FreqCache => DesignFlow::two_input(),
        InputSet::FreqCacheRob => DesignFlow::three_input(),
    };
    if let Some(w) = weights {
        flow = flow.with_weights(w);
    }
    flow.seed = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(flow.seed);
    let mut training = training_plants(input_set, seed);
    let result = flow.run_multi(training.iter_mut())?;
    let mut validation = validation_plants(input_set, seed);
    flow.validate(result, validation.iter_mut())
}

/// Wraps a validated design as a [`MimoGovernor`].
///
/// # Errors
///
/// Propagates design failures.
pub fn mimo_governor(input_set: InputSet, seed: u64) -> Result<MimoGovernor> {
    Ok(MimoGovernor::new(design_mimo(input_set, seed)?.controller))
}

/// Designs the Decoupled architecture (two-input plants only).
///
/// # Errors
///
/// Propagates SISO design failures.
pub fn decoupled_governor(seed: u64) -> Result<DecoupledGovernor> {
    let mut plants = training_plants(InputSet::FreqCache, seed);
    design_decoupled(&mut plants, seed)
}

/// Profiles the heuristic's feature ranking on the training set (averaged
/// impacts across the four apps).
pub fn heuristic_ranking(input_set: InputSet, seed: u64) -> SensitivityRanking {
    let mut plants = training_plants(input_set, seed + 500);
    let n_apps = plants.len() as f64;
    let n = input_set.len();
    let mut perf = vec![0.0; n];
    let mut power = vec![0.0; n];
    for p in &mut plants {
        let r = profile_sensitivity(p, 40);
        for i in 0..n {
            perf[i] += r.perf_impact[i] / n_apps;
            power[i] += r.power_impact[i] / n_apps;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (perf[b] + power[b])
            .partial_cmp(&(perf[a] + power[a]))
            .unwrap()
    });
    SensitivityRanking {
        perf_impact: perf,
        power_impact: power,
        order,
    }
}

/// The Baseline architecture for a metric: profiles the training set over
/// a configuration grid and fixes the configuration with the best average
/// `E·D^(k−1)` (§VII-C: "inputs fixed and chosen to deliver the best
/// outputs").
pub fn baseline_config(input_set: InputSet, metric: Metric, seed: u64) -> PlantConfig {
    // Coarse but covering grid: every other frequency, all cache levels,
    // every other ROB size.
    let freqs: Vec<f64> = (0..8).map(|i| 0.5 + 0.2 * i as f64).collect();
    let caches = [2usize, 4, 6, 8];
    let robs: Vec<usize> = match input_set {
        InputSet::FreqCache => vec![48], // Table III baseline ROB
        InputSet::FreqCacheRob => vec![32, 64, 96, 128],
    };
    let mut best = PlantConfig::baseline();
    let mut best_score = f64::INFINITY;
    for &f in &freqs {
        for &c in &caches {
            for &r in &robs {
                let cfg = PlantConfig {
                    freq_ghz: (f * 10.0).round() / 10.0,
                    l2_ways: c,
                    rob_entries: r,
                };
                let mut total = 0.0;
                for (k, name) in TRAINING_SET.iter().enumerate() {
                    let mut p = plant(name, input_set, seed + 900 + k as u64);
                    // Fixed work per probe.
                    for _ in 0..400 {
                        let _ = p.step_config(cfg);
                    }
                    total += p.totals().energy_delay_product(metric.exponent() as u32);
                }
                if total < best_score {
                    best_score = total;
                    best = cfg;
                }
            }
        }
    }
    best
}

/// The baseline as a fixed governor.
pub fn baseline_governor(input_set: InputSet, metric: Metric, seed: u64) -> FixedGovernor {
    let cfg = baseline_config(input_set, metric, seed);
    FixedGovernor::new(Vector::from_slice(&cfg.to_actuation(input_set)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_and_validation_sets_build() {
        assert_eq!(training_plants(InputSet::FreqCache, 1).len(), 4);
        assert_eq!(validation_plants(InputSet::FreqCache, 1).len(), 2);
    }

    #[test]
    fn mimo_design_deploys_for_both_input_sets() {
        let two = design_mimo(InputSet::FreqCache, 11).unwrap();
        assert!(two.rsa.robust);
        assert_eq!(two.controller.num_inputs(), 2);
        let three = design_mimo(InputSet::FreqCacheRob, 11).unwrap();
        assert!(three.rsa.robust);
        assert_eq!(three.controller.num_inputs(), 3);
    }

    #[test]
    fn heuristic_ranking_prefers_frequency() {
        let r = heuristic_ranking(InputSet::FreqCache, 3);
        assert_eq!(r.order[0], 0, "{r:?}");
    }

    #[test]
    fn baseline_config_is_on_grid_and_reasonable() {
        let cfg = baseline_config(InputSet::FreqCache, Metric::EnergyDelay, 5);
        cfg.validate().unwrap();
        // E×D optimum should be an interior frequency, not an extreme.
        assert!(cfg.freq_ghz >= 0.7 && cfg.freq_ghz <= 1.9, "{cfg:?}");
    }
}
