//! Figure 11: tracking multiple references across the production set.
fn main() {
    let cfg = mimo_exp::experiments::ExpConfig::full();
    mimo_exp::experiments::fig11(&cfg).expect("fig11");
}
