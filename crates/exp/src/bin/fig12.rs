//! Figure 12: time-varying (battery/QoE) tracking on astar and milc.
fn main() {
    let cfg = mimo_exp::experiments::ExpConfig::full();
    mimo_exp::experiments::fig12(&cfg).expect("fig12");
}
