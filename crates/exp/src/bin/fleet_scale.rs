//! Fleet scaling: N per-core MIMO governors under one chip power budget,
//! swept over fleet sizes and worker-thread counts.
fn main() {
    let cfg = mimo_exp::experiments::ExpConfig::full();
    let points = mimo_exp::experiments::fleet_scale(&cfg).expect("fleet_scale");
    for pair in points.chunks(2) {
        assert!(
            pair.iter().all(|p| p.digest == pair[0].digest),
            "worker count changed results at N={}",
            pair[0].stats.n_cores
        );
    }
    println!("done; results/fleet_scale.csv");
}
